#!/usr/bin/env python3
"""Bulk transfer over a WAN-like bottleneck (the Figure 9 scenario).

A 96 Mbit/s link carries heavy-tailed cross traffic offered at 50% load.
The script compares Nimbus, Cubic and Vegas on the same workload and prints
the throughput / delay operating point of each, illustrating the paper's
headline claim: Cubic-like throughput at Vegas-like delay.

Run with:  python examples/wan_cross_traffic.py
"""

from __future__ import annotations

from repro.experiments import fig09_wan


def main() -> None:
    print("Running the WAN cross-traffic comparison "
          "(this simulates ~3 x 45 seconds)...\n")
    result = fig09_wan.run(schemes=("nimbus", "cubic", "vegas"),
                           duration=45.0, dt=0.004)
    print(result.table())
    print()
    nimbus = result.schemes["nimbus"]
    cubic = result.schemes["cubic"]
    vegas = result.schemes["vegas"]
    print(f"Nimbus throughput is "
          f"{nimbus.summary.mean_throughput_mbps / max(cubic.summary.mean_throughput_mbps, 1e-9):.0%} "
          f"of Cubic's, at {cubic.extra['queue']['mean'] - nimbus.extra['queue']['mean']:.0f} ms "
          f"lower mean queueing delay.")
    print(f"Vegas pays for its low delay with only "
          f"{vegas.summary.mean_throughput_mbps:.1f} Mbit/s of throughput.")


if __name__ == "__main__":
    main()
