#!/usr/bin/env python3
"""Multiple Nimbus flows sharing one bottleneck (the Figure 16 scenario).

Three Nimbus flows with the multi-flow pulser/watcher protocol enabled
arrive at a 96 Mbit/s link staggered in time.  The script reports each
flow's throughput, Jain's fairness index, how much of the time the flows
stayed in delay mode, and how many concurrent pulsers were observed.

Run with:  python examples/multiple_nimbus_flows.py
"""

from __future__ import annotations

from repro.experiments import fig16_multiflow


def main() -> None:
    print("Running three staggered Nimbus flows (multi-flow protocol)...\n")
    result = fig16_multiflow.run(n_flows=3, stagger=15.0, flow_duration=50.0,
                                 dt=0.004)
    data = result.data
    for i, rate in enumerate(data["rates_mbps"]):
        print(f"  nimbus{i}: {rate:6.1f} Mbit/s "
              f"(delay-mode fraction {data['delay_mode_fraction'][i]:.0%})")
    print()
    print(f"Jain fairness index           : {data['jain_fairness']:.3f}")
    print(f"Mean concurrent pulsers       : {data['mean_pulsers']:.2f}")
    print(f"Max concurrent pulsers        : {data['max_concurrent_pulsers']}")
    print(f"Mean bottleneck queueing delay: {data['queue']['mean']:.1f} ms")
    print("\nWith no elastic cross traffic the flows coordinate implicitly:")
    print("one pulser probes the link while the watchers copy its mode, so")
    print("the group shares the link fairly and keeps the queue short.")


if __name__ == "__main__":
    main()
