#!/usr/bin/env python3
"""Where Copa's mode detector fails and Nimbus's does not (Appendix D).

Two scenarios from the paper:

* a constant-bit-rate stream occupying ~83% of the link — Copa cannot drain
  the queue every 5 RTTs, misclassifies the traffic as buffer-filling and
  suffers high delay; Nimbus classifies it as inelastic and keeps the queue
  short;
* an elastic NewReno flow with a 4x larger RTT — it ramps slowly enough
  that Copa believes there is no buffer-filling traffic and cedes
  bandwidth, while Nimbus detects the elasticity and competes.

Run with:  python examples/copa_comparison.py
"""

from __future__ import annotations

from repro.experiments import fig23_copa_cbr, fig24_copa_rtt


def main() -> None:
    print("Scenario 1: 80 Mbit/s CBR on a 96 Mbit/s link (inelastic)...\n")
    cbr = fig23_copa_cbr.run(cbr_fractions=(0.83,), duration=40.0, dt=0.004)
    delays = cbr.data["mean_queue_delay_ms"]
    print(f"  Copa   mean queueing delay: {delays['copa'][0.83]:6.1f} ms")
    print(f"  Nimbus mean queueing delay: {delays['nimbus'][0.83]:6.1f} ms\n")

    print("Scenario 2: NewReno competitor with 4x the RTT (elastic)...\n")
    rtt = fig24_copa_rtt.run(rtt_ratios=(4.0,), duration=50.0, dt=0.004)
    tput = rtt.data["throughput"]
    fair = rtt.data["fair_share_mbps"]
    print(f"  fair share               : {fair:6.1f} Mbit/s")
    print(f"  Copa   throughput        : {tput['copa'][4.0]:6.1f} Mbit/s")
    print(f"  Nimbus throughput        : {tput['nimbus'][4.0]:6.1f} Mbit/s")
    print("\nCopa's heuristic (does the queue empty every 5 RTTs?) fails in")
    print("both regimes; estimating elasticity from the cross traffic's")
    print("frequency response is robust to them.")


if __name__ == "__main__":
    main()
