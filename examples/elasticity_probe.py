#!/usr/bin/env python3
"""Use the elasticity detector as a standalone measurement tool (§1).

The paper suggests elasticity detection is useful beyond congestion control,
e.g. as a diagnostic that tells an operator whether the traffic sharing a
bottleneck reacts to available bandwidth.  This example probes three
different cross-traffic types with the same pulsing flow and prints the
measured elasticity metric and classification for each.

Run with:  python examples/elasticity_probe.py
"""

from __future__ import annotations


from repro.experiments import table1_classification


def main() -> None:
    print("Probing cross traffic with 5 Hz asymmetric pulses...\n")
    print(f"{'cross traffic':<18}{'expected':<12}{'classified':<12}"
          f"{'competitive fraction':>22}")
    for traffic in ("cubic", "vegas", "constant-stream", "app-limited"):
        row = table1_classification.classify(traffic, duration=35.0, dt=0.004)
        print(f"{traffic:<18}{row['expected']:<12}{row['classification']:<12}"
              f"{row['competitive_fraction']:>22.2f}")
    print("\nACK-clocked transports respond to the induced rate fluctuations")
    print("within one RTT and show up as elastic; application-limited and")
    print("constant-rate streams do not.")


if __name__ == "__main__":
    main()
