#!/usr/bin/env python3
"""Quickstart: detect cross-traffic elasticity and switch modes with Nimbus.

Builds a single 48 Mbit/s bottleneck, runs one Nimbus flow against first an
elastic (Cubic) and then an inelastic (Poisson) competitor, and prints the
elasticity metric, the chosen mode, the throughput and the queueing delay in
each case — the essence of Figure 1 of the paper.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Cubic, Flow, Nimbus, quick_network
from repro.cc import NullCC
from repro.simulator import mbps_to_bytes_per_sec
from repro.traffic import PoissonSource

LINK_MBPS = 48.0
RTT = 0.05           # 50 ms propagation round-trip time
DURATION = 40.0      # seconds of simulated time per scenario


def run_scenario(cross_traffic: str) -> None:
    """Run Nimbus against one kind of cross traffic and print a summary."""
    network, link = quick_network(link_mbps=LINK_MBPS, buffer_ms=100,
                                  dt=0.002)
    mu = mbps_to_bytes_per_sec(LINK_MBPS)

    nimbus = Nimbus(mu=mu)
    network.add_flow(Flow(cc=nimbus, prop_rtt=RTT, name="nimbus"))

    if cross_traffic == "elastic":
        # A long-running Cubic flow: backlogged, ACK-clocked, buffer-filling.
        network.add_flow(Flow(cc=Cubic(), prop_rtt=RTT, name="cross"))
    else:
        # A Poisson stream at half the link rate: never reacts to congestion.
        network.add_flow(Flow(cc=NullCC(), prop_rtt=RTT,
                              source=PoissonSource(0.5 * mu, seed=1),
                              name="cross"))

    network.run(DURATION)

    recorder = network.recorder
    _, queue_delay_ms = recorder.link_queue_delay_series()
    steady = queue_delay_ms[len(queue_delay_ms) // 3:]
    etas = [eta for t, eta in nimbus.eta_history if t > DURATION / 3]

    print(f"--- cross traffic: {cross_traffic} ---")
    print(f"  elasticity metric (median eta) : {np.median(etas):6.2f}  "
          f"(threshold {nimbus.threshold})")
    print(f"  final mode                     : {nimbus.mode}")
    print(f"  nimbus throughput              : "
          f"{recorder.mean_throughput('nimbus', start=15.0):6.1f} Mbit/s")
    print(f"  cross-traffic throughput       : "
          f"{recorder.mean_throughput('cross', start=15.0):6.1f} Mbit/s")
    print(f"  mean queueing delay            : {np.mean(steady):6.1f} ms")
    print()


def main() -> None:
    print(f"Nimbus on a {LINK_MBPS:.0f} Mbit/s link, {RTT * 1e3:.0f} ms RTT\n")
    run_scenario("elastic")
    run_scenario("inelastic")
    print("Against the elastic Cubic flow Nimbus switches to TCP-competitive\n"
          "mode and takes its fair share; against the inelastic stream it\n"
          "stays in delay-control mode and keeps the queue short.")


if __name__ == "__main__":
    main()
