"""Structured event tracing for the simulator: the flight recorder.

The :class:`~repro.simulator.topology.TopologyNetwork` engine can narrate a
run as a stream of structured events — every enqueue, drop, hop forward,
delivery, ACK, loss feedback, and estimator mode change — through a *trace
sink*.  The sink is ``None`` by default, and every emission site is guarded
by a single ``is not None`` check, so a run without tracing executes the
exact event sequence (and produces the exact bytes) it always did.

Trace record schema (``TRACE_SCHEMA_VERSION`` = 1).  Every record is one
JSON object per line with at least:

``time``
    Simulation time in seconds (float).
``event``
    One of :data:`EVENT_KINDS` (see below).
``flow_id`` / ``flow``
    Numeric id and label of the flow the event belongs to.

Per-kind payload fields:

``flow_start``
    ``cc`` (algorithm name), ``path`` (list of link names), ``start``
    (scheduled start time).
``enqueue``
    First-hop admission: ``link``, ``hop`` (always 0), ``bytes``, ``seq``.
``hop``
    Arrival at an interior hop's queue (the ``_HOP`` forward): ``link``,
    ``hop`` (1-based position along the path), ``bytes``, ``seq``.
``drop``
    Bytes refused by a hop's queue policy: ``link``, ``hop``, ``bytes``.
``delivery``
    Chunk reaches its receiver: ``bytes``, ``seq``, ``queue_delay``
    (accumulated queueing delay in seconds).
``ack``
    Acknowledgement back at the sender: ``bytes``, ``rtt`` (seconds),
    ``queue_delay``.
``loss``
    Loss feedback arriving at the sender (one remaining-path-plus-ACK
    delay after the drop): ``bytes``.
``mode_change``
    A mode-switching algorithm (Nimbus, Copa) changed mode: ``mode``,
    ``from_mode``.
``flow_finish``
    Flow completed: ``fct`` (flow completion time in seconds, or null).
``fault_start`` / ``fault_end``
    A scheduled fault toggled on a link (see
    :mod:`repro.simulator.faults`): ``link``, ``fault`` (one of
    ``capacity_dip``, ``link_flap``, ``delay_jitter``, ``burst_loss``),
    plus kind-specific detail on ``fault_start`` (``factor``, ``delay``,
    ``loss_rate``, ``drop_queued``, ``flushed_bytes``).  Fault events are
    control-plane and carry no ``flow_id``/``flow`` — they describe the
    network, not a flow.
``route_change``
    A :class:`~repro.simulator.routing.RoutedNetwork` convergence pass
    re-resolved one routing-table entry: ``node``, ``destination``,
    ``from_link`` (previous next hop, or null on first resolution),
    ``to_link`` (new next hop, or null when no candidate survives).
    Control-plane like the fault kinds: no ``flow_id``/``flow``.
``blackhole_start`` / ``blackhole_end``
    A routed flow lost (regained) every path to its destination:
    ``node`` (the flow's source node) and ``destination``.  While
    blackholed the flow's emissions become loss feedback instead of
    entering any queue.
``fluid_sample``
    Periodic snapshot of one fluid-aggregate background class (see
    :mod:`repro.simulator.fluid`), emitted every 50 ticks: ``link``,
    ``class`` (the class name), ``kind`` (``elastic``/``inelastic``),
    cumulative ``offered``/``served``/``dropped`` byte counters, the
    current queue ``backlog`` in bytes, the instantaneous send ``rate``
    in bytes/s, and the estimated live ``flows`` count.  Control-plane
    like the fault kinds: no ``flow_id``/``flow`` envelope (a class
    stands for a crowd, not a flow), but subject to the link filter.

Sinks support three orthogonal reductions, applied in ``emit``:

* **per-flow filter** — keep only events whose ``flow`` label (or
  ``flow_id``) is in a given set,
* **per-link filter** — keep only link-located events (enqueue / hop /
  drop) on the named links, plus all non-link events,
* **1-in-N sampling** — keep every Nth *data-plane* event (enqueue, hop,
  delivery, ack); control-plane events (drops, losses, mode changes, flow
  lifecycle) are always precious and never sampled away.

``REPRO_TRACE=<path>`` wires a :class:`JsonlTraceSink` into every engine
built afterwards (the runner's ``--trace`` flag sets it for one
invocation); ``REPRO_TRACE_SAMPLE``, ``REPRO_TRACE_FLOWS``,
``REPRO_TRACE_LINKS``, and ``REPRO_TRACE_EVENTS`` configure the filters.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable, List, Optional, Union

#: Version stamp carried by documentation and validated goldens; bump when
#: a field is renamed or removed (additions are compatible).
TRACE_SCHEMA_VERSION = 1

#: Every event kind the engine emits.
EVENT_KINDS = frozenset({
    "flow_start",
    "enqueue",
    "hop",
    "drop",
    "delivery",
    "ack",
    "loss",
    "mode_change",
    "flow_finish",
    "fault_start",
    "fault_end",
    "route_change",
    "blackhole_start",
    "blackhole_end",
    "fluid_sample",
})

#: Link-fault lifecycle kinds.
FAULT_KINDS = frozenset({"fault_start", "fault_end"})

#: Control-plane kinds without a flow envelope: they describe the network
#: (a fault window, a routing-table entry, a fluid traffic class), not any
#: one flow, so per-flow filters never discard them.
CONTROL_KINDS = FAULT_KINDS | {"route_change", "fluid_sample"}

#: High-volume data-plane kinds that 1-in-N sampling applies to.  Everything
#: else (drops, losses, mode changes, flow lifecycle) is rare and always kept.
SAMPLED_KINDS = frozenset({"enqueue", "hop", "delivery", "ack"})

#: Kinds that carry a ``link`` field (and are subject to the link filter).
LINK_KINDS = frozenset({"enqueue", "hop", "drop", "fault_start", "fault_end",
                        "fluid_sample"})

#: Required payload fields per kind, beyond the common
#: ``time``/``event``/``flow_id``/``flow`` envelope.
_REQUIRED_FIELDS = {
    "flow_start": ("cc", "path", "start"),
    "enqueue": ("link", "hop", "bytes", "seq"),
    "hop": ("link", "hop", "bytes", "seq"),
    "drop": ("link", "hop", "bytes"),
    "delivery": ("bytes", "seq", "queue_delay"),
    "ack": ("bytes", "rtt", "queue_delay"),
    "loss": ("bytes",),
    "mode_change": ("mode", "from_mode"),
    "flow_finish": ("fct",),
    "fault_start": ("link", "fault"),
    "fault_end": ("link", "fault"),
    "route_change": ("node", "destination", "from_link", "to_link"),
    "blackhole_start": ("node", "destination"),
    "blackhole_end": ("node", "destination"),
    "fluid_sample": ("link", "class", "kind", "offered", "served",
                     "dropped", "backlog", "rate", "flows"),
}

_NUMBER = (int, float)


def validate_trace_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the documented schema."""
    if not isinstance(record, dict):
        raise ValueError(f"trace record must be an object, got "
                         f"{type(record).__name__}")
    kind = record.get("event")
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown trace event kind {kind!r}; "
                         f"known: {sorted(EVENT_KINDS)}")
    time = record.get("time")
    if not isinstance(time, _NUMBER) or isinstance(time, bool) or time < 0:
        raise ValueError(f"trace record needs a non-negative numeric "
                         f"'time', got {time!r}")
    if kind in CONTROL_KINDS:
        if kind in FAULT_KINDS:
            fault = record.get("fault")
            if not isinstance(fault, str):
                raise ValueError(f"{kind} record needs a string 'fault' "
                                 f"kind, got {fault!r}")
    else:
        if not isinstance(record.get("flow_id"), int):
            raise ValueError(f"trace record needs an integer 'flow_id', "
                             f"got {record.get('flow_id')!r}")
        if not isinstance(record.get("flow"), str):
            raise ValueError(f"trace record needs a string 'flow' label, "
                             f"got {record.get('flow')!r}")
    for name in _REQUIRED_FIELDS[kind]:
        if name not in record:
            raise ValueError(f"{kind} record is missing field {name!r}: "
                             f"{record}")
    for name in ("bytes", "seq", "queue_delay", "rtt", "start",
                 "factor", "delay", "loss_rate", "flushed_bytes",
                 "offered", "served", "dropped", "backlog", "rate", "flows"):
        if name in record and (not isinstance(record[name], _NUMBER)
                               or isinstance(record[name], bool)):
            raise ValueError(f"{kind} field {name!r} must be numeric, "
                             f"got {record[name]!r}")
    if kind in LINK_KINDS and not isinstance(record.get("link"), str):
        raise ValueError(f"{kind} record needs a string 'link', "
                         f"got {record.get('link')!r}")
    if kind in ("route_change", "blackhole_start", "blackhole_end"):
        for name in ("node", "destination"):
            if not isinstance(record.get(name), str):
                raise ValueError(f"{kind} record needs a string {name!r}, "
                                 f"got {record.get(name)!r}")
    if kind == "route_change":
        for name in ("from_link", "to_link"):
            value = record.get(name)
            if value is not None and not isinstance(value, str):
                raise ValueError(f"route_change field {name!r} must be a "
                                 f"link name or null, got {value!r}")
    if kind == "fluid_sample":
        for name in ("class", "kind"):
            if not isinstance(record.get(name), str):
                raise ValueError(f"fluid_sample record needs a string "
                                 f"{name!r}, got {record.get(name)!r}")


class TraceSink:
    """Base trace sink: filtering and sampling, with storage left abstract.

    Subclasses implement :meth:`write`; :meth:`emit` applies the flow/link
    filters and the 1-in-N sample before forwarding.  The engine only ever
    calls :meth:`emit` (and :meth:`close` when it owns the sink).

    Args:
        flows: Keep only events of these flows, matched against the flow
            *label* (str entries) or *id* (int entries).  ``None`` keeps all.
        links: Keep only link-located events (enqueue/hop/drop) on these
            link names; events without a link are unaffected.  ``None``
            keeps all.
        events: Keep only these event kinds.  ``None`` keeps all.
        sample: Keep every ``sample``-th data-plane event (see
            :data:`SAMPLED_KINDS`); control-plane events are always kept.
    """

    def __init__(self, flows: Optional[Iterable[Union[str, int]]] = None,
                 links: Optional[Iterable[str]] = None,
                 events: Optional[Iterable[str]] = None,
                 sample: int = 1) -> None:
        if sample < 1:
            raise ValueError("sample must be >= 1 (1 keeps every event)")
        self.flows = frozenset(flows) if flows is not None else None
        self.links = frozenset(links) if links is not None else None
        if events is not None:
            events = frozenset(events)
            unknown = events - EVENT_KINDS
            if unknown:
                raise ValueError(f"unknown event kinds {sorted(unknown)}; "
                                 f"known: {sorted(EVENT_KINDS)}")
        self.events = events
        self.sample = int(sample)
        self._seen = 0
        #: Records actually written (post-filter, post-sample).
        self.emitted = 0

    # ------------------------------------------------------------------ #
    def admit(self, record: dict) -> bool:
        """Whether ``record`` survives the filters and the sampler."""
        kind = record["event"]
        if self.events is not None and kind not in self.events:
            return False
        if self.flows is not None and kind not in CONTROL_KINDS and \
                record["flow"] not in self.flows and \
                record["flow_id"] not in self.flows:
            # Control-plane events (faults, route changes) have no flow
            # envelope: a flow filter never discards them (they are
            # context for whichever flows remain).
            return False
        if self.links is not None and kind in LINK_KINDS and \
                record["link"] not in self.links:
            return False
        if self.sample > 1 and kind in SAMPLED_KINDS:
            self._seen += 1
            if self._seen % self.sample:
                return False
        return True

    def emit(self, record: dict) -> None:
        if self.admit(record):
            self.emitted += 1
            self.write(record)

    def write(self, record: dict) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered records to stable storage (default: nothing)."""

    def close(self) -> None:
        """Release any underlying resources (default: nothing to do)."""


class ListTraceSink(TraceSink):
    """Collects records in memory — the test and notebook sink."""

    def __init__(self, **filters) -> None:
        super().__init__(**filters)
        self.records: List[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)


class JsonlTraceSink(TraceSink):
    """Serialises one JSON object per line to a file (append mode).

    Append mode lets several sequentially-built networks of one batch (or
    one process) share a trace file; each record is written as a single
    ``write`` call so lines stay whole.

    Args:
        target: Path to append to, or an already-open text handle (which
            the caller keeps ownership of).
        **filters: See :class:`TraceSink`.
    """

    def __init__(self, target: Union[str, os.PathLike, IO[str]],
                 **filters) -> None:
        super().__init__(**filters)
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owns_handle = False
        else:
            self._handle = open(target, "a", encoding="utf-8")
            self._owns_handle = True

    def write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":"),
                                      sort_keys=True) + "\n")

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


def _split_env_list(raw: str) -> Optional[List[str]]:
    values = [item.strip() for item in raw.split(",") if item.strip()]
    return values or None


def sink_from_env(environ=None) -> Optional[JsonlTraceSink]:
    """Build the environment-configured trace sink, or ``None``.

    ``REPRO_TRACE=<path>`` enables tracing; ``REPRO_TRACE_SAMPLE=<N>``,
    ``REPRO_TRACE_FLOWS=a,b``, ``REPRO_TRACE_LINKS=hop1,hop2``, and
    ``REPRO_TRACE_EVENTS=drop,loss`` configure the sink's filters.  Flow
    entries that parse as integers match flow ids.
    """
    environ = os.environ if environ is None else environ
    path = environ.get("REPRO_TRACE", "").strip()
    if not path:
        return None
    sample = 1
    raw_sample = environ.get("REPRO_TRACE_SAMPLE", "").strip()
    if raw_sample:
        try:
            sample = max(1, int(raw_sample))
        except ValueError:
            raise ValueError(f"REPRO_TRACE_SAMPLE must be an integer, "
                             f"got {raw_sample!r}")
    flows: Optional[List[Union[str, int]]] = None
    raw_flows = _split_env_list(environ.get("REPRO_TRACE_FLOWS", ""))
    if raw_flows is not None:
        flows = [int(item) if item.lstrip("-").isdigit() else item
                 for item in raw_flows]
    links = _split_env_list(environ.get("REPRO_TRACE_LINKS", ""))
    events = _split_env_list(environ.get("REPRO_TRACE_EVENTS", ""))
    return JsonlTraceSink(path, flows=flows, links=links, events=events,
                          sample=sample)
