"""Transport endpoint: ties a congestion controller, an application source,
and a path together into a flow the network engine can drive.

The flow is the unit of scheduling in the simulator.  Every tick the engine
asks each active flow how many bytes it wants to transmit; the flow answers
by combining three limits:

* the congestion window (ACK clocking) reported by its algorithm,
* the pacing rate reported by its algorithm, and
* the bytes its application source has made available.

ACK clocking is therefore emergent: a window-limited flow can only emit new
bytes when acknowledgements return, so fluctuations induced at the
bottleneck by Nimbus's pulses show up in the flow's send rate one RTT later
— the very behaviour the elasticity detector looks for (§3.2 of the paper).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from .measurement import FlowMeasurement
from .packet import Ack, Chunk, FlowStats
from .source import BackloggedSource, Source
from .units import MSS_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cc.base import CongestionControl


class Flow:
    """A unidirectional transport flow through the bottleneck.

    Args:
        cc: Congestion-control algorithm governing the flow.
        prop_rtt: Two-way propagation delay in seconds (no queueing) of the
            flow's access legs: last hop to receiver plus the ACK return
            path.  On a multi-hop path the flow's end-to-end base RTT is
            this plus the intermediate links' propagation delays (see
            :mod:`repro.simulator.topology`); on the classic single-link
            network the two are the same number.
        source: Application source; defaults to a backlogged bulk transfer.
        start_time: Simulation time at which the flow starts sending.
        name: Optional label for traces; defaults to the algorithm name.
        control_interval: How often the algorithm's periodic hook runs.
        max_burst_bytes: Cap on bytes emitted in a single tick, to bound the
            burstiness of unpaced window-based senders.
    """

    def __init__(self, cc: "CongestionControl", prop_rtt: float,
                 source: Optional[Source] = None, start_time: float = 0.0,
                 name: Optional[str] = None, control_interval: float = 0.01,
                 max_burst_bytes: Optional[float] = None) -> None:
        if prop_rtt <= 0:
            raise ValueError("prop_rtt must be positive")
        self.cc = cc
        self.prop_rtt = prop_rtt
        self.source: Source = source if source is not None else BackloggedSource()
        self.start_time = start_time
        self.name = name if name is not None else cc.name
        self.control_interval = control_interval
        self.max_burst_bytes = max_burst_bytes

        #: Identifier assigned by the network when the flow is added.
        self.flow_id: int = -1
        self.measurement = FlowMeasurement()
        self.stats = FlowStats(start_time=start_time)

        self.inflight = 0.0
        self.next_seq = 0.0
        self._pace_credit = 0.0
        self._last_control = -math.inf
        self._started = False
        self._finished = False

        cc.register(self)

    # ------------------------------------------------------------------ #
    # Access delays: last hop -> receiver -> sender.  Intermediate hops of
    # a multi-link path add their own per-link delays in the engine.
    # ------------------------------------------------------------------ #
    @property
    def delay_to_receiver(self) -> float:
        """One-way delay from the last link's output to the receiver."""
        return self.prop_rtt / 2.0

    @property
    def delay_ack(self) -> float:
        """Delay of the acknowledgement from the receiver back to the sender."""
        return self.prop_rtt / 2.0

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        """True while the flow has started and is not yet finished."""
        return self._started and not self._finished

    @property
    def finished(self) -> bool:
        return self._finished

    def start(self, now: float) -> None:
        """Mark the flow as started (called by the engine)."""
        self._started = True
        self.stats.start_time = now

    def stop(self, now: float) -> None:
        """Terminate the flow (used by scripted workloads to end cross flows)."""
        if not self._finished:
            self._finished = True
            self.stats.end_time = now

    # ------------------------------------------------------------------ #
    # Emission (called once per tick by the engine)
    # ------------------------------------------------------------------ #
    def emit(self, now: float, dt: float) -> Optional[Chunk]:
        """Return the chunk to transmit during this tick, if any."""
        if not self.active:
            return None
        self.source.advance(now, dt)
        self._run_control(now, dt)

        budget = math.inf

        cwnd = self.cc.cwnd_bytes
        if cwnd is not None:
            budget = min(budget, max(0.0, cwnd - self.inflight))

        rate = self.cc.pacing_rate
        if rate is not None:
            # Token-bucket pacing with a small burst allowance so that a
            # paced flow can catch up after a tick in which it was limited.
            self._pace_credit = min(self._pace_credit + rate * dt,
                                    max(2 * MSS_BYTES, rate * dt * 4))
            budget = min(budget, self._pace_credit)

        budget = min(budget, self.source.available(now))
        if self.max_burst_bytes is not None:
            budget = min(budget, self.max_burst_bytes)

        if budget < 1.0 or not math.isfinite(budget):
            if not math.isfinite(budget):
                budget = 0.0
            return None

        chunk = Chunk(flow_id=self.flow_id, size=budget, seq=self.next_seq,
                      sent_time=now)
        self.next_seq += budget
        self.inflight += budget
        if rate is not None:
            self._pace_credit -= budget
        self.source.consume(budget, now)
        self.measurement.on_send(now, budget)
        self.stats.bytes_sent += budget
        return chunk

    # ------------------------------------------------------------------ #
    # Feedback (called by the engine)
    # ------------------------------------------------------------------ #
    def handle_ack(self, ack: Ack, now: float) -> None:
        """Process an acknowledgement arriving back at the sender."""
        self.inflight = max(0.0, self.inflight - ack.acked_bytes)
        rtt = now - ack.sent_time
        self.measurement.on_ack(now, ack.acked_bytes, rtt, ack.queue_delay)
        self.stats.bytes_delivered += ack.acked_bytes
        self.stats.rtt_sum += rtt
        self.stats.rtt_samples += 1
        self.source.on_delivered(ack.acked_bytes, now)
        self.cc.on_ack(ack, now)
        self._maybe_finish(now)

    def handle_loss(self, lost_bytes: float, now: float) -> None:
        """Process a loss notification (bytes dropped at the bottleneck)."""
        self.inflight = max(0.0, self.inflight - lost_bytes)
        self.measurement.on_loss(now, lost_bytes)
        self.stats.bytes_lost += lost_bytes
        self.source.on_lost(lost_bytes, now)
        self.cc.on_loss(lost_bytes, now)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _run_control(self, now: float, dt: float) -> None:
        if now - self._last_control >= self.control_interval - 1e-12:
            self.cc.on_control_tick(now, dt)
            self._last_control = now

    def _maybe_finish(self, now: float) -> None:
        if self.source.finished and self.inflight <= 1.0:
            self._finished = True
            self.stats.end_time = now

    # ------------------------------------------------------------------ #
    # Convenience accessors used by experiments and traces
    # ------------------------------------------------------------------ #
    @property
    def fct(self) -> Optional[float]:
        """Flow completion time in seconds, if the flow has finished."""
        if self.stats.end_time is None:
            return None
        return self.stats.end_time - self.stats.start_time

    def __repr__(self) -> str:
        return (f"Flow(name={self.name!r}, cc={self.cc.name!r}, "
                f"prop_rtt={self.prop_rtt}, id={self.flow_id})")
