"""Queue management policies for the bottleneck link.

The paper evaluates Nimbus against both drop-tail buffers of various depths
and the PIE active queue management scheme (Appendix E.2).  Both are
implemented here behind a small common interface so the link does not need
to know which policy is in use.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class QueuePolicy(ABC):
    """Decides whether an arriving chunk (or part of it) is dropped."""

    @abstractmethod
    def admit(self, chunk_bytes: float, queue_bytes: float,
              queue_delay: float, now: float) -> float:
        """Return how many of ``chunk_bytes`` are admitted to the queue.

        Args:
            chunk_bytes: Size of the arriving chunk in bytes.
            queue_bytes: Current queue occupancy in bytes.
            queue_delay: Current estimated queueing delay in seconds.
            now: Current simulation time.

        Returns:
            Number of bytes admitted; the remainder is dropped.
        """

    def on_dequeue(self, chunk_bytes: float, queue_delay: float,
                   now: float) -> None:
        """Hook invoked when bytes leave the queue (used by PIE)."""


class DropTail(QueuePolicy):
    """Classic finite FIFO buffer: admit until the buffer is full."""

    def __init__(self, buffer_bytes: float) -> None:
        if buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        self.buffer_bytes = buffer_bytes

    def admit(self, chunk_bytes: float, queue_bytes: float,
              queue_delay: float, now: float) -> float:
        space = self.buffer_bytes - queue_bytes
        if space <= 0:
            return 0.0
        return min(chunk_bytes, space)

    def __repr__(self) -> str:
        return f"DropTail(buffer_bytes={self.buffer_bytes:.0f})"


class Pie(QueuePolicy):
    """Proportional Integral controller Enhanced (PIE) AQM.

    A lightweight rendition of RFC 8033: the drop probability is updated
    periodically from the deviation of the estimated queueing delay from a
    target and from its rate of change.  Arriving bytes are dropped randomly
    with the current probability; a hard cap mirrors the physical buffer.
    """

    def __init__(self, target_delay: float, buffer_bytes: float,
                 update_interval: float = 0.015, alpha: float = 0.125,
                 beta: float = 1.25, seed: int | None = 0) -> None:
        if target_delay <= 0:
            raise ValueError("target_delay must be positive")
        if buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        self.target_delay = target_delay
        self.buffer_bytes = buffer_bytes
        self.update_interval = update_interval
        self.alpha = alpha
        self.beta = beta
        self.drop_prob = 0.0
        self._last_update = 0.0
        self._last_delay = 0.0
        self._current_delay = 0.0
        self._rng = random.Random(seed)

    def admit(self, chunk_bytes: float, queue_bytes: float,
              queue_delay: float, now: float) -> float:
        self._current_delay = queue_delay
        self._maybe_update(now)
        space = self.buffer_bytes - queue_bytes
        if space <= 0:
            return 0.0
        admitted = min(chunk_bytes, space)
        # Random early drop proportional to the current drop probability.
        # With fluid chunks we drop a fraction of the chunk in expectation,
        # randomising around it so bursts see occasional full admits.
        if self.drop_prob > 0 and self._rng.random() < self.drop_prob:
            admitted *= max(0.0, 1.0 - self.drop_prob)
        return admitted

    def on_dequeue(self, chunk_bytes: float, queue_delay: float,
                   now: float) -> None:
        self._current_delay = queue_delay
        self._maybe_update(now)

    def _maybe_update(self, now: float) -> None:
        if now - self._last_update < self.update_interval:
            return
        delay = self._current_delay
        delta = (self.alpha * (delay - self.target_delay)
                 + self.beta * (delay - self._last_delay))
        # Scale the adjustment down when the drop probability is small, as
        # RFC 8033 recommends, so the controller does not oscillate.
        if self.drop_prob < 0.01:
            delta *= 1 / 8
        elif self.drop_prob < 0.1:
            delta *= 1 / 2
        self.drop_prob = min(1.0, max(0.0, self.drop_prob + delta))
        self._last_delay = delay
        self._last_update = now

    def __repr__(self) -> str:
        return (f"Pie(target_delay={self.target_delay}, "
                f"buffer_bytes={self.buffer_bytes:.0f})")
