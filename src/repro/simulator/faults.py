"""Deterministic link-fault injection: the chaos layer.

A :class:`FaultSchedule` is a validated, seeded list of
:class:`FaultEvent` windows that a :class:`~repro.simulator.topology.
TopologyNetwork` replays via its existing ``schedule_call`` mechanism —
no engine changes, no new event kinds in the calendar queue.  Four fault
kinds are supported:

``capacity_dip``
    Scale the link's drain rate by ``factor`` for the window, then restore
    the exact original float.  ``factor`` may exceed 1 (a burst of extra
    capacity) but must stay positive.
``link_flap``
    Take the link fully down.  With ``drop_queued=False`` (drain policy)
    the queue freezes and arrivals keep queueing under the normal
    admission policy; with ``drop_queued=True`` (drop policy) the queue is
    flushed into per-flow loss feedback and arrivals blackhole while down.
``delay_jitter``
    Add ``delay`` seconds to the link's propagation delay for the window.
    Only affects packets that cross the hop during the window.
``burst_loss``
    Wrap the link's admission policy so each offered chunk is dropped
    whole with probability ``loss_rate``, using a private
    ``random.Random`` stream derived from the schedule seed — the
    engine's own RNG is never consumed, so runs with and without faults
    stay comparable tick for tick outside the fault windows.

Every transition emits a ``fault_start``/``fault_end`` record through the
network's trace sink (when one is attached), and every kind preserves the
per-hop conservation law ``offered == served + queued + drops`` — flushed
bytes move to the drop counter, blackholed arrivals are counted as
offered-and-dropped, and the capacity/delay kinds touch no byte counter
at all.  ``REPRO_AUDIT`` therefore passes mid-flap.

Determinism: the schedule is a pure function of its events and seed.
Same events + same seed + same engine inputs → bit-identical results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .aqm import QueuePolicy
from .topology import TopologyNetwork

#: Every fault kind a :class:`FaultEvent` may carry.
FAULT_EVENT_KINDS = ("capacity_dip", "link_flap", "delay_jitter",
                     "burst_loss")


@dataclass(frozen=True)
class FaultEvent:
    """One fault window on one link, in engine units (bytes, seconds).

    Args:
        kind: One of :data:`FAULT_EVENT_KINDS`.
        link: Name of the target link (validated against the topology when
            the schedule is applied).
        start: Window start in simulation seconds (>= 0).
        duration: Window length in seconds (> 0).
        factor: Capacity multiplier during a ``capacity_dip`` (> 0).
        drop_queued: ``link_flap`` queue policy — drop (flush + blackhole)
            instead of drain (freeze + keep admitting).
        delay: Extra propagation delay in seconds for ``delay_jitter``.
        loss_rate: Per-chunk drop probability for ``burst_loss`` (0..1).
    """

    kind: str
    link: str
    start: float
    duration: float
    factor: float = 0.5
    drop_queued: bool = False
    delay: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_EVENT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {list(FAULT_EVENT_KINDS)}")
        if self.start < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(f"fault duration must be positive, "
                             f"got {self.duration}")
        if self.kind == "capacity_dip" and self.factor <= 0:
            raise ValueError(f"capacity_dip factor must be positive, "
                             f"got {self.factor}")
        if self.kind == "delay_jitter" and self.delay < 0:
            raise ValueError(f"delay_jitter delay must be >= 0, "
                             f"got {self.delay}")
        if self.kind == "burst_loss" and not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"burst_loss loss_rate must be in [0, 1], "
                             f"got {self.loss_rate}")

    @property
    def end(self) -> float:
        """Window end in simulation seconds."""
        return self.start + self.duration


class BurstLossPolicy(QueuePolicy):
    """Admission-policy wrapper that drops whole chunks at random.

    Decorates the link's real policy during a ``burst_loss`` window: each
    offered chunk is refused outright with probability ``loss_rate``,
    otherwise delegated to the wrapped policy.  Draws come from a private
    RNG so the engine's randomness is untouched.
    """

    def __init__(self, inner: QueuePolicy, loss_rate: float,
                 rng: random.Random) -> None:
        self.inner = inner
        self.loss_rate = loss_rate
        self._rng = rng

    def admit(self, chunk_bytes: float, queue_bytes: float,
              queue_delay: float, now: float) -> float:
        if self._rng.random() < self.loss_rate:
            return 0.0
        return self.inner.admit(chunk_bytes, queue_bytes, queue_delay, now)

    def on_dequeue(self, chunk_bytes: float, queue_delay: float,
                   now: float) -> None:
        self.inner.on_dequeue(chunk_bytes, queue_delay, now)

    def __repr__(self) -> str:
        return (f"BurstLossPolicy(loss_rate={self.loss_rate}, "
                f"inner={self.inner!r})")


@dataclass
class _ActiveFault:
    """Mutable bookkeeping for one scheduled event: what to restore."""

    event: FaultEvent
    index: int
    saved_capacity: float = 0.0
    saved_delay: float = 0.0
    saved_policy: Optional[QueuePolicy] = None
    detail: Dict[str, object] = field(default_factory=dict)


class FaultSchedule:
    """A validated, seeded set of fault windows for one network run.

    The constructor checks every event and rejects overlapping windows on
    the same link (the restore logic would otherwise clobber saved state).
    Windows that merely *touch* — ``current.start == previous.end`` on the
    same link — are legal, with a guaranteed ordering: :meth:`apply`
    schedules each event's start then end in ascending-start order, and
    the engine dispatches same-time events in scheduling order, so at a
    shared boundary the earlier window's restore always runs *before* the
    later window's effect is applied.  Back-to-back windows therefore
    never see each other's modified link state (a second ``capacity_dip``
    scales the nominal capacity, not the already-dipped one); see
    ``tests/test_faults.py::TestFaultEventValidation::
    test_touching_windows_restore_before_apply``.
    :meth:`apply` arms the schedule on a network: one ``schedule_call``
    per window edge, each emitting a ``fault_start``/``fault_end`` trace
    record when a sink is attached.

    Args:
        events: The fault windows; order does not matter.
        seed: Root seed for the randomised kinds (``burst_loss``).  Each
            event derives its own stream from ``(seed, event index)``, so
            adding an event never perturbs the draws of another.
    """

    def __init__(self, events: Sequence[FaultEvent], seed: int = 0) -> None:
        events = tuple(events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"FaultSchedule needs FaultEvent entries, "
                                f"got {type(event).__name__}")
        by_link: Dict[str, List[FaultEvent]] = {}
        for event in events:
            by_link.setdefault(event.link, []).append(event)
        for link, windows in by_link.items():
            windows.sort(key=lambda e: e.start)
            for previous, current in zip(windows, windows[1:]):
                if current.start < previous.end - 1e-12:
                    raise ValueError(
                        f"overlapping fault windows on link {link!r}: "
                        f"[{previous.start}, {previous.end}) and "
                        f"[{current.start}, {current.end})")
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.start, e.link, e.kind)))
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (f"FaultSchedule({len(self.events)} event(s), "
                f"seed={self.seed})")

    # ------------------------------------------------------------------ #
    def apply(self, network: TopologyNetwork) -> None:
        """Arm every fault window on ``network`` via ``schedule_call``.

        Validates that each event names a link of the network's topology.
        May be called at any simulation time; windows already entirely in
        the past still fire (immediately, in ``schedule_call`` order),
        keeping start/end pairing intact.
        """
        topology = network.topology
        for event in self.events:
            topology.index_of(event.link)  # raises on unknown link names
        for index, event in enumerate(self.events):
            active = _ActiveFault(event, index)
            network.schedule_call(
                event.start,
                lambda now, a=active, n=network: self._start(n, a, now))
            network.schedule_call(
                event.end,
                lambda now, a=active, n=network: self._end(n, a, now))

    # ------------------------------------------------------------------ #
    def _rng_for(self, active: _ActiveFault) -> random.Random:
        return random.Random(
            f"{self.seed}:{active.index}:{active.event.link}")

    def _start(self, network: TopologyNetwork, active: _ActiveFault,
               now: float) -> None:
        event = active.event
        position = network.topology.index_of(event.link)
        link = network.topology.links[position]
        detail = active.detail
        if event.kind == "capacity_dip":
            active.saved_capacity = link.capacity
            link.set_capacity(link.capacity * event.factor)
            detail["factor"] = event.factor
        elif event.kind == "link_flap":
            detail["drop_queued"] = event.drop_queued
            if event.drop_queued:
                detail["flushed_bytes"] = \
                    network.flush_link_queue(event.link)
            link.take_down(refuse_arrivals=event.drop_queued)
            network.on_link_down(event.link)
        elif event.kind == "delay_jitter":
            delays = network.topology.delays
            active.saved_delay = delays[position]
            delays[position] = active.saved_delay + event.delay
            detail["delay"] = event.delay
        elif event.kind == "burst_loss":
            active.saved_policy = link.policy
            link.policy = BurstLossPolicy(link.policy, event.loss_rate,
                                          self._rng_for(active))
            detail["loss_rate"] = event.loss_rate
        self._emit(network, "fault_start", event, now, detail)

    def _end(self, network: TopologyNetwork, active: _ActiveFault,
             now: float) -> None:
        event = active.event
        position = network.topology.index_of(event.link)
        link = network.topology.links[position]
        if event.kind == "capacity_dip":
            link.set_capacity(active.saved_capacity)
        elif event.kind == "link_flap":
            link.bring_up()
            network.on_link_up(event.link)
        elif event.kind == "delay_jitter":
            network.topology.delays[position] = active.saved_delay
        elif event.kind == "burst_loss":
            link.policy = active.saved_policy
        self._emit(network, "fault_end", event, now, {})

    @staticmethod
    def _emit(network: TopologyNetwork, kind: str, event: FaultEvent,
              now: float, detail: Dict[str, object]) -> None:
        sink = network.trace_sink
        if sink is None:
            return
        record = {"time": now, "event": kind,
                  "link": event.link, "fault": event.kind}
        record.update(detail)
        sink.emit(record)
