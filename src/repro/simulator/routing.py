"""Destination-routed topologies: nodes, routing tables, failure reroute.

The multi-hop engine (:mod:`repro.simulator.topology`) freezes each flow's
path at ``add_flow`` time, so a ``link_flap`` down-window is always a dead
end.  This module adds the routing primitive that makes a flap survivable:
a :class:`RoutedTopology` wires links between named :class:`Node`\\ s, each
node owns a :class:`RoutingTable` mapping destinations to an *ordered* list
of candidate next-hop links (primary first, then backups), and the
:class:`RoutedNetwork` engine forwards every chunk hop by hop by table
lookup instead of along a frozen :class:`~repro.simulator.topology.Path`.

Failure model (all deterministic — no new RNG anywhere):

* When :mod:`repro.simulator.faults` opens a ``link_flap`` down-window it
  calls :meth:`RoutedNetwork.on_link_down`, which schedules one
  *convergence pass* ``convergence_delay`` seconds later via the engine's
  own ``schedule_call`` — modelling the detection/update lag of a real
  routing protocol.  The pass re-resolves every table entry to its first
  candidate whose link is up, emitting one ``route_change`` trace record
  per entry that actually moved.
* Until convergence, traffic keeps hitting the dead link and is handled
  by the *existing* queue policy: a drain-flap freezes the queue, a
  drop-flap blackholes arrivals into loss feedback (both preserve the
  per-hop conservation law, so ``REPRO_AUDIT`` passes mid-reroute).
* A flow whose destination has no surviving route — every candidate at
  some node on the way is down — enters an explicit *blackhole* state
  (``blackhole_start``): its emissions never enter a queue and surface as
  loss feedback one receiver-plus-ACK delay later.  ``fault_end`` brings
  the link back, the next convergence pass restores the route, and the
  flow leaves the state (``blackhole_end``).
* A chunk already in flight toward a node that has lost its next hop is
  dropped at that node and reported to the sender the same way.

Convergence passes are scheduled and executed inside the calendar queue,
so with identical seeds and specs the ``route_change`` event sequence is
bit-identical across serial, pooled, and isolated-process execution.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List, Optional, Sequence, Tuple

from .aqm import QueuePolicy
from .endpoint import Flow
from .link import BottleneckLink, DropRecord
from .packet import Chunk
from .telemetry import TraceSink
from .topology import Topology, TopologyNetwork


class RoutingTable:
    """Per-node forwarding state: destination → ordered next-hop candidates.

    Candidates are link *positions* in the owning topology, primary first.
    The *active* choice per destination is the one chunks actually follow;
    it is (re)resolved to the first candidate whose link is up by the
    network's convergence passes.
    """

    def __init__(self) -> None:
        self._candidates: Dict[str, Tuple[int, ...]] = {}
        self._active: Dict[str, Optional[int]] = {}

    def set(self, destination: str, candidates: Tuple[int, ...]) -> None:
        if not candidates:
            raise ValueError(f"route to {destination!r} needs at least one "
                             f"candidate link")
        self._candidates[destination] = tuple(candidates)
        # Links are up when routes are laid down; faults only strike later
        # (they arm through schedule_call), so the primary starts active.
        self._active[destination] = candidates[0]

    @property
    def destinations(self) -> Tuple[str, ...]:
        """Known destinations, sorted — the deterministic iteration order."""
        return tuple(sorted(self._candidates))

    def candidates(self, destination: str) -> Tuple[int, ...]:
        return self._candidates.get(destination, ())

    def active(self, destination: str) -> Optional[int]:
        """The link position chunks follow, or ``None`` (no survivor)."""
        return self._active.get(destination)

    def set_active(self, destination: str, position: Optional[int]) -> None:
        self._active[destination] = position

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{dst}->{self._active.get(dst)}{list(self._candidates[dst])}"
            for dst in self.destinations)
        return f"RoutingTable({entries})"


class Node:
    """A named forwarding point owning one :class:`RoutingTable`."""

    __slots__ = ("name", "index", "table")

    def __init__(self, name: str, index: int) -> None:
        self.name = name
        self.index = index
        self.table = RoutingTable()

    def __repr__(self) -> str:
        return f"Node({self.name!r}, index={self.index})"


class RoutedTopology(Topology):
    """Named nodes wired by directed links, each node routing by table.

    Unlike the base chain topology, links here have explicit endpoints:
    ``add_link(name, capacity, src, dst, ...)``.  Routes are laid down
    either explicitly per node (:meth:`set_route`, primary plus ordered
    backups) or all at once from shortest paths (:meth:`compute_routes`).
    """

    def __init__(self, name: str = "routed") -> None:
        super().__init__(name)
        self.nodes: List[Node] = []
        self._node_index: Dict[str, int] = {}
        #: Endpoint node indices per link position.
        self.link_src: List[int] = []
        self.link_dst: List[int] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, name: str) -> Node:
        if name in self._node_index:
            raise ValueError(f"duplicate node name {name!r}")
        node = Node(name, len(self.nodes))
        self._node_index[name] = node.index
        self.nodes.append(node)
        return node

    def attach(self, link: BottleneckLink, delay: float = 0.0,
               monitor: bool = False) -> BottleneckLink:
        raise TypeError("RoutedTopology links need endpoints; use "
                        "add_link(name, capacity, src=..., dst=...)")

    def add_link(self, name: str, capacity: float, src: str, dst: str,
                 delay: float = 0.0, policy: Optional[QueuePolicy] = None,
                 monitor: bool = False) -> BottleneckLink:
        """Create a directed link from node ``src`` to node ``dst``."""
        source = self.node_index(src)
        target = self.node_index(dst)
        if source == target:
            raise ValueError(f"link {name!r} cannot loop on node {src!r}")
        link = Topology.attach(
            self, BottleneckLink(capacity, policy=policy, name=name),
            delay=delay, monitor=monitor)
        self.link_src.append(source)
        self.link_dst.append(target)
        return link

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def node_index(self, name: str) -> int:
        try:
            return self._node_index[name]
        except KeyError:
            raise KeyError(f"no node named {name!r}; "
                           f"known: {sorted(self._node_index)}") from None

    def node(self, name: str) -> Node:
        return self.nodes[self.node_index(name)]

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def set_route(self, node: str, destination: str,
                  links: Sequence[str]) -> None:
        """Route ``destination`` at ``node`` through the named links.

        The first link is the primary next hop, the rest are backups in
        failover order.  Every link must originate at ``node``.
        """
        owner = self.node(node)
        if self.node_index(destination) == owner.index:
            raise ValueError(f"node {node!r} cannot route to itself")
        positions = tuple(self.index_of(name) for name in links)
        for position in positions:
            if self.link_src[position] != owner.index:
                raise ValueError(
                    f"link {self.links[position].name!r} does not originate "
                    f"at node {node!r} (it leaves "
                    f"{self.nodes[self.link_src[position]].name!r})")
        owner.table.set(destination, positions)

    def compute_routes(self) -> None:
        """Populate every table from shortest paths (BFS, deterministic).

        For each destination, every node that can reach it gets all of its
        usable outgoing links as candidates, ordered by (hop count through
        that link, link position) — so the primary is a shortest-path next
        hop and ties break on attachment order.  Explicit
        :meth:`set_route` entries laid down *after* this call override it.
        """
        outgoing: List[List[int]] = [[] for _ in self.nodes]
        for position, source in enumerate(self.link_src):
            outgoing[source].append(position)
        incoming: List[List[int]] = [[] for _ in self.nodes]
        for position, target in enumerate(self.link_dst):
            incoming[target].append(position)
        for destination in self.nodes:
            # Reverse BFS from the destination: dist[n] = hops n -> dst.
            dist = {destination.index: 0}
            frontier = [destination.index]
            while frontier:
                next_frontier = []
                for node in frontier:
                    for position in incoming[node]:
                        source = self.link_src[position]
                        if source not in dist:
                            dist[source] = dist[node] + 1
                            next_frontier.append(source)
                frontier = next_frontier
            for node in self.nodes:
                if node.index == destination.index:
                    continue
                candidates = sorted(
                    (position for position in outgoing[node.index]
                     if self.link_dst[position] in dist),
                    key=lambda p: (dist[self.link_dst[p]] + 1, p))
                if candidates:
                    node.table.set(destination.name, tuple(candidates))

    def __repr__(self) -> str:
        hops = ", ".join(
            f"{link.name}:{self.nodes[s].name}->{self.nodes[d].name}"
            for link, s, d in zip(self.links, self.link_src, self.link_dst))
        return f"RoutedTopology({self.name!r}: {hops})"


class RoutedNetwork(TopologyNetwork):
    """Tick engine over a :class:`RoutedTopology`: table-lookup forwarding.

    Args:
        topology: The wired node/link graph with its routing tables.
        dt / seed / trace: As for :class:`TopologyNetwork`.
        convergence_delay: Seconds between a link-state change
            (:meth:`on_link_down` / :meth:`on_link_up`) and the convergence
            pass that re-resolves the tables — the modelled routing-protocol
            reaction lag.  ``0`` converges within the same tick.

    A chunk's ``hop`` field holds the index of the *node* it has arrived
    at (not a path position): forwarding is a table lookup at that node
    for the flow's destination.
    """

    def __init__(self, topology: RoutedTopology, dt: float = 0.001,
                 seed: int = 0, trace: Optional[TraceSink] = None,
                 convergence_delay: float = 0.05) -> None:
        if not isinstance(topology, RoutedTopology):
            raise TypeError("RoutedNetwork needs a RoutedTopology, got "
                            f"{type(topology).__name__}")
        if not topology.nodes:
            raise ValueError("routed topology has no nodes")
        if convergence_delay < 0:
            raise ValueError("convergence_delay must be >= 0")
        super().__init__(topology, dt=dt, seed=seed, trace=trace)
        self.convergence_delay = convergence_delay
        self._nodes = topology.nodes
        self._link_src = topology.link_src
        self._link_dst = topology.link_dst
        #: Per-flow endpoints (node indices) and blackhole state.
        self._flow_src: List[int] = []
        self._flow_dst: List[int] = []
        self._blackholed: List[bool] = []
        #: Entry-link positions mirroring ``_entry_links`` (-1 = blackholed).
        self._entry_positions: List[int] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_flow(self, flow: Flow, start: Optional[float] = None,
                 src: Optional[str] = None,
                 dst: Optional[str] = None) -> Flow:
        """Register a flow from node ``src`` to node ``dst``.

        Defaults — first node as source, last node as destination — keep
        path-agnostic traffic generators (which call ``add_flow(flow)``)
        working.  A flow whose destination is unreachable *right now* is
        accepted in the blackhole state and joins the network when a
        convergence pass finds it a route.
        """
        nodes = self._nodes
        source = nodes[0].index if src is None else \
            self.topology.node_index(src)
        target = nodes[-1].index if dst is None else \
            self.topology.node_index(dst)
        if source == target:
            raise ValueError("flow source and destination nodes must differ")
        route = self._current_route(source, target)
        flow.flow_id = self._next_flow_id
        self._next_flow_id += 1
        self.flows.append(flow)
        self._flow_src.append(source)
        self._flow_dst.append(target)
        blackholed = route is None
        self._blackholed.append(blackholed)
        if blackholed:
            self._routes.append(())
            self._entry_links.append(None)
            self._entry_positions.append(-1)
        else:
            self._routes.append(route)
            self._entry_links.append(self._links[route[0]])
            self._entry_positions.append(route[0])
        self._last_hop.append(-1)  # unused: delivery is a node comparison
        start_time = flow.start_time if start is None else start
        flow.start_time = start_time
        if start_time <= self.now:
            flow.start(self.now)
            if flow.active:
                self._activate(flow.flow_id)
        else:
            self._push(start_time, self._START, flow)
        sink = self._sink
        if sink is not None:
            sink.emit({
                "time": self.now, "event": "flow_start",
                "flow_id": flow.flow_id, "flow": flow.name,
                "cc": flow.cc.name,
                "path": [] if blackholed else
                        [self._links[i].name for i in route],
                "start": start_time})
            if blackholed:
                sink.emit(self._blackhole_record("blackhole_start",
                                                 flow.flow_id))
        return flow

    def _activate(self, flow_id: int) -> None:
        insort(self._active, flow_id)
        if len(self._active) > self._stats.roster_peak:
            self._stats.roster_peak = len(self._active)

    def route_of(self, flow_id: int) -> Tuple[BottleneckLink, ...]:
        """The links the flow would traverse *right now* (empty when
        blackholed)."""
        links = self._links
        return tuple(links[position] for position in self._routes[flow_id])

    def is_blackholed(self, flow_id: int) -> bool:
        return self._blackholed[flow_id]

    # ------------------------------------------------------------------ #
    # Link-state hooks (called by the fault layer)
    # ------------------------------------------------------------------ #
    def on_link_down(self, name: str) -> None:
        self.topology.index_of(name)  # raises on unknown names
        self.schedule_call(self.now + self.convergence_delay, self._converge)

    def on_link_up(self, name: str) -> None:
        self.topology.index_of(name)
        self.schedule_call(self.now + self.convergence_delay, self._converge)

    def _converge(self, now: float) -> None:
        """One convergence pass: re-resolve every table entry and every
        flow's entry link / blackhole state against current link health.

        Idempotent — a pass that finds nothing changed emits nothing — so
        the one-pass-per-link-event scheduling never double-reports.
        Iteration order (nodes by index, destinations sorted, flows by id)
        is fixed, making the ``route_change`` sequence deterministic.
        """
        sink = self._sink
        links = self._links
        for node in self._nodes:
            table = node.table
            for destination in table.destinations:
                resolved = None
                for position in table.candidates(destination):
                    if links[position].up:
                        resolved = position
                        break
                previous = table.active(destination)
                if resolved != previous:
                    table.set_active(destination, resolved)
                    if sink is not None:
                        sink.emit({
                            "time": now, "event": "route_change",
                            "node": node.name, "destination": destination,
                            "from_link": None if previous is None
                            else links[previous].name,
                            "to_link": None if resolved is None
                            else links[resolved].name})
        for flow_id, flow in enumerate(self.flows):
            if flow.finished:
                continue
            route = self._current_route(self._flow_src[flow_id],
                                        self._flow_dst[flow_id])
            blackholed = route is None
            if blackholed:
                self._routes[flow_id] = ()
                self._entry_links[flow_id] = None
                self._entry_positions[flow_id] = -1
            else:
                self._routes[flow_id] = route
                self._entry_links[flow_id] = links[route[0]]
                self._entry_positions[flow_id] = route[0]
            if blackholed != self._blackholed[flow_id]:
                self._blackholed[flow_id] = blackholed
                if sink is not None:
                    sink.emit(self._blackhole_record(
                        "blackhole_start" if blackholed else "blackhole_end",
                        flow_id))

    def _blackhole_record(self, kind: str, flow_id: int) -> dict:
        return {
            "time": self.now, "event": kind,
            "flow_id": flow_id, "flow": self.flows[flow_id].name,
            "node": self._nodes[self._flow_src[flow_id]].name,
            "destination": self._nodes[self._flow_dst[flow_id]].name}

    # ------------------------------------------------------------------ #
    # Route resolution
    # ------------------------------------------------------------------ #
    def _active_choice(self, node: int, destination: int) -> Optional[int]:
        """The active next-hop link position at ``node``, or ``None``."""
        return self._nodes[node].table.active(
            self._nodes[destination].name)

    def _current_route(self, source: int,
                       destination: int) -> Optional[Tuple[int, ...]]:
        """Walk the active choices source → destination; ``None`` if the
        walk dead-ends or loops before reaching the destination."""
        positions = []
        node = source
        visited = set()
        while node != destination:
            if node in visited:
                return None
            visited.add(node)
            position = self._active_choice(node, destination)
            if position is None:
                return None
            positions.append(position)
            node = self._link_dst[position]
        return tuple(positions)

    def _residual_delay(self, position: int, destination: int) -> float:
        """Wire delay from link ``position`` to the destination, excluding
        the final hop's (whose wire is the flow's ``delay_to_receiver``).

        Mirrors the base engine's drop-feedback convention; a walk that
        dead-ends or loops stops accumulating there (the hole surfaces
        with whatever downstream delay was accounted so far).
        """
        delays = self._link_delays
        extra = 0.0
        visited = set()
        while self._link_dst[position] != destination:
            extra += delays[position]
            node = self._link_dst[position]
            if node in visited:
                break
            visited.add(node)
            follow = self._active_choice(node, destination)
            if follow is None:
                break
            position = follow
        return extra

    def _queue_drop_feedback(self, position: int, flow: Flow) -> float:
        """Time for a queue drop at link ``position`` to reach the sender."""
        return (self._residual_delay(position, self._flow_dst[flow.flow_id])
                + flow.delay_to_receiver + flow.delay_ack)

    def _drop_feedback_delay(self, position: int,
                             flow_id: int) -> Tuple[float, int]:
        flow = self.flows[flow_id]
        return (self._queue_drop_feedback(position, flow),
                self._link_src[position])

    # ------------------------------------------------------------------ #
    # Forwarding (table lookup instead of frozen routes)
    # ------------------------------------------------------------------ #
    def _emit_all(self, now: float) -> None:
        # Same rotation/stale-flow structure as the base engine; the
        # routed differences are the None entry link (blackholed source:
        # the emission becomes loss feedback without entering any queue)
        # and table-derived drop feedback delays.
        active = self._active
        if not active:
            return
        entry_links = self._entry_links
        sink = self._sink
        start = int(round(now / self.dt)) % len(self.flows)
        pivot = bisect_left(active, start)
        stale = None
        for flow_id in active[pivot:] + active[:pivot]:
            flow = self.flows[flow_id]
            if not flow.active:
                if stale is None:
                    stale = [flow_id]
                else:
                    stale.append(flow_id)
                continue
            chunk = flow.emit(now, self.dt)
            if chunk is None:
                continue
            link = entry_links[flow_id]
            if link is None:
                # Blackholed: the bytes leave the sender and vanish; the
                # sender learns via loss feedback one receiver-plus-ACK
                # delay later.  No queue is touched, so conservation holds.
                self._push(now + flow.delay_to_receiver + flow.delay_ack,
                           self._LOSS,
                           DropRecord(flow_id, chunk.size, now))
                continue
            chunk.hop = self._flow_src[flow_id]
            if sink is not None:
                sink.emit({
                    "time": now, "event": "enqueue",
                    "flow_id": flow_id, "flow": flow.name,
                    "link": link.name, "hop": chunk.hop,
                    "bytes": chunk.size, "seq": chunk.seq})
            drops = link.enqueue(chunk, now)
            if drops:
                feedback_delay = self._queue_drop_feedback(
                    self._entry_positions[flow_id], flow)
                for drop in drops:
                    self._push(now + feedback_delay, self._LOSS, drop)
                if sink is not None:
                    for drop in drops:
                        sink.emit({
                            "time": now, "event": "drop",
                            "flow_id": drop.flow_id, "flow": flow.name,
                            "link": link.name, "hop": chunk.hop,
                            "bytes": drop.lost_bytes})
        if stale is not None:
            for flow_id in stale:
                self._deactivate(flow_id)

    def _serve_links(self, now: float) -> None:
        flows = self.flows
        flow_dst = self._flow_dst
        link_dst = self._link_dst
        dt = self.dt
        for position, link in enumerate(self._links):
            served = link.service(now, dt)
            if not served:
                continue
            delay = self._link_delays[position]
            arrival = link_dst[position]
            for chunk in served:
                flow_id = chunk.flow_id
                if arrival == flow_dst[flow_id]:
                    self._push(now + flows[flow_id].delay_to_receiver,
                               self._DELIVER, chunk)
                else:
                    chunk.hop = arrival
                    self._push(now + delay, self._HOP, chunk)

    def _forward(self, chunk: Chunk, now: float) -> None:
        """Chunk arrives at node ``chunk.hop``: forward by table lookup.

        No surviving next hop at the node means the chunk is dropped on
        the spot and surfaces as loss feedback at the sender (graceful
        degradation for traffic already in flight when a route died).
        """
        sink = self._sink
        flow = self.flows[chunk.flow_id]
        node = chunk.hop
        position = self._active_choice(node, self._flow_dst[chunk.flow_id])
        if position is None:
            self._push(now + flow.delay_to_receiver + flow.delay_ack,
                       self._LOSS,
                       DropRecord(chunk.flow_id, chunk.size, now))
            return
        link = self._links[position]
        if sink is not None:
            sink.emit({
                "time": now, "event": "hop",
                "flow_id": chunk.flow_id, "flow": flow.name,
                "link": link.name, "hop": node,
                "bytes": chunk.size, "seq": chunk.seq})
        drops = link.enqueue(chunk, now)
        if drops:
            feedback_delay = self._queue_drop_feedback(position, flow)
            for drop in drops:
                self._push(now + feedback_delay, self._LOSS, drop)
            if sink is not None:
                for drop in drops:
                    sink.emit({
                        "time": now, "event": "drop",
                        "flow_id": drop.flow_id, "flow": flow.name,
                        "link": link.name, "hop": node,
                        "bytes": drop.lost_bytes})
