"""Unit conversion helpers used throughout the simulator.

The simulator works internally in **bytes**, **bytes per second**, and
**seconds**.  The paper (and most networking literature) quotes rates in
Mbit/s and delays in milliseconds, so these helpers keep the conversion in
one obvious place.
"""

from __future__ import annotations

#: Default maximum segment size, in bytes.  Matches a typical Ethernet MTU
#: minus IP/TCP headers; the paper's experiments use 1500-byte packets.
MSS_BYTES = 1500

#: Number of bits in a byte (spelled out so rate conversions read clearly).
BITS_PER_BYTE = 8


def mbps_to_bytes_per_sec(mbps: float) -> float:
    """Convert a rate in megabits per second to bytes per second."""
    return mbps * 1e6 / BITS_PER_BYTE


def bytes_per_sec_to_mbps(rate: float) -> float:
    """Convert a rate in bytes per second to megabits per second."""
    return rate * BITS_PER_BYTE / 1e6


def ms_to_s(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / 1e3


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def bdp_bytes(rate_bytes_per_sec: float, rtt_s: float) -> float:
    """Bandwidth-delay product in bytes for a rate (bytes/s) and RTT (s)."""
    return rate_bytes_per_sec * rtt_s
