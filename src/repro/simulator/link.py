"""Bottleneck link model: a FIFO queue drained at a fixed rate.

This is the simulator's stand-in for the Mahimahi bottleneck used in the
paper.  Chunks from all flows share a single first-in-first-out queue whose
admission is governed by a :class:`~repro.simulator.aqm.QueuePolicy`
(drop-tail by default, PIE optionally).  The link drains at ``capacity``
bytes per second; each dequeued chunk records the queueing delay it
experienced, which downstream becomes the per-packet queueing delay the
paper plots.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable

from .aqm import DropTail, QueuePolicy
from .packet import Chunk


@dataclass(slots=True)
class DropRecord:
    """Bytes dropped for a flow at a given time.

    Slotted: under heavy congestion one record is cut per flow per tick,
    so these ride the same hot path as :class:`~repro.simulator.packet.Chunk`.
    """

    flow_id: int
    lost_bytes: float
    time: float


class BottleneckLink:
    """Single shared bottleneck with a FIFO queue.

    Args:
        capacity: Link rate in bytes per second.
        policy: Queue admission policy; defaults to an effectively infinite
            drop-tail buffer if omitted.
        name: Optional label used in reprs and traces.
    """

    def __init__(self, capacity: float, policy: QueuePolicy | None = None,
                 name: str = "bottleneck") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.policy = policy if policy is not None else DropTail(1e15)
        self.name = name
        self._queue: Deque[Chunk] = deque()
        self.queue_bytes = 0.0
        #: Per-flow queued-byte and queued-chunk counters, kept in lockstep
        #: with ``_queue`` so :meth:`occupancy_of` is O(1) instead of a scan.
        #: A flow's entries are removed once its last chunk leaves, which
        #: also resets any accumulated float residue to an exact zero.
        self._flow_bytes: dict[int, float] = {}
        self._flow_chunks: dict[int, int] = {}
        self.total_drops: float = 0.0
        self.total_served: float = 0.0
        #: Bytes ever presented to :meth:`enqueue` (admitted or not).  With
        #: the other counters this yields the per-hop conservation law
        #: ``total_offered == total_served + queue_bytes + total_drops``.
        self.total_offered: float = 0.0
        #: Unused service capacity carried over between ticks (bytes).  The
        #: link is work-conserving: it never accumulates credit while idle.
        self._service_credit = 0.0
        #: Fault state (see :mod:`repro.simulator.faults`).  A link that is
        #: not ``up`` serves nothing; if it additionally refuses arrivals
        #: (a "drop"-policy flap), offered bytes are counted and immediately
        #: recorded as drops so the conservation law keeps holding.
        self.up = True
        self._refuse_arrivals = False
        #: Fluid-aggregate background traffic sharing this queue, or
        #: ``None`` (see :mod:`repro.simulator.fluid`).  Attached by
        #: ``TopologyNetwork.attach_fluid_class``; with no fluid state
        #: every hot-path site below reduces to one ``is None`` check and
        #: the link's numbers are bit-identical to a fluid-free build.
        self.fluid = None

    # ------------------------------------------------------------------ #
    # Queue state
    # ------------------------------------------------------------------ #
    @property
    def queue_delay(self) -> float:
        """Current queueing delay in seconds if the queue drains at capacity.

        With a fluid aggregate attached, its backlog shares this queue, so
        the delay every observer sees (admission policies, the recorder,
        tracked flows' chunks) includes the fluid bytes ahead of them.
        """
        if self.fluid is None:
            return self.queue_bytes / self.capacity
        return (self.queue_bytes + self.fluid.backlog) / self.capacity

    def occupancy_of(self, flow_id: int) -> float:
        """Bytes currently queued that belong to ``flow_id``.

        Used to compute the "self-inflicted" delay of Figure 3; drivers
        call it every tick, so it reads a maintained counter rather than
        scanning the queue.
        """
        return self._flow_bytes.get(flow_id, 0.0)

    # ------------------------------------------------------------------ #
    # Enqueue / dequeue
    # ------------------------------------------------------------------ #
    def enqueue(self, chunk: Chunk, now: float) -> list[DropRecord]:
        """Admit a chunk (possibly partially) to the queue.

        Returns a list of drop records for any bytes that were not admitted.
        """
        drops: list[DropRecord] = []
        self.total_offered += chunk.size
        if not self.up and self._refuse_arrivals:
            self.total_drops += chunk.size
            drops.append(DropRecord(chunk.flow_id, chunk.size, now))
            return drops
        fluid = self.fluid
        if fluid is not None:
            fluid.tick_offered += chunk.size
            if fluid.loss_debt > 1e-9:
                # This chunk is a proportional victim of an overflow the
                # fluid aggregate absorbed earlier in the tick: in an
                # interleaved FIFO these bytes would have been the ones
                # dropped.  Trim them here so the flow sees its share of
                # the congestion loss through the normal feedback path.
                cut = min(chunk.size, fluid.loss_debt)
                fluid.loss_debt -= cut
                self.total_drops += cut
                drops.append(DropRecord(chunk.flow_id, cut, now))
                if cut >= chunk.size - 1e-9:
                    return drops
                chunk.size -= cut
        queued = self.queue_bytes if self.fluid is None \
            else self.queue_bytes + self.fluid.backlog
        admitted = self.policy.admit(chunk.size, queued,
                                     self.queue_delay, now)
        admitted = max(0.0, min(chunk.size, admitted))
        lost = chunk.size - admitted
        if lost > 1e-9 and fluid is not None:
            fluid_backlog = fluid.backlog
            if fluid_backlog > 1e-9:
                # Interleaved-FIFO swap, the reverse of the fluid's loss
                # debt: the fluid sheds its queue-share of this overflow
                # and the freed space admits chunk bytes that would have
                # been dropped, so congestion losses land on both halves
                # of the traffic in proportion.
                extra = lost * fluid_backlog \
                    / (fluid_backlog + self.queue_bytes)
                if extra > fluid_backlog:
                    extra = fluid_backlog
                if extra > 1e-9:
                    fluid.shed(extra, now)
                    admitted += extra
                    lost = chunk.size - admitted
        if lost > 1e-9:
            drops.append(DropRecord(chunk.flow_id, lost, now))
            self.total_drops += lost
        if admitted > 1e-9:
            chunk.size = admitted
            chunk.enqueue_time = now
            self._queue.append(chunk)
            self.queue_bytes += admitted
            flow_id = chunk.flow_id
            self._flow_bytes[flow_id] = \
                self._flow_bytes.get(flow_id, 0.0) + admitted
            self._flow_chunks[flow_id] = \
                self._flow_chunks.get(flow_id, 0) + 1
            if self.fluid is not None:
                self.fluid.tick_admitted += admitted
        return drops

    def service(self, now: float, dt: float) -> list[Chunk]:
        """Drain up to ``capacity * dt`` bytes from the head of the queue.

        Returns the dequeued chunks with their ``queue_delay`` populated.
        The departure time of every chunk served in this interval is ``now``
        (end of the tick); with millisecond ticks the rounding is far below
        the delays of interest.
        """
        if not self.up:
            # A downed link serves nothing and banks no credit: service
            # resumes from a clean slate when it comes back up.
            self._service_credit = 0.0
            return []
        budget = self.capacity * dt + self._service_credit
        fluid = self.fluid
        if fluid is not None:
            # The fluid aggregate shares the queue: it takes the byte-
            # proportional share of this tick's budget up front (FIFO
            # fairness between the packet queue and the fluid backlog).
            budget = fluid.take_service(budget, now)
        served: list[Chunk] = []
        while self._queue and budget > 1e-9:
            head = self._queue[0]
            if head.size <= budget + 1e-9:
                self._queue.popleft()
                take = head
                budget -= head.size
                remaining = self._flow_chunks[head.flow_id] - 1
                if remaining:
                    self._flow_chunks[head.flow_id] = remaining
                    self._flow_bytes[head.flow_id] -= head.size
                else:
                    del self._flow_chunks[head.flow_id]
                    del self._flow_bytes[head.flow_id]
            else:
                take = head.split(budget)
                budget = 0.0
                self._flow_bytes[head.flow_id] -= take.size
            take.queue_delay += max(0.0, now - take.enqueue_time)
            self.queue_bytes -= take.size
            self.total_served += take.size
            self.policy.on_dequeue(take.size, self.queue_delay, now)
            served.append(take)
        if fluid is not None and budget > 1e-9:
            # Budget survives the loop only when the packet queue drained
            # dry: hand the leftover to the fluid backlog so the link
            # stays work-conserving across both halves of the queue.
            budget -= fluid.drain_leftover(budget, now)
        # A work-conserving link does not bank credit while idle.
        self._service_credit = budget if self._queue else 0.0
        if self.queue_bytes < 1e-9:
            self.queue_bytes = 0.0
        return served

    # ------------------------------------------------------------------ #
    # Fault hooks (driven by repro.simulator.faults)
    # ------------------------------------------------------------------ #
    def set_capacity(self, capacity: float) -> None:
        """Change the drain rate in place (capacity-dip faults)."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity

    def take_down(self, refuse_arrivals: bool = False) -> None:
        """Stop serving the queue until :meth:`bring_up`.

        With ``refuse_arrivals`` every offered chunk while down is dropped
        whole (blackhole); otherwise arrivals keep queueing under the normal
        admission policy and drain once the link recovers.
        """
        self.up = False
        self._refuse_arrivals = refuse_arrivals
        self._service_credit = 0.0

    def bring_up(self) -> None:
        """Resume service; no credit is banked for the downtime."""
        self.up = True
        self._refuse_arrivals = False
        self._service_credit = 0.0

    def flush(self, now: float) -> list[DropRecord]:
        """Drop every queued byte, one aggregated record per flow.

        Used by "drop"-policy link flaps: the queue empties into drop
        records (in head-to-tail order of first appearance) so the
        conservation law ``offered == served + queued + drops`` still
        holds exactly — queued bytes move to ``total_drops``.
        """
        if not self._queue:
            return []
        drops: list[DropRecord] = []
        for flow_id, lost in self._flow_bytes.items():
            if lost > 1e-9:
                drops.append(DropRecord(flow_id, lost, now))
        # Move the *maintained* byte counter, not the per-flow sum, so the
        # conservation counters stay exact to the last float residue.
        self.total_drops += self.queue_bytes
        self.queue_bytes = 0.0
        self._queue.clear()
        self._flow_bytes.clear()
        self._flow_chunks.clear()
        self._service_credit = 0.0
        return drops

    def iter_queue(self) -> Iterable[Chunk]:
        """Iterate over queued chunks from head to tail (read-only)."""
        return iter(self._queue)

    def __repr__(self) -> str:
        return (f"BottleneckLink(name={self.name!r}, "
                f"capacity={self.capacity:.0f} B/s, policy={self.policy!r})")
