"""The network engine: a tick-driven event loop over a shared bottleneck.

This is the reproduction's substitute for the Mahimahi link emulator plus
the Linux network stack.  Time advances in fixed ticks (1–2 ms).  Each tick:

1. events whose time has arrived are delivered (chunk arrivals at the
   receiver, ACKs back at senders, loss notifications, scheduled callbacks),
2. every active flow is offered the chance to emit one chunk, which enters
   the bottleneck queue immediately (senders are modelled as adjacent to the
   bottleneck; the propagation delay is applied downstream and on the ACK
   path, so the full round-trip time is preserved),
3. the bottleneck serves up to ``capacity * dt`` bytes and the served chunks
   are scheduled to arrive at their receivers after the downstream
   propagation delay.

Loss feedback is delivered to the sender one downstream-plus-ACK delay after
the drop, which is when a real sender would observe duplicate ACKs.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Iterable, List, Optional

from .endpoint import Flow
from .link import BottleneckLink
from .packet import Ack, Chunk
from .trace import Recorder


class Network:
    """A single-bottleneck network shared by an arbitrary set of flows.

    Args:
        link: The shared bottleneck link.
        dt: Simulation tick in seconds.
        seed: Seed for the network-level random number generator (exposed to
            traffic generators for reproducibility).
    """

    #: Event kinds handled by the engine loop.
    _DELIVER = 0
    _ACK = 1
    _LOSS = 2
    _CALL = 3
    _START = 4

    def __init__(self, link: BottleneckLink, dt: float = 0.001,
                 seed: int = 0) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.link = link
        self.dt = dt
        self.now = 0.0
        self.rng = random.Random(seed)
        self.flows: List[Flow] = []
        self.recorder = Recorder(self)
        self._events: list = []
        self._counter = itertools.count()
        self._next_flow_id = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_flow(self, flow: Flow, start: Optional[float] = None) -> Flow:
        """Register a flow; it starts at ``start`` (default ``flow.start_time``)."""
        flow.flow_id = self._next_flow_id
        self._next_flow_id += 1
        self.flows.append(flow)
        start_time = flow.start_time if start is None else start
        flow.start_time = start_time
        if start_time <= self.now:
            flow.start(self.now)
        else:
            self._push(start_time, self._START, flow)
        return flow

    def schedule_call(self, time: float, fn: Callable[[float], None]) -> None:
        """Run ``fn(now)`` at the given simulation time (>= now)."""
        self._push(max(time, self.now), self._CALL, fn)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self, until: float) -> None:
        """Advance the simulation until the given absolute time."""
        while self.now < until - 1e-12:
            self.step()

    def run_for(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.run(self.now + duration)

    def step(self) -> None:
        """Advance the simulation by one tick."""
        self.now += self.dt
        now = self.now
        self._dispatch_events(now)
        self._emit_all(now)
        self._serve_link(now)
        self.recorder.on_tick(now)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _push(self, time: float, kind: int, payload) -> None:
        heapq.heappush(self._events, (time, next(self._counter), kind, payload))

    def _dispatch_events(self, now: float) -> None:
        events = self._events
        while events and events[0][0] <= now + 1e-12:
            _, _, kind, payload = heapq.heappop(events)
            if kind == self._DELIVER:
                self._deliver(payload, now)
            elif kind == self._ACK:
                ack, flow = payload
                if not flow.finished:
                    flow.handle_ack(ack, now)
            elif kind == self._LOSS:
                lost_bytes, flow = payload
                if not flow.finished:
                    flow.handle_loss(lost_bytes, now)
            elif kind == self._CALL:
                payload(now)
            elif kind == self._START:
                payload.start(now)

    def _deliver(self, chunk: Chunk, now: float) -> None:
        """Chunk reaches the receiver; generate the acknowledgement."""
        flow = self.flows[chunk.flow_id]
        ack = Ack(flow_id=chunk.flow_id, acked_bytes=chunk.size,
                  sent_time=chunk.sent_time, queue_delay=chunk.queue_delay,
                  delivered_time=now)
        self.recorder.on_delivery(flow, chunk, now)
        self._push(now + flow.delay_ack, self._ACK, (ack, flow))

    def _emit_all(self, now: float) -> None:
        # Rotate the service order every tick so that when the buffer is
        # nearly full the tail-drop losses are shared across flows, as they
        # would be with interleaved packets, instead of always falling on
        # the flows that happen to be listed last.
        n = len(self.flows)
        if n == 0:
            return
        start = int(round(now / self.dt)) % n
        for offset in range(n):
            flow = self.flows[(start + offset) % n]
            if not flow.active:
                continue
            chunk = flow.emit(now, self.dt)
            if chunk is None:
                continue
            drops = self.link.enqueue(chunk, now)
            for drop in drops:
                feedback_delay = flow.delay_to_receiver + flow.delay_ack
                self._push(now + feedback_delay, self._LOSS,
                           (drop.lost_bytes, flow))

    def _serve_link(self, now: float) -> None:
        for chunk in self.link.service(now, self.dt):
            flow = self.flows[chunk.flow_id]
            self._push(now + flow.delay_to_receiver, self._DELIVER, chunk)

    # ------------------------------------------------------------------ #
    # Queries used by experiments
    # ------------------------------------------------------------------ #
    def active_flows(self) -> Iterable[Flow]:
        """Flows that have started and not yet completed."""
        return (f for f in self.flows if f.active)

    def flows_named(self, name: str) -> List[Flow]:
        """All flows whose label equals ``name``."""
        return [f for f in self.flows if f.name == name]

    def __repr__(self) -> str:
        return (f"Network(link={self.link!r}, dt={self.dt}, "
                f"flows={len(self.flows)})")
