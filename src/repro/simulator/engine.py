"""The single-bottleneck network: a thin specialization of the topology engine.

Historically this module *was* the engine: a tick-driven event loop over one
shared :class:`~repro.simulator.link.BottleneckLink`.  The loop — calendar
event queue, active-flow roster, emission/service scheduling — now lives in
:class:`~repro.simulator.topology.TopologyNetwork`, which routes chunks over
arbitrary paths of store-and-forward hops.  :class:`Network` wraps a single
link into a one-hop topology, which the engine treats specially by
construction: no hop-forwarding event ever fires, every chunk goes straight
from the bottleneck to its receiver, and the event sequence (and therefore
every downstream number) is bit-identical to the historical single-link
implementation.

Each tick:

1. events whose time has arrived are delivered (chunk arrivals at the
   receiver, ACKs back at senders, loss notifications, scheduled callbacks),
2. every active flow is offered the chance to emit one chunk, which enters
   the bottleneck queue immediately (senders are modelled as adjacent to the
   bottleneck; the propagation delay is applied downstream and on the ACK
   path, so the full round-trip time is preserved),
3. the bottleneck serves up to ``capacity * dt`` bytes and the served chunks
   are scheduled to arrive at their receivers after the downstream
   propagation delay.

Loss feedback is delivered to the sender one downstream-plus-ACK delay after
the drop, which is when a real sender would observe duplicate ACKs.
"""

from __future__ import annotations

from .link import BottleneckLink
from .topology import Topology, TopologyNetwork


class Network(TopologyNetwork):
    """A single-bottleneck network shared by an arbitrary set of flows.

    Args:
        link: The shared bottleneck link.
        dt: Simulation tick in seconds.
        seed: Seed for the network-level random number generator (exposed to
            traffic generators for reproducibility).
        trace: Optional :class:`~repro.simulator.telemetry.TraceSink`; see
            :class:`TopologyNetwork`.
    """

    def __init__(self, link: BottleneckLink, dt: float = 0.001,
                 seed: int = 0, trace=None) -> None:
        super().__init__(Topology.single(link), dt=dt, seed=seed, trace=trace)

    def __repr__(self) -> str:
        return (f"Network(link={self.link!r}, dt={self.dt}, "
                f"flows={len(self.flows)})")
