"""The network engine: a tick-driven event loop over a shared bottleneck.

This is the reproduction's substitute for the Mahimahi link emulator plus
the Linux network stack.  Time advances in fixed ticks (1–2 ms).  Each tick:

1. events whose time has arrived are delivered (chunk arrivals at the
   receiver, ACKs back at senders, loss notifications, scheduled callbacks),
2. every active flow is offered the chance to emit one chunk, which enters
   the bottleneck queue immediately (senders are modelled as adjacent to the
   bottleneck; the propagation delay is applied downstream and on the ACK
   path, so the full round-trip time is preserved),
3. the bottleneck serves up to ``capacity * dt`` bytes and the served chunks
   are scheduled to arrive at their receivers after the downstream
   propagation delay.

Loss feedback is delivered to the sender one downstream-plus-ACK delay after
the drop, which is when a real sender would observe duplicate ACKs.

Event storage is a *calendar queue*: because every event dispatches on a
tick boundary anyway, events are filed under the integer tick at which they
fire instead of being kept in one global heap.  Pushing is O(1), a tick's
dispatch sorts just that tick's handful of events, and the tick an event
fires on is computed against the engine's own future clock readings — the
exact floats ``now += dt`` will produce — so dispatch grouping is
bit-identical to the historical heap implementation, including the
``1e-12`` boundary tolerance.  Workloads with thousands of short cross
flows additionally benefit from the engine keeping an explicit roster of
*active* flows: finished flows cost nothing per tick instead of being
re-scanned forever.
"""

from __future__ import annotations

import random
from array import array
from bisect import bisect_left, insort
from heapq import heappop, heappush
from typing import Callable, Iterable, List, Optional

from .endpoint import Flow
from .link import BottleneckLink
from .packet import Ack, Chunk
from .trace import Recorder

#: Slack applied to every "has this event's time arrived?" comparison, kept
#: identical to the historical heap-based engine so dispatch grouping (and
#: therefore every downstream number) is unchanged.
_EPS = 1e-12

#: Events further ahead than this many ticks bypass the calendar and wait in
#: a small spill-over heap, so one far-future ``schedule_call`` cannot force
#: the future-clock array to materialise millions of entries up front.
_SPILL_TICKS = 1 << 20


class Network:
    """A single-bottleneck network shared by an arbitrary set of flows.

    Args:
        link: The shared bottleneck link.
        dt: Simulation tick in seconds.
        seed: Seed for the network-level random number generator (exposed to
            traffic generators for reproducibility).
    """

    #: Event kinds handled by the engine loop.
    _DELIVER = 0
    _ACK = 1
    _LOSS = 2
    _CALL = 3
    _START = 4

    def __init__(self, link: BottleneckLink, dt: float = 0.001,
                 seed: int = 0) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.link = link
        self.dt = dt
        self.now = 0.0
        self.rng = random.Random(seed)
        self.flows: List[Flow] = []
        self.recorder = Recorder(self)
        #: Calendar: tick index -> [(time, counter, kind, payload), ...].
        self._calendar: dict = {}
        #: Clock readings the engine will produce: entry ``k - _times_base``
        #: is exactly the value ``self.now`` takes at tick ``k`` (generated
        #: by the same repeated ``+ dt``), so bucket placement can reproduce
        #: the heap engine's boundary behaviour bit for bit.  The consumed
        #: prefix is trimmed periodically, keeping memory proportional to
        #: the scheduling lookahead rather than the total ticks simulated.
        self._future_times = array("d", (0.0,))
        self._times_base = 0
        self._tick = 0
        self._counter = 0
        #: Heap of events beyond the calendar horizon; migrated into the
        #: calendar long before they are due.
        self._spill: list = []
        self._spill_span = _SPILL_TICKS * dt
        self._migrate_span = (_SPILL_TICKS // 2) * dt
        #: Min-heap holding the tick currently being dispatched; events
        #: pushed *during* dispatch that are already due join it so they run
        #: this tick, exactly as they would have popped from a global heap.
        self._live: list = []
        self._dispatching = False
        #: Sorted flow ids (== positions in ``flows``) of started,
        #: unfinished flows.  Per-tick work scales with this roster, not
        #: with every flow ever created.
        self._active: List[int] = []
        self._next_flow_id = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_flow(self, flow: Flow, start: Optional[float] = None) -> Flow:
        """Register a flow; it starts at ``start`` (default ``flow.start_time``)."""
        flow.flow_id = self._next_flow_id
        self._next_flow_id += 1
        self.flows.append(flow)
        start_time = flow.start_time if start is None else start
        flow.start_time = start_time
        if start_time <= self.now:
            flow.start(self.now)
            if flow.active:
                insort(self._active, flow.flow_id)
        else:
            self._push(start_time, self._START, flow)
        return flow

    def schedule_call(self, time: float, fn: Callable[[float], None]) -> None:
        """Run ``fn(now)`` at the given simulation time (>= now)."""
        self._push(max(time, self.now), self._CALL, fn)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self, until: float) -> None:
        """Advance the simulation until the given absolute time."""
        while self.now < until - _EPS:
            self.step()

    def run_for(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.run(self.now + duration)

    def step(self) -> None:
        """Advance the simulation by one tick."""
        self._tick += 1
        times = self._future_times
        index = self._tick - self._times_base
        if len(times) <= index:
            times.append(times[-1] + self.dt)
        if index >= 4096:
            # Nothing ever reads clock entries behind the current tick:
            # drop the consumed prefix (values ahead are untouched, so the
            # repeated-``+ dt`` chain — and every number — is unchanged).
            del times[:index]
            self._times_base = self._tick
            index = 0
        self.now = now = times[index]
        spill = self._spill
        if spill and spill[0][0] <= now + self._migrate_span:
            calendar = self._calendar
            while spill and spill[0][0] <= now + self._migrate_span:
                entry = heappop(spill)
                calendar.setdefault(self._bucket_of(entry[0]),
                                    []).append(entry)
        self._dispatch_events(now)
        self._emit_all(now)
        self._serve_link(now)
        self.recorder.on_tick(now)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _push(self, time: float, kind: int, payload) -> None:
        self._counter += 1
        entry = (time, self._counter, kind, payload)
        if self._dispatching and time <= self.now + _EPS:
            # Due while this very tick is dispatching: join the live heap.
            heappush(self._live, entry)
            return
        if time - self.now > self._spill_span:
            heappush(self._spill, entry)
            return
        bucket = self._bucket_of(time)
        events = self._calendar.get(bucket)
        if events is None:
            self._calendar[bucket] = [entry]
        else:
            events.append(entry)

    def _bucket_of(self, time: float) -> int:
        """First future tick whose clock reading satisfies ``time <= now + eps``.

        Evaluated against :attr:`_future_times`, i.e. against the exact
        floats the main loop will assign to ``self.now``, so the answer
        matches what a global heap would have done at every boundary.
        """
        times = self._future_times
        dt = self.dt
        base = self._times_base
        floor = self._tick + 1
        k = self._tick + int((time - self.now) / dt)
        if k < floor:
            k = floor
        while len(times) <= k - base:
            times.append(times[-1] + dt)
        while times[k - base] < time - _EPS:
            k += 1
            if len(times) <= k - base:
                times.append(times[-1] + dt)
        while k > floor and times[k - 1 - base] >= time - _EPS:
            k -= 1
        return k

    def _dispatch_events(self, now: float) -> None:
        bucket = self._calendar.pop(self._tick, None)
        if bucket is None:
            return
        # Entries sort by (time, counter): the order a global heap would
        # pop them in.  A sorted list is a valid min-heap, so same-tick
        # pushes made by handlers can be merged in without re-sorting.
        bucket.sort()
        live = self._live = bucket
        self._dispatching = True
        try:
            flows = self.flows
            due = now + _EPS
            while live and live[0][0] <= due:
                _, _, kind, payload = heappop(live)
                if kind == self._DELIVER:
                    self._deliver(payload, now)
                elif kind == self._ACK:
                    flow = flows[payload.flow_id]
                    if not flow.finished:
                        flow.handle_ack(payload, now)
                        if flow.finished:
                            self._deactivate(flow.flow_id)
                elif kind == self._LOSS:
                    flow = flows[payload.flow_id]
                    if not flow.finished:
                        flow.handle_loss(payload.lost_bytes, now)
                elif kind == self._CALL:
                    payload(now)
                elif kind == self._START:
                    payload.start(now)
                    if payload.active:
                        insort(self._active, payload.flow_id)
        finally:
            self._dispatching = False
            if live:
                # A handler raised mid-tick.  The old global heap kept the
                # undispatched remainder queued; refile it for the next
                # tick so a caller that catches the error and resumes does
                # not silently lose in-flight deliveries and ACKs.
                self._calendar.setdefault(self._tick + 1, []).extend(live)
            self._live = []

    def _deactivate(self, flow_id: int) -> None:
        index = bisect_left(self._active, flow_id)
        if index < len(self._active) and self._active[index] == flow_id:
            del self._active[index]

    def _deliver(self, chunk: Chunk, now: float) -> None:
        """Chunk reaches the receiver; generate the acknowledgement."""
        flow = self.flows[chunk.flow_id]
        ack = Ack(flow_id=chunk.flow_id, acked_bytes=chunk.size,
                  sent_time=chunk.sent_time, queue_delay=chunk.queue_delay,
                  delivered_time=now)
        self.recorder.on_delivery(flow, chunk, now)
        self._push(now + flow.delay_ack, self._ACK, ack)

    def _emit_all(self, now: float) -> None:
        # Rotate the service order every tick so that when the buffer is
        # nearly full the tail-drop losses are shared across flows, as they
        # would be with interleaved packets, instead of always falling on
        # the flows that happen to be listed last.  The rotation point is
        # still computed over every flow ever added, so the visit order of
        # the surviving active flows matches the historical full scan.
        active = self._active
        if not active:
            return
        start = int(round(now / self.dt)) % len(self.flows)
        pivot = bisect_left(active, start)
        stale = None
        for flow_id in active[pivot:] + active[:pivot]:
            flow = self.flows[flow_id]
            if not flow.active:
                # Stopped from a callback; drop it from the roster lazily.
                if stale is None:
                    stale = [flow_id]
                else:
                    stale.append(flow_id)
                continue
            chunk = flow.emit(now, self.dt)
            if chunk is None:
                continue
            drops = self.link.enqueue(chunk, now)
            if drops:
                feedback_delay = flow.delay_to_receiver + flow.delay_ack
                for drop in drops:
                    self._push(now + feedback_delay, self._LOSS, drop)
        if stale is not None:
            for flow_id in stale:
                self._deactivate(flow_id)

    def _serve_link(self, now: float) -> None:
        flows = self.flows
        for chunk in self.link.service(now, self.dt):
            self._push(now + flows[chunk.flow_id].delay_to_receiver,
                       self._DELIVER, chunk)

    # ------------------------------------------------------------------ #
    # Queries used by experiments
    # ------------------------------------------------------------------ #
    def active_flows(self) -> Iterable[Flow]:
        """Flows that have started and not yet completed."""
        flows = self.flows
        return (flows[i] for i in self._active if flows[i].active)

    def active_flow_ids(self) -> List[int]:
        """Sorted ids of started, unfinished flows (a fresh list).

        The roster can momentarily include a flow whose callback stopped it
        mid-tick; callers should still check ``flow.active``.
        """
        return list(self._active)

    def flows_named(self, name: str) -> List[Flow]:
        """All flows whose label equals ``name``."""
        return [f for f in self.flows if f.name == name]

    def __repr__(self) -> str:
        return (f"Network(link={self.link!r}, dt={self.dt}, "
                f"flows={len(self.flows)})")
