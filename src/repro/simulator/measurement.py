"""Windowed rate and RTT measurements made at the sender.

The paper's CCP implementation reports the sending rate ``S``, the delivery
rate ``R``, the RTT, and losses to the user-space algorithm every 10 ms,
measured over one window (RTT) of packets (§3.1, §4.2).  This module
provides the equivalent measurement machinery for simulated flows:
timestamped byte counters that can be queried over an arbitrary trailing
window.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Tuple


class WindowedCounter:
    """Accumulates (timestamp, bytes) samples and sums them over a window.

    Slotted: every flow owns three of these and ``add`` runs on every send,
    delivery, and loss, so the per-instance ``__dict__`` was measurable
    overhead.  Pickling is overridden to emit the exact dict state the
    un-slotted class produced, because experiment payloads serialise whole
    flows and their bytes must stay stable across this optimisation.
    """

    __slots__ = ("horizon", "_samples", "_total")

    def __getstate__(self) -> dict:
        return {"horizon": self.horizon, "_samples": self._samples,
                "_total": self._total}

    def __setstate__(self, state: dict) -> None:
        self.horizon = state["horizon"]
        self._samples = state["_samples"]
        self._total = state["_total"]

    def __init__(self, horizon: float = 10.0) -> None:
        #: Oldest age (seconds) of samples retained; anything older is pruned.
        self.horizon = horizon
        self._samples: Deque[Tuple[float, float]] = deque()
        self._total = 0.0

    def add(self, now: float, nbytes: float) -> None:
        """Record ``nbytes`` at time ``now``."""
        if nbytes <= 0:
            return
        self._samples.append((now, nbytes))
        self._total += nbytes
        self._prune(now)

    def sum_over(self, now: float, window: float) -> float:
        """Total bytes recorded in the trailing ``window`` seconds."""
        self._prune(now)
        cutoff = now - window
        return sum(b for t, b in self._samples if t > cutoff)

    def rate_over(self, now: float, window: float) -> float:
        """Average rate (bytes/s) over the trailing ``window`` seconds."""
        if window <= 0:
            return 0.0
        return self.sum_over(now, window) / window

    @property
    def total(self) -> float:
        """All bytes ever recorded (not pruned)."""
        return self._total

    def _prune(self, now: float) -> None:
        cutoff = now - self.horizon
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()


class FlowMeasurement:
    """Per-flow measurement state exposed to congestion-control algorithms.

    Attributes:
        rtt: Most recent round-trip time sample (seconds).
        min_rtt: Minimum RTT observed so far (the propagation delay estimate).
        queue_delay: Most recent per-packet queueing delay reported by an ACK.
        max_delivery_rate: Largest delivery rate observed (BBR-style
            bottleneck bandwidth estimate).
    """

    __slots__ = ("sent", "delivered", "lost", "rtt", "min_rtt",
                 "queue_delay", "max_delivery_rate", "_last_now", "_acked",
                 "_acked_horizon")

    def __getstate__(self) -> dict:
        # Same key order as the historical __dict__ so pickled flows are
        # byte-identical (see WindowedCounter.__getstate__).
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def __init__(self, horizon: float = 10.0) -> None:
        self.sent = WindowedCounter(horizon)
        self.delivered = WindowedCounter(horizon)
        self.lost = WindowedCounter(horizon)
        self.rtt: float = 0.0
        self.min_rtt: float = math.inf
        self.queue_delay: float = 0.0
        self.max_delivery_rate: float = 0.0
        self._last_now: float = 0.0
        #: Acked-packet records (ack_time, sent_time, bytes) used to measure
        #: S and R over the *same* packets, as Eq. (2) of the paper requires.
        self._acked: Deque[Tuple[float, float, float]] = deque()
        self._acked_horizon = 2.0

    # ------------------------------------------------------------------ #
    # Updates from the flow
    # ------------------------------------------------------------------ #
    def on_send(self, now: float, nbytes: float) -> None:
        self.sent.add(now, nbytes)
        self._last_now = now

    def on_ack(self, now: float, nbytes: float, rtt: float,
               queue_delay: float) -> None:
        self.delivered.add(now, nbytes)
        self.rtt = rtt
        self.queue_delay = queue_delay
        if rtt > 0:
            self.min_rtt = min(self.min_rtt, rtt)
        self._last_now = now
        self._acked.append((now, now - rtt, nbytes))
        cutoff = now - self._acked_horizon
        while self._acked and self._acked[0][0] < cutoff:
            self._acked.popleft()

    def on_loss(self, now: float, nbytes: float) -> None:
        self.lost.add(now, nbytes)
        self._last_now = now

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def measurement_window(self) -> float:
        """Window used for S and R estimates: one RTT, as in the paper."""
        if self.rtt > 0:
            return self.rtt
        if math.isfinite(self.min_rtt) and self.min_rtt > 0:
            return self.min_rtt
        return 0.05

    def send_rate(self, now: float, window: float | None = None) -> float:
        """S(t): bytes/s sent over the trailing window (default one RTT)."""
        window = window if window is not None else self.measurement_window()
        return self.sent.rate_over(now, window)

    def delivery_rate(self, now: float, window: float | None = None) -> float:
        """R(t): bytes/s delivered over the trailing window (default one RTT)."""
        window = window if window is not None else self.measurement_window()
        rate = self.delivered.rate_over(now, window)
        if rate > self.max_delivery_rate:
            self.max_delivery_rate = rate
        return rate

    def loss_rate(self, now: float, window: float | None = None) -> float:
        """Fraction of sent bytes reported lost over the trailing window."""
        window = window if window is not None else self.measurement_window()
        sent = self.sent.sum_over(now, window)
        if sent <= 0:
            return 0.0
        return min(1.0, self.lost.sum_over(now, window) / sent)

    def paired_rates(self, now: float,
                     window: float | None = None) -> tuple[float, float]:
        """(S, R) measured over the *same* packets, per Eq. (2) of the paper.

        The packets considered are those acknowledged within the trailing
        ``window`` (one RTT by default).  S divides their total size by the
        span of their send times; R divides it by the span of their ACK
        arrival times.  Measuring both over one packet set is what makes the
        cross-traffic estimate insensitive to the sender's own pulses.
        """
        window = window if window is not None else self.measurement_window()
        cutoff = now - window
        records = [rec for rec in self._acked if rec[0] > cutoff]
        if len(records) < 3:
            return self.send_rate(now, window), self.delivery_rate(now, window)
        total = sum(nbytes for _, _, nbytes in records)
        # Exclude the first record's bytes: n packets span n-1 gaps.
        total_gap = total - records[0][2]
        ack_span = records[-1][0] - records[0][0]
        sent_span = records[-1][1] - records[0][1]
        if ack_span <= 0 or sent_span <= 0 or total_gap <= 0:
            return self.send_rate(now, window), self.delivery_rate(now, window)
        send_rate = total_gap / sent_span
        delivery_rate = total_gap / ack_span
        if delivery_rate > self.max_delivery_rate:
            self.max_delivery_rate = delivery_rate
        return send_rate, delivery_rate

    def base_rtt(self) -> float:
        """Best available estimate of the propagation RTT (seconds)."""
        if math.isfinite(self.min_rtt):
            return self.min_rtt
        return self.rtt if self.rtt > 0 else 0.05
