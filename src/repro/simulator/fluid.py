"""Fluid-aggregate cross traffic: whole flow classes as per-link scalars.

The paper's WAN scenarios pit one tracked flow against thousands of
background flows.  Simulating each background flow as a Python object is
exact but linear in the flow count — the hard ceiling the ROADMAP's
"aggregate cross-traffic" item names.  This module models an entire
*class* of background flows at one hop as a handful of floats: per-tick
offered bytes drawn from the class's Poisson arrival process and
heavy-tailed flow-size distribution, a class-level AIMD window law for
elastic traffic, and a rate envelope for inelastic traffic.  Tracked
flows (the Nimbus flow, competitors under study) stay chunk-exact on the
existing engine; only the background crowd is aggregated, so the per-tick
cost is a few numpy scalar draws regardless of whether the class stands
for sixteen flows or a million.

Accounting contract: every class maintains the same conservation
counters a :class:`~repro.simulator.link.BottleneckLink` does —
``total_offered == total_served + backlog + total_dropped`` up to float
residue — so the per-hop conservation law audited by ``REPRO_AUDIT``
extends to ``(link offered + fluid offered) == (link served + fluid
served) + (link queued + fluid backlog) + (link drops + fluid drops)``.

Model sketch (elastic classes):

* arrivals are Poisson at ``arrivals_per_sec`` flows/s; each arrival
  draws a size from a log-normal-body / Pareto-tail mixture (mirroring
  ``repro.traffic.flowsize.HeavyTailedFlowSizes`` — the constants are
  duplicated here because ``simulator.*`` must not import the traffic
  layer) and grants the aggregate window one initial window (IW10),
* the aggregate window ``W`` follows the same cubic growth law as the
  tracked :class:`~repro.cc.cubic.Cubic` flows (per-member-flow window
  ``W/n`` tracks ``C (t - K)^3 + W_max`` with the TCP-friendly Reno
  region), and is cut multiplicatively once per RTT in proportion to
  the fraction of member flows that saw a drop,
* the class offers ``W / (rtt + queue_delay) * dt`` bytes per tick,
  capped by the un-sent work backlog and by the window minus the bytes
  already sitting in the queue (the in-flight constraint), so queue
  growth throttles the class exactly like ACK clocking would,
* served bytes complete flows at the mean-flow-size rate; departing
  flows take their window share with them, dropped bytes re-enter the
  work backlog (retransmission) and count as loss events.

A class with ``flows > 0`` is instead a fixed *population* of
long-running backlogged flows (no arrivals, infinite work) — the
aggregate analogue of N persistent Cubic cross flows, which is what the
A/B equivalence tests compare against.

Inelastic classes are rate envelopes: per-tick offered bytes are a
Poisson packet count at the target rate, unresponsive to loss or delay —
the aggregate analogue of N Poisson on/off sources.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from .units import MSS_BYTES

#: Flow-size mixture constants, mirroring the defaults of
#: ``repro.traffic.flowsize.HeavyTailedFlowSizes`` (duplicated to keep the
#: simulator layer free of traffic-layer imports; see that module for the
#: CAIDA-trace rationale).
_SHORT_FRACTION = 0.9
_SHORT_MEDIAN_BYTES = 6.0e3
_SHORT_SIGMA = 1.2
_PARETO_SHAPE = 1.2
_PARETO_SCALE_BYTES = 3.0e4
_MIN_FLOW_BYTES = 100.0
_MAX_FLOW_BYTES = 5.0e8

#: Aggregate window granted per arriving flow: the IW10 initial window.
_INITIAL_WINDOW_BYTES = 10.0 * MSS_BYTES

#: Cubic constants, mirroring ``repro.cc.cubic.Cubic`` so an aggregate
#: class competes fairly with the tracked Cubic flows it stands in for.
_CUBIC_C = 0.4
_CUBIC_BETA = 0.7


def _mixture_mean_bytes() -> float:
    """Analytic mean of the unscaled flow-size mixture (bytes)."""
    lognormal_mean = _SHORT_MEDIAN_BYTES * math.exp(_SHORT_SIGMA ** 2 / 2.0)
    pareto_mean = min(_PARETO_SHAPE * _PARETO_SCALE_BYTES
                      / (_PARETO_SHAPE - 1.0), _MAX_FLOW_BYTES)
    return (_SHORT_FRACTION * lognormal_mean
            + (1.0 - _SHORT_FRACTION) * pareto_mean)


class FluidClass:
    """One aggregate class of background cross traffic at a hop.

    Args:
        name: Class label, unique per network (used by the recorder and
            the ``fluid_sample`` telemetry kind).
        link_rate: Capacity of the link the class loads, bytes/s.
        kind: ``"elastic"`` (AIMD window law, loss/delay responsive) or
            ``"inelastic"`` (fixed rate envelope).
        load: Target offered load as a fraction of ``link_rate``; ignored
            when ``rate`` is given.
        rate: Explicit target offered rate in bytes/s.
        rtt: Propagation RTT of the member flows, seconds (the elastic
            feedback delay scale).
        flows: ``> 0`` switches an elastic class to a fixed population of
            this many long-running backlogged flows (no arrivals).
        arrivals_per_sec: Poisson flow-arrival rate.  When given, sampled
            flow sizes are rescaled so the offered load stays at the
            target while the flow count scales freely — how a run stands
            for 10^5 flows at unchanged cost.  Default: the rate implied
            by the target load and the mixture's mean flow size.
        seed: Seed of the class's private numpy generator.
        packet_bytes: MSS used for window arithmetic and packet noise.
        max_window: Aggregate window cap in bytes (default: four
            buffered-BDPs worth at ``link_rate``).
    """

    def __init__(self, name: str, link_rate: float, kind: str = "elastic",
                 load: float = 0.5, rate: Optional[float] = None,
                 rtt: float = 0.05, flows: int = 0,
                 arrivals_per_sec: Optional[float] = None, seed: int = 1,
                 packet_bytes: float = float(MSS_BYTES),
                 max_window: Optional[float] = None) -> None:
        if kind not in ("elastic", "inelastic"):
            raise ValueError(f"kind must be 'elastic' or 'inelastic', "
                             f"got {kind!r}")
        if link_rate <= 0:
            raise ValueError("link_rate must be positive")
        if rtt <= 0:
            raise ValueError("rtt must be positive")
        if flows < 0:
            raise ValueError("flows must be >= 0")
        self.name = name
        self.kind = kind
        self.link_rate = link_rate
        self.rtt = rtt
        self.packet_bytes = float(packet_bytes)
        self.target_rate = float(rate) if rate is not None \
            else float(load) * link_rate
        if self.target_rate <= 0:
            raise ValueError("target rate must be positive")
        self._rng = np.random.Generator(np.random.PCG64(seed))
        # Conservation counters (the fluid half of the per-hop law).
        self.total_offered = 0.0
        self.total_served = 0.0
        self.total_dropped = 0.0
        #: Bytes admitted to the link's shared queue, not yet served.
        self.backlog = 0.0
        # Population bookkeeping.
        self.flows = int(flows)
        self.flows_created = float(flows)
        self.active_flows = float(flows)
        # Elastic state.
        self._track_work = kind == "elastic" and flows == 0
        base_mean = _mixture_mean_bytes()
        if self._track_work:
            self._arrival_rate = (float(arrivals_per_sec)
                                  if arrivals_per_sec is not None
                                  else self.target_rate / base_mean)
            if self._arrival_rate <= 0:
                raise ValueError("arrivals_per_sec must be positive")
            # Rescale sampled sizes so lambda * E[size] == target rate:
            # the flow count is then a free knob that never changes load.
            self._size_scale = self.target_rate \
                / (self._arrival_rate * base_mean)
        else:
            self._arrival_rate = 0.0
            self._size_scale = 1.0
        self._mean_size = base_mean * self._size_scale
        #: Un-sent work (arrival mode): admitted flows' remaining bytes.
        self.work_backlog = 0.0
        #: All bytes not yet delivered (work + queue + retransmit debt).
        self.bytes_in_system = 0.0
        self.window = float(flows) * _INITIAL_WINDOW_BYTES
        self._max_window = (float(max_window) if max_window is not None
                            else 4.0 * link_rate * (rtt + 0.2))
        #: Loss events (packets) since the last multiplicative decrease.
        self._pending_loss = 0.0
        self._last_backoff = 0.0
        #: Loss signals in flight back to the senders: ``(due, packets)``.
        #: Tracked flows learn of a drop one feedback delay (≈ the prop
        #: RTT) after it happens and keep sending meanwhile; the class
        #: gets the same grace so the two back off on the same clock.
        self._loss_pipe: Deque[Tuple[float, float]] = deque()
        # Cubic epoch state, in per-member-flow bytes (the same variables
        # as ``repro.cc.cubic.Cubic``, divided through by the flow count).
        self._w_max = 0.0
        self._epoch_start: Optional[float] = None
        self._k = 0.0
        self._w_est = 0.0
        #: Bytes in flight on the wire (served but, for one propagation
        #: RTT, not yet acknowledged); decays exponentially so the
        #: steady-state value is ``serve_rate * rtt`` — the wire BDP the
        #: class occupies, which counts against the window exactly like
        #: a real flow's unacked in-flight bytes.
        self._wire_flight = 0.0
        #: Fixed populations slow-start toward their share; arrival-mode
        #: classes ramp per flow via the IW grant instead.
        self._slow_start = kind == "elastic" and flows > 0
        self._last_qdelay = 0.0
        # Flow-size refill buffer (see _take_sizes_sum).
        self._size_buf = np.empty(0)
        self._size_pos = 0

    # ------------------------------------------------------------------ #
    # Per-tick demand
    # ------------------------------------------------------------------ #
    def offer(self, now: float, dt: float, queue_delay: float) -> float:
        """Bytes this class offers to its link's queue this tick."""
        self._last_qdelay = queue_delay
        if self.kind == "inelastic":
            packets = int(self._rng.poisson(
                self.target_rate * dt / self.packet_bytes))
            return packets * self.packet_bytes
        if self._arrival_rate > 0.0:
            arrivals = int(self._rng.poisson(self._arrival_rate * dt))
            if arrivals:
                added = self._take_sizes_sum(arrivals)
                self.work_backlog += added
                self.bytes_in_system += added
                self.active_flows += arrivals
                self.flows_created += arrivals
                self.window += arrivals * _INITIAL_WINDOW_BYTES
        n = self.active_flows
        n_eff = n if n > 1.0 else 1.0
        srtt = self.rtt + queue_delay
        self._wire_flight *= math.exp(-dt / self.rtt)
        pipe = self._loss_pipe
        while pipe and pipe[0][0] <= now:
            self._pending_loss += pipe.popleft()[1]
        if self._pending_loss > 0.0 and now - self._last_backoff >= srtt:
            # One multiplicative decrease per RTT, scaled by the fraction
            # of member flows that saw a drop in the window: a single
            # flow's backoff barely dents a large aggregate.  The cut per
            # affected flow is Cubic's beta, with fast convergence on the
            # per-flow W_max anchor.
            fraction = min(1.0, self._pending_loss / n_eff)
            w = self.window / n_eff
            if w < self._w_max:
                self._w_max = w * (1.0 + _CUBIC_BETA) / 2.0
            else:
                self._w_max = w
            self.window *= 1.0 - (1.0 - _CUBIC_BETA) * fraction
            self._pending_loss = 0.0
            self._last_backoff = now
            self._epoch_start = None
            self._slow_start = False
        elif self._slow_start:
            self.window *= 2.0 ** (dt / srtt)
        else:
            # Congestion avoidance: the per-member-flow window chases the
            # cubic target W(t) = C (t - K)^3 + W_max, never slower than
            # the TCP-friendly (Reno-equivalent) estimate — the same two
            # regimes as repro.cc.cubic, integrated per tick instead of
            # per ACK.
            w = self.window / n_eff
            if self._epoch_start is None:
                self._epoch_start = now
                if w < self._w_max:
                    self._k = ((self._w_max - w)
                               / (_CUBIC_C * self.packet_bytes)) ** (1.0 / 3.0)
                else:
                    self._k = 0.0
                    self._w_max = w
                self._w_est = w
            t = now - self._epoch_start + self.rtt
            target = (_CUBIC_C * self.packet_bytes * (t - self._k) ** 3
                      + self._w_max)
            if target > w:
                w += (target - w) * (dt / srtt)
            else:
                w += 0.01 * self.packet_bytes * (dt / srtt)
            self._w_est += (3.0 * (1.0 - _CUBIC_BETA) / (1.0 + _CUBIC_BETA)
                            * self.packet_bytes * dt / srtt)
            if self._w_est > w:
                w = self._w_est
            self.window = w * n_eff
        floor = 2.0 * n_eff * self.packet_bytes
        if self.window < floor:
            self.window = floor
        if self.window > self._max_window:
            self.window = self._max_window
        send = self.window / srtt * dt
        # In-flight constraint: bytes already queued plus bytes still on
        # the wire count against the window, so a standing queue throttles
        # the class like ACK clocking throttles real flows.
        headroom = self.window - self.backlog - self._wire_flight
        if send > headroom:
            send = headroom
        if self._track_work:
            if send > self.work_backlog:
                send = self.work_backlog
            self.work_backlog -= max(send, 0.0)
        return send if send > 0.0 else 0.0

    def _take_sizes_sum(self, count: int) -> float:
        """Sum of ``count`` flow-size draws, served from a refill buffer.

        At high arrival rates every tick needs sizes; drawing them
        per-tick would make the tick cost scale with the arrival rate
        through numpy call overhead alone.  Drawing thousands at once
        and consuming from the buffer keeps the amortised cost per
        arrival negligible — the "near-constant in the flow count"
        property the fluid model exists for.
        """
        total = 0.0
        while count > 0:
            available = self._size_buf.size - self._size_pos
            if available == 0:
                self._size_buf = self._sample_sizes(
                    max(4096, count))
                self._size_pos = 0
                available = self._size_buf.size
            take = count if count < available else available
            end = self._size_pos + take
            total += float(self._size_buf[self._size_pos:end].sum())
            self._size_pos = end
            count -= take
        return total

    def _sample_sizes(self, count: int) -> np.ndarray:
        """Vectorized draw of ``count`` flow sizes from the mixture."""
        rng = self._rng
        shorts = rng.random(count) < _SHORT_FRACTION
        sizes = np.empty(count)
        n_short = int(shorts.sum())
        if n_short:
            sizes[shorts] = rng.lognormal(
                math.log(_SHORT_MEDIAN_BYTES), _SHORT_SIGMA, n_short)
        n_long = count - n_short
        if n_long:
            sizes[~shorts] = _PARETO_SCALE_BYTES \
                / rng.random(n_long) ** (1.0 / _PARETO_SHAPE)
        np.clip(sizes, _MIN_FLOW_BYTES, _MAX_FLOW_BYTES, out=sizes)
        if self._size_scale != 1.0:
            sizes *= self._size_scale
        return sizes

    # ------------------------------------------------------------------ #
    # Engine feedback
    # ------------------------------------------------------------------ #
    def commit(self, offered: float, admitted: float, now: float) -> None:
        """Record the admission decision for this tick's offer.

        Mirrors :meth:`BottleneckLink.enqueue` accounting: offered bytes
        split into queue backlog and drops, with the same ``1e-9``
        residue handling, so the class-level conservation identity holds
        to the tolerance the audit allows links.
        """
        self.total_offered += offered
        lost = offered - admitted
        if admitted > 1e-9:
            self.backlog += admitted
        if lost > 1e-9:
            self.total_dropped += lost
            self.on_dropped(lost, now)

    def sample_overflow_transfer(self, lost: float, share: float) -> float:
        """Packet-side bytes of an overflow that trimmed this class.

        Each lost packet belongs to the packet side with probability
        ``share`` (its arrival share): a binomial draw from the class's
        own generator, so loss *incidence* on tracked flows matches an
        interleaved FIFO — a tracked flow pays a full multiplicative
        decrease for any loss event, however small, so handing it a
        deterministic sliver of every overflow would cut it far more
        often than packet-level interleaving does.
        """
        if share <= 0.0 or lost <= 0.0:
            return 0.0
        share = min(share, 1.0)
        packets = lost / self.packet_bytes
        whole = int(packets)
        hit = int(self._rng.binomial(whole, share)) if whole else 0
        fraction = packets - whole
        if fraction > 0.0 and self._rng.random() < fraction * share:
            hit += 1
        if hit <= 0:
            return 0.0
        return min(hit * self.packet_bytes, lost)

    def on_dropped(self, nbytes: float, now: float) -> None:
        """Loss feedback: ``nbytes`` of this class's traffic were dropped."""
        if self.kind != "elastic":
            return
        self._loss_pipe.append((now + self.rtt, nbytes / self.packet_bytes))
        if self._track_work:
            # Retransmission: the lost payload must be sent again, so it
            # returns to the work backlog (bytes_in_system already holds
            # it — only delivery removes bytes from the system).
            self.work_backlog += nbytes

    def serve(self, nbytes: float, now: float) -> None:
        """``nbytes`` of this class's backlog were transmitted."""
        self.backlog -= nbytes
        if self.backlog < 1e-9:
            self.backlog = max(self.backlog, 0.0)
        self.total_served += nbytes
        self._wire_flight += nbytes
        if not self._track_work:
            return
        self.bytes_in_system -= nbytes
        if self.bytes_in_system < 0.0:
            self.bytes_in_system = 0.0
        n = self.active_flows
        if self.bytes_in_system <= self.packet_bytes:
            new_n = 1.0 if self.bytes_in_system > 0.0 else 0.0
        else:
            # Flows complete at the mean-size rate; heavy-tail epochs where
            # one elephant carries most bytes bottom out at the floor of 1.
            new_n = max(n - nbytes / self._mean_size, 1.0)
        if new_n < n and n > 0.0:
            # Departing flows take their share of the aggregate window.
            self.window *= new_n / n
        self.active_flows = new_n

    def flush(self, now: float) -> float:
        """Drop the whole queue backlog (link flap); returns bytes moved."""
        flushed = self.backlog
        if flushed <= 0.0:
            return 0.0
        self.backlog = 0.0
        self.total_dropped += flushed
        self.on_dropped(flushed, now)
        return flushed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def current_rate(self) -> float:
        """Instantaneous send rate in bytes/s (window law or envelope)."""
        if self.kind == "inelastic":
            return self.target_rate
        return self.window / (self.rtt + self._last_qdelay)

    def __repr__(self) -> str:
        return (f"FluidClass(name={self.name!r}, kind={self.kind!r}, "
                f"target={self.target_rate:.0f} B/s, "
                f"flows={self.active_flows:.1f})")


class FluidLinkState:
    """The fluid aggregate attached to one link: its classes plus the
    service-sharing arithmetic between the packet FIFO and the fluid
    backlog.

    The link's service budget is split in proportion to queued bytes
    (packet queue vs fluid backlog) — the byte-level fairness a FIFO
    would give interleaved packets — and any budget the packet queue
    cannot use flows back to the fluid side, keeping the link
    work-conserving.
    """

    __slots__ = ("link", "classes", "tick_admitted", "tick_offered",
                 "loss_debt")

    def __init__(self, link) -> None:
        self.link = link
        self.classes: List[FluidClass] = []
        #: Chunk bytes the link admitted since the last fluid tick.  The
        #: fluid's admission subtracts this to see the start-of-tick
        #: queue: chunks enqueue earlier in the tick than the fluid
        #: offer, and without the correction the fluid would bear all of
        #: a full buffer's overflow instead of its proportional share.
        self.tick_admitted = 0.0
        #: Chunk bytes offered (admitted or not) since the last fluid
        #: tick: the packet side's arrival rate, used to split overflow
        #: losses between the two halves of the traffic.
        self.tick_offered = 0.0
        #: Overflow bytes the fluid was trimmed that, in an interleaved
        #: FIFO, would have been packet losses (the packet side's arrival
        #: share of the overflow).  The link drops the next arriving
        #: chunk bytes against this debt, so tracked flows see their
        #: proportional share of congestion loss instead of the fluid
        #: silently absorbing all of it.  Expires after one tick.
        self.loss_debt = 0.0

    # ------------------------------------------------------------------ #
    # Aggregate counters (the audit's fluid terms)
    # ------------------------------------------------------------------ #
    @property
    def backlog(self) -> float:
        total = 0.0
        for cls in self.classes:
            total += cls.backlog
        return total

    @property
    def total_offered(self) -> float:
        return sum(cls.total_offered for cls in self.classes)

    @property
    def total_served(self) -> float:
        return sum(cls.total_served for cls in self.classes)

    @property
    def total_dropped(self) -> float:
        return sum(cls.total_dropped for cls in self.classes)

    # ------------------------------------------------------------------ #
    # Service sharing (called by BottleneckLink.service)
    # ------------------------------------------------------------------ #
    def take_service(self, budget: float, now: float) -> float:
        """Serve the fluid backlog's byte-proportional share of ``budget``.

        Returns the budget remaining for the packet queue.
        """
        fluid_backlog = self.backlog
        if fluid_backlog <= 1e-9:
            return budget
        packet_backlog = self.link.queue_bytes
        if packet_backlog <= 1e-9:
            share = budget
        else:
            share = budget * fluid_backlog / (fluid_backlog + packet_backlog)
        return budget - self._drain(min(share, budget), now)

    def shed(self, nbytes: float, now: float) -> None:
        """Drop ``nbytes`` of queued fluid backlog as congestion loss.

        The reverse half of proportional overflow sharing: when a chunk
        is trimmed at admission, the fluid sheds its queue-share of the
        overflow (with loss feedback to the class) and the freed space
        admits the chunk bytes that an interleaved FIFO would have kept.
        """
        fluid_backlog = self.backlog
        if fluid_backlog <= 0.0:
            return
        if len(self.classes) == 1:
            cls = self.classes[0]
            cls.backlog -= nbytes
            if cls.backlog < 1e-9:
                cls.backlog = max(cls.backlog, 0.0)
            cls.total_dropped += nbytes
            cls.on_dropped(nbytes, now)
            return
        for cls in self.classes:
            part = nbytes * cls.backlog / fluid_backlog
            if part > 0.0:
                cls.backlog -= part
                if cls.backlog < 1e-9:
                    cls.backlog = max(cls.backlog, 0.0)
                cls.total_dropped += part
                cls.on_dropped(part, now)

    def drain_leftover(self, budget: float, now: float) -> float:
        """Give unused packet-queue budget to the fluid backlog.

        Returns the bytes consumed (the work-conserving second pass).
        """
        return self._drain(budget, now)

    def _drain(self, budget: float, now: float) -> float:
        fluid_backlog = self.backlog
        take = budget if budget < fluid_backlog else fluid_backlog
        if take <= 1e-9:
            return 0.0
        if len(self.classes) == 1:
            self.classes[0].serve(take, now)
        else:
            # Proportional split across classes; the shares sum to the
            # take up to float residue, which the audit tolerance absorbs.
            for cls in self.classes:
                part = take * cls.backlog / fluid_backlog
                if part > 0.0:
                    cls.serve(part, now)
        return take

    def flush(self, now: float) -> float:
        """Flush every class's backlog into drops (link-flap queue drop)."""
        flushed = 0.0
        for cls in self.classes:
            flushed += cls.flush(now)
        return flushed

    def __repr__(self) -> str:
        return (f"FluidLinkState(link={self.link.name!r}, "
                f"classes={[cls.name for cls in self.classes]})")
