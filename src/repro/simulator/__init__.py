"""Fluid-chunk network simulator: the reproduction's Mahimahi substitute.

Exports the pieces needed to assemble an experiment: bottleneck links with
queue policies, multi-hop topologies and paths, transport flows, application
sources, and the tick-driven network engine (single-link :class:`Network` or
general :class:`TopologyNetwork`).
"""

from .aqm import DropTail, Pie, QueuePolicy
from .endpoint import Flow
from .engine import Network
from .faults import (
    FAULT_EVENT_KINDS,
    BurstLossPolicy,
    FaultEvent,
    FaultSchedule,
)
from .fluid import FluidClass, FluidLinkState
from .link import BottleneckLink
from .measurement import FlowMeasurement, WindowedCounter
from .packet import Ack, Chunk, FlowStats, LossEvent
from .routing import Node, RoutedNetwork, RoutedTopology, RoutingTable
from .source import BackloggedSource, FiniteSource, PacedSource, Source
from .telemetry import (
    EVENT_KINDS,
    TRACE_SCHEMA_VERSION,
    JsonlTraceSink,
    ListTraceSink,
    TraceSink,
    sink_from_env,
    validate_trace_record,
)
from .topology import AuditError, Path, Topology, TopologyNetwork
from .trace import Recorder
from .units import (
    BITS_PER_BYTE,
    MSS_BYTES,
    bdp_bytes,
    bytes_per_sec_to_mbps,
    mbps_to_bytes_per_sec,
    ms_to_s,
    s_to_ms,
)

__all__ = [
    "Ack",
    "AuditError",
    "BackloggedSource",
    "BITS_PER_BYTE",
    "BottleneckLink",
    "BurstLossPolicy",
    "Chunk",
    "DropTail",
    "EVENT_KINDS",
    "FAULT_EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "Flow",
    "FlowMeasurement",
    "FlowStats",
    "FluidClass",
    "FluidLinkState",
    "FiniteSource",
    "JsonlTraceSink",
    "ListTraceSink",
    "LossEvent",
    "MSS_BYTES",
    "Network",
    "Node",
    "PacedSource",
    "Path",
    "Pie",
    "QueuePolicy",
    "Recorder",
    "RoutedNetwork",
    "RoutedTopology",
    "RoutingTable",
    "Source",
    "Topology",
    "TopologyNetwork",
    "TraceSink",
    "TRACE_SCHEMA_VERSION",
    "WindowedCounter",
    "sink_from_env",
    "validate_trace_record",
    "bdp_bytes",
    "bytes_per_sec_to_mbps",
    "mbps_to_bytes_per_sec",
    "ms_to_s",
    "s_to_ms",
]
