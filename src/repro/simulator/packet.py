"""Data units exchanged inside the simulator.

The simulator is a *fluid-chunk* model: instead of individual 1500-byte
packets, each sender emits one "chunk" of bytes per simulation tick.  A chunk
carries enough metadata (send time, sequence range, accumulated queueing
delay) for the receiving endpoint to produce the acknowledgement stream that
congestion-control algorithms consume.  This keeps event counts proportional
to ``flows x ticks`` rather than ``flows x packets`` while preserving the
dynamics the paper's elasticity detector depends on: ACK clocking, queue
build-up and drain, and drop feedback after roughly one round-trip time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Chunk:
    """A contiguous run of bytes in flight from a sender.

    Slotted: the engine creates one chunk per flow per tick, so the
    per-instance ``__dict__`` was pure overhead on the hot path.

    Attributes:
        flow_id: Identifier of the flow that emitted the chunk.
        size: Number of bytes in the chunk (may shrink if partially dropped).
        seq: Byte offset of the first byte of the chunk within the flow.
        sent_time: Simulation time at which the sender emitted the chunk.
        enqueue_time: Time the chunk entered its current queue (set by the
            link on every enqueue), used to compute its queueing delay.
        queue_delay: Total queueing delay experienced so far, in seconds —
            accumulated across every hop of a multi-link path.
        hop: Position within the flow's path of the link the chunk currently
            occupies (0 on emission; advanced by the engine as the chunk is
            forwarded hop by hop).
    """

    flow_id: int
    size: float
    seq: float
    sent_time: float
    enqueue_time: float = 0.0
    queue_delay: float = 0.0
    hop: int = 0

    def split(self, first_bytes: float) -> "Chunk":
        """Split off the first ``first_bytes`` bytes into a new chunk.

        The remaining bytes stay in ``self``.  Used when the bottleneck link
        can only serve part of a chunk within one service opportunity.
        """
        if first_bytes <= 0 or first_bytes >= self.size:
            raise ValueError(
                f"split size {first_bytes} must be in (0, {self.size})"
            )
        head = Chunk(
            flow_id=self.flow_id,
            size=first_bytes,
            seq=self.seq,
            sent_time=self.sent_time,
            enqueue_time=self.enqueue_time,
            queue_delay=self.queue_delay,
            hop=self.hop,
        )
        self.seq += first_bytes
        self.size -= first_bytes
        return head


@dataclass(slots=True)
class Ack:
    """Acknowledgement returned from a receiver to a sender.

    Slotted for the same reason as :class:`Chunk`: one is allocated per
    delivery, which makes it the second-hottest allocation in the engine.

    Attributes:
        flow_id: Flow being acknowledged.
        acked_bytes: Number of newly delivered bytes covered by this ACK.
        sent_time: Send timestamp echoed from the acknowledged chunk,
            allowing the sender to measure the round-trip time.
        queue_delay: Queueing delay experienced by the acknowledged chunk.
        delivered_time: Time the chunk reached the receiver.
    """

    flow_id: int
    acked_bytes: float
    sent_time: float
    queue_delay: float
    delivered_time: float


@dataclass(slots=True)
class LossEvent:
    """Notification that bytes were dropped at the bottleneck.

    Delivered to the sender roughly one feedback delay after the drop, which
    is when a real TCP sender would learn of the loss through duplicate ACKs.
    """

    flow_id: int
    lost_bytes: float
    drop_time: float


@dataclass
class FlowStats:
    """Aggregate per-flow accounting maintained by the engine."""

    bytes_sent: float = 0.0
    bytes_delivered: float = 0.0
    bytes_lost: float = 0.0
    start_time: float = 0.0
    end_time: float | None = None
    rtt_samples: int = 0
    rtt_sum: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def mean_rtt(self) -> float:
        """Mean of all RTT samples observed by the flow (seconds)."""
        if self.rtt_samples == 0:
            return 0.0
        return self.rtt_sum / self.rtt_samples
