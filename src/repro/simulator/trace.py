"""Time-series recording for experiments.

The :class:`Recorder` observes deliveries and queue state as the engine
runs, binning them into fixed-width intervals.  Experiment drivers query it
for the same series the paper plots: per-flow throughput over time,
per-packet queueing delay, the bottleneck queue delay, and the operating
mode of mode-switching algorithms (Nimbus, Copa).

Bins are stored as growable lists indexed by bin number rather than
dict-of-bin mappings: simulation time only moves forward, so the bin index
is nondecreasing and appending amortises to O(1) without the per-sample
hashing and boxing of a ``defaultdict``.  Series extraction pads every
per-flow list to the common length and accumulates in the same flow order
as the historical dict implementation, so the produced arrays are
bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .units import bytes_per_sec_to_mbps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .endpoint import Flow
    from .engine import Network
    from .packet import Chunk


def _grow(values: list, upto: int, fill) -> None:
    """Extend ``values`` with ``fill`` so that index ``upto`` is valid."""
    missing = upto + 1 - len(values)
    if missing > 0:
        values.extend([fill] * missing)


class _FlowRecord:
    """Per-flow accumulation buckets (dense, indexed by bin number)."""

    __slots__ = ("bytes_by_bin", "qdelay_sum", "qdelay_cnt",
                 "qdelay_samples", "rtt_samples", "mode_by_bin")

    def __init__(self) -> None:
        self.bytes_by_bin: List[float] = []
        self.qdelay_sum: List[float] = []
        self.qdelay_cnt: List[int] = []
        self.qdelay_samples: List[float] = []
        self.rtt_samples: List[float] = []
        #: Sparse: only mode-switching algorithms report a mode at all.
        self.mode_by_bin: Dict[int, str] = {}


class Recorder:
    """Bins deliveries and queue observations into fixed-width intervals."""

    def __init__(self, network: "Network", bin_width: float = 0.1) -> None:
        self.network = network
        self.bin_width = bin_width
        #: Insertion-ordered by first touch, which ``_select`` relies on to
        #: keep cross-flow accumulation order identical run to run.
        self._flows: Dict[int, _FlowRecord] = {}
        self._names: Dict[int, str] = {}
        self._link_qdelay_sum: List[float] = []
        self._link_qdelay_cnt: List[int] = []
        self._max_bin = 0

    # ------------------------------------------------------------------ #
    # Hooks called by the engine
    # ------------------------------------------------------------------ #
    def _flow_record(self, flow_id: int) -> _FlowRecord:
        rec = self._flows.get(flow_id)
        if rec is None:
            rec = self._flows[flow_id] = _FlowRecord()
        return rec

    def on_delivery(self, flow: "Flow", chunk: "Chunk", now: float) -> None:
        b = self._bin(now)
        rec = self._flow_record(flow.flow_id)
        self._names[flow.flow_id] = flow.name
        if b >= len(rec.bytes_by_bin):
            _grow(rec.bytes_by_bin, b, 0.0)
            _grow(rec.qdelay_sum, b, 0.0)
            _grow(rec.qdelay_cnt, b, 0)
        rec.bytes_by_bin[b] += chunk.size
        rec.qdelay_sum[b] += chunk.queue_delay * chunk.size
        rec.qdelay_cnt[b] += 1
        rec.qdelay_samples.append(chunk.queue_delay)
        if b > self._max_bin:
            self._max_bin = b

    def on_tick(self, now: float) -> None:
        b = self._bin(now)
        if b >= len(self._link_qdelay_sum):
            _grow(self._link_qdelay_sum, b, 0.0)
            _grow(self._link_qdelay_cnt, b, 0)
        self._link_qdelay_sum[b] += self.network.link.queue_delay
        self._link_qdelay_cnt[b] += 1
        if b > self._max_bin:
            self._max_bin = b
        # The engine's roster lists active flows in flow-id order — the
        # same order a scan over every flow ever created would visit them.
        flows = self.network.flows
        for flow_id in self.network.active_flow_ids():
            flow = flows[flow_id]
            if not flow.active:
                continue
            mode = getattr(flow.cc, "mode", None)
            if mode is not None:
                rec = self._flow_record(flow_id)
                self._names[flow_id] = flow.name
                rec.mode_by_bin[b] = mode
            rtt = flow.measurement.rtt
            if rtt > 0:
                self._flow_record(flow_id).rtt_samples.append(rtt)

    # ------------------------------------------------------------------ #
    # Series extraction
    # ------------------------------------------------------------------ #
    def times(self) -> np.ndarray:
        """Centre time of every bin recorded so far."""
        return (np.arange(self._max_bin + 1) + 0.5) * self.bin_width

    def throughput_series(self, name: Optional[str] = None,
                          flow_id: Optional[int] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, Mbit/s) delivered throughput, aggregated over matching flows."""
        ids = self._select(name, flow_id)
        nbins = self._max_bin + 1
        series = np.zeros(nbins)
        for fid in ids:
            rec = self._flows.get(fid)
            if rec is None:
                continue
            chunk_bytes = rec.bytes_by_bin
            series[:len(chunk_bytes)] += chunk_bytes
        rate = series / self.bin_width
        return self.times(), bytes_per_sec_to_mbps(rate)

    def queue_delay_series(self, name: Optional[str] = None,
                           flow_id: Optional[int] = None
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, ms) byte-weighted mean per-packet queueing delay per bin."""
        ids = self._select(name, flow_id)
        nbins = self._max_bin + 1
        dsum = np.zeros(nbins)
        bsum = np.zeros(nbins)
        for fid in ids:
            rec = self._flows.get(fid)
            if rec is None:
                continue
            dsum[:len(rec.qdelay_sum)] += rec.qdelay_sum
            bsum[:len(rec.bytes_by_bin)] += rec.bytes_by_bin
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = np.where(bsum > 0, dsum / np.maximum(bsum, 1e-12), 0.0)
        return self.times(), mean * 1e3

    def link_queue_delay_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, ms) average bottleneck queueing delay per bin."""
        nbins = self._max_bin + 1
        series = np.zeros(nbins)
        qdelay_sum = self._link_qdelay_sum
        qdelay_cnt = self._link_qdelay_cnt
        for b in range(min(nbins, len(qdelay_cnt))):
            cnt = qdelay_cnt[b]
            if cnt:
                series[b] = qdelay_sum[b] / cnt
        return self.times(), series * 1e3

    def mode_series(self, name: Optional[str] = None,
                    flow_id: Optional[int] = None
                    ) -> Tuple[np.ndarray, List[Optional[str]]]:
        """(times, mode labels) for mode-switching flows; None where unknown."""
        ids = self._select(name, flow_id)
        nbins = self._max_bin + 1
        modes: List[Optional[str]] = [None] * nbins
        for fid in ids:
            rec = self._flows.get(fid)
            if rec is None:
                continue
            for b, mode in rec.mode_by_bin.items():
                modes[b] = mode
        return self.times(), modes

    def queue_delay_samples(self, name: Optional[str] = None,
                            flow_id: Optional[int] = None) -> np.ndarray:
        """All per-chunk queueing delay samples (seconds) for matching flows."""
        ids = self._select(name, flow_id)
        samples: List[float] = []
        for fid in ids:
            rec = self._flows.get(fid)
            if rec is not None:
                samples.extend(rec.qdelay_samples)
        return np.asarray(samples)

    def rtt_samples(self, name: Optional[str] = None,
                    flow_id: Optional[int] = None) -> np.ndarray:
        """All RTT samples (seconds) observed by matching flows."""
        ids = self._select(name, flow_id)
        samples: List[float] = []
        for fid in ids:
            rec = self._flows.get(fid)
            if rec is not None:
                samples.extend(rec.rtt_samples)
        return np.asarray(samples)

    def mean_throughput(self, name: Optional[str] = None,
                        flow_id: Optional[int] = None,
                        start: float = 0.0,
                        end: Optional[float] = None) -> float:
        """Mean delivered throughput in Mbit/s over [start, end]."""
        times, series = self.throughput_series(name, flow_id)
        if len(times) == 0:
            return 0.0
        end = end if end is not None else times[-1] + self.bin_width / 2
        mask = (times >= start) & (times <= end)
        if not mask.any():
            return 0.0
        return float(np.mean(series[mask]))

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _bin(self, now: float) -> int:
        # int() truncation == floor for the engine's non-negative clock.
        return int(now / self.bin_width)

    def _select(self, name: Optional[str], flow_id: Optional[int]) -> List[int]:
        if flow_id is not None:
            return [flow_id]
        if name is None:
            return list(self._flows.keys())
        return [fid for fid, n in self._names.items() if n == name]
