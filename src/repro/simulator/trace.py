"""Time-series recording for experiments.

The :class:`Recorder` observes deliveries and queue state as the engine
runs, binning them into fixed-width intervals.  Experiment drivers query it
for the same series the paper plots: per-flow throughput over time,
per-packet queueing delay, the bottleneck queue delay, and the operating
mode of mode-switching algorithms (Nimbus, Copa).

Beyond the monitor link's legacy series, every link of a multi-hop
:class:`~repro.simulator.topology.Topology` gets its own per-bin time
series — mean queueing delay, served throughput, drop rate, and queue
occupancy — sampled from the links' own byte counters, so a parking-lot
experiment can ask *which* hop queued or dropped, not just whether the
monitor hop did (``link_queue_delay_series("hop2")`` and friends).

Bins are stored as growable lists indexed by bin number rather than
dict-of-bin mappings: simulation time only moves forward, so the bin index
is nondecreasing and appending amortises to O(1) without the per-sample
hashing and boxing of a ``defaultdict``.  Series extraction pads every
per-flow list to the common length and accumulates in the same flow order
as the historical dict implementation, so the produced arrays are
bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .units import bytes_per_sec_to_mbps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .endpoint import Flow
    from .engine import Network
    from .link import BottleneckLink
    from .packet import Chunk


def _grow(values: list, upto: int, fill) -> None:
    """Extend ``values`` with ``fill`` so that index ``upto`` is valid."""
    missing = upto + 1 - len(values)
    if missing > 0:
        values.extend([fill] * missing)


class _FlowRecord:
    """Per-flow accumulation buckets (dense, indexed by bin number)."""

    __slots__ = ("bytes_by_bin", "qdelay_sum", "qdelay_cnt",
                 "qdelay_samples", "rtt_samples", "mode_by_bin")

    def __init__(self) -> None:
        self.bytes_by_bin: List[float] = []
        self.qdelay_sum: List[float] = []
        self.qdelay_cnt: List[int] = []
        self.qdelay_samples: List[float] = []
        self.rtt_samples: List[float] = []
        #: Sparse: only mode-switching algorithms report a mode at all.
        self.mode_by_bin: Dict[int, str] = {}


class _LinkRecord:
    """Per-link accumulation buckets: occupancy, served and dropped bytes.

    The per-tick cost is one ``occ_acc += link.queue_bytes`` (zero for a
    single-link network, where the monitor queue-delay sum already carries
    the occupancy); everything else — flushing the occupancy sum and
    differencing the link's own monotone ``total_served`` /
    ``total_drops`` counters — happens once per bin boundary (every
    ``bin_width / dt`` ticks), so sampling every link of a topology stays
    off the engine's hot path.
    """

    __slots__ = ("link", "occ_acc", "occ_by_bin", "served_by_bin",
                 "dropped_by_bin", "prev_served", "prev_drops")

    def __init__(self, link: "BottleneckLink") -> None:
        self.link = link
        #: Occupancy sum of the bin currently accumulating.
        self.occ_acc = 0.0
        #: Flushed per-bin values for bins ``0 .. Recorder._link_bin - 1``.
        self.occ_by_bin: List[float] = []
        self.served_by_bin: List[float] = []
        self.dropped_by_bin: List[float] = []
        #: Counter readings at the last flush (start of the current bin).
        self.prev_served = 0.0
        self.prev_drops = 0.0


class _FluidRecord:
    """Per-fluid-class accumulation buckets: offered/served/dropped bytes.

    Same counter-differencing scheme as :class:`_LinkRecord`: the class's
    own monotone byte counters are read once per bin boundary, so the
    recorder adds nothing to the fluid model's per-tick cost.
    """

    __slots__ = ("source", "link_name", "offered_by_bin", "served_by_bin",
                 "dropped_by_bin", "prev_offered", "prev_served",
                 "prev_dropped")

    def __init__(self, source, link_name: str) -> None:
        self.source = source
        self.link_name = link_name
        self.offered_by_bin: List[float] = []
        self.served_by_bin: List[float] = []
        self.dropped_by_bin: List[float] = []
        self.prev_offered = source.total_offered
        self.prev_served = source.total_served
        self.prev_dropped = source.total_dropped


class Recorder:
    """Bins deliveries and queue observations into fixed-width intervals."""

    def __init__(self, network: "Network", bin_width: float = 0.1) -> None:
        self.network = network
        self.bin_width = bin_width
        #: Insertion-ordered by first touch, which ``_select`` relies on to
        #: keep cross-flow accumulation order identical run to run.
        self._flows: Dict[int, _FlowRecord] = {}
        self._names: Dict[int, str] = {}
        self._link_qdelay_sum: List[float] = []
        self._link_qdelay_cnt: List[int] = []
        self._max_bin = 0
        # One record per topology link, in attachment order.  The engine
        # constructs its recorder after wiring the topology, so the link
        # set is fixed here; a bare single-link network records its one
        # bottleneck.  Tick counts per bin are shared with the monitor
        # series (every link is sampled on the same ticks).
        topology = getattr(network, "topology", None)
        links = topology.links if topology is not None else [network.link]
        self._link_records = [_LinkRecord(link) for link in links]
        self._link_index: Dict[str, _LinkRecord] = {
            record.link.name: record for record in self._link_records}
        #: The bin the link records are currently accumulating into.
        self._link_bin = 0
        #: Fluid-class records, keyed by class name in attachment order
        #: (classes register through the engine's ``attach_fluid_class``).
        self._fluid_records: Dict[str, _FluidRecord] = {}
        #: Single-link fast path: when the only link is the monitor link,
        #: its occupancy is already captured by the per-tick queue-delay
        #: sum (``queue_delay == queue_bytes / capacity``), so the bin
        #: occupancy can be derived at read time and ``on_tick`` does no
        #: extra per-link work at all.
        self._solo_record = (self._link_records[0]
                             if len(self._link_records) == 1
                             and self._link_records[0].link
                             is getattr(network, "link", None) else None)

    # ------------------------------------------------------------------ #
    # Hooks called by the engine
    # ------------------------------------------------------------------ #
    def _flow_record(self, flow_id: int) -> _FlowRecord:
        rec = self._flows.get(flow_id)
        if rec is None:
            rec = self._flows[flow_id] = _FlowRecord()
        return rec

    def register_fluid(self, fluid_class, link_name: str) -> None:
        """Start recording a fluid class's per-bin byte series.

        Called by ``TopologyNetwork.attach_fluid_class``.  Classes may
        attach mid-run: bins already closed are backfilled with zeros so
        every fluid series aligns with :meth:`times`.
        """
        name = fluid_class.name
        if name in self._fluid_records:
            raise ValueError(f"fluid class {name!r} already registered")
        record = _FluidRecord(fluid_class, link_name)
        closed = len(self._link_records[0].served_by_bin)
        if closed:
            record.offered_by_bin = [0.0] * closed
            record.served_by_bin = [0.0] * closed
            record.dropped_by_bin = [0.0] * closed
        self._fluid_records[name] = record

    def on_delivery(self, flow: "Flow", chunk: "Chunk", now: float) -> None:
        b = self._bin(now)
        rec = self._flow_record(flow.flow_id)
        self._names[flow.flow_id] = flow.name
        if b >= len(rec.bytes_by_bin):
            _grow(rec.bytes_by_bin, b, 0.0)
            _grow(rec.qdelay_sum, b, 0.0)
            _grow(rec.qdelay_cnt, b, 0)
        rec.bytes_by_bin[b] += chunk.size
        rec.qdelay_sum[b] += chunk.queue_delay * chunk.size
        rec.qdelay_cnt[b] += 1
        rec.qdelay_samples.append(chunk.queue_delay)
        if b > self._max_bin:
            self._max_bin = b

    def on_tick(self, now: float) -> None:
        b = self._bin(now)
        if b >= len(self._link_qdelay_sum):
            # Ticks advance monotonically and only this hook grows the
            # per-tick bins, so this branch fires exactly on the first
            # tick of every new bin — the one moment the link records
            # need their accumulating bin closed.
            _grow(self._link_qdelay_sum, b, 0.0)
            _grow(self._link_qdelay_cnt, b, 0)
            if b != self._link_bin:
                self._flush_link_bins(b)
        self._link_qdelay_sum[b] += self.network.link.queue_delay
        self._link_qdelay_cnt[b] += 1
        if b > self._max_bin:
            self._max_bin = b
        if self._solo_record is None:
            for record in self._link_records:
                record.occ_acc += record.link.queue_bytes
        # The engine's roster lists active flows in flow-id order — the
        # same order a scan over every flow ever created would visit them.
        flows = self.network.flows
        for flow_id in self.network.active_flow_ids():
            flow = flows[flow_id]
            if not flow.active:
                continue
            mode = getattr(flow.cc, "mode", None)
            if mode is not None:
                rec = self._flow_record(flow_id)
                self._names[flow_id] = flow.name
                rec.mode_by_bin[b] = mode
            rtt = flow.measurement.rtt
            if rtt > 0:
                self._flow_record(flow_id).rtt_samples.append(rtt)

    # ------------------------------------------------------------------ #
    # Series extraction
    # ------------------------------------------------------------------ #
    def times(self) -> np.ndarray:
        """Centre time of every bin recorded so far."""
        return (np.arange(self._max_bin + 1) + 0.5) * self.bin_width

    def throughput_series(self, name: Optional[str] = None,
                          flow_id: Optional[int] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, Mbit/s) delivered throughput, aggregated over matching flows."""
        ids = self._select(name, flow_id)
        nbins = self._max_bin + 1
        series = np.zeros(nbins)
        for fid in ids:
            rec = self._flows.get(fid)
            if rec is None:
                continue
            chunk_bytes = rec.bytes_by_bin
            series[:len(chunk_bytes)] += chunk_bytes
        rate = series / self.bin_width
        return self.times(), bytes_per_sec_to_mbps(rate)

    def queue_delay_series(self, name: Optional[str] = None,
                           flow_id: Optional[int] = None
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, ms) byte-weighted mean per-packet queueing delay per bin."""
        ids = self._select(name, flow_id)
        nbins = self._max_bin + 1
        dsum = np.zeros(nbins)
        bsum = np.zeros(nbins)
        for fid in ids:
            rec = self._flows.get(fid)
            if rec is None:
                continue
            dsum[:len(rec.qdelay_sum)] += rec.qdelay_sum
            bsum[:len(rec.bytes_by_bin)] += rec.bytes_by_bin
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = np.where(bsum > 0, dsum / np.maximum(bsum, 1e-12), 0.0)
        return self.times(), mean * 1e3

    def link_queue_delay_series(self, link_name: Optional[str] = None
                                ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, ms) average queueing delay per bin of one link.

        With no argument this is the monitor link's legacy series (sampled
        from ``queue_delay`` directly — numerically identical to the
        historical recorder); naming any topology link answers from that
        link's occupancy record instead.
        """
        if link_name is None:
            nbins = self._max_bin + 1
            series = np.zeros(nbins)
            qdelay_sum = self._link_qdelay_sum
            qdelay_cnt = self._link_qdelay_cnt
            for b in range(min(nbins, len(qdelay_cnt))):
                cnt = qdelay_cnt[b]
                if cnt:
                    series[b] = qdelay_sum[b] / cnt
            return self.times(), series * 1e3
        record = self._link_record(link_name)
        occ, _, _ = self._link_bins(record)
        times, occupancy = self._per_tick_mean(occ)
        return times, occupancy / record.link.capacity * 1e3

    def link_names(self) -> List[str]:
        """Names of the links this recorder samples, in attachment order."""
        return [record.link.name for record in self._link_records]

    def link_occupancy_series(self, link_name: str
                              ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, bytes) mean queued bytes per bin at the named link."""
        occ, _, _ = self._link_bins(self._link_record(link_name))
        return self._per_tick_mean(occ)

    def link_throughput_series(self, link_name: str
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, Mbit/s) bytes served per bin by the named link."""
        _, served, _ = self._link_bins(self._link_record(link_name))
        return self._per_bin_rate(served)

    def link_drop_series(self, link_name: str
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, Mbit/s) bytes dropped per bin at the named link."""
        _, _, dropped = self._link_bins(self._link_record(link_name))
        return self._per_bin_rate(dropped)

    def fluid_class_names(self) -> List[str]:
        """Names of the recorded fluid classes, in registration order."""
        return list(self._fluid_records)

    def fluid_link_of(self, class_name: str) -> str:
        """The link the named fluid class is attached to."""
        return self._fluid_record(class_name).link_name

    def fluid_offered_series(self, class_name: str
                             ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, Mbit/s) bytes the named fluid class offered per bin."""
        offered, _, _ = self._fluid_bins(self._fluid_record(class_name))
        return self._per_bin_rate(offered)

    def fluid_served_series(self, class_name: str
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, Mbit/s) bytes served to the named fluid class per bin."""
        _, served, _ = self._fluid_bins(self._fluid_record(class_name))
        return self._per_bin_rate(served)

    def fluid_drop_series(self, class_name: str
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, Mbit/s) bytes dropped from the named fluid class per bin."""
        _, _, dropped = self._fluid_bins(self._fluid_record(class_name))
        return self._per_bin_rate(dropped)

    def mode_series(self, name: Optional[str] = None,
                    flow_id: Optional[int] = None
                    ) -> Tuple[np.ndarray, List[Optional[str]]]:
        """(times, mode labels) for mode-switching flows; None where unknown."""
        ids = self._select(name, flow_id)
        nbins = self._max_bin + 1
        modes: List[Optional[str]] = [None] * nbins
        for fid in ids:
            rec = self._flows.get(fid)
            if rec is None:
                continue
            for b, mode in rec.mode_by_bin.items():
                modes[b] = mode
        return self.times(), modes

    def queue_delay_samples(self, name: Optional[str] = None,
                            flow_id: Optional[int] = None) -> np.ndarray:
        """All per-chunk queueing delay samples (seconds) for matching flows."""
        ids = self._select(name, flow_id)
        samples: List[float] = []
        for fid in ids:
            rec = self._flows.get(fid)
            if rec is not None:
                samples.extend(rec.qdelay_samples)
        return np.asarray(samples)

    def rtt_samples(self, name: Optional[str] = None,
                    flow_id: Optional[int] = None) -> np.ndarray:
        """All RTT samples (seconds) observed by matching flows."""
        ids = self._select(name, flow_id)
        samples: List[float] = []
        for fid in ids:
            rec = self._flows.get(fid)
            if rec is not None:
                samples.extend(rec.rtt_samples)
        return np.asarray(samples)

    def mean_throughput(self, name: Optional[str] = None,
                        flow_id: Optional[int] = None,
                        start: float = 0.0,
                        end: Optional[float] = None) -> float:
        """Mean delivered throughput in Mbit/s over [start, end]."""
        times, series = self.throughput_series(name, flow_id)
        if len(times) == 0:
            return 0.0
        end = end if end is not None else times[-1] + self.bin_width / 2
        mask = (times >= start) & (times <= end)
        if not mask.any():
            return 0.0
        return float(np.mean(series[mask]))

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _bin(self, now: float) -> int:
        # int() truncation == floor for the engine's non-negative clock.
        return int(now / self.bin_width)

    def _link_record(self, link_name: str) -> _LinkRecord:
        record = self._link_index.get(link_name)
        if record is None:
            raise KeyError(f"no recorded link named {link_name!r}; "
                           f"known: {self.link_names()}")
        return record

    def _flush_link_bins(self, b: int) -> None:
        """Close the accumulating link bin and advance to bin ``b``.

        Appends each record's occupancy sum and the served/dropped byte
        deltas since the previous flush, then pads zeros for any bins no
        tick landed in (only possible when ``bin_width < dt``).
        """
        gap = b - self._link_bin - 1
        for record in self._link_records:
            link = record.link
            record.occ_by_bin.append(record.occ_acc)
            record.occ_acc = 0.0
            served = link.total_served
            record.served_by_bin.append(served - record.prev_served)
            record.prev_served = served
            drops = link.total_drops
            record.dropped_by_bin.append(drops - record.prev_drops)
            record.prev_drops = drops
            if gap > 0:
                record.occ_by_bin.extend([0.0] * gap)
                record.served_by_bin.extend([0.0] * gap)
                record.dropped_by_bin.extend([0.0] * gap)
        for fluid in self._fluid_records.values():
            source = fluid.source
            offered = source.total_offered
            fluid.offered_by_bin.append(offered - fluid.prev_offered)
            fluid.prev_offered = offered
            served = source.total_served
            fluid.served_by_bin.append(served - fluid.prev_served)
            fluid.prev_served = served
            dropped = source.total_dropped
            fluid.dropped_by_bin.append(dropped - fluid.prev_dropped)
            fluid.prev_dropped = dropped
            if gap > 0:
                fluid.offered_by_bin.extend([0.0] * gap)
                fluid.served_by_bin.extend([0.0] * gap)
                fluid.dropped_by_bin.extend([0.0] * gap)
        self._link_bin = b

    def _link_bins(self, record: _LinkRecord
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(occupancy sums, served bytes, dropped bytes) per bin.

        Flushed bins come from the record's lists; the still-accumulating
        bin is read live (occupancy accumulator plus the counter deltas
        since the last flush), so series are current mid-run without
        mutating the record.
        """
        n = self._max_bin + 1
        occ = np.zeros(n)
        served = np.zeros(n)
        dropped = np.zeros(n)
        flushed = min(len(record.served_by_bin), n)
        served[:flushed] = record.served_by_bin[:flushed]
        dropped[:flushed] = record.dropped_by_bin[:flushed]
        current = self._link_bin
        if current < n:
            link = record.link
            served[current] += link.total_served - record.prev_served
            dropped[current] += link.total_drops - record.prev_drops
        if record is self._solo_record:
            # Fast path: the lone link is the monitor link, whose per-tick
            # queue-delay sum is ``queue_bytes / capacity`` — scale back up
            # instead of accumulating occupancy a second time.
            sums = self._link_qdelay_sum
            m = min(len(sums), n)
            if m:
                occ[:m] = (np.asarray(sums[:m], dtype=float)
                           * record.link.capacity)
        else:
            occ[:flushed] = record.occ_by_bin[:flushed]
            if current < n:
                occ[current] += record.occ_acc
        return occ, served, dropped

    def _fluid_record(self, class_name: str) -> _FluidRecord:
        record = self._fluid_records.get(class_name)
        if record is None:
            raise KeyError(f"no recorded fluid class named {class_name!r}; "
                           f"known: {self.fluid_class_names()}")
        return record

    def _fluid_bins(self, record: _FluidRecord
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(offered, served, dropped) bytes per bin for one fluid class.

        Flushed bins come from the record's lists; the still-accumulating
        bin is read live from the class's counters, mirroring
        :meth:`_link_bins`.
        """
        n = self._max_bin + 1
        offered = np.zeros(n)
        served = np.zeros(n)
        dropped = np.zeros(n)
        flushed = min(len(record.offered_by_bin), n)
        offered[:flushed] = record.offered_by_bin[:flushed]
        served[:flushed] = record.served_by_bin[:flushed]
        dropped[:flushed] = record.dropped_by_bin[:flushed]
        current = self._link_bin
        if current < n:
            source = record.source
            offered[current] += source.total_offered - record.prev_offered
            served[current] += source.total_served - record.prev_served
            dropped[current] += source.total_dropped - record.prev_dropped
        return offered, served, dropped

    def _per_tick_mean(self, sums: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-bin mean of a tick-accumulated sum (tick counts are shared
        across links: every link is sampled on every tick)."""
        series = np.zeros(len(sums))
        counts = self._link_qdelay_cnt
        m = min(len(sums), len(counts))
        if m:
            cnt = np.asarray(counts[:m], dtype=float)
            series[:m] = np.divide(sums[:m], cnt, out=np.zeros(m),
                                   where=cnt > 0)
        return self.times(), series

    def _per_bin_rate(self, by_bin: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-bin byte totals as an Mbit/s rate series."""
        return self.times(), bytes_per_sec_to_mbps(by_bin / self.bin_width)

    def _select(self, name: Optional[str], flow_id: Optional[int]) -> List[int]:
        if flow_id is not None:
            return [flow_id]
        if name is None:
            return list(self._flows.keys())
        return [fid for fid, n in self._names.items() if n == name]
