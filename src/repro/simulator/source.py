"""Application-layer sources that feed bytes to a transport flow.

A source decides how many bytes the application has made available for
transmission at any point in time.  A *backlogged* source always has data
(the "bulk transfer" of the paper's experiments); a *finite* source models a
single flow of a given size whose completion time can be measured; richer
sources (Poisson/CBR streams, DASH video) live in :mod:`repro.traffic` and
implement the same interface.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class Source(ABC):
    """Interface between the application model and a transport flow."""

    @abstractmethod
    def available(self, now: float) -> float:
        """Bytes the application is ready to hand to the transport at ``now``."""

    def consume(self, nbytes: float, now: float) -> None:
        """Called when the transport sends ``nbytes`` of application data."""

    def on_delivered(self, nbytes: float, now: float) -> None:
        """Called when ``nbytes`` are acknowledged end to end."""

    def on_lost(self, nbytes: float, now: float) -> None:
        """Called when ``nbytes`` are reported lost (they must be resent)."""

    @property
    def finished(self) -> bool:
        """True when the source has no more data to send, ever."""
        return False

    def advance(self, now: float, dt: float) -> None:
        """Per-tick hook for sources that generate data over time."""


class BackloggedSource(Source):
    """An always-full sending buffer: the flow is never application-limited."""

    def available(self, now: float) -> float:
        return math.inf

    def __repr__(self) -> str:
        return "BackloggedSource()"


class FiniteSource(Source):
    """A flow that transfers exactly ``size_bytes`` and then completes.

    Lost bytes are added back to the outstanding amount, mimicking
    retransmission, so the delivered total always reaches ``size_bytes``
    before the flow is considered done.
    """

    def __init__(self, size_bytes: float) -> None:
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        self.size_bytes = size_bytes
        self._unsent = float(size_bytes)
        self._delivered = 0.0

    def available(self, now: float) -> float:
        return self._unsent

    def consume(self, nbytes: float, now: float) -> None:
        self._unsent = max(0.0, self._unsent - nbytes)

    def on_delivered(self, nbytes: float, now: float) -> None:
        self._delivered += nbytes

    def on_lost(self, nbytes: float, now: float) -> None:
        # Lost bytes must be retransmitted before the transfer is complete.
        self._unsent += nbytes

    @property
    def delivered(self) -> float:
        """Bytes delivered so far."""
        return self._delivered

    @property
    def finished(self) -> bool:
        return self._unsent <= 1e-9 and self._delivered >= self.size_bytes - 1.0

    def __repr__(self) -> str:
        return f"FiniteSource(size_bytes={self.size_bytes:.0f})"


class PacedSource(Source):
    """Application writes data into the socket buffer at a constant rate.

    This models inelastic, application-limited traffic such as a constant
    bit-rate stream: regardless of what the transport or the network do, the
    application only produces ``rate`` bytes per second.
    """

    def __init__(self, rate: float, max_backlog: float | None = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.max_backlog = max_backlog
        self._backlog = 0.0

    def advance(self, now: float, dt: float) -> None:
        self._backlog += self.rate * dt
        if self.max_backlog is not None:
            self._backlog = min(self._backlog, self.max_backlog)

    def available(self, now: float) -> float:
        return self._backlog

    def consume(self, nbytes: float, now: float) -> None:
        self._backlog = max(0.0, self._backlog - nbytes)

    def __repr__(self) -> str:
        return f"PacedSource(rate={self.rate:.0f} B/s)"
