"""Multi-hop topology engine: paths of store-and-forward links.

This module generalises the reproduction's single-bottleneck engine into a
small network-of-queues simulator.  A :class:`Topology` is an ordered set of
named :class:`~repro.simulator.link.BottleneckLink`\\ s, each with its own
queue policy and a *downstream propagation delay* — the time a chunk spends
on the wire between leaving that link and reaching the next hop.  A
:class:`Path` names the ordered subset of links a flow traverses; the
:class:`TopologyNetwork` engine routes every served chunk hop by hop through
its flow's path using the same calendar event queue that drives the
single-link engine.

Timing model (a strict superset of the single-link engine's):

* senders are adjacent to the first link of their path — an emitted chunk
  enters that queue in the same tick,
* a chunk served by an *intermediate* link is scheduled to arrive at the
  next hop's queue after that link's propagation delay (a ``_HOP`` event),
* a chunk served by the *last* link of its path reaches the receiver after
  the flow's ``delay_to_receiver`` and is acknowledged after the flow's
  ``delay_ack`` (exactly the legacy behaviour), so a flow's base RTT is
  ``sum(intermediate link delays) + flow.prop_rtt``,
* bytes dropped at any hop are reported to the sender one remaining-path
  -plus-ACK delay after the drop, which is when duplicate ACKs would reveal
  the hole.

With a single-link topology no ``_HOP`` event ever fires and the engine
pushes exactly the same events, in the same order, with the same counter
values, as the historical ``Network`` — the single-bottleneck numbers are
bit-identical (see ``tests/test_topology.py``).

Event storage is a *calendar queue*: because every event dispatches on a
tick boundary anyway, events are filed under the integer tick at which they
fire instead of being kept in one global heap.  Pushing is O(1), a tick's
dispatch sorts just that tick's handful of events, and the tick an event
fires on is computed against the engine's own future clock readings — the
exact floats ``now += dt`` will produce — so dispatch grouping is
bit-identical to the historical heap implementation, including the
``1e-12`` boundary tolerance.  Workloads with thousands of short cross
flows additionally benefit from the engine keeping an explicit roster of
*active* flows: finished flows cost nothing per tick instead of being
re-scanned forever.
"""

from __future__ import annotations

import os
import random
from array import array
from bisect import bisect_left, insort
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .aqm import QueuePolicy
from .endpoint import Flow
from .fluid import FluidClass, FluidLinkState
from .link import BottleneckLink
from .packet import Ack, Chunk
from .telemetry import TraceSink, sink_from_env
from .trace import Recorder

#: Slack applied to every "has this event's time arrived?" comparison, kept
#: identical to the historical heap-based engine so dispatch grouping (and
#: therefore every downstream number) is unchanged.
_EPS = 1e-12

#: Events further ahead than this many ticks bypass the calendar and wait in
#: a small spill-over heap, so one far-future ``schedule_call`` cannot force
#: the future-clock array to materialise millions of entries up front.
_SPILL_TICKS = 1 << 20

#: Tick period of the ``REPRO_AUDIT=1`` conservation re-check (``REPRO_AUDIT``
#: set to an integer > 1 overrides the period directly).
_AUDIT_DEFAULT_TICKS = 256

#: Tick period of the ``fluid_sample`` telemetry emission (trace-enabled
#: runs with fluid classes only): 0.1 s at the standard 2 ms tick, the same
#: cadence as the recorder's bins.
_FLUID_TRACE_TICKS = 50


class AuditError(AssertionError):
    """A ``REPRO_AUDIT`` invariant re-check failed mid-run."""


class _EngineStats:
    """The :meth:`TopologyNetwork.engine_stats` counters, in one slot.

    A single slotted holder instead of four instance attributes: CPython
    caps shared-key instance dicts at 30 entries, and spilling the network
    past that line materializes a per-instance table that slows every
    ``self.<attr>`` load on the hot path.
    """

    __slots__ = ("executed", "spill_peak", "roster_peak", "buckets_created")

    def __init__(self) -> None:
        self.executed = 0
        self.spill_peak = 0
        self.roster_peak = 0
        self.buckets_created = 0


def _audit_period_from_env(environ=None) -> int:
    """The conservation-audit period in ticks; 0 when auditing is off."""
    environ = os.environ if environ is None else environ
    raw = environ.get("REPRO_AUDIT", "").strip().lower()
    if not raw or raw in ("0", "false", "no", "off"):
        return 0
    try:
        period = int(raw)
    except ValueError:
        return _AUDIT_DEFAULT_TICKS
    return period if period > 1 else _AUDIT_DEFAULT_TICKS


@dataclass(frozen=True)
class Path:
    """An ordered route through a topology, as a tuple of link names.

    Paths are frozen and hashable so they can ride inside canonicalised
    scenario parameters.  Resolution against a concrete topology (names to
    link indices, validation) happens in :meth:`Topology.resolve_path`.
    """

    links: Tuple[str, ...]

    def __init__(self, links: Iterable[str]) -> None:
        object.__setattr__(self, "links", tuple(links))
        if not self.links:
            raise ValueError("a Path needs at least one link")
        if any(not isinstance(name, str) for name in self.links):
            raise TypeError("Path links are link names (strings)")

    @classmethod
    def of(cls, *links: str) -> "Path":
        return cls(links)

    def __iter__(self) -> Iterator[str]:
        return iter(self.links)

    def __len__(self) -> int:
        return len(self.links)


#: Anything accepted where a path is expected: ``None`` (the topology's
#: full chain), a single link name, a :class:`Path`, or a sequence of link
#: names / link indices.
PathLike = Union[None, str, Path, Sequence[Union[str, int]]]


class Topology:
    """Named links wired into a linear chain, each with its own queue
    policy and downstream propagation delay.

    The *default path* is the full chain in insertion order; flows may
    instead follow any ordered subset (e.g. a parking-lot cross flow that
    enters and leaves at one hop).  One link is the *monitor* link — the
    queue the :class:`~repro.simulator.trace.Recorder` tracks and the one
    exposed as ``network.link`` for single-bottleneck compatibility; it
    defaults to the first link attached.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        #: Links in insertion order; positions double as link ids.
        self.links: List[BottleneckLink] = []
        #: links[i]'s propagation delay to the next hop, in seconds.
        self.delays: List[float] = []
        self._index: Dict[str, int] = {}
        self._monitor = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def attach(self, link: BottleneckLink, delay: float = 0.0,
               monitor: bool = False) -> BottleneckLink:
        """Wire an existing link into the chain (appended at the tail)."""
        if delay < 0:
            raise ValueError("propagation delay must be >= 0")
        if link.name in self._index:
            raise ValueError(f"duplicate link name {link.name!r}")
        self._index[link.name] = len(self.links)
        self.links.append(link)
        self.delays.append(delay)
        if monitor:
            self._monitor = len(self.links) - 1
        return link

    def add_link(self, name: str, capacity: float, delay: float = 0.0,
                 policy: Optional[QueuePolicy] = None,
                 monitor: bool = False) -> BottleneckLink:
        """Create and attach a link: per-hop capacity, delay, queue policy."""
        return self.attach(BottleneckLink(capacity, policy=policy, name=name),
                           delay=delay, monitor=monitor)

    @classmethod
    def single(cls, link: BottleneckLink) -> "Topology":
        """The degenerate one-link topology the legacy ``Network`` wraps."""
        topology = cls(name=f"single[{link.name}]")
        topology.attach(link, delay=0.0, monitor=True)
        return topology

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no link named {name!r}; "
                           f"known: {sorted(self._index)}") from None

    def link(self, name: str) -> BottleneckLink:
        return self.links[self.index_of(name)]

    def delay_of(self, name: str) -> float:
        return self.delays[self.index_of(name)]

    def set_monitor(self, name: str) -> None:
        self._monitor = self.index_of(name)

    @property
    def monitor_link(self) -> BottleneckLink:
        """The link recorded by the engine's Recorder (``network.link``)."""
        return self.links[self._monitor]

    # ------------------------------------------------------------------ #
    # Path resolution
    # ------------------------------------------------------------------ #
    def resolve_path(self, path: PathLike = None) -> Tuple[int, ...]:
        """Normalise any :data:`PathLike` into a tuple of link positions.

        ``None`` resolves to the full chain in insertion order — which for
        a single-link topology is exactly the legacy behaviour.
        """
        if not self.links:
            raise ValueError("topology has no links")
        if path is None:
            return tuple(range(len(self.links)))
        if isinstance(path, str):
            names: Sequence[Union[str, int]] = (path,)
        elif isinstance(path, Path):
            names = path.links
        else:
            names = tuple(path)
        if not names:
            raise ValueError("a path needs at least one link")
        route = tuple(name if isinstance(name, int) else self.index_of(name)
                      for name in names)
        for position in route:
            if not 0 <= position < len(self.links):
                raise IndexError(f"link position {position} out of range")
        for before, after in zip(route, route[1:]):
            if before == after:
                raise ValueError(
                    f"path visits link {self.links[before].name!r} twice "
                    f"in a row")
        return route

    def __repr__(self) -> str:
        hops = " -> ".join(
            f"{link.name}(+{delay * 1e3:.0f}ms)"
            for link, delay in zip(self.links, self.delays))
        return f"Topology({self.name!r}: {hops})"


class TopologyNetwork:
    """Tick-driven engine over a :class:`Topology` of store-and-forward hops.

    Args:
        topology: The wired set of links flows traverse.
        dt: Simulation tick in seconds.
        seed: Seed for the network-level random number generator (exposed to
            traffic generators for reproducibility).
        trace: Optional :class:`~repro.simulator.telemetry.TraceSink` the
            engine narrates structured events to.  ``None`` (the default)
            falls back to the environment (``REPRO_TRACE``); with no sink
            configured every emission site reduces to one pointer check and
            the run is numerically identical to an untraced engine.
    """

    #: Event kinds handled by the engine loop.
    _DELIVER = 0
    _ACK = 1
    _LOSS = 2
    _CALL = 3
    _START = 4
    _HOP = 5

    def __init__(self, topology: Topology, dt: float = 0.001,
                 seed: int = 0, trace: Optional[TraceSink] = None) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        if not topology.links:
            raise ValueError("topology has no links")
        self.topology = topology
        #: The monitor link: what the Recorder tracks and what single-
        #: bottleneck code reaches via ``network.link``.
        self.link = topology.monitor_link
        self._links = topology.links
        self._link_delays = topology.delays
        self.dt = dt
        self.now = 0.0
        self.rng = random.Random(seed)
        self.flows: List[Flow] = []
        #: Per-flow routes (tuples of link positions), indexed by flow id.
        self._routes: List[Tuple[int, ...]] = []
        #: Hot-path mirrors of ``_routes``: the link a flow's emissions
        #: enter, and the index of its final hop, both by flow id — one
        #: list index on the per-chunk paths instead of a route unpack.
        self._entry_links: List[BottleneckLink] = []
        self._last_hop: List[int] = []
        self.recorder = Recorder(self)
        #: Calendar: tick index -> [(time, counter, kind, payload), ...].
        self._calendar: dict = {}
        #: Clock readings the engine will produce: entry ``k - _times_base``
        #: is exactly the value ``self.now`` takes at tick ``k`` (generated
        #: by the same repeated ``+ dt``), so bucket placement can reproduce
        #: the heap engine's boundary behaviour bit for bit.  The consumed
        #: prefix is trimmed periodically, keeping memory proportional to
        #: the scheduling lookahead rather than the total ticks simulated.
        self._future_times = array("d", (0.0,))
        self._times_base = 0
        self._tick = 0
        self._counter = 0
        #: Heap of events beyond the calendar horizon; migrated into the
        #: calendar long before they are due.
        self._spill: list = []
        self._spill_span = _SPILL_TICKS * dt
        self._migrate_span = (_SPILL_TICKS // 2) * dt
        #: Min-heap holding the tick currently being dispatched; events
        #: pushed *during* dispatch that are already due join it so they run
        #: this tick, exactly as they would have popped from a global heap.
        self._live: list = []
        self._dispatching = False
        #: Sorted flow ids (== positions in ``flows``) of started,
        #: unfinished flows.  Per-tick work scales with this roster, not
        #: with every flow ever created.
        self._active: List[int] = []
        self._next_flow_id = 0
        #: Flight recorder: ``None`` keeps every emission site to a single
        #: pointer check, so an untraced run is numerically unchanged.
        self._sink: Optional[TraceSink] = (trace if trace is not None
                                           else sink_from_env())
        #: Last mode observed per mode-switching flow (trace-only state).
        self._last_modes: Dict[int, str] = {}
        #: ``REPRO_AUDIT`` conservation re-check period in ticks (0 = off).
        self._audit_every = _audit_period_from_env()
        #: Per-link fluid aggregates (see :mod:`repro.simulator.fluid`).
        #: Empty for every network without fluid classes, in which case
        #: the main loop's only extra cost is one truthiness check.
        self._fluid_states: List[FluidLinkState] = []
        # engine_stats() counters; _counter above doubles as "scheduled".
        self._stats = _EngineStats()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_flow(self, flow: Flow, start: Optional[float] = None,
                 path: PathLike = None) -> Flow:
        """Register a flow; it starts at ``start`` (default ``flow.start_time``).

        ``path`` names the links the flow traverses, in order (any
        :data:`PathLike`); by default the flow follows the topology's full
        chain, which on a single-link topology is the legacy behaviour.
        """
        # Resolve (and validate) the path before touching any engine state,
        # so a bad path name leaves the engine exactly as it was.
        route = self.topology.resolve_path(path)
        flow.flow_id = self._next_flow_id
        self._next_flow_id += 1
        self.flows.append(flow)
        self._routes.append(route)
        self._entry_links.append(self._links[route[0]])
        self._last_hop.append(len(route) - 1)
        start_time = flow.start_time if start is None else start
        flow.start_time = start_time
        if start_time <= self.now:
            flow.start(self.now)
            if flow.active:
                insort(self._active, flow.flow_id)
                if len(self._active) > self._stats.roster_peak:
                    self._stats.roster_peak = len(self._active)
        else:
            self._push(start_time, self._START, flow)
        if self._sink is not None:
            self._sink.emit({
                "time": self.now, "event": "flow_start",
                "flow_id": flow.flow_id, "flow": flow.name,
                "cc": flow.cc.name,
                "path": [self._links[i].name for i in route],
                "start": start_time})
        return flow

    def route_of(self, flow_id: int) -> Tuple[BottleneckLink, ...]:
        """The links flow ``flow_id`` traverses, in order."""
        links = self._links
        return tuple(links[position] for position in self._routes[flow_id])

    def schedule_call(self, time: float, fn: Callable[[float], None]) -> None:
        """Run ``fn(now)`` at the given simulation time (>= now)."""
        self._push(max(time, self.now), self._CALL, fn)

    def attach_fluid_class(self, fluid_class: FluidClass,
                           link: Optional[str] = None) -> FluidClass:
        """Attach an aggregate background-traffic class to a link.

        ``link`` names any topology link; ``None`` targets the monitor
        link (the single-bottleneck default).  Class names must be unique
        across the network — the recorder and telemetry key on them.
        Each tick the class offers bytes to that link's queue through its
        normal admission policy, shares its service budget in proportion
        to queued bytes, and participates in the conservation audit (see
        :mod:`repro.simulator.fluid`).
        """
        target = self.link if link is None else self.topology.link(link)
        for state in self._fluid_states:
            for existing in state.classes:
                if existing.name == fluid_class.name:
                    raise ValueError(f"duplicate fluid class name "
                                     f"{fluid_class.name!r}")
        state = target.fluid
        if state is None:
            state = target.fluid = FluidLinkState(target)
            self._fluid_states.append(state)
        state.classes.append(fluid_class)
        self.recorder.register_fluid(fluid_class, target.name)
        return fluid_class

    def fluid_classes(self) -> List[FluidClass]:
        """Every attached fluid class, in attachment order."""
        return [cls for state in self._fluid_states
                for cls in state.classes]

    def flush_link_queue(self, name: str) -> float:
        """Drop every byte queued at the named link; returns bytes flushed.

        Used by "drop"-policy link flaps (see
        :mod:`repro.simulator.faults`).  Each affected flow gets one
        aggregated loss-feedback event after the usual remaining-path-plus-
        ACK delay, exactly like an admission drop at that hop, and one
        ``drop`` trace event per flow is emitted.
        """
        position = self.topology.index_of(name)
        link = self._links[position]
        fluid_flushed = (link.fluid.flush(self.now)
                         if link.fluid is not None else 0.0)
        drops = link.flush(self.now)
        if not drops:
            return fluid_flushed
        sink = self._sink
        flushed = fluid_flushed
        for drop in drops:
            flushed += drop.lost_bytes
            flow = self.flows[drop.flow_id]
            feedback, hop = self._drop_feedback_delay(position, drop.flow_id)
            self._push(self.now + feedback, self._LOSS, drop)
            if sink is not None:
                sink.emit({
                    "time": self.now, "event": "drop",
                    "flow_id": drop.flow_id, "flow": flow.name,
                    "link": link.name, "hop": hop,
                    "bytes": drop.lost_bytes})
        return flushed

    def _drop_feedback_delay(self, position: int,
                             flow_id: int) -> Tuple[float, int]:
        """Feedback delay and hop index for a queue drop at ``position``.

        Path-routed flows locate the link inside their frozen route;
        destination-routed subclasses override this, because a chunk's hop
        index is not derivable from the link alone once tables can change.
        """
        route = self._routes[flow_id]
        hop = route.index(position)
        return (self._loss_feedback_delay(route, hop, self.flows[flow_id]),
                hop)

    def on_link_down(self, name: str) -> None:
        """Routing hook: the named link stopped carrying traffic.

        Called by :mod:`repro.simulator.faults` when a ``link_flap``
        down-window opens.  Path-routed networks have nowhere to move
        traffic, so this is a no-op; :class:`~repro.simulator.routing.
        RoutedNetwork` schedules a convergence pass.
        """

    def on_link_up(self, name: str) -> None:
        """Routing hook: the named link came back into service."""

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self, until: float) -> None:
        """Advance the simulation until the given absolute time."""
        while self.now < until - _EPS:
            self.step()
        if self._sink is not None:
            self._sink.flush()

    def run_for(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.run(self.now + duration)

    def step(self) -> None:
        """Advance the simulation by one tick."""
        self._tick += 1
        times = self._future_times
        index = self._tick - self._times_base
        if len(times) <= index:
            times.append(times[-1] + self.dt)
        if index >= 4096:
            # Nothing ever reads clock entries behind the current tick:
            # drop the consumed prefix (values ahead are untouched, so the
            # repeated-``+ dt`` chain — and every number — is unchanged).
            del times[:index]
            self._times_base = self._tick
            index = 0
        self.now = now = times[index]
        spill = self._spill
        if spill and spill[0][0] <= now + self._migrate_span:
            calendar = self._calendar
            while spill and spill[0][0] <= now + self._migrate_span:
                entry = heappop(spill)
                bucket = self._bucket_of(entry[0])
                events = calendar.get(bucket)
                if events is None:
                    calendar[bucket] = [entry]
                    self._stats.buckets_created += 1
                else:
                    events.append(entry)
        self._dispatch_events(now)
        self._emit_all(now)
        if self._fluid_states:
            self._fluid_tick(now)
        self._serve_links(now)
        self.recorder.on_tick(now)
        if self._sink is not None:
            self._trace_modes(now)
        if self._audit_every and not self._tick % self._audit_every:
            self.audit_conservation()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _push(self, time: float, kind: int, payload) -> None:
        self._counter += 1
        entry = (time, self._counter, kind, payload)
        if self._dispatching and time <= self.now + _EPS:
            # Due while this very tick is dispatching: join the live heap.
            # Counted as executed up front; the dispatch loop drains the
            # heap, and its finally block subtracts anything left behind.
            heappush(self._live, entry)
            self._stats.executed += 1
            return
        if time - self.now > self._spill_span:
            heappush(self._spill, entry)
            if len(self._spill) > self._stats.spill_peak:
                self._stats.spill_peak = len(self._spill)
            return
        bucket = self._bucket_of(time)
        events = self._calendar.get(bucket)
        if events is None:
            self._calendar[bucket] = [entry]
            self._stats.buckets_created += 1
        else:
            events.append(entry)

    def _bucket_of(self, time: float) -> int:
        """First future tick whose clock reading satisfies ``time <= now + eps``.

        Evaluated against :attr:`_future_times`, i.e. against the exact
        floats the main loop will assign to ``self.now``, so the answer
        matches what a global heap would have done at every boundary.
        """
        times = self._future_times
        dt = self.dt
        base = self._times_base
        floor = self._tick + 1
        k = self._tick + int((time - self.now) / dt)
        if k < floor:
            k = floor
        while len(times) <= k - base:
            times.append(times[-1] + dt)
        while times[k - base] < time - _EPS:
            k += 1
            if len(times) <= k - base:
                times.append(times[-1] + dt)
        while k > floor and times[k - 1 - base] >= time - _EPS:
            k -= 1
        return k

    def _dispatch_events(self, now: float) -> None:
        bucket = self._calendar.pop(self._tick, None)
        if bucket is None:
            return
        # Entries sort by (time, counter): the order a global heap would
        # pop them in.  A sorted list is a valid min-heap, so same-tick
        # pushes made by handlers can be merged in without re-sorting.
        bucket.sort()
        live = self._live = bucket
        entered = len(live)
        self._dispatching = True
        try:
            flows = self.flows
            sink = self._sink
            due = now + _EPS
            while live and live[0][0] <= due:
                _, _, kind, payload = heappop(live)
                if kind == self._DELIVER:
                    self._deliver(payload, now)
                elif kind == self._ACK:
                    flow = flows[payload.flow_id]
                    if not flow.finished:
                        flow.handle_ack(payload, now)
                        if sink is not None:
                            sink.emit({
                                "time": now, "event": "ack",
                                "flow_id": payload.flow_id,
                                "flow": flow.name,
                                "bytes": payload.acked_bytes,
                                "rtt": now - payload.sent_time,
                                "queue_delay": payload.queue_delay})
                        if flow.finished:
                            self._deactivate(flow.flow_id)
                elif kind == self._LOSS:
                    flow = flows[payload.flow_id]
                    if not flow.finished:
                        flow.handle_loss(payload.lost_bytes, now)
                        if sink is not None:
                            sink.emit({
                                "time": now, "event": "loss",
                                "flow_id": payload.flow_id,
                                "flow": flow.name,
                                "bytes": payload.lost_bytes})
                elif kind == self._CALL:
                    payload(now)
                elif kind == self._START:
                    payload.start(now)
                    if payload.active:
                        insort(self._active, payload.flow_id)
                        if len(self._active) > self._stats.roster_peak:
                            self._stats.roster_peak = len(self._active)
                elif kind == self._HOP:
                    self._forward(payload, now)
        finally:
            # Popped count, without a per-event increment: everything that
            # entered the heap (same-tick joins were pre-counted in
            # ``_push``) minus whatever an exception left behind.
            self._dispatching = False
            if live:
                # A handler raised mid-tick.  The old global heap kept the
                # undispatched remainder queued; refile it for the next
                # tick so a caller that catches the error and resumes does
                # not silently lose in-flight deliveries and ACKs.
                self._calendar.setdefault(self._tick + 1, []).extend(live)
                entered -= len(live)
            self._stats.executed += entered
            self._live = []

    def _deactivate(self, flow_id: int) -> None:
        index = bisect_left(self._active, flow_id)
        if index < len(self._active) and self._active[index] == flow_id:
            del self._active[index]
            if self._sink is not None:
                flow = self.flows[flow_id]
                self._sink.emit({
                    "time": self.now, "event": "flow_finish",
                    "flow_id": flow_id, "flow": flow.name,
                    "fct": flow.fct})

    def _deliver(self, chunk: Chunk, now: float) -> None:
        """Chunk reaches the receiver; generate the acknowledgement."""
        flow = self.flows[chunk.flow_id]
        ack = Ack(flow_id=chunk.flow_id, acked_bytes=chunk.size,
                  sent_time=chunk.sent_time, queue_delay=chunk.queue_delay,
                  delivered_time=now)
        self.recorder.on_delivery(flow, chunk, now)
        if self._sink is not None:
            self._sink.emit({
                "time": now, "event": "delivery",
                "flow_id": chunk.flow_id, "flow": flow.name,
                "bytes": chunk.size, "seq": chunk.seq,
                "queue_delay": chunk.queue_delay})
        self._push(now + flow.delay_ack, self._ACK, ack)

    def _forward(self, chunk: Chunk, now: float) -> None:
        """Chunk arrives at an intermediate hop; enter that hop's queue.

        Bytes the hop's policy refuses become loss feedback to the sender
        after the remaining path-plus-ACK delay, exactly like first-hop
        drops.  ``queue_delay`` keeps accumulating across hops because
        every link adds its own waiting time to the same chunk field.
        """
        sink = self._sink
        route = self._routes[chunk.flow_id]
        link = self._links[route[chunk.hop]]
        if sink is not None:
            sink.emit({
                "time": now, "event": "hop",
                "flow_id": chunk.flow_id,
                "flow": self.flows[chunk.flow_id].name,
                "link": link.name, "hop": chunk.hop,
                "bytes": chunk.size, "seq": chunk.seq})
        drops = link.enqueue(chunk, now)
        if drops:
            flow = self.flows[chunk.flow_id]
            feedback_delay = self._loss_feedback_delay(route, chunk.hop, flow)
            for drop in drops:
                self._push(now + feedback_delay, self._LOSS, drop)
            if sink is not None:
                for drop in drops:
                    sink.emit({
                        "time": now, "event": "drop",
                        "flow_id": drop.flow_id, "flow": flow.name,
                        "link": link.name, "hop": chunk.hop,
                        "bytes": drop.lost_bytes})

    def _loss_feedback_delay(self, route: Tuple[int, ...], hop: int,
                             flow: Flow) -> float:
        """Time for a drop at ``route[hop]`` to surface at the sender.

        Remaining downstream propagation (carried by the packets behind the
        hole) plus the receiver leg and the ACK path; queueing on the way
        is ignored, as it was in the single-link engine.
        """
        delays = self._link_delays
        extra = 0.0
        for position in route[hop:-1]:
            extra += delays[position]
        return extra + flow.delay_to_receiver + flow.delay_ack

    def _emit_all(self, now: float) -> None:
        # Rotate the service order every tick so that when the buffer is
        # nearly full the tail-drop losses are shared across flows, as they
        # would be with interleaved packets, instead of always falling on
        # the flows that happen to be listed last.  The rotation point is
        # still computed over every flow ever added, so the visit order of
        # the surviving active flows matches the historical full scan.
        active = self._active
        if not active:
            return
        entry_links = self._entry_links
        sink = self._sink
        start = int(round(now / self.dt)) % len(self.flows)
        pivot = bisect_left(active, start)
        stale = None
        for flow_id in active[pivot:] + active[:pivot]:
            flow = self.flows[flow_id]
            if not flow.active:
                # Stopped from a callback; drop it from the roster lazily.
                if stale is None:
                    stale = [flow_id]
                else:
                    stale.append(flow_id)
                continue
            chunk = flow.emit(now, self.dt)
            if chunk is None:
                continue
            link = entry_links[flow_id]
            if sink is not None:
                # Before admission: ``enqueue`` records the offered bytes
                # (the policy may trim ``chunk.size`` down to the admitted
                # remainder, which the paired ``drop`` event accounts for).
                sink.emit({
                    "time": now, "event": "enqueue",
                    "flow_id": flow_id, "flow": flow.name,
                    "link": link.name, "hop": 0,
                    "bytes": chunk.size, "seq": chunk.seq})
            drops = link.enqueue(chunk, now)
            if drops:
                feedback_delay = self._loss_feedback_delay(
                    self._routes[flow_id], 0, flow)
                for drop in drops:
                    self._push(now + feedback_delay, self._LOSS, drop)
                if sink is not None:
                    for drop in drops:
                        sink.emit({
                            "time": now, "event": "drop",
                            "flow_id": drop.flow_id, "flow": flow.name,
                            "link": link.name, "hop": 0,
                            "bytes": drop.lost_bytes})
        if stale is not None:
            for flow_id in stale:
                self._deactivate(flow_id)

    def _fluid_tick(self, now: float) -> None:
        """Offer every fluid class's per-tick demand to its link's queue.

        Runs between flow emission and link service — the fluid analogue
        of ``_emit_all`` — so fluid bytes compete with tracked flows'
        chunks for the same admission decision and the same service
        budget within a tick.
        """
        dt = self.dt
        for state in self._fluid_states:
            link = state.link
            refuse = not link.up and link._refuse_arrivals
            policy = link.policy
            capacity = link.capacity
            # Chunks emitted earlier in this same tick already claimed
            # queue space; admit the fluid against the start-of-tick
            # queue instead, so both halves of the traffic compete for
            # the same freed space and a full buffer's overflow lands on
            # both in proportion — not all on whoever enqueues last.
            queued_base = link.queue_bytes - state.tick_admitted
            if queued_base < 0.0:
                queued_base = 0.0
            state.tick_admitted = 0.0
            chunk_arrivals = state.tick_offered
            state.tick_offered = 0.0
            state.loss_debt = 0.0
            for cls in state.classes:
                offered = cls.offer(now, dt, link.queue_delay)
                if offered <= 0.0:
                    continue
                if refuse:
                    admitted = 0.0
                else:
                    queued = queued_base + state.backlog
                    admitted = policy.admit(offered, queued,
                                            queued / capacity, now)
                    admitted = max(0.0, min(offered, admitted))
                    lost = offered - admitted
                    if lost > 1e-9 and chunk_arrivals > 0.0:
                        # In an interleaved FIFO each dropped packet of
                        # this overflow belongs to the packet side with
                        # probability equal to its arrival share.  Sample
                        # that per lost packet (not spread byte-wise:
                        # a loss-event of any size costs a tracked flow a
                        # full multiplicative decrease, so incidence must
                        # match, not just byte volume) and charge the
                        # sampled bytes to the next arriving chunks via
                        # the link's loss debt; the fluid keeps the rest,
                        # requeueing what it no longer owns.
                        transfer = cls.sample_overflow_transfer(
                            lost, chunk_arrivals
                            / (chunk_arrivals + offered))
                        if transfer > 0.0:
                            state.loss_debt += transfer
                            admitted += transfer
                cls.commit(offered, admitted, now)
        sink = self._sink
        if sink is not None and not self._tick % _FLUID_TRACE_TICKS:
            for state in self._fluid_states:
                link_name = state.link.name
                for cls in state.classes:
                    sink.emit({
                        "time": now, "event": "fluid_sample",
                        "link": link_name, "class": cls.name,
                        "kind": cls.kind,
                        "offered": cls.total_offered,
                        "served": cls.total_served,
                        "dropped": cls.total_dropped,
                        "backlog": cls.backlog,
                        "rate": cls.current_rate,
                        "flows": cls.active_flows})

    def _serve_links(self, now: float) -> None:
        flows = self.flows
        last_hop = self._last_hop
        dt = self.dt
        for position, link in enumerate(self._links):
            served = link.service(now, dt)
            if not served:
                continue
            delay = self._link_delays[position]
            for chunk in served:
                flow_id = chunk.flow_id
                if chunk.hop == last_hop[flow_id]:
                    self._push(now + flows[flow_id].delay_to_receiver,
                               self._DELIVER, chunk)
                else:
                    chunk.hop += 1
                    self._push(now + delay, self._HOP, chunk)

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    @property
    def trace_sink(self) -> Optional[TraceSink]:
        """The attached trace sink, if any."""
        return self._sink

    def set_trace_sink(self, sink: Optional[TraceSink]) -> None:
        """Attach (or with ``None`` detach) a structured-event trace sink."""
        self._sink = sink

    def _trace_modes(self, now: float) -> None:
        """Emit ``mode_change`` events for mode-switching flows.

        Polled once per tick (trace-enabled runs only), so a switch is
        recorded within one tick of the estimator flipping it.  The first
        observation of a flow's mode is emitted with ``from_mode: null``,
        recording the starting mode.
        """
        sink = self._sink
        flows = self.flows
        modes = self._last_modes
        for flow_id in self._active:
            mode = getattr(flows[flow_id].cc, "mode", None)
            if mode is not None and mode != modes.get(flow_id):
                previous = modes.get(flow_id)
                modes[flow_id] = mode
                sink.emit({
                    "time": now, "event": "mode_change",
                    "flow_id": flow_id, "flow": flows[flow_id].name,
                    "mode": mode, "from_mode": previous})

    def engine_stats(self) -> Dict[str, float]:
        """Counters exposing the calendar-queue engine's internals.

        The bundle satisfies the event conservation law
        ``events_scheduled == events_executed + events_pending`` at any
        point between ticks: every scheduled event is either already
        dispatched or still filed in the calendar, the spill heap, or the
        live heap of an interrupted tick.
        """
        pending = sum(map(len, self._calendar.values())) \
            + len(self._spill) + len(self._live)
        return {
            "ticks": self._tick,
            "now": self.now,
            "events_scheduled": self._counter,
            "events_executed": self._stats.executed,
            "events_pending": pending,
            "calendar_buckets": len(self._calendar),
            "calendar_buckets_created": self._stats.buckets_created,
            "spill_pending": len(self._spill),
            "spill_peak": self._stats.spill_peak,
            "roster_size": len(self._active),
            "roster_peak": self._stats.roster_peak,
            "flows": len(self.flows),
            "fluid_classes": sum(len(state.classes)
                                 for state in self._fluid_states),
        }

    def audit_conservation(self) -> None:
        """Re-check the per-hop conservation law on every link.

        ``total_offered == total_served + queue_bytes + total_drops`` must
        hold at each hop up to float-summation residue.  A link with fluid
        classes attached extends both sides with the fluid aggregate's
        counters (offered / served / backlog / dropped), so aggregated
        background traffic is held to the same law as chunk traffic.
        Runs every ``REPRO_AUDIT`` ticks when that mode is on; raises
        :class:`AuditError` naming the first violating link.
        """
        for link in self._links:
            offered = link.total_offered
            balance = link.total_served + link.queue_bytes + link.total_drops
            fluid = link.fluid
            if fluid is not None:
                for cls in fluid.classes:
                    offered += cls.total_offered
                    balance += (cls.total_served + cls.backlog
                                + cls.total_dropped)
            residue = abs(offered - balance)
            if residue > 1e-6 + 1e-10 * offered:
                raise AuditError(
                    f"conservation violated at link {link.name!r} "
                    f"(tick {self._tick}, t={self.now:.6f}): "
                    f"offered={offered!r} != "
                    f"served={link.total_served!r} + "
                    f"queued={link.queue_bytes!r} + "
                    f"dropped={link.total_drops!r} "
                    f"(fluid terms included; residue {residue:.3g})")

    # ------------------------------------------------------------------ #
    # Queries used by experiments
    # ------------------------------------------------------------------ #
    def active_flows(self) -> Iterable[Flow]:
        """Flows that have started and not yet completed."""
        flows = self.flows
        return (flows[i] for i in self._active if flows[i].active)

    def active_flow_ids(self) -> List[int]:
        """Sorted ids of started, unfinished flows (a fresh list).

        The roster can momentarily include a flow whose callback stopped it
        mid-tick; callers should still check ``flow.active``.
        """
        return list(self._active)

    def flows_named(self, name: str) -> List[Flow]:
        """All flows whose label equals ``name``."""
        return [f for f in self.flows if f.name == name]

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(topology={self.topology!r}, "
                f"dt={self.dt}, flows={len(self.flows)})")
