"""DASH-like adaptive video cross traffic (§8.1, Fig. 11 of the paper).

A DASH client downloads the video in segments of fixed playback duration,
choosing a bitrate from a ladder according to how full its playback buffer
is (a simple buffer-based adaptation rule).  Two behaviours matter for the
paper's experiment:

* a **4K** stream whose top bitrates exceed its fair share of the 48 Mbit/s
  link is effectively network-limited — it always has another segment to
  fetch and its transport (Cubic) ramps aggressively, so it acts as
  *elastic* cross traffic;
* a **1080p** stream whose ladder tops out well below the fair share spends
  most of its time idle between segment downloads — it is
  application-limited and acts as *inelastic* cross traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..simulator.source import Source
from ..simulator.units import mbps_to_bytes_per_sec

#: Bitrate ladders in Mbit/s, loosely modelled on common DASH encodings.
LADDER_4K_MBPS = (10.0, 16.0, 25.0, 40.0, 60.0)
LADDER_1080P_MBPS = (1.5, 3.0, 4.5, 6.0, 8.0)


@dataclass
class VideoConfig:
    """Parameters of a DASH client."""

    ladder_mbps: Sequence[float] = LADDER_4K_MBPS
    segment_duration: float = 2.0
    startup_buffer: float = 4.0
    max_buffer: float = 20.0
    #: Buffer levels (seconds) at which the client steps up one rung.
    upswitch_buffer: float = 10.0
    downswitch_buffer: float = 5.0


class DashVideoSource(Source):
    """Buffer-based adaptive video source.

    The source exposes segment bytes to the transport one segment at a
    time; a new segment is requested when the previous one has been fully
    delivered and the playback buffer has room.  Playback drains the buffer
    in real time once the startup threshold is reached.
    """

    def __init__(self, config: VideoConfig | None = None) -> None:
        self.config = config if config is not None else VideoConfig()
        self._quality_index = 0
        self._buffer_seconds = 0.0
        self._playing = False
        self._segment_remaining = 0.0
        self._segment_unsent = 0.0
        self._downloading = False
        self._last_advance = 0.0
        # Deliveries and losses reported between segments are parked here and
        # settled against the next segment, so no bytes are ever lost from
        # the accounting (losses during a hand-over otherwise deadlock the
        # download).
        self._pending_delivered = 0.0
        self._pending_lost = 0.0
        self.segments_downloaded = 0
        self.quality_history: List[int] = []
        self.rebuffer_time = 0.0

    # ------------------------------------------------------------------ #
    # Source interface
    # ------------------------------------------------------------------ #
    def advance(self, now: float, dt: float) -> None:
        # Playback drains the buffer.
        if self._playing:
            if self._buffer_seconds > 0:
                self._buffer_seconds = max(0.0, self._buffer_seconds - dt)
            else:
                self.rebuffer_time += dt
                self._playing = False
        elif self._buffer_seconds >= self.config.startup_buffer:
            self._playing = True

        if (not self._downloading
                and self._buffer_seconds < self.config.max_buffer):
            self._start_segment()

    def available(self, now: float) -> float:
        return self._segment_unsent if self._downloading else 0.0

    def consume(self, nbytes: float, now: float) -> None:
        self._segment_unsent = max(0.0, self._segment_unsent - nbytes)

    def on_delivered(self, nbytes: float, now: float) -> None:
        self._pending_delivered += nbytes
        self._settle()

    def on_lost(self, nbytes: float, now: float) -> None:
        self._pending_lost += nbytes
        self._settle()

    def _settle(self) -> None:
        """Apply parked deliveries/losses to the segment being downloaded."""
        if not self._downloading:
            return
        if self._pending_lost > 0:
            # Lost bytes must be retransmitted as part of this segment.
            self._segment_unsent += self._pending_lost
            self._pending_lost = 0.0
        if self._pending_delivered > 0:
            self._segment_remaining -= self._pending_delivered
            self._pending_delivered = 0.0
        # One-byte tolerance: the fluid model's partial chunks leave float
        # residue that would otherwise keep the segment "open" forever.
        if self._segment_remaining <= 1.0:
            self._downloading = False
            self._buffer_seconds += self.config.segment_duration
            self.segments_downloaded += 1

    # ------------------------------------------------------------------ #
    # Adaptation
    # ------------------------------------------------------------------ #
    def _start_segment(self) -> None:
        self._adapt_quality()
        bitrate = self.config.ladder_mbps[self._quality_index]
        segment_bytes = (mbps_to_bytes_per_sec(bitrate)
                         * self.config.segment_duration)
        self._segment_remaining = segment_bytes
        self._segment_unsent = segment_bytes
        self._downloading = True
        self.quality_history.append(self._quality_index)
        # Settle any deliveries/losses reported during the hand-over gap.
        self._settle()

    def _adapt_quality(self) -> None:
        if self._buffer_seconds >= self.config.upswitch_buffer:
            self._quality_index = min(self._quality_index + 1,
                                      len(self.config.ladder_mbps) - 1)
        elif self._buffer_seconds <= self.config.downswitch_buffer:
            self._quality_index = max(self._quality_index - 1, 0)

    @property
    def current_bitrate_mbps(self) -> float:
        """Bitrate of the most recently selected rung (Mbit/s)."""
        return self.config.ladder_mbps[self._quality_index]


def video_4k() -> DashVideoSource:
    """A 4K DASH client (network-limited on a 48 Mbit/s link: elastic)."""
    return DashVideoSource(VideoConfig(ladder_mbps=LADDER_4K_MBPS))


def video_1080p() -> DashVideoSource:
    """A 1080p DASH client (application-limited: inelastic)."""
    return DashVideoSource(VideoConfig(ladder_mbps=LADDER_1080P_MBPS))
