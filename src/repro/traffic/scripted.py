"""Scripted, time-varying cross traffic (the workload of Figs. 1, 8 and 17).

The paper's illustrative experiments vary the cross traffic over time: a
period with ``y`` long-running Cubic flows, a period of ``x`` Mbit/s of
Poisson traffic, mixes of the two, and so on.  :class:`ScriptedCrossTraffic`
takes a list of phases, instantiates the right flows at the right times,
stops them when their phase ends, and exposes the ground truth (is elastic
cross traffic present, and what is the main flow's fair share) that
experiments use to score classification accuracy and plot the fair-share
reference line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..cc.base import NullCC
from ..cc.cubic import Cubic
from ..simulator.endpoint import Flow
from ..simulator.engine import Network
from .poisson import PoissonSource


@dataclass
class Phase:
    """One phase of the scripted workload.

    Attributes:
        duration: Length of the phase in seconds.
        inelastic_rate: Offered rate of Poisson (inelastic) traffic, bytes/s.
        elastic_flows: Number of long-running elastic cross flows.
        elastic_cc_factory: Constructor for the elastic flows' transport.
        elastic_rtt: Propagation RTT of the elastic flows (None: same as main).
    """

    duration: float
    inelastic_rate: float = 0.0
    elastic_flows: int = 0
    elastic_cc_factory: Callable[[], object] = Cubic
    elastic_rtt: Optional[float] = None

    @property
    def has_elastic(self) -> bool:
        return self.elastic_flows > 0


@dataclass
class ScriptedCrossTraffic:
    """Drives a phase schedule on a network.

    Args:
        network: The network to add cross flows to.
        phases: The schedule, executed back to back starting at ``start``.
        prop_rtt: Default propagation RTT for cross flows.
        start: Time at which the first phase begins.
        name: Label given to all generated flows.
    """

    network: Network
    phases: List[Phase]
    prop_rtt: float = 0.05
    start: float = 0.0
    name: str = "cross"
    seed: int = 7
    _active_flows: List[Flow] = field(default_factory=list)
    _boundaries: List[float] = field(default_factory=list)

    def install(self) -> None:
        """Schedule all phase transitions on the network."""
        t = self.start
        self._boundaries = [t]
        for index, phase in enumerate(self.phases):
            self.network.schedule_call(
                t, lambda now, p=phase, i=index: self._begin_phase(p, i, now))
            t += phase.duration
            self._boundaries.append(t)
        self.network.schedule_call(t, lambda now: self._end_all(now))

    # ------------------------------------------------------------------ #
    # Phase management
    # ------------------------------------------------------------------ #
    def _begin_phase(self, phase: Phase, index: int, now: float) -> None:
        self._end_all(now)
        rtt = phase.elastic_rtt if phase.elastic_rtt is not None else self.prop_rtt
        for i in range(phase.elastic_flows):
            flow = Flow(cc=phase.elastic_cc_factory(), prop_rtt=rtt,
                        start_time=now, name=self.name)
            self.network.add_flow(flow)
            self._active_flows.append(flow)
        if phase.inelastic_rate > 0:
            source = PoissonSource(phase.inelastic_rate,
                                   seed=self.seed + index)
            flow = Flow(cc=NullCC(), prop_rtt=rtt, source=source,
                        start_time=now, name=self.name)
            self.network.add_flow(flow)
            self._active_flows.append(flow)

    def _end_all(self, now: float) -> None:
        for flow in self._active_flows:
            flow.stop(now)
        self._active_flows.clear()

    # ------------------------------------------------------------------ #
    # Ground truth
    # ------------------------------------------------------------------ #
    def phase_at(self, t: float) -> Optional[Phase]:
        """The phase in effect at absolute time ``t`` (None outside schedule)."""
        if not self._boundaries:
            # install() not called yet; compute boundaries on the fly.
            boundaries = [self.start]
            for phase in self.phases:
                boundaries.append(boundaries[-1] + phase.duration)
        else:
            boundaries = self._boundaries
        for i, phase in enumerate(self.phases):
            if boundaries[i] <= t < boundaries[i + 1]:
                return phase
        return None

    def elastic_present(self, t: float) -> bool:
        """Ground truth: is any elastic cross flow active at time ``t``?"""
        phase = self.phase_at(t)
        return phase.has_elastic if phase is not None else False

    def fair_share(self, t: float, link_rate: float,
                   main_flows: int = 1) -> float:
        """Fair share (bytes/s) of the main flow(s) at time ``t``.

        Inelastic traffic is assumed to take its offered rate off the top;
        the remainder is split evenly among the main flow(s) and any elastic
        cross flows, as in the fair-share reference line of Fig. 8.
        """
        phase = self.phase_at(t)
        if phase is None:
            return link_rate / max(main_flows, 1) * main_flows
        available = max(link_rate - phase.inelastic_rate, 0.0)
        sharers = main_flows + phase.elastic_flows
        if sharers <= 0:
            return available
        return available * main_flows / sharers

    @property
    def total_duration(self) -> float:
        """Length of the whole schedule in seconds."""
        return sum(p.duration for p in self.phases)
