"""Flow-size distributions for the WAN cross-traffic workload.

The paper draws cross-flow sizes from an empirical distribution derived from
a CAIDA backbone packet trace (January 2016) — a heavy-tailed mix in which
most flows are short (inelastic: they finish within their initial window)
but most *bytes* belong to a few large flows (elastic: long-running,
ACK-clocked).  The trace itself is not redistributable, so this module
provides a synthetic distribution with the same qualitative structure: a
log-normal body for the mass of short flows and a Pareto tail for the
elephants, with parameters chosen so that roughly half of the bytes come
from flows larger than 1 MB.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from ..simulator.units import MSS_BYTES

#: Flows at most this many packets never leave the initial congestion window
#: (10 segments in Linux 4.10) and are therefore inelastic ground truth
#: in the paper's Fig. 12 analysis.
ELASTIC_THRESHOLD_BYTES = 10 * MSS_BYTES


@dataclass
class FlowSizeSample:
    """A sampled flow: its size and whether it counts as elastic."""

    size_bytes: float
    elastic: bool


class HeavyTailedFlowSizes:
    """Synthetic CAIDA-like flow-size distribution.

    A fraction ``short_fraction`` of flows are short, drawn from a
    log-normal distribution centred on a few kilobytes; the remainder are
    drawn from a Pareto distribution whose shape < 2 gives the heavy tail.
    """

    def __init__(self, seed: int = 0,
                 short_fraction: float = 0.9,
                 short_median_bytes: float = 6.0e3,
                 short_sigma: float = 1.2,
                 pareto_shape: float = 1.2,
                 pareto_scale_bytes: float = 3.0e4,
                 max_bytes: float = 5.0e8) -> None:
        if not 0.0 < short_fraction < 1.0:
            raise ValueError("short_fraction must be in (0, 1)")
        if pareto_shape <= 1.0:
            raise ValueError("pareto_shape must exceed 1 for a finite mean")
        self.short_fraction = short_fraction
        self.short_median_bytes = short_median_bytes
        self.short_sigma = short_sigma
        self.pareto_shape = pareto_shape
        self.pareto_scale_bytes = pareto_scale_bytes
        self.max_bytes = max_bytes
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self) -> FlowSizeSample:
        """Draw one flow size."""
        if self._rng.random() < self.short_fraction:
            size = self._rng.lognormvariate(math.log(self.short_median_bytes),
                                            self.short_sigma)
        else:
            u = self._rng.random()
            size = self.pareto_scale_bytes / (u ** (1.0 / self.pareto_shape))
        size = min(max(size, 100.0), self.max_bytes)
        return FlowSizeSample(size_bytes=size,
                              elastic=size > ELASTIC_THRESHOLD_BYTES)

    def sample_many(self, n: int) -> List[FlowSizeSample]:
        """Draw ``n`` flow sizes."""
        return [self.sample() for _ in range(n)]

    # ------------------------------------------------------------------ #
    # Moments (analytical, used to size the arrival rate for a target load)
    # ------------------------------------------------------------------ #
    def mean_bytes(self) -> float:
        """Approximate mean flow size of the mixture (bytes)."""
        lognormal_mean = (self.short_median_bytes
                          * math.exp(self.short_sigma ** 2 / 2.0))
        pareto_mean = (self.pareto_shape * self.pareto_scale_bytes
                       / (self.pareto_shape - 1.0))
        # The Pareto mean is truncated at max_bytes; correct roughly for it.
        pareto_mean = min(pareto_mean, self.max_bytes)
        return (self.short_fraction * lognormal_mean
                + (1.0 - self.short_fraction) * pareto_mean)

    def arrival_rate_for_load(self, link_rate: float, load: float) -> float:
        """Poisson flow-arrival rate (flows/s) offering ``load * link_rate``."""
        if not 0.0 < load:
            raise ValueError("load must be positive")
        return load * link_rate / self.mean_bytes()
