"""Traffic and workload generators: the paper's cross-traffic substrates."""

from .flowsize import (
    ELASTIC_THRESHOLD_BYTES,
    FlowSizeSample,
    HeavyTailedFlowSizes,
)
from .poisson import CbrSource, PoissonSource
from .scripted import Phase, ScriptedCrossTraffic
from .video import (
    LADDER_1080P_MBPS,
    LADDER_4K_MBPS,
    DashVideoSource,
    VideoConfig,
    video_1080p,
    video_4k,
)
from .wan import CrossFlowRecord, WanTrafficGenerator, WanWorkloadConfig

__all__ = [
    "CbrSource",
    "CrossFlowRecord",
    "DashVideoSource",
    "ELASTIC_THRESHOLD_BYTES",
    "FlowSizeSample",
    "HeavyTailedFlowSizes",
    "LADDER_1080P_MBPS",
    "LADDER_4K_MBPS",
    "Phase",
    "PoissonSource",
    "ScriptedCrossTraffic",
    "VideoConfig",
    "WanTrafficGenerator",
    "WanWorkloadConfig",
    "video_1080p",
    "video_4k",
]
