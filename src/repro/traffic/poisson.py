"""Inelastic traffic sources: Poisson packet arrivals and constant bit rate.

The paper's inelastic cross traffic is either a constant-bit-rate stream or
"Poisson packet arrivals at the specified mean rate" (§5).  Both are
application-limited: the transport sends whatever the application produces,
so the sending rate never reacts to the network.
"""

from __future__ import annotations

import random

from ..simulator.source import PacedSource, Source
from ..simulator.units import MSS_BYTES


class PoissonSource(Source):
    """Packets arrive from the application as a Poisson process.

    Each arrival contributes one packet of ``packet_bytes``; the arrival
    rate is ``rate / packet_bytes`` per second so the long-run offered load
    is exactly ``rate`` bytes per second, but with the short-term variance
    of a Poisson process — the variance that produces the "false peaks" in
    the FFT the paper discusses (§3.4, §8.2).
    """

    def __init__(self, rate: float, packet_bytes: float = MSS_BYTES,
                 seed: int = 0, max_backlog: float | None = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        self.rate = rate
        self.packet_bytes = packet_bytes
        self.max_backlog = max_backlog
        self._rng = random.Random(seed)
        self._backlog = 0.0
        self._next_arrival = 0.0
        self._initialised = False

    def advance(self, now: float, dt: float) -> None:
        if not self._initialised:
            self._next_arrival = now + self._sample_gap()
            self._initialised = True
        while self._next_arrival <= now:
            self._backlog += self.packet_bytes
            self._next_arrival += self._sample_gap()
        if self.max_backlog is not None:
            self._backlog = min(self._backlog, self.max_backlog)

    def available(self, now: float) -> float:
        return self._backlog

    def consume(self, nbytes: float, now: float) -> None:
        self._backlog = max(0.0, self._backlog - nbytes)

    def _sample_gap(self) -> float:
        mean_gap = self.packet_bytes / self.rate
        return self._rng.expovariate(1.0 / mean_gap)

    def __repr__(self) -> str:
        return f"PoissonSource(rate={self.rate:.0f} B/s)"


class CbrSource(PacedSource):
    """Constant-bit-rate stream (alias of PacedSource with a bounded backlog).

    The bounded backlog means that if the network briefly cannot carry the
    stream, the excess is discarded rather than accumulated — matching how a
    real-time CBR stream behaves.
    """

    def __init__(self, rate: float, max_backlog_packets: float = 64.0) -> None:
        super().__init__(rate, max_backlog=max_backlog_packets * MSS_BYTES)

    def __repr__(self) -> str:
        return f"CbrSource(rate={self.rate:.0f} B/s)"
