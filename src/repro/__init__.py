"""repro: a reproduction of "Elasticity Detection: A Building Block for
Internet Congestion Control" (Nimbus).

The package is organised as:

* :mod:`repro.simulator` — a fluid-chunk network simulator (the Mahimahi /
  Linux-datapath substitute): bottleneck link, queueing policies, transport
  endpoints, measurement, tracing.
* :mod:`repro.cc` — the congestion-control algorithm zoo the paper runs and
  competes against (Cubic, NewReno, Vegas, Copa, BBR, PCC-Vivace, Compound,
  BasicDelay, and inelastic reference senders).
* :mod:`repro.core` — the paper's contribution: the cross-traffic rate
  estimator, sinusoidal pulse shapes, the FFT elasticity detector, the
  Nimbus mode-switching controller, and multi-flow pulser/watcher
  coordination.
* :mod:`repro.traffic` — workload generators (Poisson/CBR, heavy-tailed WAN
  flow arrivals, DASH video, scripted time-varying mixes).
* :mod:`repro.analysis` — metrics, classification accuracy, and FCT
  summaries.
* :mod:`repro.experiments` — one driver per table/figure of the paper.

Quickstart::

    from repro import quick_network, Nimbus, Flow
    from repro.simulator import mbps_to_bytes_per_sec

    mu = mbps_to_bytes_per_sec(48)
    net, link = quick_network(link_mbps=48, buffer_ms=100)
    net.add_flow(Flow(cc=Nimbus(mu=mu), prop_rtt=0.05, name="nimbus"))
    net.run(30.0)
    print(net.recorder.mean_throughput("nimbus"))
"""

from __future__ import annotations

from typing import Optional, Tuple

from .cc import (
    BasicDelay,
    Bbr,
    Compound,
    Copa,
    Cubic,
    NewReno,
    Vegas,
    Vivace,
)
from .core import ElasticityDetector, Nimbus, elasticity_metric
from .simulator import (
    BottleneckLink,
    DropTail,
    Flow,
    Network,
    Pie,
    mbps_to_bytes_per_sec,
)

__version__ = "1.0.0"

__all__ = [
    "BasicDelay",
    "Bbr",
    "BottleneckLink",
    "Compound",
    "Copa",
    "Cubic",
    "DropTail",
    "ElasticityDetector",
    "Flow",
    "Network",
    "NewReno",
    "Nimbus",
    "Pie",
    "Vegas",
    "Vivace",
    "elasticity_metric",
    "mbps_to_bytes_per_sec",
    "quick_network",
    "__version__",
]


def quick_network(link_mbps: float = 96.0, buffer_ms: float = 100.0,
                  dt: float = 0.002, seed: int = 0,
                  aqm: Optional[object] = None
                  ) -> Tuple[Network, BottleneckLink]:
    """Build a single-bottleneck network with a drop-tail buffer.

    Args:
        link_mbps: Bottleneck rate in Mbit/s.
        buffer_ms: Buffer depth expressed in milliseconds at the link rate.
        dt: Simulation tick in seconds.
        seed: Seed for the network's random number generator.
        aqm: Optional queue policy instance overriding the drop-tail buffer.

    Returns:
        (network, link) ready to have flows added.
    """
    mu = mbps_to_bytes_per_sec(link_mbps)
    policy = aqm if aqm is not None else DropTail(mu * buffer_ms / 1e3)
    link = BottleneckLink(capacity=mu, policy=policy)
    network = Network(link, dt=dt, seed=seed)
    return network, link
