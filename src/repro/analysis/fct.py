"""Flow-completion-time analysis for cross traffic (Appendix B, Fig. 21).

The paper bins cross flows by size (15 KB, 150 KB, 1.5 MB, 15 MB, 150 MB)
and reports the 95th-percentile completion time per bin, normalised by the
value measured when the competing bulk flow runs Nimbus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from .metrics import percentile

#: The paper's flow-size bin edges (upper bound of each bin, in bytes).
DEFAULT_SIZE_BINS = (15e3, 150e3, 1.5e6, 15e6, 150e6)


@dataclass
class FctBin:
    """FCT statistics for one flow-size bin."""

    upper_bytes: float
    count: int
    mean_fct: float
    median_fct: float
    p95_fct: float


def bin_label(upper_bytes: float) -> str:
    """Human-readable label for a size bin (e.g. '15KB', '1.5MB')."""
    if upper_bytes >= 1e6:
        value = upper_bytes / 1e6
        unit = "MB"
    else:
        value = upper_bytes / 1e3
        unit = "KB"
    if value == int(value):
        return f"{int(value)}{unit}"
    return f"{value:g}{unit}"


def fct_by_size(records: Iterable, size_bins: Sequence[float] = DEFAULT_SIZE_BINS
                ) -> Dict[str, FctBin]:
    """Group completed cross-flow records by size and summarise FCTs.

    ``records`` are :class:`repro.traffic.wan.CrossFlowRecord` objects (or
    anything with ``size_bytes`` and ``fct`` attributes); records without an
    FCT (unfinished flows) are ignored.
    """
    buckets: Dict[float, List[float]] = {b: [] for b in size_bins}
    for record in records:
        fct = record.fct
        if fct is None:
            continue
        for upper in size_bins:
            if record.size_bytes <= upper:
                buckets[upper].append(fct)
                break
        else:
            buckets[size_bins[-1]].append(fct)

    out: Dict[str, FctBin] = {}
    for upper in size_bins:
        fcts = buckets[upper]
        arr = np.asarray(fcts, dtype=float)
        out[bin_label(upper)] = FctBin(
            upper_bytes=upper,
            count=len(fcts),
            mean_fct=float(arr.mean()) if arr.size else 0.0,
            median_fct=float(np.median(arr)) if arr.size else 0.0,
            p95_fct=percentile(fcts, 95.0),
        )
    return out


def normalized_p95(fcts: Dict[str, Dict[str, FctBin]],
                   baseline_scheme: str) -> Dict[str, Dict[str, float]]:
    """Normalise each scheme's p95 FCT by a baseline scheme, per size bin.

    ``fcts`` maps scheme name -> (bin label -> FctBin); the result maps
    scheme name -> (bin label -> p95 ratio), as in Fig. 21 where the
    baseline is Nimbus.
    """
    if baseline_scheme not in fcts:
        raise KeyError(f"baseline scheme {baseline_scheme!r} not present")
    baseline = fcts[baseline_scheme]
    out: Dict[str, Dict[str, float]] = {}
    for scheme, bins in fcts.items():
        out[scheme] = {}
        for label, stats in bins.items():
            base = baseline.get(label)
            if base is None or base.p95_fct <= 0:
                out[scheme][label] = 0.0
            else:
                out[scheme][label] = stats.p95_fct / base.p95_fct
    return out
