"""Summary metrics: throughput/delay statistics, CDFs, fairness.

These are the quantities the paper reports in its figures: mean and median
throughput, per-packet delay percentiles, CDFs of RTT and rate over
1-second intervals (Fig. 9, 13, 19), and Jain's fairness index for the
multi-flow experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


def percentile(samples: Sequence[float], q: float) -> float:
    """The q-th percentile (0-100) of the samples, 0.0 if empty."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


def cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative probability)."""
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size == 0:
        return np.array([]), np.array([])
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def jain_fairness(rates: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 means perfectly equal shares."""
    arr = np.asarray(rates, dtype=float)
    if arr.size == 0 or np.all(arr == 0):
        return 0.0
    # Normalise by the largest rate so tiny (denormal) values cannot
    # underflow to zero when squared.
    arr = arr / arr.max()
    return float(arr.sum() ** 2 / (arr.size * (arr ** 2).sum()))


@dataclass
class ThroughputDelaySummary:
    """The (throughput, delay) operating point the paper's scatter plots use."""

    scheme: str
    mean_throughput_mbps: float
    median_throughput_mbps: float
    mean_delay_ms: float
    median_delay_ms: float
    p95_delay_ms: float

    def dominates(self, other: "ThroughputDelaySummary",
                  throughput_slack: float = 0.0,
                  delay_slack_ms: float = 0.0) -> bool:
        """True if this scheme is at least as good on both axes (with slack)."""
        return (self.mean_throughput_mbps >= other.mean_throughput_mbps
                - throughput_slack
                and self.mean_delay_ms <= other.mean_delay_ms + delay_slack_ms)


def summarize_flow(recorder, name: str, scheme: str | None = None,
                   start: float = 0.0,
                   end: float | None = None) -> ThroughputDelaySummary:
    """Build a :class:`ThroughputDelaySummary` for flows labelled ``name``.

    ``recorder`` is a :class:`repro.simulator.trace.Recorder`; throughput is
    measured from delivered bytes per bin and delay from the per-chunk
    queueing delay samples plus nothing else (queueing delay is what the
    paper plots; propagation delay is constant per experiment).
    """
    times, tput = recorder.throughput_series(name)
    _, delays = recorder.queue_delay_series(name)
    if end is None:
        end = times[-1] + recorder.bin_width if len(times) else 0.0
    mask = (times >= start) & (times <= end)
    tput_sel = tput[mask] if len(times) else np.array([])
    delay_samples = recorder.queue_delay_samples(name) * 1e3
    delay_sel = delays[mask][delays[mask] > 0] if len(times) else np.array([])
    if delay_samples.size == 0:
        delay_samples = delay_sel
    return ThroughputDelaySummary(
        scheme=scheme if scheme is not None else name,
        mean_throughput_mbps=float(np.mean(tput_sel)) if tput_sel.size else 0.0,
        median_throughput_mbps=float(np.median(tput_sel)) if tput_sel.size else 0.0,
        mean_delay_ms=float(np.mean(delay_samples)) if delay_samples.size else 0.0,
        median_delay_ms=float(np.median(delay_samples)) if delay_samples.size else 0.0,
        p95_delay_ms=percentile(delay_samples, 95.0),
    )


def rate_cdf_over_intervals(recorder, name: str, interval: float = 1.0,
                            start: float = 0.0,
                            end: float | None = None
                            ) -> Tuple[np.ndarray, np.ndarray]:
    """CDF of throughput measured over fixed intervals (Fig. 9 style)."""
    times, tput = recorder.throughput_series(name)
    if len(times) == 0:
        return np.array([]), np.array([])
    if end is None:
        end = times[-1]
    mask = (times >= start) & (times <= end)
    times, tput = times[mask], tput[mask]
    if len(times) == 0:
        return np.array([]), np.array([])
    bins_per_interval = max(1, int(round(interval / recorder.bin_width)))
    n = (len(tput) // bins_per_interval) * bins_per_interval
    if n == 0:
        return cdf(tput)
    coarse = tput[:n].reshape(-1, bins_per_interval).mean(axis=1)
    return cdf(coarse)
