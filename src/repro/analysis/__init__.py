"""Analysis utilities: summary metrics, classification accuracy, FCTs."""

from .accuracy import (
    MODE_COMPETITIVE,
    MODE_DELAY,
    AccuracyReport,
    classification_accuracy,
    mode_fraction,
)
from .fct import DEFAULT_SIZE_BINS, FctBin, bin_label, fct_by_size, normalized_p95
from .metrics import (
    ThroughputDelaySummary,
    cdf,
    jain_fairness,
    percentile,
    rate_cdf_over_intervals,
    summarize_flow,
)
# NOTE: repro.analysis.telemetry is deliberately NOT imported here — it is
# runnable as ``python -m repro.analysis.telemetry`` and importing it from
# the package __init__ would trigger runpy's double-import warning.

__all__ = [
    "AccuracyReport",
    "DEFAULT_SIZE_BINS",
    "FctBin",
    "MODE_COMPETITIVE",
    "MODE_DELAY",
    "ThroughputDelaySummary",
    "bin_label",
    "cdf",
    "classification_accuracy",
    "fct_by_size",
    "jain_fairness",
    "mode_fraction",
    "normalized_p95",
    "percentile",
    "rate_cdf_over_intervals",
    "summarize_flow",
]
