"""Loaders and summaries for the simulator's telemetry files.

Two JSONL artefacts come out of an instrumented run: an *event trace*
(``--trace`` / ``REPRO_TRACE``, schema in
:mod:`repro.simulator.telemetry`) and *runtime metrics* (``--metrics``,
schema in :mod:`repro.runtime.metrics`).  This module turns either file
into validated records and small summary tables, and doubles as the CI
validator::

    python -m repro.analysis.telemetry validate --kind trace trace.jsonl
    python -m repro.analysis.telemetry validate --kind metrics metrics.jsonl
    python -m repro.analysis.telemetry summary --kind trace trace.jsonl

``validate`` exits non-zero on the first malformed line, naming the line
number and the schema violation.  ``validate --require EVENT`` (trace
files; repeatable) additionally fails unless at least one record of each
required kind is present — how CI asserts a reroute trace really
contains a ``route_change``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..runtime.metrics import validate_metrics_record
from ..simulator.telemetry import LINK_KINDS, validate_trace_record


def _iter_jsonl(path: str) -> Iterator[Tuple[int, dict]]:
    """Yield ``(line number, parsed object)`` for every non-blank line."""
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: not valid JSON ({error})") from None
            yield number, record


def _load(path: str, validate: Callable[[dict], None]) -> List[dict]:
    records = []
    for number, record in _iter_jsonl(path):
        try:
            validate(record)
        except ValueError as error:
            raise ValueError(f"{path}:{number}: {error}") from None
        records.append(record)
    return records


def load_trace(path: str) -> List[dict]:
    """Read and schema-validate an event-trace JSONL file."""
    return _load(path, validate_trace_record)


def load_metrics(path: str) -> List[dict]:
    """Read and schema-validate a runtime-metrics JSONL file."""
    return _load(path, validate_metrics_record)


def trace_summary(records: Iterable[dict]) -> Dict[str, dict]:
    """Event counts overall, per flow, per link, and per fluid class.

    Returns a dict with three counters — ``events`` (by event kind),
    ``flows`` (events per flow label — fault events carry none and are
    counted only under ``events``/``links``), and ``links`` (link-located
    events per link name) — plus ``fluid``: the *latest*
    ``fluid_sample`` snapshot per aggregate class, keyed by
    ``"link/class"`` and carrying the cumulative offered/served/dropped
    byte counters, current backlog, send rate, and live flow estimate.
    """
    events: Counter = Counter()
    flows: Counter = Counter()
    links: Counter = Counter()
    fluid: Dict[str, dict] = {}
    for record in records:
        events[record["event"]] += 1
        if "flow" in record:
            flows[record["flow"]] += 1
        if record["event"] in LINK_KINDS:
            links[record["link"]] += 1
        if record["event"] == "fluid_sample":
            key = f"{record['link']}/{record['class']}"
            latest = fluid.get(key)
            if latest is None or record["time"] >= latest["time"]:
                fluid[key] = {
                    "time": record["time"],
                    "kind": record["kind"],
                    "offered": record["offered"],
                    "served": record["served"],
                    "dropped": record["dropped"],
                    "backlog": record["backlog"],
                    "rate": record["rate"],
                    "flows": record["flows"],
                }
    return {"events": events, "flows": flows, "links": links,
            "fluid": fluid}


def metrics_summary(records: Iterable[dict]) -> Dict[str, Optional[float]]:
    """Aggregate a metrics file: cache accounting and execution rates."""
    records = list(records)
    executed = [r for r in records
                if r["cache"] in ("miss", "corrupt") and not r["dedup"]]
    seconds = [r["seconds"] for r in executed if r["seconds"] is not None]
    rates = [r["ticks_per_sec"] for r in executed
             if r["ticks_per_sec"] is not None]
    workers = {r["worker_pid"] for r in executed
               if r["worker_pid"] is not None}
    return {
        "specs": len(records),
        "hits": sum(r["cache"] == "hit" for r in records),
        "misses": sum(r["cache"] == "miss" for r in records),
        "corrupt": sum(r["cache"] == "corrupt" for r in records),
        "executed": len(executed),
        "deduped": sum(r["dedup"] for r in records),
        "failures": sum(r.get("outcome", "ok") != "ok" for r in records),
        "retried": sum(r.get("attempts", 0) > 1 for r in records),
        "workers": len(workers),
        "total_seconds": sum(seconds) if seconds else 0.0,
        "mean_ticks_per_sec": (sum(rates) / len(rates)) if rates else None,
    }


def _counter_table(title: str, counter: Counter, indent: str = "  ") -> str:
    lines = [title]
    width = max((len(str(key)) for key in counter), default=0)
    for key, count in counter.most_common():
        lines.append(f"{indent}{str(key):<{width}}  {count}")
    return "\n".join(lines)


def _fluid_table(fluid: Dict[str, dict], indent: str = "  ") -> str:
    lines = ["fluid classes:"]
    width = max(len(key) for key in fluid)
    header = (f"{indent}{'link/class':<{width}}  {'kind':<9}"
              f"{'offered MB':>12}{'served MB':>12}{'dropped MB':>12}"
              f"{'rate Mbit/s':>13}{'flows':>8}")
    lines.append(header)
    for key in sorted(fluid):
        sample = fluid[key]
        lines.append(
            f"{indent}{key:<{width}}  {sample['kind']:<9}"
            f"{sample['offered'] / 1e6:>12.2f}"
            f"{sample['served'] / 1e6:>12.2f}"
            f"{sample['dropped'] / 1e6:>12.2f}"
            f"{sample['rate'] * 8.0 / 1e6:>13.2f}"
            f"{sample['flows']:>8.0f}")
    return "\n".join(lines)


def render_trace_summary(records: Iterable[dict]) -> str:
    summary = trace_summary(records)
    sections = [
        _counter_table("events:", summary["events"]),
        _counter_table("flows:", summary["flows"]),
        _counter_table("links:", summary["links"]),
    ]
    if summary["fluid"]:
        sections.append(_fluid_table(summary["fluid"]))
    return "\n".join(sections)


def render_metrics_summary(records: Iterable[dict]) -> str:
    summary = metrics_summary(records)
    lines = []
    for key, value in summary.items():
        if isinstance(value, float):
            value = f"{value:.3g}"
        lines.append(f"{key}: {value}")
    return "\n".join(lines)


_LOADERS = {"trace": load_trace, "metrics": load_metrics}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: validate or summarise a telemetry JSONL file."""
    parser = argparse.ArgumentParser(
        description="Validate or summarise simulator telemetry files.")
    parser.add_argument("command", choices=("validate", "summary"))
    parser.add_argument("--kind", choices=sorted(_LOADERS), required=True,
                        help="Which schema the file must match")
    parser.add_argument("--require", action="append", default=[],
                        metavar="EVENT",
                        help="validate only, trace files: fail unless at "
                             "least one record of this event kind is "
                             "present (repeatable)")
    parser.add_argument("path", help="JSONL file to read")
    args = parser.parse_args(argv)

    if args.require and (args.command != "validate" or args.kind != "trace"):
        parser.error("--require only applies to 'validate --kind trace'")

    try:
        records = _LOADERS[args.kind](args.path)
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 1
    if args.command == "validate":
        if args.require:
            present = Counter(record["event"] for record in records)
            missing = [kind for kind in args.require if not present[kind]]
            if missing:
                print(f"{args.path}: no record of required event kind(s): "
                      f"{', '.join(sorted(missing))}", file=sys.stderr)
                return 1
        print(f"{args.path}: {len(records)} valid {args.kind} record(s)")
        return 0
    if args.kind == "trace":
        print(render_trace_summary(records))
    else:
        print(render_metrics_summary(records))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
