"""Classification-accuracy scoring for mode-switching algorithms.

The paper's robustness experiments (§8.2) report the fraction of time a
Nimbus or Copa flow operates in the *correct* mode: TCP-competitive when
elastic cross traffic is present, delay-control when it is not.  The ground
truth comes from the workload generator (it knows which cross flows are
elastic); the observed mode comes from the recorder's mode series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

#: Mode labels (kept in sync with repro.core.nimbus and repro.cc.copa).
MODE_DELAY = "delay"
MODE_COMPETITIVE = "competitive"


@dataclass
class AccuracyReport:
    """Outcome of scoring a mode series against ground truth."""

    accuracy: float
    samples: int
    correct: int
    time_in_competitive: float
    time_elastic_truth: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"accuracy={self.accuracy:.2%} over {self.samples} samples "
                f"(competitive {self.time_in_competitive:.2%}, "
                f"truth elastic {self.time_elastic_truth:.2%})")


def classification_accuracy(times: Sequence[float],
                            modes: Sequence[Optional[str]],
                            elastic_truth: Callable[[float], bool],
                            warmup: float = 0.0,
                            end: Optional[float] = None,
                            settle: float = 0.0) -> AccuracyReport:
    """Score a mode time series against a ground-truth function.

    Args:
        times: Bin centre times of the mode series.
        modes: Mode labels per bin (None bins are skipped).
        elastic_truth: ``elastic_truth(t)`` is True when elastic cross
            traffic is present at time ``t``.
        warmup: Initial period to exclude (the detector needs one FFT
            window of samples before its first decision).
        end: Optional end of the scoring window.
        settle: Grace period after each ground-truth transition during which
            either mode is accepted (the detector is allowed one FFT window
            to react, as in the paper's accuracy computations).
    """
    times = np.asarray(times, dtype=float)
    correct = 0
    counted = 0
    competitive = 0
    truth_elastic = 0

    # Pre-compute ground-truth transition times for the settle window.
    transitions: List[float] = []
    if settle > 0 and len(times) > 1:
        prev = elastic_truth(float(times[0]))
        for t in times[1:]:
            cur = elastic_truth(float(t))
            if cur != prev:
                transitions.append(float(t))
                prev = cur

    for t, mode in zip(times, modes):
        if mode is None or t < warmup:
            continue
        if end is not None and t > end:
            continue
        truth = elastic_truth(float(t))
        in_settle = any(0 <= t - tr < settle for tr in transitions)
        counted += 1
        if mode == MODE_COMPETITIVE:
            competitive += 1
        if truth:
            truth_elastic += 1
        predicted_elastic = (mode == MODE_COMPETITIVE)
        if predicted_elastic == truth or in_settle:
            correct += 1

    accuracy = correct / counted if counted else 0.0
    return AccuracyReport(
        accuracy=accuracy,
        samples=counted,
        correct=correct,
        time_in_competitive=competitive / counted if counted else 0.0,
        time_elastic_truth=truth_elastic / counted if counted else 0.0,
    )


def mode_fraction(modes: Sequence[Optional[str]], mode: str) -> float:
    """Fraction of non-None bins spent in the given mode."""
    known = [m for m in modes if m is not None]
    if not known:
        return 0.0
    return sum(1 for m in known if m == mode) / len(known)
