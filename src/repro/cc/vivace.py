"""PCC-Vivace congestion control (Dong et al., NSDI 2018), simplified.

Vivace is a rate-based, online-learning scheme: it divides time into
monitor intervals (MIs), measures a utility combining throughput, the RTT
gradient, and loss during each MI, and performs gradient ascent on its
sending rate.  Because its reaction time spans several MIs (rather than one
RTT), the paper's detector classifies it as *inelastic* at the default 5 Hz
pulse frequency and as *elastic* at 2 Hz (Appendix F); this implementation
reproduces that timescale behaviour.
"""

from __future__ import annotations

from ..simulator.units import bytes_per_sec_to_mbps, mbps_to_bytes_per_sec
from .base import CongestionControl


class Vivace(CongestionControl):
    """PCC-Vivace: gradient ascent on a rate-based utility function.

    The utility of a monitor interval with sending rate ``x`` (Mbit/s),
    RTT gradient ``g`` (s/s) and loss rate ``L`` is::

        u(x) = x^0.9 - 900 * x * g - 11.35 * x * L

    matching the constants of the Vivace paper.
    """

    name = "pcc-vivace"
    elastic = True

    #: Exponent of the throughput reward term.
    EXPONENT = 0.9
    #: Weight of the latency-gradient penalty.
    LATENCY_COEFF = 900.0
    #: Weight of the loss penalty.
    LOSS_COEFF = 11.35

    def __init__(self, initial_rate_mbps: float = 4.0,
                 probe_fraction: float = 0.05,
                 step_mbps: float = 1.0,
                 max_step_mbps: float = 12.0,
                 min_rate_mbps: float = 0.3) -> None:
        super().__init__()
        self.cwnd = None
        self.rate = mbps_to_bytes_per_sec(initial_rate_mbps)
        self.probe_fraction = probe_fraction
        self.step_mbps = step_mbps
        self.max_step_mbps = max_step_mbps
        self.min_rate = mbps_to_bytes_per_sec(min_rate_mbps)

        self._base_rate = self.rate
        self._mi_start = 0.0
        self._mi_duration = 0.05
        self._phase = 0          # 0: probe up, 1: probe down, 2: decide/move
        self._utilities: list[float] = []
        self._rtt_at_mi_start = 0.0
        self._consecutive_same_direction = 0
        self._last_direction = 0

    # ------------------------------------------------------------------ #
    # Monitor-interval machinery
    # ------------------------------------------------------------------ #
    def on_control_tick(self, now: float, dt: float) -> None:
        m = self.measurement
        rtt = m.rtt if m.rtt > 0 else m.base_rtt()
        self._mi_duration = max(rtt, 0.02)
        if now - self._mi_start < self._mi_duration:
            return
        self._finish_mi(now)
        self._mi_start = now
        self._rtt_at_mi_start = rtt
        self._set_probe_rate()

    def on_ack(self, ack, now: float) -> None:
        # Vivace's decisions are made per monitor interval, not per ACK.
        pass

    def on_loss(self, lost_bytes: float, now: float) -> None:
        pass

    # ------------------------------------------------------------------ #
    # Utility and rate updates
    # ------------------------------------------------------------------ #
    def _finish_mi(self, now: float) -> None:
        m = self.measurement
        if self._rtt_at_mi_start <= 0:
            return
        rate_mbps = bytes_per_sec_to_mbps(self.rate)
        rtt_now = m.rtt if m.rtt > 0 else self._rtt_at_mi_start
        gradient = (rtt_now - self._rtt_at_mi_start) / max(self._mi_duration,
                                                           1e-3)
        loss = m.loss_rate(now, self._mi_duration)
        utility = (rate_mbps ** self.EXPONENT
                   - self.LATENCY_COEFF * rate_mbps * max(gradient, 0.0)
                   - self.LOSS_COEFF * rate_mbps * loss)
        self._utilities.append(utility)

        if self._phase == 0:
            self._phase = 1
        elif self._phase == 1:
            self._phase = 2
        else:
            self._decide()
            self._phase = 0
            self._utilities.clear()

    def _set_probe_rate(self) -> None:
        if self._phase == 0:
            self.rate = self._base_rate * (1.0 + self.probe_fraction)
        elif self._phase == 1:
            self.rate = self._base_rate * (1.0 - self.probe_fraction)
        else:
            self.rate = self._base_rate
        self.rate = max(self.rate, self.min_rate)

    def _decide(self) -> None:
        if len(self._utilities) < 2:
            return
        up_utility, down_utility = self._utilities[0], self._utilities[1]
        direction = 1 if up_utility >= down_utility else -1
        if direction == self._last_direction:
            self._consecutive_same_direction += 1
        else:
            self._consecutive_same_direction = 0
        self._last_direction = direction
        # Step size grows while the gradient keeps pointing the same way
        # (Vivace's confidence amplifier), bounded to avoid oscillation.
        step = self.step_mbps * (1 + min(self._consecutive_same_direction, 10))
        step = min(step, self.max_step_mbps)
        new_rate_mbps = bytes_per_sec_to_mbps(self._base_rate) + direction * step
        self._base_rate = max(mbps_to_bytes_per_sec(new_rate_mbps),
                              self.min_rate)
