"""Congestion-control algorithm interface.

Every algorithm in :mod:`repro.cc` (and the Nimbus controller in
:mod:`repro.core.nimbus`) implements :class:`CongestionControl`.  The
transport endpoint consults the algorithm for two limits each tick:

* ``cwnd_bytes`` — a window limit; the endpoint will not allow more than
  this many bytes in flight (``None`` means unlimited).
* ``pacing_rate`` — a rate limit in bytes per second (``None`` means the
  flow is purely window/ACK clocked).

and feeds back acknowledgements, loss notifications, and a periodic tick at
the control interval (10 ms by default, matching the paper's CCP reporting
cadence).
"""

from __future__ import annotations

from abc import ABC
from typing import TYPE_CHECKING, Optional

from ..simulator.units import MSS_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulator.endpoint import Flow
    from ..simulator.measurement import FlowMeasurement
    from ..simulator.packet import Ack


class CongestionControl(ABC):
    """Base class for all congestion-control algorithms.

    Subclasses override the ``on_*`` hooks they care about and maintain
    ``self.cwnd`` and/or ``self.rate``.  The flow the algorithm is attached
    to is available as ``self.flow`` after :meth:`register` is called, and
    its measurement state as ``self.measurement``.
    """

    #: Human-readable algorithm name (used in traces and plots).
    name: str = "base"
    #: Whether the algorithm reacts to congestion at all.  Purely inelastic
    #: sources (constant bit-rate) set this to False; the experiment drivers
    #: use it as ground truth for classification accuracy.
    elastic: bool = True

    def __init__(self) -> None:
        self.flow: Optional["Flow"] = None
        self.cwnd: Optional[float] = 10 * MSS_BYTES
        self.rate: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def register(self, flow: "Flow") -> None:
        """Attach the algorithm to its flow.  Called once by the flow."""
        self.flow = flow

    @property
    def measurement(self) -> "FlowMeasurement":
        """Measurement state of the attached flow."""
        if self.flow is None:
            raise RuntimeError(f"{self.name} is not attached to a flow yet")
        return self.flow.measurement

    # ------------------------------------------------------------------ #
    # Limits consulted by the endpoint
    # ------------------------------------------------------------------ #
    @property
    def cwnd_bytes(self) -> Optional[float]:
        """Window limit in bytes, or None for no window limit."""
        return self.cwnd

    @property
    def pacing_rate(self) -> Optional[float]:
        """Pacing rate in bytes/s, or None for no pacing."""
        return self.rate

    # ------------------------------------------------------------------ #
    # Event hooks
    # ------------------------------------------------------------------ #
    def on_ack(self, ack: "Ack", now: float) -> None:
        """Called for every acknowledgement received by the flow."""

    def on_loss(self, lost_bytes: float, now: float) -> None:
        """Called when the flow learns that ``lost_bytes`` were dropped."""

    def on_control_tick(self, now: float, dt: float) -> None:
        """Called every control interval (default 10 ms)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NullCC(CongestionControl):
    """No congestion control at all: send whatever the application offers.

    Used for inelastic sources (CBR / Poisson streams) whose sending rate is
    dictated entirely by the application layer.
    """

    name = "null"
    elastic = False

    def __init__(self) -> None:
        super().__init__()
        self.cwnd = None
        self.rate = None
