"""Compound TCP (Tan et al., INFOCOM 2006), simplified.

Compound maintains two windows: a loss-based window that behaves like Reno
and a delay-based window that grows quickly while the path shows little
queueing and shrinks as queueing builds.  The transmission window is their
sum.  The paper uses Compound as an example of a scheme that blends the two
signals without mode switching — and therefore still incurs high queueing
delay against inelastic cross traffic (§5).
"""

from __future__ import annotations

import math

from ..simulator.units import MSS_BYTES
from .base import CongestionControl


class Compound(CongestionControl):
    """Compound TCP: cwnd = loss window + delay window."""

    name = "compound"
    elastic = True

    #: Queueing threshold (in segments) above which the delay window backs off.
    GAMMA = 30.0
    #: Delay-window growth parameters (alpha, k) from the Compound paper.
    ALPHA = 0.125
    K = 0.75
    #: Delay-window reduction factor when queueing is detected.
    ZETA = 0.1
    #: Loss-window multiplicative decrease.
    BETA = 0.5

    def __init__(self, init_cwnd_segments: int = 10,
                 min_cwnd_segments: int = 2) -> None:
        super().__init__()
        self.lwnd = init_cwnd_segments * MSS_BYTES
        self.dwnd = 0.0
        self.ssthresh = math.inf
        self.min_cwnd = min_cwnd_segments * MSS_BYTES
        self.cwnd = self.lwnd + self.dwnd
        self._last_loss_reaction = -math.inf
        self._last_dwnd_update = 0.0

    def on_ack(self, ack, now: float) -> None:
        m = self.measurement
        acked = ack.acked_bytes
        window = self.lwnd + self.dwnd

        if window < self.ssthresh:
            self.lwnd += acked
        else:
            self.lwnd += MSS_BYTES * acked / max(window, MSS_BYTES)

        rtt, base = m.rtt, m.base_rtt()
        if rtt > 0 and base > 0 and now - self._last_dwnd_update >= rtt:
            self._last_dwnd_update = now
            win_segments = window / MSS_BYTES
            expected = win_segments / base
            actual = win_segments / rtt
            diff = (expected - actual) * base
            if diff < self.GAMMA:
                increment = (self.ALPHA * win_segments ** self.K) - 1.0
                self.dwnd += max(increment, 0.0) * MSS_BYTES
            else:
                self.dwnd = max(self.dwnd - self.ZETA * diff * MSS_BYTES, 0.0)

        self.cwnd = max(self.lwnd + self.dwnd, self.min_cwnd)

    def on_loss(self, lost_bytes: float, now: float) -> None:
        rtt = self.measurement.rtt or self.measurement.base_rtt()
        if now - self._last_loss_reaction < rtt:
            return
        self._last_loss_reaction = now
        window = self.lwnd + self.dwnd
        self.lwnd = max(self.lwnd * self.BETA, self.min_cwnd)
        self.dwnd = max(window * (1 - self.BETA) - self.lwnd / 2.0, 0.0)
        self.ssthresh = max(self.lwnd, self.min_cwnd)
        self.cwnd = max(self.lwnd + self.dwnd, self.min_cwnd)
