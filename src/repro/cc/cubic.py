"""TCP Cubic congestion control (Ha, Rhee, Xu 2008).

Cubic is the paper's reference loss-based, buffer-filling protocol: it is
the dominant elastic cross traffic in the experiments and the default
TCP-competitive mode inside Nimbus.  The implementation follows the
published algorithm: a cubic window-growth function anchored at the window
size before the last loss, plus the TCP-friendly (Reno-tracking) region.
"""

from __future__ import annotations

import math

from ..simulator.units import MSS_BYTES
from .base import CongestionControl


class Cubic(CongestionControl):
    """TCP Cubic with fast convergence and the TCP-friendly region."""

    name = "cubic"
    elastic = True

    #: Cubic scaling constant (segments / s^3), per the paper and Linux.
    C = 0.4
    #: Multiplicative decrease factor.
    BETA = 0.7

    def __init__(self, init_cwnd_segments: int = 10,
                 min_cwnd_segments: int = 2,
                 fast_convergence: bool = True) -> None:
        super().__init__()
        self.cwnd = init_cwnd_segments * MSS_BYTES
        self.ssthresh = math.inf
        self.min_cwnd = min_cwnd_segments * MSS_BYTES
        self.fast_convergence = fast_convergence

        self.w_max = 0.0          # window (bytes) just before the last loss
        self._epoch_start: float | None = None
        self._k = 0.0             # time offset of the cubic origin (seconds)
        self._w_est = 0.0         # Reno-friendly window estimate (bytes)
        self._acked_since_epoch = 0.0
        self._last_loss_reaction = -math.inf

    # ------------------------------------------------------------------ #
    # ACK processing
    # ------------------------------------------------------------------ #
    def on_ack(self, ack, now: float) -> None:
        acked = ack.acked_bytes
        if self.cwnd < self.ssthresh:
            self.cwnd += acked
            return

        if self._epoch_start is None:
            self._start_epoch(now)
        self._acked_since_epoch += acked

        target = self._cubic_window(now + self.measurement.base_rtt())
        if target > self.cwnd:
            # Grow towards the cubic target over roughly one RTT.
            self.cwnd += (target - self.cwnd) * acked / self.cwnd
        else:
            # Very slow growth when at/above the target (as in Linux).
            self.cwnd += 0.01 * MSS_BYTES * acked / self.cwnd

        # TCP-friendly region: never be slower than an equivalent Reno flow.
        self._w_est += (3.0 * (1.0 - self.BETA) / (1.0 + self.BETA)
                        * MSS_BYTES * acked / self.cwnd)
        if self._w_est > self.cwnd:
            self.cwnd = self._w_est

    # ------------------------------------------------------------------ #
    # Loss processing
    # ------------------------------------------------------------------ #
    def on_loss(self, lost_bytes: float, now: float) -> None:
        rtt = self.measurement.rtt or self.measurement.base_rtt()
        if now - self._last_loss_reaction < rtt:
            return
        self._last_loss_reaction = now

        if self.fast_convergence and self.cwnd < self.w_max:
            self.w_max = self.cwnd * (1.0 + self.BETA) / 2.0
        else:
            self.w_max = self.cwnd
        self.cwnd = max(self.cwnd * self.BETA, self.min_cwnd)
        self.ssthresh = self.cwnd
        self._epoch_start = None

    # ------------------------------------------------------------------ #
    # Cubic window function
    # ------------------------------------------------------------------ #
    def _start_epoch(self, now: float) -> None:
        self._epoch_start = now
        self._acked_since_epoch = 0.0
        if self.cwnd < self.w_max:
            self._k = ((self.w_max - self.cwnd)
                       / (self.C * MSS_BYTES)) ** (1.0 / 3.0)
        else:
            self._k = 0.0
            self.w_max = self.cwnd
        self._w_est = self.cwnd

    def _cubic_window(self, at_time: float) -> float:
        """W(t) = C (t - K)^3 + W_max, in bytes."""
        assert self._epoch_start is not None
        t = at_time - self._epoch_start
        return (self.C * MSS_BYTES * (t - self._k) ** 3) + self.w_max
