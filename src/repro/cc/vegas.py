"""TCP Vegas congestion control (Brakmo, O'Malley, Peterson 1994).

Vegas is a delay-based scheme: it estimates how many of its own packets are
queued at the bottleneck (the difference between the expected and actual
throughput, times the base RTT) and holds that number between ``alpha`` and
``beta`` segments.  The paper uses Vegas both as an example of a
delay-controlling algorithm that loses badly to loss-based cross traffic and
as an optional delay mode inside Nimbus.
"""

from __future__ import annotations

from ..simulator.units import MSS_BYTES
from .base import CongestionControl


class Vegas(CongestionControl):
    """TCP Vegas: keep between ``alpha`` and ``beta`` segments in the queue."""

    name = "vegas"
    elastic = True

    def __init__(self, alpha: float = 2.0, beta: float = 4.0,
                 init_cwnd_segments: int = 10,
                 min_cwnd_segments: int = 2) -> None:
        super().__init__()
        if alpha > beta:
            raise ValueError("alpha must not exceed beta")
        self.alpha = alpha
        self.beta = beta
        self.cwnd = init_cwnd_segments * MSS_BYTES
        self.min_cwnd = min_cwnd_segments * MSS_BYTES
        self._last_update = 0.0
        self._in_slow_start = True

    def on_ack(self, ack, now: float) -> None:
        m = self.measurement
        rtt = m.rtt
        base = m.base_rtt()
        if rtt <= 0 or base <= 0:
            return

        # Number of our own segments sitting in the bottleneck queue.
        expected = self.cwnd / base
        actual = self.cwnd / rtt
        diff_segments = (expected - actual) * base / MSS_BYTES

        if self._in_slow_start:
            if diff_segments > self.beta:
                self._in_slow_start = False
                self.cwnd = max(self.cwnd * 0.75, self.min_cwnd)
            else:
                self.cwnd += ack.acked_bytes
            return

        # Adjust at most once per RTT, by one segment, as Vegas specifies.
        if now - self._last_update < rtt:
            return
        self._last_update = now
        if diff_segments < self.alpha:
            self.cwnd += MSS_BYTES
        elif diff_segments > self.beta:
            self.cwnd = max(self.cwnd - MSS_BYTES, self.min_cwnd)

    def on_loss(self, lost_bytes: float, now: float) -> None:
        self._in_slow_start = False
        self.cwnd = max(self.cwnd / 2.0, self.min_cwnd)
