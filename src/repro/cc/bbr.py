"""BBR congestion control (Cardwell et al., 2016), simplified.

BBR estimates the bottleneck bandwidth (the windowed maximum delivery rate)
and the round-trip propagation delay (the windowed minimum RTT), paces at
the bandwidth estimate, and caps the data in flight at twice the estimated
bandwidth-delay product.  A gain cycle periodically probes for more
bandwidth and then drains the induced queue.

The paper uses BBR both as a comparison scheme and as cross traffic
(Appendix C): with deep buffers BBR's inflight cap makes it ACK-clocked and
Nimbus classifies it as elastic; with shallow buffers it is rate-driven and
classified inelastic.  This implementation keeps the state machine
(STARTUP → DRAIN → PROBE_BW with an eight-phase gain cycle, plus PROBE_RTT)
at the level of detail those behaviours require.
"""

from __future__ import annotations

import math
from collections import deque

from ..simulator.units import MSS_BYTES
from .base import CongestionControl

STARTUP = "startup"
DRAIN = "drain"
PROBE_BW = "probe_bw"
PROBE_RTT = "probe_rtt"

#: Pacing gains for the PROBE_BW cycle, one phase per round trip.
GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
#: 2 / ln(2) — the startup gain that doubles the sending rate every RTT.
STARTUP_GAIN = 2.885


class Bbr(CongestionControl):
    """Model-based BBR: pace at max-delivery-rate, cap inflight at 2 BDP."""

    name = "bbr"
    elastic = True

    def __init__(self, init_cwnd_segments: int = 10,
                 bw_window_rtts: int = 10,
                 rtprop_window: float = 10.0,
                 probe_rtt_interval: float = 10.0) -> None:
        super().__init__()
        self.cwnd = init_cwnd_segments * MSS_BYTES
        self.rate = None
        self.bw_window_rtts = bw_window_rtts
        self.rtprop_window = rtprop_window
        self.probe_rtt_interval = probe_rtt_interval

        self.state = STARTUP
        self._bw_samples: deque[tuple[float, float]] = deque()
        self._rtt_samples: deque[tuple[float, float]] = deque()
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_start = 0.0
        self._last_probe_rtt = 0.0
        self._probe_rtt_until = 0.0
        self._round_start = 0.0

    # ------------------------------------------------------------------ #
    # Model updates
    # ------------------------------------------------------------------ #
    def on_ack(self, ack, now: float) -> None:
        # Per-ACK work is kept O(1): the windowed max/min model is refreshed
        # on the 10 ms control tick instead, which is plenty for BBR's
        # multi-RTT dynamics.
        pass

    def on_loss(self, lost_bytes: float, now: float) -> None:
        # BBR v1 largely ignores individual losses; the inflight cap and the
        # gain cycle bound its aggressiveness.
        pass

    def on_control_tick(self, now: float, dt: float) -> None:
        m = self.measurement
        rtt = m.rtt
        if rtt <= 0:
            return
        delivery_rate = m.delivery_rate(now)
        if delivery_rate > 0:
            self._bw_samples.append((now, delivery_rate))
        self._rtt_samples.append((now, rtt))
        self._prune(now, rtt)
        self._advance_state(now, rtt)
        self._apply_model(now)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @property
    def btl_bw(self) -> float:
        """Bottleneck bandwidth estimate in bytes/s."""
        if not self._bw_samples:
            return 0.0
        return max(bw for _, bw in self._bw_samples)

    @property
    def rt_prop(self) -> float:
        """Round-trip propagation delay estimate in seconds."""
        if not self._rtt_samples:
            return self.measurement.base_rtt()
        return min(r for _, r in self._rtt_samples)

    def _prune(self, now: float, rtt: float) -> None:
        bw_horizon = self.bw_window_rtts * max(rtt, 1e-3)
        while self._bw_samples and self._bw_samples[0][0] < now - bw_horizon:
            self._bw_samples.popleft()
        while (self._rtt_samples
               and self._rtt_samples[0][0] < now - self.rtprop_window):
            self._rtt_samples.popleft()

    def _advance_state(self, now: float, rtt: float) -> None:
        if self.state == STARTUP:
            # Exit when the bandwidth estimate stops growing by 25% per round.
            if now - self._round_start >= rtt:
                self._round_start = now
                if self.btl_bw > self._full_bw * 1.25:
                    self._full_bw = self.btl_bw
                    self._full_bw_rounds = 0
                else:
                    self._full_bw_rounds += 1
                    if self._full_bw_rounds >= 3:
                        self.state = DRAIN
        elif self.state == DRAIN:
            # Drain until inflight falls to the estimated BDP.
            bdp = self.btl_bw * self.rt_prop
            if self.flow is not None and self.flow.inflight <= bdp:
                self.state = PROBE_BW
                self._cycle_index = 0
                self._cycle_start = now
        elif self.state == PROBE_BW:
            if now - self._cycle_start >= max(self.rt_prop, 1e-3):
                self._cycle_start = now
                self._cycle_index = (self._cycle_index + 1) % len(GAIN_CYCLE)
            if now - self._last_probe_rtt > self.probe_rtt_interval:
                self.state = PROBE_RTT
                self._probe_rtt_until = now + max(0.2, 2 * self.rt_prop)
        elif self.state == PROBE_RTT:
            if now >= self._probe_rtt_until:
                self._last_probe_rtt = now
                self.state = PROBE_BW
                self._cycle_start = now

    def _apply_model(self, now: float) -> None:
        bw = self.btl_bw
        rtprop = self.rt_prop
        if bw <= 0 or rtprop <= 0 or not math.isfinite(rtprop):
            return
        if self.state == STARTUP:
            pacing_gain = cwnd_gain = STARTUP_GAIN
        elif self.state == DRAIN:
            pacing_gain = 1.0 / STARTUP_GAIN
            cwnd_gain = STARTUP_GAIN
        elif self.state == PROBE_RTT:
            pacing_gain = 1.0
            cwnd_gain = 0.5
        else:
            pacing_gain = GAIN_CYCLE[self._cycle_index]
            cwnd_gain = 2.0
        self.rate = pacing_gain * bw
        self.cwnd = max(cwnd_gain * bw * rtprop, 4 * MSS_BYTES)
