"""Simple reference senders used as cross traffic in the paper's Table 1.

* :class:`ConstantRate` — a paced, inelastic sender (constant bit-rate
  stream).  Its rate never reacts to the network.
* :class:`FixedWindow` — a sender with a constant congestion window.  It is
  ACK-clocked, so even though its window never changes it *is* elastic in
  the paper's sense: its sending rate follows its delivery rate.
* :class:`AppLimited` — convenience wrapper marking an application-limited
  flow (e.g. a low-bitrate video) as inelastic ground truth while letting an
  inner algorithm (default Cubic) govern the window.
"""

from __future__ import annotations

from typing import Optional

from ..simulator.units import MSS_BYTES
from .base import CongestionControl
from .cubic import Cubic


class ConstantRate(CongestionControl):
    """Inelastic constant bit-rate sender (paced, no window)."""

    name = "constant-rate"
    elastic = False

    def __init__(self, rate: float) -> None:
        super().__init__()
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.cwnd = None
        self.rate = rate


class FixedWindow(CongestionControl):
    """A fixed congestion window: ACK-clocked, hence elastic (Table 1)."""

    name = "fixed-window"
    elastic = True

    def __init__(self, window_segments: float = 50.0) -> None:
        super().__init__()
        if window_segments <= 0:
            raise ValueError("window_segments must be positive")
        self.cwnd = window_segments * MSS_BYTES


class AppLimited(CongestionControl):
    """Application-limited flow: inner CC, but inelastic ground truth.

    The application source attached to the flow (e.g. a
    :class:`~repro.simulator.source.PacedSource` below the fair share)
    prevents the flow from ever pressing on the bottleneck, so the paper
    classifies such traffic as inelastic regardless of its transport.
    """

    name = "app-limited"
    elastic = False

    def __init__(self, inner: Optional[CongestionControl] = None) -> None:
        super().__init__()
        self.inner = inner if inner is not None else Cubic()

    def register(self, flow) -> None:
        super().register(flow)
        self.inner.register(flow)

    @property
    def cwnd_bytes(self):
        return self.inner.cwnd_bytes

    @property
    def pacing_rate(self):
        return self.inner.pacing_rate

    def on_ack(self, ack, now: float) -> None:
        self.inner.on_ack(ack, now)

    def on_loss(self, lost_bytes: float, now: float) -> None:
        self.inner.on_loss(lost_bytes, now)

    def on_control_tick(self, now: float, dt: float) -> None:
        self.inner.on_control_tick(now, dt)
