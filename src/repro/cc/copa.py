"""Copa congestion control (Arun & Balakrishnan, NSDI 2018).

Copa is the closest prior work to Nimbus: it targets a rate of
``1 / (delta * d_q)`` packets per second, where ``d_q`` is the estimated
queueing delay, and it switches between a *default* (delay-controlling) mode
and a *TCP-competitive* mode.  The mode detector expects the bottleneck
queue to become nearly empty at least once every 5 RTTs when only Copa
flows share the link; if the estimated queueing delay never approaches its
recent minimum, Copa concludes that buffer-filling cross traffic is present
and competes (by making ``delta`` adapt like AIMD).

The paper (§8.2, Appendix D) shows two failure modes of this detector that
our implementation reproduces:

* when inelastic cross traffic occupies more than ~80 % of the link, the
  queue physically cannot drain within 5 RTTs, so Copa misclassifies the
  traffic as buffer-filling and incurs high delays;
* when an elastic cross flow has a much larger RTT, it ramps slowly enough
  that the queue still empties every 5 RTTs, so Copa stays in default mode
  and loses throughput.
"""

from __future__ import annotations

import math
from collections import deque

from ..simulator.units import MSS_BYTES
from .base import CongestionControl

#: Mode labels shared with Nimbus so experiments can compare classifiers.
MODE_DELAY = "delay"
MODE_COMPETITIVE = "competitive"


class Copa(CongestionControl):
    """Copa with default/TCP-competitive mode switching.

    Args:
        delta_default: Target aggressiveness in default mode (0.5 in the
            Copa paper: ~2 packets in the queue at equilibrium).
        mode_switching: If False the algorithm always stays in default mode
            (this is "Copa's default mode", used as a Nimbus delay-mode
            algorithm in §4.1).
    """

    name = "copa"
    elastic = True

    def __init__(self, delta_default: float = 0.5, mode_switching: bool = True,
                 init_cwnd_segments: int = 10,
                 min_cwnd_segments: int = 2) -> None:
        super().__init__()
        self.delta_default = delta_default
        self.mode_switching = mode_switching
        self.cwnd = init_cwnd_segments * MSS_BYTES
        self.min_cwnd = min_cwnd_segments * MSS_BYTES

        self.mode = MODE_DELAY
        self.delta = delta_default
        self._velocity = 1.0
        self._max_velocity = 64.0
        self._direction = 0
        self._direction_rtts = 0
        self._last_direction_update = 0.0
        self._last_cwnd_at_update = self.cwnd

        # Queueing-delay history used by the mode detector.
        self._dq_window: deque[tuple[float, float]] = deque()
        self._last_mode_check = 0.0
        self._loss_since_check = False
        self._in_slow_start = True

    # ------------------------------------------------------------------ #
    # ACK processing: move cwnd towards the target rate
    # ------------------------------------------------------------------ #
    def on_ack(self, ack, now: float) -> None:
        m = self.measurement
        rtt = m.rtt
        base = m.base_rtt()
        if rtt <= 0 or base <= 0:
            return
        dq = max(rtt - base, 0.0)
        self._record_dq(now, dq, rtt)
        self._update_mode(now, rtt)

        # Target rate in packets/s; translated to a target cwnd.
        if dq < 1e-4:
            target_rate = math.inf
        else:
            target_rate = 1.0 / (self.delta * dq)
        current_rate = self.cwnd / MSS_BYTES / rtt

        if self._in_slow_start:
            if current_rate < target_rate:
                self.cwnd += ack.acked_bytes
                return
            self._in_slow_start = False

        # Copa adjusts cwnd by v/(delta * cwnd) packets per ACK; summed over a
        # window's worth of ACKs this moves the window by v/delta packets
        # per RTT.  Expressed in bytes and scaled by the acknowledged bytes:
        acked_fraction = ack.acked_bytes / max(self.cwnd, 1.0)
        step = (self._velocity / self.delta) * MSS_BYTES * acked_fraction

        if current_rate < target_rate:
            self.cwnd += step
        else:
            self.cwnd = max(self.cwnd - step, self.min_cwnd)
        self._update_velocity(now, rtt)

    def on_loss(self, lost_bytes: float, now: float) -> None:
        self._in_slow_start = False
        self._loss_since_check = True
        if self.mode == MODE_COMPETITIVE:
            # In competitive mode 1/delta behaves like a TCP window: halve it
            # (i.e. double delta) on loss, capped at the default value.
            self.delta = min(self.delta * 2.0, self.delta_default)
            self.cwnd = max(self.cwnd / 2.0, self.min_cwnd)

    def on_control_tick(self, now: float, dt: float) -> None:
        m = self.measurement
        if m.rtt > 0:
            dq = max(m.rtt - m.base_rtt(), 0.0)
            self._record_dq(now, dq, m.rtt)
            self._update_mode(now, m.rtt)

    # ------------------------------------------------------------------ #
    # Velocity (Copa's acceleration of the cwnd adjustments)
    # ------------------------------------------------------------------ #
    def _update_velocity(self, now: float, rtt: float) -> None:
        """Once per RTT: double velocity if cwnd kept moving the same way.

        The direction is judged from the *net* cwnd change over the last
        RTT; the velocity doubles only after the direction has persisted for
        three RTTs (as in the Copa reference implementation) and is capped
        to keep the fluid model stable.
        """
        if now - self._last_direction_update < rtt:
            return
        self._last_direction_update = now
        direction = 1 if self.cwnd >= self._last_cwnd_at_update else -1
        self._last_cwnd_at_update = self.cwnd
        if direction == self._direction:
            self._direction_rtts += 1
            if self._direction_rtts >= 3:
                self._velocity = min(self._velocity * 2.0, self._max_velocity)
        else:
            self._direction = direction
            self._direction_rtts = 0
            self._velocity = 1.0

    # ------------------------------------------------------------------ #
    # Mode detection
    # ------------------------------------------------------------------ #
    def _record_dq(self, now: float, dq: float, rtt: float) -> None:
        self._dq_window.append((now, dq))
        horizon = 5.0 * max(rtt, 1e-3)
        while self._dq_window and self._dq_window[0][0] < now - horizon:
            self._dq_window.popleft()

    def _update_mode(self, now: float, rtt: float) -> None:
        if not self.mode_switching:
            self.mode = MODE_DELAY
            return
        interval = 5.0 * max(rtt, 1e-3)
        if now - self._last_mode_check < interval or not self._dq_window:
            return
        self._last_mode_check = now
        dqs = [d for _, d in self._dq_window]
        dq_min = min(dqs)
        dq_max = max(dqs)
        # "Nearly empty": the smallest queueing delay seen in the last
        # 5 RTTs is within 10% of the largest (plus a small absolute floor).
        nearly_empty = dq_min <= max(0.1 * dq_max, 0.002)
        if nearly_empty:
            if self.mode != MODE_DELAY:
                self.mode = MODE_DELAY
                self.delta = self.delta_default
                self._velocity = 1.0
        else:
            if self.mode != MODE_COMPETITIVE:
                self.mode = MODE_COMPETITIVE
                self.delta = self.delta_default
            else:
                # AIMD on 1/delta while competitive: grow aggressiveness
                # every check interval without loss.
                if not self._loss_since_check:
                    inv = 1.0 / self.delta + 1.0
                    self.delta = 1.0 / inv
        self._loss_since_check = False
