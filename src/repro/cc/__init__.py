"""Congestion-control algorithm zoo.

Every scheme the paper runs or competes against is implemented behind the
common :class:`~repro.cc.base.CongestionControl` interface so experiments
can mix and match them freely.
"""

from .base import CongestionControl, NullCC
from .basic_delay import BasicDelay
from .bbr import Bbr
from .compound import Compound
from .copa import MODE_COMPETITIVE, MODE_DELAY, Copa
from .cubic import Cubic
from .misc import AppLimited, ConstantRate, FixedWindow
from .reno import NewReno, Reno
from .vegas import Vegas
from .vivace import Vivace

__all__ = [
    "AppLimited",
    "BasicDelay",
    "Bbr",
    "Compound",
    "CongestionControl",
    "ConstantRate",
    "Copa",
    "Cubic",
    "FixedWindow",
    "MODE_COMPETITIVE",
    "MODE_DELAY",
    "NewReno",
    "NullCC",
    "Reno",
    "Vegas",
    "Vivace",
]
