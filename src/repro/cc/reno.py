"""TCP NewReno congestion control.

The classic loss-based AIMD algorithm: slow start until the slow-start
threshold, additive increase of one segment per round-trip afterwards, and a
multiplicative decrease of one half on a loss event.  NewReno is one of the
paper's canonical examples of *elastic*, ACK-clocked cross traffic and is
also offered as a TCP-competitive mode for Nimbus (§4.1).
"""

from __future__ import annotations

import math

from ..simulator.units import MSS_BYTES
from .base import CongestionControl


class NewReno(CongestionControl):
    """TCP NewReno: slow start + AIMD congestion avoidance."""

    name = "newreno"
    elastic = True

    def __init__(self, init_cwnd_segments: int = 10,
                 min_cwnd_segments: int = 2) -> None:
        super().__init__()
        self.cwnd = init_cwnd_segments * MSS_BYTES
        self.ssthresh = math.inf
        self.min_cwnd = min_cwnd_segments * MSS_BYTES
        self._last_loss_reaction = -math.inf

    def on_ack(self, ack, now: float) -> None:
        acked = ack.acked_bytes
        if self.cwnd < self.ssthresh:
            # Slow start: grow the window by the amount acknowledged.
            self.cwnd += acked
        else:
            # Congestion avoidance: one MSS per window's worth of ACKs.
            self.cwnd += MSS_BYTES * acked / self.cwnd

    def on_loss(self, lost_bytes: float, now: float) -> None:
        rtt = self.measurement.rtt or self.measurement.base_rtt()
        # React at most once per round-trip: multiple drop notifications
        # within an RTT correspond to a single congestion event.
        if now - self._last_loss_reaction < rtt:
            return
        self._last_loss_reaction = now
        self.ssthresh = max(self.cwnd / 2.0, self.min_cwnd)
        self.cwnd = max(self.ssthresh, self.min_cwnd)


class Reno(NewReno):
    """Alias with the historical name; behaviour identical to NewReno here."""

    name = "reno"
