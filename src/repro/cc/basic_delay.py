"""BasicDelay: the paper's simple delay-controlling algorithm (§4.1, Eq. 4).

Upon each control interval the sending rate is set to::

    rate <- S + alpha * (mu - S - z) + beta * (mu / x) * (x_min + d_t - x)

where ``S`` is the sending rate over the last window of packets, ``z`` the
estimated cross-traffic rate, ``mu`` the bottleneck link rate, ``x`` the
current RTT, ``x_min`` the minimum observed RTT, and ``d_t`` a target
queueing delay.  The first correction term moves the rate towards the spare
capacity; the second regulates the queue towards ``d_t`` so that it neither
grows without bound nor empties (the cross-traffic estimator needs a
non-empty queue).
"""

from __future__ import annotations

from typing import Callable, Optional

from .base import CongestionControl


class BasicDelay(CongestionControl):
    """Rate-based delay controller driven by the cross-traffic estimate.

    Args:
        mu: Bottleneck link rate in bytes per second.
        alpha: Gain on the spare-capacity term (0.8 in the paper's §8.1).
        beta: Gain on the queue-regulation term (0.5 in the paper).
        target_delay: Target queueing delay ``d_t`` in seconds (12.5 ms).
        z_provider: Optional callable returning the current cross-traffic
            rate estimate in bytes/s.  When Nimbus embeds BasicDelay it wires
            its own estimator here; standalone, the estimate is computed
            directly from the flow's S and R measurements via Eq. (1).
    """

    name = "basicdelay"
    elastic = True

    def __init__(self, mu: float, alpha: float = 0.8, beta: float = 0.5,
                 target_delay: float = 0.0125,
                 z_provider: Optional[Callable[[float], float]] = None,
                 min_rate_fraction: float = 0.02) -> None:
        super().__init__()
        if mu <= 0:
            raise ValueError("mu must be positive")
        self.mu = mu
        self.alpha = alpha
        self.beta = beta
        self.target_delay = target_delay
        self.z_provider = z_provider
        self.min_rate = min_rate_fraction * mu
        self.rate = 0.1 * mu
        # A generous window cap so the flow stays rate-limited, not
        # window-limited, while still bounding the data in flight.
        self.cwnd = None

    def cross_traffic_estimate(self, now: float) -> float:
        """z(t) from Eq. (1), or the injected provider's value."""
        if self.z_provider is not None:
            return max(0.0, self.z_provider(now))
        m = self.measurement
        s = m.send_rate(now)
        r = m.delivery_rate(now)
        if r <= 0 or s <= 0:
            return 0.0
        return max(0.0, self.mu * s / r - s)

    def on_control_tick(self, now: float, dt: float) -> None:
        m = self.measurement
        x = m.rtt
        if x <= 0:
            return
        x_min = m.base_rtt()
        s = m.send_rate(now)
        z = self.cross_traffic_estimate(now)

        spare = self.mu - s - z
        queue_term = (self.beta * self.mu / x) * (x_min + self.target_delay - x)
        rate = s + self.alpha * spare + queue_term
        self.rate = float(min(max(rate, self.min_rate), 1.2 * self.mu))

    def on_loss(self, lost_bytes: float, now: float) -> None:
        # Losses mean the queue overflowed despite the delay target; back off
        # to the fair estimate of spare capacity.
        self.rate = max(self.rate * 0.7, self.min_rate)

    def set_rate(self, rate: float) -> None:
        """Externally reset the rate (used by Nimbus on mode switches)."""
        self.rate = float(min(max(rate, self.min_rate), 1.2 * self.mu))
