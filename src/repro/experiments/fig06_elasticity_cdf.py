"""Figure 6: distribution of the elasticity metric vs. elastic traffic share.

The cross traffic is a mix of one long-running Cubic flow and Poisson
(inelastic) traffic; the experiment varies the fraction of cross-traffic
bytes that are elastic from 0 % to 100 % and records the distribution of the
elasticity metric ``eta`` observed by a pulsing Nimbus flow.  Purely
inelastic traffic yields eta values near 1; any substantial elastic
component pushes the distribution above the threshold of 2.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from ..cc import Cubic, NullCC
from ..simulator import Flow, mbps_to_bytes_per_sec
from ..traffic import PoissonSource
from .common import ExperimentResult, add_main_flow, make_network

DEFAULT_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def run(elastic_fractions: Iterable[float] = DEFAULT_FRACTIONS,
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, duration: float = 40.0,
        cross_share: float = 0.5, dt: float = 0.002,
        seed: int = 0) -> ExperimentResult:
    """For each elastic fraction, collect the distribution of eta.

    ``cross_share`` is the approximate share of the link given to cross
    traffic; a fraction ``f`` of it is carried by a Cubic flow (elastic) and
    the rest by Poisson traffic (inelastic).  The elastic flow is windowed to
    roughly its target share by running it with a larger RTT when ``f`` is
    small; in practice what matters is only whether an elastic flow exists
    and how much of the bytes it carries.
    """
    result = ExperimentResult(
        name="fig06_elasticity_cdf",
        parameters=dict(link_mbps=link_mbps, duration=duration,
                        cross_share=cross_share))
    mu = mbps_to_bytes_per_sec(link_mbps)
    etas: Dict[float, np.ndarray] = {}
    medians: Dict[float, float] = {}

    for fraction in elastic_fractions:
        network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt,
                               seed=seed)
        main = add_main_flow(network, "nimbus", link_mbps, prop_rtt=prop_rtt)
        inelastic_rate = cross_share * mu * (1.0 - fraction)
        if inelastic_rate > 0:
            network.add_flow(Flow(
                cc=NullCC(), prop_rtt=prop_rtt,
                source=PoissonSource(inelastic_rate, seed=seed + 1),
                name="cross-inelastic"))
        if fraction > 0:
            network.add_flow(Flow(cc=Cubic(), prop_rtt=prop_rtt,
                                  name="cross-elastic"))
        network.run(duration)

        nimbus = main.cc
        series = np.array([eta for t, eta in nimbus.eta_history
                           if t > duration / 3])
        series = series[np.isfinite(series)]
        etas[fraction] = series
        medians[fraction] = float(np.median(series)) if series.size else 0.0
        result.add_scheme(f"elastic-{int(fraction * 100)}%", network.recorder,
                          start=duration / 3,
                          median_eta=medians[fraction])

    result.data = {"etas": etas, "median_eta": medians}
    return result
