"""Figure 25 (Appendix E.1): multi-factor robustness sweep.

Classification accuracy as a function of Nimbus's pulse size, the bottleneck
link rate, and the fraction of the link Nimbus's fair share represents.
Larger pulses and faster links improve accuracy; a smaller Nimbus share also
helps because the inelastic cross traffic then has lower relative variance.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from .accuracy_scenarios import CrossSpec, run_accuracy_scenario
from .common import ExperimentResult

DEFAULT_PULSE_SIZES = (0.0625, 0.125, 0.25, 0.5)
DEFAULT_LINK_RATES = (96.0, 192.0, 384.0)
DEFAULT_SHARES = (0.125, 0.25, 0.5, 0.75)


def run(pulse_sizes: Iterable[float] = (0.125, 0.25),
        link_rates_mbps: Iterable[float] = (96.0,),
        nimbus_shares: Iterable[float] = (0.25, 0.5),
        traffic_kind: str = "mix",
        prop_rtt: float = 0.05, buffer_ms: float = 100.0,
        duration: float = 40.0, dt: float = 0.002,
        seed: int = 0) -> ExperimentResult:
    """Sweep pulse size x link rate x Nimbus share and report accuracy.

    ``nimbus_shares`` controls the share of the link *not* taken by the
    inelastic cross traffic: a share of 0.25 means inelastic traffic offers
    75 % of the link (minus the elastic flow for the mixed workload).
    """
    result = ExperimentResult(
        name="fig25_multifactor",
        parameters=dict(pulse_sizes=list(pulse_sizes),
                        link_rates_mbps=list(link_rates_mbps),
                        nimbus_shares=list(nimbus_shares),
                        traffic_kind=traffic_kind, duration=duration))
    accuracy: Dict[Tuple[float, float, float], float] = {}
    for link_rate in link_rates_mbps:
        for share in nimbus_shares:
            inelastic_fraction = max(0.0, 1.0 - share)
            if traffic_kind == "mix":
                # Half the non-Nimbus share is elastic, half inelastic.
                spec = CrossSpec(kind="mix", elastic_flows=1,
                                 rate_fraction=inelastic_fraction / 2.0)
            elif traffic_kind == "elastic":
                spec = CrossSpec(kind="elastic", elastic_flows=1,
                                 rate_fraction=0.0)
            else:
                spec = CrossSpec(kind="poisson",
                                 rate_fraction=inelastic_fraction,
                                 elastic_flows=0)
            for pulse in pulse_sizes:
                scenario = run_accuracy_scenario(
                    "nimbus", spec, link_mbps=link_rate, prop_rtt=prop_rtt,
                    buffer_ms=buffer_ms, duration=duration, dt=dt, seed=seed,
                    pulse_fraction=pulse)
                accuracy[(pulse, link_rate, share)] = scenario.report.accuracy
    result.data["accuracy"] = accuracy
    result.data["mean_accuracy"] = (sum(accuracy.values()) / len(accuracy)
                                    if accuracy else 0.0)
    return result
