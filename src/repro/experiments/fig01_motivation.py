"""Figure 1: the motivating experiment.

A bulk flow shares a 48 Mbit/s, 50 ms link with one long-running Cubic flow
for a period, followed by an inelastic 24 Mbit/s stream.  Cubic keeps the
queue full throughout; a pure delay-controlling scheme gets starved by the
Cubic cross flow; Nimbus competes fairly while the cross traffic is elastic
and drops the queueing delay once it is inelastic.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from ..simulator import mbps_to_bytes_per_sec
from ..traffic import Phase, ScriptedCrossTraffic
from .common import (
    MAIN_FLOW,
    ExperimentResult,
    add_main_flow,
    make_network,
    queue_delay_stats,
)

DEFAULT_SCHEMES = ("cubic", "basicdelay", "nimbus")


def build_schedule(phase_duration: float, link_mbps: float) -> list:
    """Idle warmup, one elastic Cubic phase, one 50%-rate inelastic phase."""
    mu = mbps_to_bytes_per_sec(link_mbps)
    return [
        Phase(duration=phase_duration / 2.0),
        Phase(duration=phase_duration, elastic_flows=1),
        Phase(duration=phase_duration, inelastic_rate=0.5 * mu),
    ]


def run(schemes: Iterable[str] = DEFAULT_SCHEMES,
        link_mbps: float = 48.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, phase_duration: float = 60.0,
        dt: float = 0.002, seed: int = 0) -> ExperimentResult:
    """Run the Fig. 1 scenario for each scheme and summarise per phase."""
    result = ExperimentResult(
        name="fig01_motivation",
        parameters=dict(link_mbps=link_mbps, prop_rtt=prop_rtt,
                        buffer_ms=buffer_ms, phase_duration=phase_duration))
    warmup = phase_duration / 2.0
    elastic_window = (warmup + 5.0, warmup + phase_duration)
    inelastic_window = (warmup + phase_duration + 5.0,
                        warmup + 2 * phase_duration)

    for scheme in schemes:
        network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt, seed=seed)
        add_main_flow(network, scheme, link_mbps, prop_rtt=prop_rtt)
        cross = ScriptedCrossTraffic(
            network=network, phases=build_schedule(phase_duration, link_mbps),
            prop_rtt=prop_rtt)
        cross.install()
        network.run(warmup + 2 * phase_duration)

        recorder = network.recorder
        times, tput = recorder.throughput_series(MAIN_FLOW)
        _, qdelay = recorder.link_queue_delay_series()

        def window_mean(series: np.ndarray, window) -> float:
            mask = (times >= window[0]) & (times <= window[1])
            return float(np.mean(series[mask])) if mask.any() else 0.0

        result.add_scheme(
            scheme, recorder, start=warmup,
            elastic_throughput=window_mean(tput, elastic_window),
            inelastic_throughput=window_mean(tput, inelastic_window),
            elastic_delay_ms=window_mean(qdelay, elastic_window),
            inelastic_delay_ms=window_mean(qdelay, inelastic_window),
            queue=queue_delay_stats(recorder, start=warmup))
        result.data[scheme] = {
            "times": times,
            "throughput_mbps": tput,
            "queue_delay_ms": qdelay,
        }
    result.data["windows"] = {
        "elastic": elastic_window,
        "inelastic": inelastic_window,
    }
    return result


def fair_share_mbps(link_mbps: float) -> Dict[str, float]:
    """Fair share of the main flow in the two phases of the experiment."""
    return {"elastic": link_mbps / 2.0, "inelastic": link_mbps / 2.0}
