"""Deliberate-failure driver exercising the hardened batch executor.

Not a paper artefact: a microscopic driver whose failure modes are part
of its parameter space, so the executor's crash isolation, timeout, and
retry machinery can be exercised from the runner command line and from
CI without a purpose-built harness::

    python -m repro.experiments.runner sweep selftest \\
        --set crash=0,1 --set seed=1,2 --timeout 30

``crash=1`` raises after the work, ``sleep=N`` stalls for N wall seconds
(pair with ``--timeout``), and the default parameters complete in
microseconds with a deterministic payload — so a chaos batch mixes
healthy and failing specs at will, and the healthy results still land in
the cache.
"""

from __future__ import annotations

import os
import random
import time

from .common import ExperimentResult


def run(duration: float = 0.25, dt: float = 0.004, seed: int = 0,
        crash: int = 0, sleep: float = 0.0,
        scale: float = 1.0) -> ExperimentResult:
    """Deterministic pseudo-experiment with opt-in failure modes.

    Args:
        duration / dt: Sample count, mimicking a real driver's axes.
        seed: Random seed for the payload.
        crash: Raise ``RuntimeError`` (after doing the work) when truthy.
        sleep: Stall this many wall-clock seconds before finishing —
            a timing-out spec under a per-spec deadline.
        scale: Multiplier on the payload samples.
    """
    rng = random.Random((seed, duration, dt, scale).__repr__())
    samples = [rng.random() * scale
               for _ in range(max(1, int(duration / dt)))]
    if sleep > 0:
        time.sleep(sleep)
    if crash:
        raise RuntimeError(
            f"selftest: deliberate crash (crash={crash}, seed={seed})")
    result = ExperimentResult(
        name="selftest", parameters=dict(duration=duration, dt=dt,
                                         seed=seed, crash=int(crash),
                                         sleep=sleep, scale=scale))
    result.data["mean"] = sum(samples) / len(samples)
    result.data["n"] = len(samples)
    return result


def flaky_run(marker: str, fail_times: int = 1, duration: float = 0.25,
              dt: float = 0.004, seed: int = 0) -> ExperimentResult:
    """Fail the first ``fail_times`` executions, then succeed.

    The attempt counter lives in the ``marker`` file, so it survives
    process boundaries — exactly what a retry-then-succeed test of the
    hardened executor needs.  Not reachable from the runner (the marker
    is a string); tests and API users build specs against it directly.
    """
    attempts = 0
    if os.path.exists(marker):
        with open(marker, "r", encoding="ascii") as handle:
            attempts = int(handle.read().strip() or 0)
    attempts += 1
    with open(marker, "w", encoding="ascii") as handle:
        handle.write(str(attempts))
    if attempts <= fail_times:
        raise RuntimeError(f"selftest: transient failure "
                           f"{attempts}/{fail_times}")
    result = run(duration=duration, dt=dt, seed=seed)
    result.data["attempts"] = attempts
    return result


def sleepy_run(marker: str, sleep: float = 30.0, duration: float = 0.25,
               dt: float = 0.004, seed: int = 0) -> ExperimentResult:
    """Stall for ``sleep`` seconds on the first execution only.

    The first run writes the ``marker`` file and then sleeps (timing out
    under a per-spec deadline); any later run finds the marker and
    completes immediately.  This is the resume-after-timeout fixture: a
    spec that timed out in a journalled batch must be *re-executed* on
    ``--resume`` — where it now succeeds — rather than treated as done.
    Like :func:`flaky_run`, not reachable from the runner.
    """
    first = not os.path.exists(marker)
    if first:
        with open(marker, "w", encoding="ascii") as handle:
            handle.write("slept")
        time.sleep(sleep)
    result = run(duration=duration, dt=dt, seed=seed)
    result.data["slept"] = first
    return result


def hard_exit(duration: float = 0.25, dt: float = 0.004, seed: int = 0,
              code: int = 17) -> ExperimentResult:
    """Kill the interpreter outright — a worker-death (not raise) crash.

    Only ever run this under the hardened executor: in-process execution
    would take the caller down with it (that being the point).
    """
    os._exit(int(code))
