"""Figure 12: the elasticity metric tracks the true elastic share over time.

A Nimbus flow runs against the WAN workload; the experiment compares the
time series of the elasticity metric (and the resulting mode decisions)
against the ground truth computed from the workload generator: the fraction
of delivered cross-traffic bytes in each window that belong to flows large
enough to be ACK-clocked.
"""

from __future__ import annotations

import numpy as np

from ..analysis.accuracy import classification_accuracy
from .common import MAIN_FLOW, ExperimentResult
from .fig09_wan import run_single


def run(link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, load: float = 0.5, duration: float = 80.0,
        truth_window: float = 5.0, truth_threshold: float = 0.3,
        dt: float = 0.002, seed: int = 1) -> ExperimentResult:
    """Run Nimbus on the WAN workload and score eta against ground truth."""
    network, flow, generator = run_single(
        "nimbus", link_mbps=link_mbps, prop_rtt=prop_rtt,
        buffer_ms=buffer_ms, load=load, duration=duration, dt=dt, seed=seed)
    recorder = network.recorder
    nimbus = flow.cc

    eta_times = np.array([t for t, _ in nimbus.eta_history])
    eta_values = np.array([e for _, e in nimbus.eta_history])

    def truth(t: float) -> bool:
        return generator.elastic_present(max(0.0, t - truth_window), t,
                                         byte_fraction_threshold=truth_threshold)

    times, modes = recorder.mode_series(MAIN_FLOW)
    warmup = 10.0
    report = classification_accuracy(times, modes, elastic_truth=truth,
                                     warmup=warmup, settle=truth_window)

    truth_series = np.array([
        generator.elastic_byte_fraction(max(0.0, t - truth_window), t)
        for t in times])

    result = ExperimentResult(
        name="fig12_eta_tracking",
        parameters=dict(link_mbps=link_mbps, load=load, duration=duration,
                        truth_window=truth_window))
    result.add_scheme("nimbus", recorder, start=warmup,
                      accuracy=report.accuracy,
                      time_in_competitive=report.time_in_competitive,
                      truth_elastic_fraction=report.time_elastic_truth)
    result.data = {
        "eta_times": eta_times,
        "eta_values": eta_values,
        "mode_times": times,
        "modes": modes,
        "elastic_fraction_truth": truth_series,
        "accuracy": report.accuracy,
    }
    return result
