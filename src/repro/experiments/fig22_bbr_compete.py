"""Figure 22 (Appendix C): competing against a BBR flow.

With shallow buffers BBR is rate-driven (not ACK-clocked), Nimbus classifies
it as inelastic, and both Nimbus and Cubic receive only a small share of the
link because BBR is aggressive.  With deep buffers BBR's inflight cap makes
it ACK-clocked, Nimbus classifies it as elastic and competes, matching
Cubic's throughput.  The claim reproduced here is that Nimbus's throughput
against BBR tracks Cubic's across buffer sizes.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..cc import Bbr
from ..simulator import Flow
from .common import MAIN_FLOW, ExperimentResult, add_main_flow, make_network

DEFAULT_BUFFERS_BDP = (0.5, 1.0, 2.0, 4.0)


def run(buffer_bdp_multipliers: Iterable[float] = (0.5, 2.0),
        schemes: Iterable[str] = ("nimbus", "cubic"),
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        duration: float = 50.0, dt: float = 0.002,
        seed: int = 0) -> ExperimentResult:
    """Run each scheme against one BBR flow for each buffer size."""
    result = ExperimentResult(
        name="fig22_bbr_compete",
        parameters=dict(buffer_bdp_multipliers=list(buffer_bdp_multipliers),
                        schemes=list(schemes), link_mbps=link_mbps,
                        duration=duration))
    warmup = duration / 4.0
    throughput: Dict[float, Dict[str, float]] = {}
    for multiplier in buffer_bdp_multipliers:
        buffer_ms = prop_rtt * 1e3 * multiplier
        throughput[multiplier] = {}
        for scheme in schemes:
            network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt,
                                   seed=seed)
            add_main_flow(network, scheme, link_mbps, prop_rtt=prop_rtt)
            network.add_flow(Flow(cc=Bbr(), prop_rtt=prop_rtt, name="bbr"))
            network.run(duration)
            recorder = network.recorder
            label = f"{scheme}@{multiplier}bdp"
            result.add_scheme(label, recorder, start=warmup,
                              buffer_bdp=multiplier,
                              bbr_throughput=recorder.mean_throughput(
                                  "bbr", start=warmup))
            throughput[multiplier][scheme] = recorder.mean_throughput(
                MAIN_FLOW, start=warmup)
    result.data["throughput"] = throughput
    return result
