"""Internet-path emulation profiles (Figures 18, 19, 20 and Appendix A).

The paper measures Nimbus, Cubic, BBR and Vegas over 25 real paths between
EC2 servers and residential clients.  Real paths are not available offline,
so each path is replaced by an emulation *profile* capturing the properties
that drive the result: bottleneck rate, base RTT, buffer depth (deep
buffers vs. shallow/policed paths with drops), and the prevailing cross
traffic (mostly inelastic, occasionally with an elastic flow).

Each profile is realised as a real **two-hop path**: a wide, low-loss WAN
hop (the EC2-to-ISP leg, carrying roughly half of the path's propagation
delay) feeding the access bottleneck (rate, buffer, and queue policy from
the profile).  The main flow traverses both hops; last-mile cross traffic
enters at the access link only, so the measured flow crosses a backbone
that its competition never sees — the property that made single-queue
emulation of these paths an approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..cc import Cubic, NullCC
from ..simulator import Flow, TopologyNetwork, mbps_to_bytes_per_sec
from ..traffic import PoissonSource, WanTrafficGenerator, WanWorkloadConfig
from .common import (
    MAIN_FLOW,
    ExperimentResult,
    LinkSpec,
    add_main_flow,
    make_multihop_network,
    queue_delay_stats,
)

#: Name of the access (bottleneck) hop in every emulated path.
ACCESS_LINK = "access"
#: Name of the backbone hop.
WAN_LINK = "wan"


@dataclass
class PathProfile:
    """One emulated Internet path."""

    name: str
    link_mbps: float
    prop_rtt: float
    buffer_ms: float
    #: Offered inelastic cross-traffic load as a fraction of the link.
    inelastic_load: float = 0.2
    #: Whether a long-running elastic flow shares the path.
    elastic_cross: bool = False
    #: Whether to use a WAN flow-arrival mix instead of plain Poisson.
    wan_mix: bool = False
    description: str = ""
    extra: dict = field(default_factory=dict)
    #: Backbone-hop rate in Mbit/s; default 4x the access rate (never the
    #: bottleneck, as on the paper's EC2-to-client paths).
    wan_mbps: Optional[float] = None
    #: One-way backbone propagation delay in ms; default half the path's
    #: base RTT.  The remainder (``prop_rtt - wan_delay``) is the access
    #: and return legs, so the end-to-end base RTT stays ``prop_rtt``.
    wan_delay_ms: Optional[float] = None

    def wan_rate_mbps(self) -> float:
        return self.wan_mbps if self.wan_mbps is not None \
            else 4.0 * self.link_mbps

    def wan_delay(self) -> float:
        delay = self.wan_delay_ms / 1e3 if self.wan_delay_ms is not None \
            else self.prop_rtt / 2.0
        if not 0.0 <= delay < self.prop_rtt:
            raise ValueError(
                f"wan_delay_ms must leave room for the access legs "
                f"(path RTT {self.prop_rtt * 1e3:.0f} ms, got "
                f"{delay * 1e3:.0f} ms)")
        return delay

    def access_rtt(self) -> float:
        """Two-way propagation of the access + return legs (flow prop_rtt)."""
        return self.prop_rtt - self.wan_delay()


#: A catalogue loosely modelled on the paper's path observations: most paths
#: are deep-buffered with predominantly inelastic cross traffic; a few are
#: shallow-buffered (drops/policers); a few see elastic competition.
DEFAULT_PROFILES: List[PathProfile] = [
    PathProfile("ec2-california-hostA", 40, 0.090, 200, 0.15,
                description="deep buffer, light inelastic cross traffic"),
    PathProfile("ec2-ireland-hostB", 90, 0.085, 150, 0.25,
                description="deep buffer, moderate inelastic cross traffic"),
    PathProfile("ec2-frankfurt-hostC", 30, 0.095, 25, 0.2,
                description="shallow buffer / policer: frequent drops"),
    PathProfile("ec2-london-hostD", 60, 0.070, 120, 0.3, wan_mix=True,
                description="deep buffer, WAN mix cross traffic"),
    PathProfile("ec2-paris-hostE", 50, 0.060, 100, 0.2, elastic_cross=True,
                description="deep buffer with a competing elastic flow"),
]

DEFAULT_SCHEMES = ("nimbus", "cubic", "bbr", "vegas")


def build_path_network(profile: PathProfile, dt: float = 0.002,
                       seed: int = 0) -> TopologyNetwork:
    """The two-hop (backbone -> access bottleneck) network of one profile."""
    links = (
        LinkSpec(WAN_LINK, profile.wan_rate_mbps(),
                 delay_ms=profile.wan_delay() * 1e3, buffer_ms=200.0),
        LinkSpec(ACCESS_LINK, profile.link_mbps,
                 buffer_ms=profile.buffer_ms),
    )
    return make_multihop_network(links, dt=dt, seed=seed,
                                 monitor=ACCESS_LINK)


def run_path(profile: PathProfile, scheme: str, duration: float = 40.0,
             dt: float = 0.002, seed: int = 0):
    """Run one scheme over one path profile; returns the network.

    The main flow traverses backbone + access; cross traffic is last-mile
    (access hop only), except the WAN mix, which models transit flows
    sharing the whole path.
    """
    network = build_path_network(profile, dt=dt, seed=seed)
    mu = mbps_to_bytes_per_sec(profile.link_mbps)
    access_rtt = profile.access_rtt()
    add_main_flow(network, scheme, profile.link_mbps, prop_rtt=access_rtt)
    if profile.wan_mix:
        generator = WanTrafficGenerator(network, WanWorkloadConfig(
            link_rate=mu, load=profile.inelastic_load,
            prop_rtt=access_rtt, seed=seed + 3))
        generator.start()
    elif profile.inelastic_load > 0:
        network.add_flow(Flow(
            cc=NullCC(), prop_rtt=profile.prop_rtt,
            source=PoissonSource(profile.inelastic_load * mu, seed=seed + 3),
            name="cross"), path=(ACCESS_LINK,))
    if profile.elastic_cross:
        network.add_flow(Flow(cc=Cubic(), prop_rtt=profile.prop_rtt,
                              name="cross-elastic"), path=(ACCESS_LINK,))
    network.run(duration)
    return network


def run(profiles: Optional[Iterable[PathProfile]] = None,
        schemes: Iterable[str] = ("nimbus", "cubic", "bbr", "vegas"),
        duration: float = 40.0, dt: float = 0.002,
        seed: int = 0) -> ExperimentResult:
    """Run every scheme over every path profile (Figs. 18 and 19)."""
    profiles = list(profiles) if profiles is not None else DEFAULT_PROFILES
    result = ExperimentResult(
        name="fig18_internet_paths",
        parameters=dict(paths=[p.name for p in profiles],
                        schemes=list(schemes), duration=duration))
    per_path: Dict[str, Dict[str, dict]] = {}
    warmup = duration / 4.0
    for profile in profiles:
        per_path[profile.name] = {}
        for scheme in schemes:
            network = run_path(profile, scheme, duration=duration, dt=dt,
                               seed=seed)
            recorder = network.recorder
            label = f"{scheme}@{profile.name}"
            scheme_result = result.add_scheme(
                label, recorder, start=warmup, path=profile.name,
                queue=queue_delay_stats(recorder, start=warmup))
            rtt_ms = recorder.rtt_samples(MAIN_FLOW) * 1e3
            per_path[profile.name][scheme] = {
                "throughput_mbps": scheme_result.summary.mean_throughput_mbps,
                "mean_delay_ms": scheme_result.summary.mean_delay_ms,
                "mean_rtt_ms": float(rtt_ms.mean()) if rtt_ms.size else 0.0,
            }
    result.data["per_path"] = per_path
    return result


def run_appendix_a(profile: Optional[PathProfile] = None,
                   duration: float = 40.0, dt: float = 0.002,
                   seed: int = 0) -> ExperimentResult:
    """Appendix A / Fig. 20: Cubic vs. the delay-control algorithm alone."""
    profile = profile if profile is not None else DEFAULT_PROFILES[0]
    result = ExperimentResult(
        name="fig20_inelastic_paths",
        parameters=dict(path=profile.name, duration=duration))
    warmup = duration / 4.0
    for scheme in ("cubic", "nimbus-delay"):
        network = run_path(profile, scheme, duration=duration, dt=dt,
                           seed=seed)
        result.add_scheme(scheme, network.recorder, start=warmup,
                          queue=queue_delay_stats(network.recorder,
                                                  start=warmup))
    return result
