"""Figure 3: the self-inflicted-delay strawman does not reveal elasticity.

The experiment repeats Fig. 1a with a Cubic bulk flow and measures two
quantities per interval: the total queueing delay and the *self-inflicted*
delay (the share of the queue occupied by the flow's own bytes, divided by
the link rate).  Because a flow's queue share is proportional to its
throughput — roughly 50 % in both the elastic and the inelastic phase — the
self-inflicted delay looks the same in both phases and therefore cannot be
used to classify the cross traffic.
"""

from __future__ import annotations

import numpy as np

from ..simulator import mbps_to_bytes_per_sec
from .common import ExperimentResult, add_main_flow, make_network
from .fig01_motivation import build_schedule
from ..traffic import ScriptedCrossTraffic


def run(link_mbps: float = 48.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, phase_duration: float = 40.0,
        sample_interval: float = 0.1, dt: float = 0.002,
        seed: int = 0) -> ExperimentResult:
    """Run the Cubic flow of Fig. 1a and record self-inflicted vs total delay."""
    network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt, seed=seed)
    flow = add_main_flow(network, "cubic", link_mbps, prop_rtt=prop_rtt)
    cross = ScriptedCrossTraffic(
        network=network, phases=build_schedule(phase_duration, link_mbps),
        prop_rtt=prop_rtt)
    cross.install()

    mu = mbps_to_bytes_per_sec(link_mbps)
    samples: list = []

    def sample(now: float) -> None:
        own_bytes = network.link.occupancy_of(flow.flow_id)
        samples.append((now, own_bytes / mu, network.link.queue_delay))
        network.schedule_call(now + sample_interval, sample)

    network.schedule_call(sample_interval, sample)
    warmup = phase_duration / 2.0
    network.run(warmup + 2 * phase_duration)

    times = np.array([s[0] for s in samples])
    self_inflicted_ms = np.array([s[1] for s in samples]) * 1e3
    total_ms = np.array([s[2] for s in samples]) * 1e3

    elastic_mask = (times >= warmup + 5) & (times <= warmup + phase_duration)
    inelastic_mask = (times >= warmup + phase_duration + 5)

    result = ExperimentResult(
        name="fig03_self_inflicted",
        parameters=dict(link_mbps=link_mbps, phase_duration=phase_duration))
    result.add_scheme("cubic", network.recorder, start=warmup)
    result.data = {
        "times": times,
        "self_inflicted_ms": self_inflicted_ms,
        "total_ms": total_ms,
        "self_inflicted_elastic_mean": float(
            np.mean(self_inflicted_ms[elastic_mask])) if elastic_mask.any() else 0.0,
        "self_inflicted_inelastic_mean": float(
            np.mean(self_inflicted_ms[inelastic_mask])) if inelastic_mask.any() else 0.0,
        "total_elastic_mean": float(
            np.mean(total_ms[elastic_mask])) if elastic_mask.any() else 0.0,
        "total_inelastic_mean": float(
            np.mean(total_ms[inelastic_mask])) if inelastic_mask.any() else 0.0,
    }
    return result
