"""Reroute chaos experiment: classification accuracy under failover.

A primary/backup two-path topology — source ``S`` reaches the midpoint
``M`` over a fast ``primary`` link (flapped) or a slower ``backup`` link,
then a shared ``bottleneck`` (the monitor) carries everything to ``D``::

            primary (96M, flapped)
        S ========================= M --- bottleneck (48M) --- D
            backup (64M)

Both the main flow and the scripted elastic/inelastic cross traffic are
destination-routed S → D, so when the chaos layer drops ``primary`` the
convergence pass moves *everyone* onto ``backup`` after ``convergence_ms``
— traffic survives the flap instead of blackholing, at a different
access rate and wire delay.  The question is whether mode-switching
schemes (Nimbus, Copa) still classify the cross traffic correctly while
its path — and therefore its arrival pattern at the bottleneck — keeps
moving under them, as a function of flap ``period`` × ``convergence_ms``.

Every payload also carries the ordered control-plane event sequence
(``route_change`` / ``blackhole_start`` / ``blackhole_end``), which is
deterministic for a given spec and seed across serial, pooled, and
isolated-process execution (see ``tests/test_routing.py``).

Sweep axes are plain numerics::

    python -m repro.experiments.runner reroute --duration 60
    python -m repro.experiments.runner sweep reroute \\
        --set period=4,8,16 --set convergence_ms=10,50,250 --duration 60
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..analysis.accuracy import classification_accuracy
from ..analysis.metrics import summarize_flow
from ..runtime import ScenarioSpec, flap_fault_specs, run_batch
from ..simulator import Flow, ListTraceSink, TraceSink, mbps_to_bytes_per_sec
from ..traffic import ScriptedCrossTraffic
from .common import (
    MAIN_FLOW,
    ExperimentResult,
    RoutedLinkSpec,
    RoutingSpec,
    SchemeResult,
    make_routed_network,
    make_scheme,
    queue_delay_stats,
)
from .link_flap import build_phases

DEFAULT_SCHEMES = ("nimbus", "copa", "cubic")

#: The control-plane kinds each payload records in order.
ROUTE_EVENT_KINDS = ("route_change", "blackhole_start", "blackhole_end")


class _RouteEventTee(ListTraceSink):
    """Collects routing control-plane events while forwarding *everything*
    to whatever sink the network already had (e.g. the runner's ``--trace``
    JSONL sink), so observability and the recorded payload coexist."""

    def __init__(self, inner: Optional[TraceSink]) -> None:
        super().__init__(events=ROUTE_EVENT_KINDS)
        self._inner = inner

    def emit(self, record: dict) -> None:
        if self._inner is not None:
            self._inner.emit(record)
        super().emit(record)

    def flush(self) -> None:
        if self._inner is not None:
            self._inner.flush()


def routing_spec(link_mbps: float = 48.0, primary_mbps: float = 96.0,
                 backup_mbps: float = 64.0, primary_delay_ms: float = 10.0,
                 backup_delay_ms: float = 20.0, buffer_ms: float = 100.0,
                 convergence_ms: float = 50.0) -> RoutingSpec:
    """The primary/backup two-path topology as a declarative spec."""
    return RoutingSpec(
        links=(RoutedLinkSpec("primary", primary_mbps, "S", "M",
                              delay_ms=primary_delay_ms,
                              buffer_ms=buffer_ms),
               RoutedLinkSpec("backup", backup_mbps, "S", "M",
                              delay_ms=backup_delay_ms,
                              buffer_ms=buffer_ms),
               RoutedLinkSpec("bottleneck", link_mbps, "M", "D",
                              buffer_ms=buffer_ms)),
        convergence_ms=convergence_ms,
        monitor="bottleneck")


def _blackhole_seconds(events: List[dict], duration: float) -> float:
    """Total blackholed seconds of the main flow, from its event pairs."""
    total = 0.0
    opened: Optional[float] = None
    for record in events:
        if record.get("flow") != MAIN_FLOW:
            continue
        if record["event"] == "blackhole_start" and opened is None:
            opened = record["time"]
        elif record["event"] == "blackhole_end" and opened is not None:
            total += record["time"] - opened
            opened = None
    if opened is not None:
        total += duration - opened
    return total


def run_case(scheme: str = "nimbus", period: float = 8.0,
             convergence_ms: float = 50.0, duty: float = 0.25,
             drop_queued: int = 1, link_mbps: float = 48.0,
             primary_mbps: float = 96.0, backup_mbps: float = 64.0,
             primary_delay_ms: float = 10.0, backup_delay_ms: float = 20.0,
             buffer_ms: float = 100.0, prop_rtt: float = 0.05,
             phase_duration: float = 15.0, inelastic_mbps: float = 24.0,
             elastic_flows: int = 1, duration: float = 60.0,
             dt: float = 0.002, seed: int = 0) -> dict:
    """One scheme over the failing-over two-path topology (batch unit)."""
    routing = routing_spec(link_mbps=link_mbps, primary_mbps=primary_mbps,
                           backup_mbps=backup_mbps,
                           primary_delay_ms=primary_delay_ms,
                           backup_delay_ms=backup_delay_ms,
                           buffer_ms=buffer_ms,
                           convergence_ms=convergence_ms)
    faults = flap_fault_specs("primary", period=period, duty=duty,
                              until=duration, drop_queued=bool(drop_queued))
    network = make_routed_network(routing, dt=dt, seed=seed, faults=faults)
    tee = _RouteEventTee(network.trace_sink)
    network.set_trace_sink(tee)
    mu = mbps_to_bytes_per_sec(link_mbps)
    network.add_flow(Flow(cc=make_scheme(scheme, mu), prop_rtt=prop_rtt,
                          name=MAIN_FLOW), src="S", dst="D")
    cross = ScriptedCrossTraffic(
        network=network,
        phases=build_phases(duration, phase_duration, inelastic_mbps,
                            elastic_flows),
        prop_rtt=prop_rtt, seed=seed + 7)
    cross.install()
    network.run(duration)

    recorder = network.recorder
    warmup = min(10.0, duration / 6.0)
    summary = summarize_flow(recorder, MAIN_FLOW, scheme=scheme,
                             start=warmup)
    times, tput = recorder.throughput_series(MAIN_FLOW)
    _, qdelay = recorder.link_queue_delay_series()
    accuracy = None
    _, modes = recorder.mode_series(MAIN_FLOW)
    if any(m is not None for m in modes):
        report = classification_accuracy(
            times, modes, elastic_truth=cross.elastic_present,
            warmup=warmup, settle=6.0)
        accuracy = report.accuracy
    route_events = tee.records
    route_changes = sum(1 for record in route_events
                       if record["event"] == "route_change")
    per_link = {}
    for link in network.topology.links:
        per_link[link.name] = {
            "offered_bytes": link.total_offered,
            "served_bytes": link.total_served,
            "dropped_bytes": link.total_drops,
            "queued_bytes": link.queue_bytes,
        }
    return {
        "scheme": scheme,
        "summary": summary,
        "extra": {
            "mode_accuracy": accuracy,
            "fault_windows": len(faults),
            "route_changes": route_changes,
            "blackhole_seconds": _blackhole_seconds(route_events, duration),
            "convergence_ms": convergence_ms,
            "queue": queue_delay_stats(recorder, start=warmup),
            "main_share": (summary.mean_throughput_mbps / link_mbps
                           if link_mbps else 0.0),
        },
        "data": {
            "times": times,
            "throughput_mbps": tput,
            "queue_delay_ms": qdelay,
            "modes": np.array([m if m is not None else "" for m in modes]),
            "route_events": route_events,
            "per_link": per_link,
        },
    }


def run(schemes: Iterable[str] = DEFAULT_SCHEMES, period: float = 8.0,
        convergence_ms: float = 50.0, duty: float = 0.25,
        drop_queued: int = 1, link_mbps: float = 48.0,
        primary_mbps: float = 96.0, backup_mbps: float = 64.0,
        prop_rtt: float = 0.05, phase_duration: float = 15.0,
        duration: float = 60.0, dt: float = 0.002,
        seed: int = 0) -> ExperimentResult:
    """Run every scheme over the same failing-over topology as one batch."""
    schemes = list(schemes)
    result = ExperimentResult(
        name="reroute",
        parameters=dict(schemes=schemes, period=period,
                        convergence_ms=convergence_ms, duty=duty,
                        drop_queued=int(drop_queued), link_mbps=link_mbps,
                        primary_mbps=primary_mbps, backup_mbps=backup_mbps,
                        duration=duration))
    specs = [ScenarioSpec.make(run_case, label=scheme, scheme=scheme,
                               period=period, convergence_ms=convergence_ms,
                               duty=duty, drop_queued=int(drop_queued),
                               link_mbps=link_mbps,
                               primary_mbps=primary_mbps,
                               backup_mbps=backup_mbps, prop_rtt=prop_rtt,
                               phase_duration=phase_duration,
                               duration=duration, dt=dt, seed=seed)
             for scheme in schemes]
    for payload in run_batch(specs):
        scheme = payload["scheme"]
        result.schemes[scheme] = SchemeResult(
            scheme=scheme, summary=payload["summary"],
            extra=payload["extra"])
        result.data[scheme] = payload["data"]
    return result
