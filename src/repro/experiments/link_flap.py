"""Link-flap chaos experiment: classification accuracy on a faulty path.

A two-hop chain — a ``wan`` hop at twice the bottleneck rate, then the
``bottleneck`` the recorder monitors — carries the main flow plus scripted
cross traffic that alternates between inelastic (Poisson) and elastic
(Cubic) phases.  A deterministic :class:`~repro.simulator.faults.
FaultSchedule` flaps the ``wan`` hop with configurable ``period``,
``depth``, and ``duty`` cycle: at ``depth`` 1 the hop goes fully down
each window, at smaller depths its capacity dips to ``1 - depth`` of
nominal — deep dips migrate the real bottleneck onto the faulted hop
mid-run.  The question, as in Figure 8 but under injected faults, is
whether mode-switching schemes (Nimbus, Copa) still classify the cross
traffic correctly while the path misbehaves.

All sweep axes are plain numerics, so the chaos grid batches and caches
like any other experiment::

    python -m repro.experiments.runner link_flap --duration 60
    python -m repro.experiments.runner sweep link_flap \\
        --set period=4,8,16 --set depth=0.5,1 --set duty=0.25 --duration 60
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..analysis.accuracy import classification_accuracy
from ..analysis.metrics import summarize_flow
from ..runtime import ScenarioSpec, flap_fault_specs, run_batch
from ..simulator import Flow, mbps_to_bytes_per_sec
from ..traffic import Phase, ScriptedCrossTraffic
from .common import (
    MAIN_FLOW,
    ExperimentResult,
    LinkSpec,
    SchemeResult,
    make_multihop_network,
    make_scheme,
    queue_delay_stats,
)

#: Mode-switching schemes by default: accuracy under faults is the point.
DEFAULT_SCHEMES = ("nimbus", "copa", "cubic")


def build_phases(duration: float, phase_duration: float,
                 inelastic_mbps: float, elastic_flows: int) -> list:
    """Alternate inelastic and elastic phases until ``duration`` is covered.

    Starts inelastic, so the detector's ground truth flips on every
    boundary — the hardest schedule to track while links flap.
    """
    phases = []
    elapsed = 0.0
    elastic = False
    while elapsed < duration:
        if elastic:
            phases.append(Phase(duration=phase_duration,
                                elastic_flows=int(elastic_flows)))
        else:
            phases.append(Phase(
                duration=phase_duration,
                inelastic_rate=mbps_to_bytes_per_sec(inelastic_mbps)))
        elastic = not elastic
        elapsed += phase_duration
    return phases


def run_case(scheme: str = "nimbus", period: float = 8.0, depth: float = 1.0,
             duty: float = 0.25, drop_queued: int = 0,
             link_mbps: float = 48.0, wan_mbps: float = 96.0,
             hop_delay_ms: float = 10.0, buffer_ms: float = 100.0,
             prop_rtt: float = 0.05, phase_duration: float = 15.0,
             inelastic_mbps: float = 24.0, elastic_flows: int = 1,
             duration: float = 60.0, dt: float = 0.002,
             seed: int = 0) -> dict:
    """One scheme over the flapping chain, reduced to a picklable payload.

    The batch unit behind :func:`run`.  Faults are derived inside the case
    from the numeric axes (``period``/``depth``/``duty``/``drop_queued``),
    keeping the spec parameters sweepable from the runner command line.
    """
    links = (LinkSpec("wan", wan_mbps, delay_ms=hop_delay_ms,
                      buffer_ms=buffer_ms),
             LinkSpec("bottleneck", link_mbps, buffer_ms=buffer_ms))
    faults = flap_fault_specs("wan", period=period, duty=duty,
                              until=duration, depth=depth,
                              drop_queued=bool(drop_queued))
    network = make_multihop_network(links, dt=dt, seed=seed,
                                    monitor="bottleneck", faults=faults)
    mu = mbps_to_bytes_per_sec(link_mbps)
    network.add_flow(Flow(cc=make_scheme(scheme, mu), prop_rtt=prop_rtt,
                          name=MAIN_FLOW))
    cross = ScriptedCrossTraffic(
        network=network,
        phases=build_phases(duration, phase_duration, inelastic_mbps,
                            elastic_flows),
        prop_rtt=prop_rtt, seed=seed + 7)
    cross.install()
    network.run(duration)

    recorder = network.recorder
    warmup = min(10.0, duration / 6.0)
    summary = summarize_flow(recorder, MAIN_FLOW, scheme=scheme,
                             start=warmup)
    times, tput = recorder.throughput_series(MAIN_FLOW)
    _, qdelay = recorder.link_queue_delay_series()
    accuracy = None
    _, modes = recorder.mode_series(MAIN_FLOW)
    if any(m is not None for m in modes):
        report = classification_accuracy(
            times, modes, elastic_truth=cross.elastic_present,
            warmup=warmup, settle=6.0)
        accuracy = report.accuracy
    down_seconds = sum(fault.duration for fault in faults)
    per_link = {}
    for link in network.topology.links:
        per_link[link.name] = {
            "offered_bytes": link.total_offered,
            "served_bytes": link.total_served,
            "dropped_bytes": link.total_drops,
            "queued_bytes": link.queue_bytes,
        }
    return {
        "scheme": scheme,
        "summary": summary,
        "extra": {
            "mode_accuracy": accuracy,
            "fault_windows": len(faults),
            "down_fraction": down_seconds / duration if duration else 0.0,
            "queue": queue_delay_stats(recorder, start=warmup),
            "main_share": (summary.mean_throughput_mbps / link_mbps
                           if link_mbps else 0.0),
        },
        "data": {
            "times": times,
            "throughput_mbps": tput,
            "queue_delay_ms": qdelay,
            "modes": np.array([m if m is not None else "" for m in modes]),
            "per_link": per_link,
        },
    }


def run(schemes: Iterable[str] = DEFAULT_SCHEMES, period: float = 8.0,
        depth: float = 1.0, duty: float = 0.25, drop_queued: int = 0,
        link_mbps: float = 48.0, wan_mbps: float = 96.0,
        hop_delay_ms: float = 10.0, buffer_ms: float = 100.0,
        prop_rtt: float = 0.05, phase_duration: float = 15.0,
        duration: float = 60.0, dt: float = 0.002,
        seed: int = 0) -> ExperimentResult:
    """Run every scheme over the same flapping chain as one cached batch."""
    schemes = list(schemes)
    result = ExperimentResult(
        name="link_flap",
        parameters=dict(schemes=schemes, period=period, depth=depth,
                        duty=duty, drop_queued=int(drop_queued),
                        link_mbps=link_mbps, wan_mbps=wan_mbps,
                        duration=duration))
    specs = [ScenarioSpec.make(run_case, label=scheme, scheme=scheme,
                               period=period, depth=depth, duty=duty,
                               drop_queued=int(drop_queued),
                               link_mbps=link_mbps, wan_mbps=wan_mbps,
                               hop_delay_ms=hop_delay_ms,
                               buffer_ms=buffer_ms, prop_rtt=prop_rtt,
                               phase_duration=phase_duration,
                               duration=duration, dt=dt, seed=seed)
             for scheme in schemes]
    for payload in run_batch(specs):
        scheme = payload["scheme"]
        result.schemes[scheme] = SchemeResult(
            scheme=scheme, summary=payload["summary"],
            extra=payload["extra"])
        result.data[scheme] = payload["data"]
    return result
