"""Figure 16: multiple Nimbus flows sharing a bottleneck.

Four Nimbus flows (multi-flow protocol enabled) arrive at a 96 Mbit/s link
staggered in time, with no other cross traffic.  They should share the link
fairly, keep delays low (all flows in delay mode nearly all the time), and
maintain at most one pulser via the decentralized election of §6.
"""

from __future__ import annotations

import numpy as np

from ..analysis.accuracy import mode_fraction
from ..analysis.metrics import jain_fairness
from ..core.multiflow import ROLE_PULSER
from ..core.nimbus import Nimbus
from ..simulator import Flow, mbps_to_bytes_per_sec
from .common import ExperimentResult, make_network, queue_delay_stats


def run(n_flows: int = 4, stagger: float = 20.0, flow_duration: float = 80.0,
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, dt: float = 0.002,
        seed: int = 0) -> ExperimentResult:
    """Run staggered Nimbus flows and measure fairness, delay, and roles."""
    network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt, seed=seed)
    mu = mbps_to_bytes_per_sec(link_mbps)
    flows = []
    role_samples: list = []
    for i in range(n_flows):
        nimbus = Nimbus(mu=mu, multi_flow=True, seed=seed + i)
        flow = Flow(cc=nimbus, prop_rtt=prop_rtt, start_time=i * stagger,
                    name=f"nimbus{i}")
        network.add_flow(flow)
        flows.append(flow)

    def sample_roles(now: float) -> None:
        pulsers = sum(1 for f in flows
                      if f.active and f.cc.role == ROLE_PULSER)
        role_samples.append((now, pulsers))
        network.schedule_call(now + 1.0, sample_roles)

    network.schedule_call(1.0, sample_roles)
    total = (n_flows - 1) * stagger + flow_duration
    network.run(total)

    recorder = network.recorder
    # Fairness over the window where all flows are active.
    all_active_start = (n_flows - 1) * stagger + 10.0
    all_active_end = min(total, (n_flows - 1) * stagger + flow_duration)
    rates = [recorder.mean_throughput(f"nimbus{i}", start=all_active_start,
                                      end=all_active_end)
             for i in range(n_flows)]
    fairness = jain_fairness(rates)

    delay_fractions = []
    for i in range(n_flows):
        _, modes = recorder.mode_series(f"nimbus{i}")
        delay_fractions.append(mode_fraction(modes, "delay"))

    pulser_counts = np.array([count for _, count in role_samples])
    result = ExperimentResult(
        name="fig16_multiflow",
        parameters=dict(n_flows=n_flows, stagger=stagger,
                        flow_duration=flow_duration, link_mbps=link_mbps))
    for i in range(n_flows):
        result.add_scheme(f"nimbus{i}", recorder, flow_name=f"nimbus{i}",
                          start=all_active_start, end=all_active_end)
    result.data = {
        "rates_mbps": rates,
        "jain_fairness": fairness,
        "delay_mode_fraction": delay_fractions,
        "pulser_counts": pulser_counts,
        "max_concurrent_pulsers": int(pulser_counts.max()) if pulser_counts.size else 0,
        "mean_pulsers": float(pulser_counts.mean()) if pulser_counts.size else 0.0,
        "queue": queue_delay_stats(recorder, start=10.0),
    }
    return result
