"""Figure 14: classification accuracy of Nimbus vs. Copa.

Left panel: purely inelastic cross traffic (CBR and Poisson) occupying an
increasing share of the link.  Nimbus stays accurate at all shares while
Copa's detector fails once the cross traffic exceeds roughly 80 % of the
link (the queue can no longer drain within 5 RTTs).

Right panel: a single backlogged NewReno cross flow whose RTT is 1x to 4x
the mode-switching flow's RTT.  Copa's accuracy degrades as the RTT ratio
grows (the slow-ramping flow lets the queue drain, fooling the detector);
Nimbus's accuracy stays high.
"""

from __future__ import annotations

from typing import Dict, Iterable

from .accuracy_scenarios import CrossSpec, run_accuracy_scenario
from .common import ExperimentResult

DEFAULT_SHARES = (0.3, 0.5, 0.7, 0.85)
DEFAULT_RTT_RATIOS = (1.0, 2.0, 4.0)


def run(schemes: Iterable[str] = ("nimbus", "copa"),
        inelastic_shares: Iterable[float] = DEFAULT_SHARES,
        inelastic_kinds: Iterable[str] = ("poisson", "cbr"),
        rtt_ratios: Iterable[float] = DEFAULT_RTT_RATIOS,
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, duration: float = 50.0,
        dt: float = 0.002, seed: int = 0) -> ExperimentResult:
    """Run both sweeps for both schemes."""
    result = ExperimentResult(
        name="fig14_accuracy_vs_copa",
        parameters=dict(schemes=list(schemes),
                        inelastic_shares=list(inelastic_shares),
                        rtt_ratios=list(rtt_ratios), link_mbps=link_mbps,
                        duration=duration))
    inelastic_accuracy: Dict[str, Dict] = {s: {} for s in schemes}
    rtt_accuracy: Dict[str, Dict] = {s: {} for s in schemes}

    for scheme in schemes:
        for kind in inelastic_kinds:
            for share in inelastic_shares:
                spec = CrossSpec(kind=kind, rate_fraction=share,
                                 elastic_flows=0)
                scenario = run_accuracy_scenario(
                    scheme, spec, link_mbps=link_mbps, prop_rtt=prop_rtt,
                    buffer_ms=buffer_ms, duration=duration, dt=dt, seed=seed)
                inelastic_accuracy[scheme][(kind, share)] = scenario
        for ratio in rtt_ratios:
            spec = CrossSpec(kind="elastic", elastic_flows=1,
                             rtt_ratio=ratio, rate_fraction=0.0)
            scenario = run_accuracy_scenario(
                scheme, spec, link_mbps=link_mbps, prop_rtt=prop_rtt,
                buffer_ms=buffer_ms, duration=duration, dt=dt, seed=seed)
            rtt_accuracy[scheme][ratio] = scenario

    result.data = {
        "inelastic": {
            scheme: {key: scen.report.accuracy
                     for key, scen in runs.items()}
            for scheme, runs in inelastic_accuracy.items()
        },
        "rtt": {
            scheme: {ratio: scen.report.accuracy
                     for ratio, scen in runs.items()}
            for scheme, runs in rtt_accuracy.items()
        },
        "inelastic_scenarios": inelastic_accuracy,
        "rtt_scenarios": rtt_accuracy,
    }
    return result
