"""Figure 24 (Appendix D.2): Copa vs. Nimbus against an elastic NewReno flow.

With equal RTTs both schemes classify the cross traffic correctly and get a
fair share.  When the NewReno flow's RTT is 4x larger it ramps slowly, the
queue keeps draining, Copa concludes there is no buffer-filling traffic and
stays in its default mode — losing throughput — while Nimbus detects the
elasticity and keeps (its RTT-biased share of) the bandwidth.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..analysis.accuracy import mode_fraction
from ..cc import NewReno
from ..simulator import Flow
from .common import MAIN_FLOW, ExperimentResult, add_main_flow, make_network


def run(rtt_ratios: Iterable[float] = (1.0, 4.0),
        schemes: Iterable[str] = ("copa", "nimbus"),
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, duration: float = 60.0,
        dt: float = 0.002, seed: int = 0) -> ExperimentResult:
    """Run each scheme against a NewReno flow at each RTT ratio."""
    result = ExperimentResult(
        name="fig24_copa_rtt",
        parameters=dict(rtt_ratios=list(rtt_ratios), schemes=list(schemes),
                        link_mbps=link_mbps, duration=duration))
    warmup = duration / 3.0
    throughput: Dict[str, Dict[float, float]] = {s: {} for s in schemes}
    for ratio in rtt_ratios:
        for scheme in schemes:
            network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt,
                                   seed=seed)
            add_main_flow(network, scheme, link_mbps, prop_rtt=prop_rtt)
            network.add_flow(Flow(cc=NewReno(), prop_rtt=prop_rtt * ratio,
                                  name="reno"))
            network.run(duration)
            recorder = network.recorder
            label = f"{scheme}@rtt{ratio:g}x"
            _, modes = recorder.mode_series(MAIN_FLOW)
            result.add_scheme(
                label, recorder, start=warmup, rtt_ratio=ratio,
                reno_throughput=recorder.mean_throughput("reno", start=warmup),
                competitive_fraction=mode_fraction(modes, "competitive"))
            throughput[scheme][ratio] = recorder.mean_throughput(
                MAIN_FLOW, start=warmup)
    result.data["throughput"] = throughput
    result.data["fair_share_mbps"] = link_mbps / 2.0
    return result
