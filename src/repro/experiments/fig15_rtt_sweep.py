"""Figure 15 (and the mixed-RTT paragraph of §8.2): sensitivity to the RTT of
the cross traffic.

Nimbus runs against fully inelastic (Poisson), fully elastic (backlogged
NewReno), and mixed cross traffic whose base RTT ranges from 0.2x to 4x
Nimbus's RTT.  The paper reports > 98 % accuracy for the pure cases and
>= 85 % for the mix across the whole range; heterogeneous per-flow RTTs
(Fig. 15's companion experiment) do not hurt either.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from ..runtime import ScenarioSpec, run_batch
from .accuracy_scenarios import (
    AccuracyScenarioResult,
    CrossSpec,
    run_accuracy_scenario,
)
from .common import ExperimentResult

DEFAULT_RATIOS = (0.2, 0.5, 1.0, 2.0, 4.0)
DEFAULT_CATEGORIES = ("elastic", "mix", "poisson")


def run_case(category: str, ratio: float = 1.0,
             mixed_rtts: Optional[Sequence[float]] = None,
             link_mbps: float = 96.0, prop_rtt: float = 0.05,
             buffer_ms: float = 100.0, duration: float = 50.0,
             dt: float = 0.002, seed: int = 0) -> AccuracyScenarioResult:
    """One (category, RTT-ratio) accuracy point; the batch unit of the sweep.

    ``category`` ``"mixed-rtt"`` ignores ``ratio`` and runs the
    heterogeneous-RTT companion scenario over ``mixed_rtts`` instead.
    """
    if category == "elastic":
        spec = CrossSpec(kind="elastic", elastic_flows=2, rtt_ratio=ratio)
    elif category == "mix":
        spec = CrossSpec(kind="mix", elastic_flows=1, rate_fraction=0.25,
                         rtt_ratio=ratio)
    elif category == "poisson":
        spec = CrossSpec(kind="poisson", rate_fraction=0.5, elastic_flows=0,
                         rtt_ratio=ratio)
    elif category == "mixed-rtt":
        spec = CrossSpec(kind="elastic", elastic_flows=len(mixed_rtts or ()),
                         elastic_rtts=list(mixed_rtts or ()))
    else:
        raise ValueError(f"unknown cross-traffic category {category!r}")
    return run_accuracy_scenario(
        "nimbus", spec, link_mbps=link_mbps, prop_rtt=prop_rtt,
        buffer_ms=buffer_ms, duration=duration, dt=dt, seed=seed)


def run(rtt_ratios: Iterable[float] = (0.5, 1.0, 2.0),
        categories: Iterable[str] = DEFAULT_CATEGORIES,
        mixed_rtts: Sequence[float] | None = None,
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, duration: float = 50.0,
        dt: float = 0.002, seed: int = 0) -> ExperimentResult:
    """Sweep cross-traffic RTT ratio for each traffic category.

    The (category, ratio) grid is executed as one scenario batch;
    ``mixed_rtts`` optionally appends the multiple-elastic-flows-with-
    different-RTTs scenario: a list of RTTs (seconds), one backlogged
    flow each.
    """
    rtt_ratios = list(rtt_ratios)
    categories = list(categories)
    result = ExperimentResult(
        name="fig15_rtt_sweep",
        parameters=dict(rtt_ratios=rtt_ratios, categories=categories,
                        link_mbps=link_mbps, duration=duration))
    shared = dict(link_mbps=link_mbps, prop_rtt=prop_rtt,
                  buffer_ms=buffer_ms, duration=duration, dt=dt, seed=seed)
    grid = [(category, ratio)
            for category in categories for ratio in rtt_ratios]
    specs = [ScenarioSpec.make(run_case, label=f"{category}@x{ratio}",
                               category=category, ratio=ratio, **shared)
             for category, ratio in grid]
    if mixed_rtts:
        specs.append(ScenarioSpec.make(
            run_case, label="mixed-rtt", category="mixed-rtt",
            mixed_rtts=tuple(mixed_rtts), **shared))
    payloads = run_batch(specs)

    accuracy: Dict[str, Dict[float, float]] = {c: {} for c in categories}
    scenarios: Dict[str, Dict[float, object]] = {c: {} for c in categories}
    for (category, ratio), scenario in zip(grid, payloads):
        accuracy[category][ratio] = scenario.report.accuracy
        scenarios[category][ratio] = scenario
    result.data = {"accuracy": accuracy, "scenarios": scenarios}
    if mixed_rtts:
        result.data["mixed_rtt_accuracy"] = payloads[-1].report.accuracy
    return result
