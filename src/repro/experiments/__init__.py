"""Experiment drivers: one module per table/figure of the paper.

Each module exposes a ``run(**params)`` function returning an
:class:`~repro.experiments.common.ExperimentResult`.  Default parameters
mirror the paper's setups; benchmarks pass scaled-down durations.
"""

from . import (
    accuracy_scenarios,
    appE_buffer_aqm,
    fig01_motivation,
    fig03_self_inflicted,
    fig04_pulse_response,
    fig05_fft,
    fig06_elasticity_cdf,
    fig08_time_varying,
    fig09_fluid,
    fig09_wan,
    fig10_copa_drop,
    fig11_video,
    fig12_eta_tracking,
    fig13_load,
    fig14_accuracy_vs_copa,
    fig15_rtt_sweep,
    fig16_multiflow,
    fig17_multiflow_cross,
    fig21_fct,
    fig22_bbr_compete,
    fig23_copa_cbr,
    fig24_copa_rtt,
    fig25_multifactor,
    fig26_vivace_pulse,
    internet_paths,
    link_flap,
    parking_lot,
    reroute,
    selftest,
    table1_classification,
)
from .common import (
    CROSS_FLOW,
    MAIN_FLOW,
    ExperimentResult,
    SchemeResult,
    add_main_flow,
    make_network,
    make_scheme,
    queue_delay_stats,
)

#: Registry mapping paper artefact -> experiment module, used by the
#: benchmark harness and the EXPERIMENTS.md index.
EXPERIMENT_INDEX = {
    "fig01": fig01_motivation,
    "fig03": fig03_self_inflicted,
    "fig04": fig04_pulse_response,
    "fig05": fig05_fft,
    "fig06": fig06_elasticity_cdf,
    "fig08": fig08_time_varying,
    "fig09": fig09_wan,
    "fig09_fluid": fig09_fluid,
    "fig10": fig10_copa_drop,
    "fig11": fig11_video,
    "fig12": fig12_eta_tracking,
    "fig13": fig13_load,
    "fig14": fig14_accuracy_vs_copa,
    "fig15": fig15_rtt_sweep,
    "fig16": fig16_multiflow,
    "fig17": fig17_multiflow_cross,
    "fig18": internet_paths,
    "fig19": internet_paths,
    "fig20": internet_paths,
    "fig21": fig21_fct,
    "fig22": fig22_bbr_compete,
    "fig23": fig23_copa_cbr,
    "fig24": fig24_copa_rtt,
    "fig25": fig25_multifactor,
    "fig26": fig26_vivace_pulse,
    "appE": appE_buffer_aqm,
    "link_flap": link_flap,
    "parking_lot": parking_lot,
    "reroute": reroute,
    "selftest": selftest,
    "table1": table1_classification,
}

__all__ = [
    "CROSS_FLOW",
    "EXPERIMENT_INDEX",
    "ExperimentResult",
    "MAIN_FLOW",
    "SchemeResult",
    "add_main_flow",
    "make_network",
    "make_scheme",
    "queue_delay_stats",
]
