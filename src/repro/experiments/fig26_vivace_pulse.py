"""Figure 26 (Appendix F): detecting slow-reacting elastic traffic.

PCC-Vivace reacts over multiple monitor intervals rather than one RTT, so at
the default 5 Hz pulse frequency the elasticity metric stays below the
threshold (classified inelastic).  Lengthening the pulses (2 Hz) gives
Vivace time to respond within a pulse period and the metric rises above the
threshold (classified elastic).
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from ..cc import Vivace
from ..simulator import Flow
from .common import ExperimentResult, add_main_flow, make_network


def run(pulse_frequencies: Iterable[float] = (5.0, 2.0),
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, duration: float = 60.0,
        dt: float = 0.002, seed: int = 0) -> ExperimentResult:
    """Run Nimbus against a Vivace cross flow at each pulse frequency."""
    result = ExperimentResult(
        name="fig26_vivace_pulse",
        parameters=dict(pulse_frequencies=list(pulse_frequencies),
                        link_mbps=link_mbps, duration=duration))
    eta_distributions: Dict[float, np.ndarray] = {}
    for fp in pulse_frequencies:
        network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt,
                               seed=seed)
        flow = add_main_flow(network, "nimbus", link_mbps, prop_rtt=prop_rtt,
                             pulse_frequency=fp)
        network.add_flow(Flow(cc=Vivace(), prop_rtt=prop_rtt, name="vivace"))
        network.run(duration)
        nimbus = flow.cc
        etas = np.array([eta for t, eta in nimbus.eta_history
                         if t > duration / 3 and np.isfinite(eta)])
        eta_distributions[fp] = etas
        result.add_scheme(
            f"nimbus@{fp:g}Hz", network.recorder, start=duration / 3,
            pulse_frequency=fp,
            median_eta=float(np.median(etas)) if etas.size else 0.0,
            elastic_fraction=float(np.mean(etas >= nimbus.threshold))
            if etas.size else 0.0)
    result.data["eta_distributions"] = eta_distributions
    return result
