"""Figure 5: FFT of the cross-traffic estimate for elastic vs inelastic traffic.

This is the frequency-domain companion of Fig. 4 and shares its driver: the
elastic cross traffic shows a pronounced peak at the pulse frequency while
the inelastic traffic's spectrum is spread across frequencies.
"""

from __future__ import annotations

from .common import ExperimentResult
from .fig04_pulse_response import run as _run_pulse_response


def run(**kwargs) -> ExperimentResult:
    """Same scenario as Fig. 4; the FFT data lives in ``result.data``."""
    result = _run_pulse_response(**kwargs)
    result.name = "fig05_fft"
    # Convenience summary: the peak-to-neighbourhood ratios used in Eq. (3).
    result.data["peak_ratio"] = {
        kind: (result.data[kind]["eta"]) for kind in ("elastic", "inelastic")
    }
    return result
