"""Figure 11: throughput/delay with DASH video cross traffic.

Two variants: a 4K stream whose bitrate ladder exceeds its fair share of the
48 Mbit/s link (network-limited, hence elastic cross traffic) and a 1080p
stream that is application-limited (inelastic).  Against the 1080p stream
all schemes get similar throughput but the delay-controlling ones achieve
much lower delay; against the 4K stream, Vegas and Copa are starved while
Nimbus matches Cubic.
"""

from __future__ import annotations

from typing import Iterable

from ..cc import Cubic
from ..simulator import Flow
from ..traffic import video_1080p, video_4k
from .common import ExperimentResult, add_main_flow, make_network, queue_delay_stats

DEFAULT_SCHEMES = ("nimbus", "cubic", "vegas", "copa", "bbr", "pcc-vivace")


def run(schemes: Iterable[str] = ("nimbus", "cubic", "vegas"),
        video_kinds: Iterable[str] = ("4k", "1080p"),
        link_mbps: float = 48.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, duration: float = 60.0,
        dt: float = 0.002, seed: int = 0) -> ExperimentResult:
    """Run each scheme against each video type."""
    result = ExperimentResult(
        name="fig11_video",
        parameters=dict(schemes=list(schemes), video_kinds=list(video_kinds),
                        link_mbps=link_mbps, duration=duration))
    warmup = duration / 4.0
    for kind in video_kinds:
        for scheme in schemes:
            network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt,
                                   seed=seed)
            add_main_flow(network, scheme, link_mbps, prop_rtt=prop_rtt)
            source = video_4k() if kind == "4k" else video_1080p()
            network.add_flow(Flow(cc=Cubic(), prop_rtt=prop_rtt,
                                  source=source, name="video"))
            network.run(duration)
            recorder = network.recorder
            label = f"{scheme}@{kind}"
            result.add_scheme(
                label, recorder, start=warmup,
                video_kind=kind,
                video_throughput=recorder.mean_throughput("video",
                                                          start=warmup),
                video_rebuffer_s=source.rebuffer_time,
                queue=queue_delay_stats(recorder, start=warmup))
    return result
