"""Shared infrastructure for the per-figure experiment drivers.

Every experiment in the paper is some combination of: a bottleneck link, a
"main" bulk flow running one of the schemes under study, and cross traffic.
This module provides the scheme registry (string name -> congestion-control
instance), the standard network construction, and result containers, so the
individual ``figXX_*`` modules stay small and declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..analysis.metrics import ThroughputDelaySummary, summarize_flow
from ..cc import (
    BasicDelay,
    Bbr,
    Compound,
    Copa,
    Cubic,
    NewReno,
    Vegas,
    Vivace,
)
from ..cc.base import CongestionControl
from ..core.nimbus import Nimbus
from ..simulator import (
    BottleneckLink,
    DropTail,
    Flow,
    Network,
    Pie,
    mbps_to_bytes_per_sec,
)

#: Name of the main (measured) flow in every experiment.
MAIN_FLOW = "main"
#: Name given to cross-traffic flows.
CROSS_FLOW = "cross"


def make_network(link_mbps: float, buffer_ms: float = 100.0,
                 dt: float = 0.002, seed: int = 0,
                 aqm_target_ms: Optional[float] = None) -> Network:
    """Standard single-bottleneck network used across experiments.

    ``aqm_target_ms`` switches the queue policy from drop-tail to PIE with
    the given target delay (Appendix E.2).
    """
    mu = mbps_to_bytes_per_sec(link_mbps)
    buffer_bytes = mu * buffer_ms / 1e3
    if aqm_target_ms is not None:
        policy = Pie(target_delay=aqm_target_ms / 1e3,
                     buffer_bytes=buffer_bytes, seed=seed)
    else:
        policy = DropTail(buffer_bytes)
    link = BottleneckLink(capacity=mu, policy=policy)
    return Network(link, dt=dt, seed=seed)


def make_scheme(name: str, mu: float, **overrides) -> CongestionControl:
    """Instantiate a congestion-control scheme by name.

    Supported names: ``nimbus`` (Cubic + BasicDelay), ``nimbus-copa``
    (Cubic + Copa default mode), ``nimbus-vegas``, ``nimbus-delay`` (the
    delay algorithm alone, no mode switching), ``cubic``, ``newreno``,
    ``vegas``, ``copa``, ``copa-default``, ``bbr``, ``pcc-vivace``,
    ``compound``, ``basicdelay``.
    """
    factories: Dict[str, Callable[[], CongestionControl]] = {
        "nimbus": lambda: Nimbus(mu=mu, **overrides),
        "nimbus-copa": lambda: Nimbus(
            mu=mu, delay=Copa(mode_switching=False), **overrides),
        "nimbus-vegas": lambda: Nimbus(mu=mu, delay=Vegas(), **overrides),
        "nimbus-delay": lambda: BasicDelay(mu, **overrides),
        "basicdelay": lambda: BasicDelay(mu, **overrides),
        "cubic": lambda: Cubic(**overrides),
        "newreno": lambda: NewReno(**overrides),
        "reno": lambda: NewReno(**overrides),
        "vegas": lambda: Vegas(**overrides),
        "copa": lambda: Copa(**overrides),
        "copa-default": lambda: Copa(mode_switching=False, **overrides),
        "bbr": lambda: Bbr(**overrides),
        "pcc-vivace": lambda: Vivace(**overrides),
        "compound": lambda: Compound(**overrides),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}; known: {sorted(factories)}")


def add_main_flow(network: Network, scheme: str, link_mbps: float,
                  prop_rtt: float = 0.05, name: str = MAIN_FLOW,
                  **overrides) -> Flow:
    """Add the measured bulk-transfer flow running ``scheme``."""
    mu = mbps_to_bytes_per_sec(link_mbps)
    cc = make_scheme(scheme, mu, **overrides)
    flow = Flow(cc=cc, prop_rtt=prop_rtt, name=name)
    network.add_flow(flow)
    return flow


@dataclass
class SchemeResult:
    """Per-scheme outcome of one experiment run."""

    scheme: str
    summary: ThroughputDelaySummary
    extra: dict = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """Container returned by every experiment driver's ``run`` function."""

    name: str
    parameters: dict
    schemes: Dict[str, SchemeResult] = field(default_factory=dict)
    data: dict = field(default_factory=dict)

    def add_scheme(self, scheme: str, recorder, flow_name: str = MAIN_FLOW,
                   start: float = 0.0, end: Optional[float] = None,
                   **extra) -> SchemeResult:
        """Summarise a recorder's main flow under the given scheme label."""
        summary = summarize_flow(recorder, flow_name, scheme=scheme,
                                 start=start, end=end)
        result = SchemeResult(scheme=scheme, summary=summary, extra=extra)
        self.schemes[scheme] = result
        return result

    def table(self) -> str:
        """Human-readable summary table (used by the examples and EXPERIMENTS.md)."""
        lines = [f"== {self.name} ==",
                 f"{'scheme':<18}{'tput (Mbit/s)':>15}{'mean delay (ms)':>18}"
                 f"{'p95 delay (ms)':>16}"]
        for scheme, result in self.schemes.items():
            s = result.summary
            lines.append(f"{scheme:<18}{s.mean_throughput_mbps:>15.1f}"
                         f"{s.mean_delay_ms:>18.1f}{s.p95_delay_ms:>16.1f}")
        return "\n".join(lines)


def queue_delay_stats(recorder, start: float = 0.0) -> Dict[str, float]:
    """Mean/median/p95 of the bottleneck queueing delay after ``start``."""
    times, delays = recorder.link_queue_delay_series()
    mask = times >= start
    selected = delays[mask] if mask.any() else delays
    if selected.size == 0:
        return {"mean": 0.0, "median": 0.0, "p95": 0.0}
    return {
        "mean": float(np.mean(selected)),
        "median": float(np.median(selected)),
        "p95": float(np.percentile(selected, 95)),
    }
