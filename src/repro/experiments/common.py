"""Shared infrastructure for the per-figure experiment drivers.

Every experiment in the paper is some combination of: a bottleneck link, a
"main" bulk flow running one of the schemes under study, and cross traffic.
This module provides the scheme registry (string name -> congestion-control
instance), the standard network construction, and result containers, so the
individual ``figXX_*`` modules stay small and declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..analysis.metrics import ThroughputDelaySummary, summarize_flow
from ..runtime.build import (
    FluidClassSpec,
    LinkSpec,
    RoutedLinkSpec,
    RouteSpec,
    RoutingSpec,
    attach_fluid_classes,
    make_multihop_network,
    make_network,
    make_routed_network,
    make_scheme,
    make_topology,
)
from ..simulator import Flow, Network, mbps_to_bytes_per_sec

#: Name of the main (measured) flow in every experiment.
MAIN_FLOW = "main"
#: Name given to cross-traffic flows.
CROSS_FLOW = "cross"

__all__ = [
    "CROSS_FLOW",
    "ExperimentResult",
    "FluidClassSpec",
    "LinkSpec",
    "MAIN_FLOW",
    "RoutedLinkSpec",
    "RouteSpec",
    "RoutingSpec",
    "SchemeResult",
    "add_main_flow",
    "attach_fluid_classes",
    "make_multihop_network",
    "make_network",
    "make_routed_network",
    "make_scheme",
    "make_topology",
    "queue_delay_stats",
]


def add_main_flow(network: Network, scheme: str, link_mbps: float,
                  prop_rtt: float = 0.05, name: str = MAIN_FLOW,
                  **overrides) -> Flow:
    """Add the measured bulk-transfer flow running ``scheme``."""
    mu = mbps_to_bytes_per_sec(link_mbps)
    cc = make_scheme(scheme, mu, **overrides)
    flow = Flow(cc=cc, prop_rtt=prop_rtt, name=name)
    network.add_flow(flow)
    return flow


@dataclass
class SchemeResult:
    """Per-scheme outcome of one experiment run."""

    scheme: str
    summary: ThroughputDelaySummary
    extra: dict = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """Container returned by every experiment driver's ``run`` function."""

    name: str
    parameters: dict
    schemes: Dict[str, SchemeResult] = field(default_factory=dict)
    data: dict = field(default_factory=dict)

    def add_scheme(self, scheme: str, recorder, flow_name: str = MAIN_FLOW,
                   start: float = 0.0, end: Optional[float] = None,
                   **extra) -> SchemeResult:
        """Summarise a recorder's main flow under the given scheme label."""
        summary = summarize_flow(recorder, flow_name, scheme=scheme,
                                 start=start, end=end)
        result = SchemeResult(scheme=scheme, summary=summary, extra=extra)
        self.schemes[scheme] = result
        return result

    def table(self) -> str:
        """Human-readable summary table (used by the examples and EXPERIMENTS.md)."""
        lines = [f"== {self.name} ==",
                 f"{'scheme':<18}{'tput (Mbit/s)':>15}{'mean delay (ms)':>18}"
                 f"{'p95 delay (ms)':>16}"]
        for scheme, result in self.schemes.items():
            s = result.summary
            lines.append(f"{scheme:<18}{s.mean_throughput_mbps:>15.1f}"
                         f"{s.mean_delay_ms:>18.1f}{s.p95_delay_ms:>16.1f}")
        return "\n".join(lines)


def queue_delay_stats(recorder, start: float = 0.0) -> Dict[str, float]:
    """Mean/median/p95 of the bottleneck queueing delay after ``start``."""
    times, delays = recorder.link_queue_delay_series()
    mask = times >= start
    selected = delays[mask] if mask.any() else delays
    if selected.size == 0:
        return {"mean": 0.0, "median": 0.0, "p95": 0.0}
    return {
        "mean": float(np.mean(selected)),
        "median": float(np.median(selected)),
        "p95": float(np.percentile(selected, 95)),
    }
