"""Figure 8: behaviour under time-varying cross traffic.

The cross traffic cycles through mixes of inelastic Poisson traffic
("xM" = x Mbit/s) and long-running Cubic flows ("yT" = y flows), and each
scheme is judged on how closely it tracks its fair share and how low it
keeps the queueing delay.  Mode-switching schemes (Nimbus, Copa) should be
in TCP-competitive mode exactly when Cubic cross flows are present.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from ..analysis.accuracy import classification_accuracy
from ..simulator import mbps_to_bytes_per_sec
from ..traffic import Phase, ScriptedCrossTraffic
from .common import (
    MAIN_FLOW,
    ExperimentResult,
    add_main_flow,
    make_network,
    queue_delay_stats,
)

#: The paper's phase schedule: (inelastic Mbit/s, number of Cubic flows).
PAPER_SCHEDULE: Tuple[Tuple[float, int], ...] = (
    (16, 1), (32, 2), (0, 4), (0, 3), (0, 1),
    (16, 0), (32, 0), (48, 0), (16, 0),
)

DEFAULT_SCHEMES = ("nimbus", "nimbus-copa", "cubic", "bbr", "vegas",
                   "compound", "copa", "pcc-vivace")


def build_phases(schedule: Iterable[Tuple[float, int]],
                 phase_duration: float) -> List[Phase]:
    """Convert (Mbit/s, flow-count) pairs into scripted phases."""
    phases = []
    for rate_mbps, n_flows in schedule:
        phases.append(Phase(duration=phase_duration,
                            inelastic_rate=mbps_to_bytes_per_sec(rate_mbps),
                            elastic_flows=n_flows))
    return phases


def run(schemes: Iterable[str] = ("nimbus", "cubic", "copa"),
        schedule: Iterable[Tuple[float, int]] = PAPER_SCHEDULE,
        phase_duration: float = 20.0, link_mbps: float = 96.0,
        prop_rtt: float = 0.05, buffer_ms: float = 100.0,
        dt: float = 0.002, seed: int = 0) -> ExperimentResult:
    """Run the schedule for each scheme and summarise tracking quality."""
    schedule = tuple(schedule)
    result = ExperimentResult(
        name="fig08_time_varying",
        parameters=dict(schemes=list(schemes), schedule=schedule,
                        phase_duration=phase_duration, link_mbps=link_mbps))
    total = phase_duration * len(schedule)

    for scheme in schemes:
        network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt,
                               seed=seed)
        add_main_flow(network, scheme, link_mbps, prop_rtt=prop_rtt)
        cross = ScriptedCrossTraffic(network=network,
                                     phases=build_phases(schedule,
                                                         phase_duration),
                                     prop_rtt=prop_rtt)
        cross.install()
        network.run(total)

        recorder = network.recorder
        times, tput = recorder.throughput_series(MAIN_FLOW)
        _, qdelay = recorder.link_queue_delay_series()
        mu = mbps_to_bytes_per_sec(link_mbps)
        fair = np.array([cross.fair_share(t, mu) * 8 / 1e6 for t in times])

        # How close does the scheme track its fair share (excluding the
        # detector's reaction window after each phase change)?
        warmup = 10.0
        mask = times > warmup
        tracking_error = float(np.mean(np.abs(tput[mask] - fair[mask]))
                               / max(np.mean(fair[mask]), 1e-9)) if mask.any() else 1.0

        extra = dict(
            fair_share_mean=float(np.mean(fair[mask])) if mask.any() else 0.0,
            tracking_error=tracking_error,
            queue=queue_delay_stats(recorder, start=warmup),
        )
        _, modes = recorder.mode_series(MAIN_FLOW)
        if any(m is not None for m in modes):
            report = classification_accuracy(
                times, modes, elastic_truth=cross.elastic_present,
                warmup=warmup, settle=6.0)
            extra["mode_accuracy"] = report.accuracy
        result.add_scheme(scheme, recorder, start=warmup, **extra)
        result.data[scheme] = {
            "times": times,
            "throughput_mbps": tput,
            "fair_share_mbps": fair,
            "queue_delay_ms": qdelay,
            "modes": modes,
        }
    return result
