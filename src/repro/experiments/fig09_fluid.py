"""Figure 9 variant: WAN cross traffic as one fluid aggregate.

Same bottleneck, main flow, and target load as :mod:`fig09_wan`, but the
Poisson/heavy-tailed cross-traffic crowd is a single elastic
:class:`~repro.simulator.fluid.FluidClass` instead of per-flow objects.
The flow-arrival rate becomes a free parameter (``fluid_arrivals``):
sampled sizes are rescaled so the offered load stays fixed while the run
stands for anything from the paper's ~2.5 k flows to 10^5+ flows at
near-constant engine cost.  Monitored-flow metrics agree with the
per-flow path within the tolerance documented in README's "Scaling
cross-traffic" section.
"""

from __future__ import annotations

from typing import Iterable

from ..runtime import ScenarioSpec, run_batch
from .common import ExperimentResult, SchemeResult
from .fig09_wan import run_case


def run(schemes: Iterable[str] = ("nimbus", "cubic", "vegas"),
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, load: float = 0.5, duration: float = 60.0,
        dt: float = 0.002, seed: int = 1,
        fluid_arrivals: float = 0.0) -> ExperimentResult:
    """Run the fluid-aggregate WAN workload for each scheme."""
    schemes = list(schemes)
    result = ExperimentResult(
        name="fig09_fluid",
        parameters=dict(schemes=schemes, link_mbps=link_mbps,
                        load=load, duration=duration,
                        fluid_arrivals=fluid_arrivals))
    specs = [ScenarioSpec.make(run_case, label=scheme, scheme=scheme,
                               link_mbps=link_mbps, prop_rtt=prop_rtt,
                               buffer_ms=buffer_ms, load=load,
                               duration=duration, dt=dt, seed=seed,
                               fluid=1, fluid_arrivals=fluid_arrivals)
             for scheme in schemes]
    for payload in run_batch(specs):
        scheme = payload["scheme"]
        result.schemes[scheme] = SchemeResult(
            scheme=scheme, summary=payload["summary"],
            extra=payload["extra"])
        result.data[scheme] = payload["data"]
    return result
