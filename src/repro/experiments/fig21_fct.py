"""Figure 21 (Appendix B): flow-completion times of the cross traffic.

The WAN workload runs against a bulk flow using each scheme; the p95 FCT of
the cross flows, binned by flow size and normalised by the Nimbus value,
shows that Nimbus is gentler on cross traffic than BBR at every size and
than Cubic for short flows, while Vegas (which cedes all bandwidth) gives
the best cross-flow FCTs at the cost of its own throughput.
"""

from __future__ import annotations

from typing import Iterable

from ..analysis.fct import fct_by_size, normalized_p95
from .common import ExperimentResult
from .fig09_wan import run_single

DEFAULT_SCHEMES = ("nimbus", "cubic", "bbr", "vegas")


def run(schemes: Iterable[str] = ("nimbus", "cubic", "vegas"),
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, load: float = 0.5, duration: float = 60.0,
        dt: float = 0.002, seed: int = 1) -> ExperimentResult:
    """Collect per-scheme cross-flow FCT distributions and normalise by Nimbus."""
    schemes = list(schemes)
    if "nimbus" not in schemes:
        schemes = ["nimbus"] + schemes
    result = ExperimentResult(
        name="fig21_fct",
        parameters=dict(schemes=schemes, link_mbps=link_mbps, load=load,
                        duration=duration))
    fcts = {}
    for scheme in schemes:
        network, _, generator = run_single(
            scheme, link_mbps=link_mbps, prop_rtt=prop_rtt,
            buffer_ms=buffer_ms, load=load, duration=duration, dt=dt,
            seed=seed)
        records = generator.completed_records()
        fcts[scheme] = fct_by_size(records)
        result.add_scheme(scheme, network.recorder, start=duration / 6.0,
                          completed_cross_flows=len(records))
    result.data = {
        "fct_by_size": fcts,
        "normalized_p95": normalized_p95(fcts, baseline_scheme="nimbus"),
    }
    return result
