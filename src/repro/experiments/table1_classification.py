"""Table 1: how the elasticity detector classifies different cross traffic.

For each cross-traffic type the paper lists whether it is elastic, whether
it is ACK-clocked, and how the detector classifies it.  The reproduction
runs a pulsing Nimbus flow against a single cross flow of each type and
reports the detector's majority decision:

==============  =======  ===========  ==============
Cross traffic   Elastic  ACK-clocked  Classification
==============  =======  ===========  ==============
Cubic           yes      yes          elastic
Reno            yes      yes          elastic
Copa            yes      yes          elastic
Vegas           yes      yes          elastic
BBR             yes      if cwnd-limited  elastic (deep buffer)
PCC-Vivace      yes      no           inelastic
Fixed window    yes      yes          elastic
App. limited    no       no           inelastic
Const. stream   no       no           inelastic
==============  =======  ===========  ==============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from ..analysis.accuracy import mode_fraction
from ..cc import Bbr, Copa, Cubic, FixedWindow, NewReno, NullCC, Vegas, Vivace
from ..simulator import Flow, mbps_to_bytes_per_sec
from ..simulator.source import PacedSource
from ..traffic import PoissonSource
from .common import MAIN_FLOW, ExperimentResult, add_main_flow, make_network


@dataclass
class TrafficClass:
    """One row of Table 1."""

    name: str
    expected: str                       # "elastic" or "inelastic"
    make_flow: Callable[[float, float, int], Flow]


def _backlogged(cc_factory: Callable) -> Callable[[float, float, int], Flow]:
    def make(mu: float, prop_rtt: float, seed: int) -> Flow:
        return Flow(cc=cc_factory(), prop_rtt=prop_rtt, name="cross")
    return make


def _app_limited(mu: float, prop_rtt: float, seed: int) -> Flow:
    # A Cubic flow limited by its application to ~15% of the link.
    return Flow(cc=Cubic(), prop_rtt=prop_rtt,
                source=PacedSource(0.15 * mu), name="cross")


def _constant_stream(mu: float, prop_rtt: float, seed: int) -> Flow:
    return Flow(cc=NullCC(), prop_rtt=prop_rtt,
                source=PoissonSource(0.4 * mu, seed=seed), name="cross")


TRAFFIC_CLASSES: Dict[str, TrafficClass] = {
    "cubic": TrafficClass("cubic", "elastic", _backlogged(Cubic)),
    "reno": TrafficClass("reno", "elastic", _backlogged(NewReno)),
    "copa": TrafficClass("copa", "elastic", _backlogged(Copa)),
    "vegas": TrafficClass("vegas", "elastic", _backlogged(Vegas)),
    "bbr": TrafficClass("bbr", "elastic", _backlogged(Bbr)),
    "pcc-vivace": TrafficClass("pcc-vivace", "inelastic", _backlogged(Vivace)),
    "fixed-window": TrafficClass("fixed-window", "elastic",
                                 _backlogged(lambda: FixedWindow(200))),
    "app-limited": TrafficClass("app-limited", "inelastic", _app_limited),
    "constant-stream": TrafficClass("constant-stream", "inelastic",
                                    _constant_stream),
}


def classify(traffic: str, link_mbps: float = 96.0, prop_rtt: float = 0.05,
             buffer_ms: float = 100.0, duration: float = 40.0,
             dt: float = 0.002, seed: int = 0) -> Dict[str, object]:
    """Run Nimbus against one traffic class and report the majority decision."""
    spec = TRAFFIC_CLASSES[traffic]
    network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt, seed=seed)
    mu = mbps_to_bytes_per_sec(link_mbps)
    add_main_flow(network, "nimbus", link_mbps, prop_rtt=prop_rtt)
    network.add_flow(spec.make_flow(mu, prop_rtt, seed + 5))
    network.run(duration)
    times, modes = network.recorder.mode_series(MAIN_FLOW)
    post_warmup = [m for t, m in zip(times, modes) if t > 10.0 and m]
    competitive_fraction = mode_fraction(post_warmup, "competitive")
    classification = "elastic" if competitive_fraction >= 0.5 else "inelastic"
    return {
        "traffic": traffic,
        "expected": spec.expected,
        "classification": classification,
        "competitive_fraction": competitive_fraction,
        "correct": classification == spec.expected,
    }


def run(traffic_classes: Optional[Iterable[str]] = None,
        **kwargs) -> ExperimentResult:
    """Classify each requested traffic class (all of Table 1 by default)."""
    names = (list(traffic_classes) if traffic_classes is not None
             else list(TRAFFIC_CLASSES))
    result = ExperimentResult(name="table1_classification",
                              parameters=dict(traffic_classes=names,
                                              **kwargs))
    rows = {}
    for name in names:
        rows[name] = classify(name, **kwargs)
    result.data["rows"] = rows
    result.data["all_correct"] = all(r["correct"] for r in rows.values())
    return result
