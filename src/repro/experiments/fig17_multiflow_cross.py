"""Figure 17: multiple Nimbus flows with elastic then inelastic cross traffic.

Three Nimbus flows run throughout on a 192 Mbit/s link.  For the first part
the cross traffic is three Cubic flows (elastic); afterwards it is a
96 Mbit/s constant-bit-rate stream (inelastic).  The Nimbus aggregate should
get its fair share in the first phase and keep queueing delay low in the
second.
"""

from __future__ import annotations

import numpy as np

from ..core.nimbus import Nimbus
from ..simulator import Flow, mbps_to_bytes_per_sec
from ..traffic import Phase, ScriptedCrossTraffic
from .common import ExperimentResult, make_network


def run(n_flows: int = 3, link_mbps: float = 192.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, phase_duration: float = 60.0,
        warmup: float = 30.0, dt: float = 0.002,
        seed: int = 0) -> ExperimentResult:
    """Run the two-phase multi-flow scenario."""
    network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt, seed=seed)
    mu = mbps_to_bytes_per_sec(link_mbps)
    for i in range(n_flows):
        nimbus = Nimbus(mu=mu, multi_flow=True, seed=seed + i)
        network.add_flow(Flow(cc=nimbus, prop_rtt=prop_rtt,
                              name=f"nimbus{i}"))

    phases = [
        Phase(duration=phase_duration, elastic_flows=3),
        Phase(duration=phase_duration, inelastic_rate=0.5 * mu),
    ]
    cross = ScriptedCrossTraffic(network=network, phases=phases,
                                 prop_rtt=prop_rtt, start=warmup)
    cross.install()
    total = warmup + 2 * phase_duration
    network.run(total)

    recorder = network.recorder
    names = [f"nimbus{i}" for i in range(n_flows)]
    times, _ = recorder.throughput_series(names[0])
    aggregate = np.zeros_like(times)
    for name in names:
        _, series = recorder.throughput_series(name)
        aggregate += series
    _, qdelay = recorder.link_queue_delay_series()

    elastic_window = (times >= warmup + 10) & (times <= warmup + phase_duration)
    inelastic_window = times >= warmup + phase_duration + 10

    # Fair share of the aggregate: n_flows/(n_flows + 3 cubic) of the link in
    # the elastic phase, and everything the CBR leaves in the second phase.
    fair_elastic = link_mbps * n_flows / (n_flows + 3)
    fair_inelastic = link_mbps * 0.5

    result = ExperimentResult(
        name="fig17_multiflow_cross",
        parameters=dict(n_flows=n_flows, link_mbps=link_mbps,
                        phase_duration=phase_duration))
    for name in names:
        result.add_scheme(name, recorder, flow_name=name, start=warmup)
    result.data = {
        "times": times,
        "aggregate_mbps": aggregate,
        "queue_delay_ms": qdelay,
        "aggregate_elastic_mean": float(np.mean(aggregate[elastic_window]))
        if elastic_window.any() else 0.0,
        "aggregate_inelastic_mean": float(np.mean(aggregate[inelastic_window]))
        if inelastic_window.any() else 0.0,
        "delay_elastic_mean_ms": float(np.mean(qdelay[elastic_window]))
        if elastic_window.any() else 0.0,
        "delay_inelastic_mean_ms": float(np.mean(qdelay[inelastic_window]))
        if inelastic_window.any() else 0.0,
        "fair_share_elastic_mbps": fair_elastic,
        "fair_share_inelastic_mbps": fair_inelastic,
    }
    return result
