"""Appendix E.2: robustness to buffer size, propagation RTT, and AQM.

Classification accuracy with drop-tail buffers from 0.25 to 4 BDP, several
propagation delays, and PIE at two target delays.  The paper's caveats also
appear here: with very shallow buffers (or an aggressive PIE target) losses
corrupt the cross-traffic estimator and accuracy degrades, although Nimbus
still achieves its fair share and low (buffer-bounded) delays.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from .accuracy_scenarios import CrossSpec, run_accuracy_scenario
from .common import ExperimentResult

DEFAULT_BUFFERS_BDP = (0.5, 1.0, 2.0, 4.0)
DEFAULT_RTTS = (0.025, 0.05, 0.075)


def run(buffer_bdp_multipliers: Iterable[float] = (1.0, 2.0),
        prop_rtts: Iterable[float] = (0.05,),
        categories: Iterable[str] = ("elastic", "poisson", "mix"),
        pie_targets_bdp: Optional[Iterable[float]] = None,
        link_mbps: float = 96.0, duration: float = 40.0, dt: float = 0.002,
        seed: int = 0) -> ExperimentResult:
    """Sweep buffer depth and RTT (and optionally PIE) for each traffic mix."""
    result = ExperimentResult(
        name="appE_buffer_aqm",
        parameters=dict(buffer_bdp_multipliers=list(buffer_bdp_multipliers),
                        prop_rtts=list(prop_rtts),
                        categories=list(categories), link_mbps=link_mbps,
                        duration=duration))

    def spec_for(category: str) -> CrossSpec:
        if category == "elastic":
            return CrossSpec(kind="elastic", elastic_flows=1)
        if category == "mix":
            return CrossSpec(kind="mix", elastic_flows=1, rate_fraction=0.25)
        return CrossSpec(kind="poisson", rate_fraction=0.5, elastic_flows=0)

    accuracy: Dict[Tuple, float] = {}
    for category in categories:
        for rtt in prop_rtts:
            for multiplier in buffer_bdp_multipliers:
                buffer_ms = rtt * 1e3 * multiplier
                scenario = run_accuracy_scenario(
                    "nimbus", spec_for(category), link_mbps=link_mbps,
                    prop_rtt=rtt, buffer_ms=buffer_ms, duration=duration,
                    dt=dt, seed=seed)
                accuracy[(category, rtt, multiplier, "droptail")] = (
                    scenario.report.accuracy)
            for target in (pie_targets_bdp or ()):
                scenario = run_accuracy_scenario(
                    "nimbus", spec_for(category), link_mbps=link_mbps,
                    prop_rtt=rtt, buffer_ms=rtt * 1e3 * 4,
                    aqm_target_ms=rtt * 1e3 * target, duration=duration,
                    dt=dt, seed=seed)
                accuracy[(category, rtt, target, "pie")] = (
                    scenario.report.accuracy)

    result.data["accuracy"] = accuracy
    result.data["mean_accuracy"] = (sum(accuracy.values()) / len(accuracy)
                                    if accuracy else 0.0)
    return result
