"""Figures 4 and 5: how cross traffic reacts to the sender's pulses.

A Nimbus flow pulses at ``fp`` while sharing the link with either a
long-running Cubic flow (elastic) or a constant-rate stream (inelastic).
Fig. 4 shows the time-domain picture: the elastic flow's rate is inversely
correlated with the pulses (after one RTT), while the inelastic flow is
unaffected.  Fig. 5 shows the frequency-domain picture: only the elastic
cross traffic produces a pronounced FFT peak at ``fp``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..cc import Cubic, NullCC
from ..core.elasticity import elasticity_metric, fft_magnitude, magnitude_at, band_peak
from ..simulator import Flow, mbps_to_bytes_per_sec
from ..traffic import PoissonSource
from .common import ExperimentResult, add_main_flow, make_network


def _run_one(cross_kind: str, link_mbps: float, prop_rtt: float,
             buffer_ms: float, duration: float, pulse_frequency: float,
             dt: float, seed: int) -> Dict[str, object]:
    network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt, seed=seed)
    mu = mbps_to_bytes_per_sec(link_mbps)
    main = add_main_flow(network, "nimbus", link_mbps, prop_rtt=prop_rtt,
                         pulse_frequency=pulse_frequency)
    if cross_kind == "elastic":
        network.add_flow(Flow(cc=Cubic(), prop_rtt=prop_rtt, name="cross"))
    else:
        network.add_flow(Flow(cc=NullCC(), prop_rtt=prop_rtt,
                              source=PoissonSource(0.5 * mu, seed=seed + 1),
                              name="cross"))
    network.run(duration)

    nimbus = main.cc
    # Use the realised sample spacing (the control loop runs on the simulator
    # tick grid), otherwise the FFT frequency axis is distorted.
    sample_interval = nimbus.actual_sample_interval()
    z = nimbus.estimator.z_series()
    s = nimbus.estimator.s_series()
    times = nimbus.estimator.times()
    freqs, mags = fft_magnitude(z[-nimbus.detector.window_samples:],
                                sample_interval)
    eta = elasticity_metric(z[-nimbus.detector.window_samples:],
                            sample_interval, pulse_frequency)

    # Time-domain correlation between the pulses in S and the response in z,
    # evaluated at a one-RTT lag (the elastic response arrives an RTT later).
    lag = max(1, int(round(prop_rtt / sample_interval)))
    n = min(len(s), len(z))
    s_trim, z_trim = np.asarray(s[:n]), np.asarray(z[:n])
    if n > lag + 10:
        s_lead = s_trim[:-lag] - s_trim[:-lag].mean()
        z_lag = z_trim[lag:] - z_trim[lag:].mean()
        denom = np.sqrt((s_lead ** 2).sum() * (z_lag ** 2).sum())
        lagged_corr = float((s_lead * z_lag).sum() / denom) if denom > 0 else 0.0
    else:
        lagged_corr = 0.0

    return {
        "times": times,
        "z_mbps": np.asarray(z) * 8 / 1e6,
        "s_mbps": np.asarray(s) * 8 / 1e6,
        "fft_freqs": freqs,
        "fft_mags_mbps": mags * 8 / 1e6,
        "eta": eta,
        "peak_at_fp": magnitude_at(freqs, mags, pulse_frequency) * 8 / 1e6,
        "peak_neighbourhood": band_peak(
            freqs, mags, pulse_frequency * 1.2, pulse_frequency * 2.0) * 8 / 1e6,
        "lagged_correlation": lagged_corr,
        "recorder": network.recorder,
    }


def run(link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, duration: float = 30.0,
        pulse_frequency: float = 5.0, dt: float = 0.002,
        seed: int = 0) -> ExperimentResult:
    """Run the elastic and inelastic variants and return both datasets."""
    result = ExperimentResult(
        name="fig04_fig05_pulse_response",
        parameters=dict(link_mbps=link_mbps, duration=duration,
                        pulse_frequency=pulse_frequency))
    for kind in ("elastic", "inelastic"):
        data = _run_one(kind, link_mbps, prop_rtt, buffer_ms, duration,
                        pulse_frequency, dt, seed)
        recorder = data.pop("recorder")
        result.add_scheme(f"nimbus-vs-{kind}", recorder, start=duration / 3)
        result.data[kind] = data
    return result
