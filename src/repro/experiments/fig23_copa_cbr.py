"""Figure 23 (Appendix D.1): Copa vs. Nimbus against constant-rate traffic.

The constant-rate stream is modelled with Poisson packet arrivals at the
target rate: real CBR traffic is packetised and arrives with jitter, which
is exactly what prevents Copa from draining the queue at high load.

At a low CBR rate (25 % of the link) both Copa and Nimbus keep queueing
delay low.  When the CBR stream occupies ~83 % of the link, the queue can
never drain within 5 RTTs, Copa misclassifies the traffic as buffer-filling
and gets stuck in competitive mode with high delay, while Nimbus still
classifies it as inelastic and keeps delay low.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..analysis.accuracy import mode_fraction
from ..cc import NullCC
from ..simulator import Flow, mbps_to_bytes_per_sec
from ..traffic import PoissonSource
from .common import (
    MAIN_FLOW,
    ExperimentResult,
    add_main_flow,
    make_network,
    queue_delay_stats,
)


def run(cbr_fractions: Iterable[float] = (0.25, 0.83),
        schemes: Iterable[str] = ("copa", "nimbus"),
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, duration: float = 50.0,
        dt: float = 0.002, seed: int = 0) -> ExperimentResult:
    """Run each scheme against CBR streams of the given rates."""
    result = ExperimentResult(
        name="fig23_copa_cbr",
        parameters=dict(cbr_fractions=list(cbr_fractions),
                        schemes=list(schemes), link_mbps=link_mbps,
                        duration=duration))
    warmup = duration / 4.0
    delays: Dict[str, Dict[float, float]] = {s: {} for s in schemes}
    for fraction in cbr_fractions:
        for scheme in schemes:
            network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt,
                                   seed=seed)
            mu = mbps_to_bytes_per_sec(link_mbps)
            add_main_flow(network, scheme, link_mbps, prop_rtt=prop_rtt)
            network.add_flow(Flow(cc=NullCC(), prop_rtt=prop_rtt,
                                  source=PoissonSource(fraction * mu,
                                                       seed=seed + 17),
                                  name="cbr"))
            network.run(duration)
            recorder = network.recorder
            label = f"{scheme}@cbr{int(fraction * 100)}"
            queue = queue_delay_stats(recorder, start=warmup)
            _, modes = recorder.mode_series(MAIN_FLOW)
            result.add_scheme(label, recorder, start=warmup,
                              cbr_fraction=fraction, queue=queue,
                              competitive_fraction=mode_fraction(
                                  modes, "competitive"))
            delays[scheme][fraction] = queue["mean"]
    result.data["mean_queue_delay_ms"] = delays
    return result
