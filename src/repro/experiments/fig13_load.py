"""Figure 13: effect of cross-traffic load and pulse size.

The WAN workload offers 50 % or 90 % of the link; Nimbus runs with pulse
amplitudes of 0.125 and 0.25 of the link rate and is compared against Cubic
and Vegas.  At low load Nimbus's delay approaches Vegas while its
throughput approaches Cubic; at high load it behaves like Cubic; and the
larger pulse gives more reliable switching.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from ..runtime import ScenarioSpec, run_batch
from .common import ExperimentResult, SchemeResult
from .fig09_wan import run_case


def run(loads: Iterable[float] = (0.5, 0.9),
        pulse_sizes: Iterable[float] = (0.125, 0.25),
        baselines: Iterable[str] = ("cubic", "vegas"),
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, duration: float = 60.0,
        dt: float = 0.002, seed: int = 1) -> ExperimentResult:
    """Sweep load x pulse size for Nimbus, plus the fixed baselines.

    Each (load, scheme) point is an independent scenario, so the whole
    sweep is one batch: points run in parallel when workers are available
    and cached points (e.g. the Fig. 9 baselines at 50 % load) are reused
    across figures instead of being re-simulated.
    """
    result = ExperimentResult(
        name="fig13_load",
        parameters=dict(loads=list(loads), pulse_sizes=list(pulse_sizes),
                        link_mbps=link_mbps, duration=duration))
    shared = dict(link_mbps=link_mbps, prop_rtt=prop_rtt,
                  buffer_ms=buffer_ms, duration=duration, dt=dt, seed=seed)
    cases = []
    for load in loads:
        for scheme in baselines:
            cases.append((f"{scheme}@load{int(load * 100)}",
                          dict(load=load),
                          ScenarioSpec.make(run_case, scheme=scheme,
                                            load=load, **shared)))
        for pulse in pulse_sizes:
            cases.append((f"nimbus{pulse}@load{int(load * 100)}",
                          dict(load=load, pulse_fraction=pulse),
                          ScenarioSpec.make(run_case, scheme="nimbus",
                                            load=load, pulse_fraction=pulse,
                                            **shared)))
    payloads = run_batch([spec for _, _, spec in cases])
    for (label, point, _), payload in zip(cases, payloads):
        extra = dict(payload["extra"])
        extra.update(point)
        result.schemes[label] = SchemeResult(
            scheme=label, summary=replace(payload["summary"], scheme=label),
            extra=extra)
    return result
