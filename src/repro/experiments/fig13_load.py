"""Figure 13: effect of cross-traffic load and pulse size.

The WAN workload offers 50 % or 90 % of the link; Nimbus runs with pulse
amplitudes of 0.125 and 0.25 of the link rate and is compared against Cubic
and Vegas.  At low load Nimbus's delay approaches Vegas while its
throughput approaches Cubic; at high load it behaves like Cubic; and the
larger pulse gives more reliable switching.
"""

from __future__ import annotations

from typing import Iterable

from .common import ExperimentResult, queue_delay_stats
from .fig09_wan import run_single


def run(loads: Iterable[float] = (0.5, 0.9),
        pulse_sizes: Iterable[float] = (0.125, 0.25),
        baselines: Iterable[str] = ("cubic", "vegas"),
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, duration: float = 60.0,
        dt: float = 0.002, seed: int = 1) -> ExperimentResult:
    """Sweep load x pulse size for Nimbus, plus the fixed baselines."""
    result = ExperimentResult(
        name="fig13_load",
        parameters=dict(loads=list(loads), pulse_sizes=list(pulse_sizes),
                        link_mbps=link_mbps, duration=duration))
    warmup = duration / 6.0
    for load in loads:
        for scheme in baselines:
            network, _, _ = run_single(scheme, link_mbps=link_mbps,
                                       prop_rtt=prop_rtt,
                                       buffer_ms=buffer_ms, load=load,
                                       duration=duration, dt=dt, seed=seed)
            result.add_scheme(
                f"{scheme}@load{int(load * 100)}", network.recorder,
                start=warmup, load=load,
                queue=queue_delay_stats(network.recorder, start=warmup))
        for pulse in pulse_sizes:
            network, _, _ = run_single("nimbus", link_mbps=link_mbps,
                                       prop_rtt=prop_rtt,
                                       buffer_ms=buffer_ms, load=load,
                                       duration=duration, dt=dt, seed=seed,
                                       pulse_fraction=pulse)
            result.add_scheme(
                f"nimbus{pulse}@load{int(load * 100)}", network.recorder,
                start=warmup, load=load, pulse_fraction=pulse,
                queue=queue_delay_stats(network.recorder, start=warmup))
    return result
