"""Shared scenario runner for the classification-accuracy experiments.

Figures 14, 15, 25 and the Appendix E sweeps all follow the same recipe:
run a mode-switching flow (Nimbus or Copa) against synthetic cross traffic
whose elasticity is known by construction, and measure the fraction of time
the flow sits in the correct mode.  This module provides that recipe once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.accuracy import AccuracyReport, classification_accuracy
from ..cc import NewReno, NullCC
from ..simulator import Flow, mbps_to_bytes_per_sec
from ..simulator.source import PacedSource
from ..traffic import PoissonSource
from .common import MAIN_FLOW, add_main_flow, make_network


@dataclass
class CrossSpec:
    """Description of the synthetic cross traffic for an accuracy scenario.

    Attributes:
        kind: "none", "poisson", "cbr", "elastic", or "mix".
        rate_fraction: Offered inelastic rate as a fraction of the link rate
            (for poisson/cbr/mix).
        elastic_flows: Number of backlogged elastic flows (elastic/mix).
        elastic_rtts: Optional explicit RTTs for the elastic flows; when
            omitted they use ``rtt_ratio`` times the main flow's RTT.
        rtt_ratio: RTT of cross traffic relative to the main flow.
    """

    kind: str = "mix"
    rate_fraction: float = 0.25
    elastic_flows: int = 1
    elastic_rtts: Optional[Sequence[float]] = None
    rtt_ratio: float = 1.0
    elastic_cc_factory: type = NewReno
    extra: dict = field(default_factory=dict)

    @property
    def has_elastic(self) -> bool:
        return self.kind in ("elastic", "mix") and self.elastic_flows > 0


@dataclass
class AccuracyScenarioResult:
    """Outcome of one accuracy scenario."""

    scheme: str
    spec: CrossSpec
    report: AccuracyReport
    mean_throughput_mbps: float
    mean_queue_delay_ms: float


def install_cross_traffic(network, spec: CrossSpec, link_mbps: float,
                          prop_rtt: float, seed: int = 0) -> None:
    """Add the cross traffic described by ``spec`` to the network."""
    mu = mbps_to_bytes_per_sec(link_mbps)
    cross_rtt = prop_rtt * spec.rtt_ratio
    if spec.kind in ("poisson", "mix") and spec.rate_fraction > 0:
        network.add_flow(Flow(
            cc=NullCC(), prop_rtt=cross_rtt,
            source=PoissonSource(spec.rate_fraction * mu, seed=seed + 11),
            name="cross-inelastic"))
    elif spec.kind == "cbr" and spec.rate_fraction > 0:
        network.add_flow(Flow(
            cc=NullCC(), prop_rtt=cross_rtt,
            source=PacedSource(spec.rate_fraction * mu),
            name="cross-inelastic"))
    if spec.kind in ("elastic", "mix"):
        rtts = (list(spec.elastic_rtts) if spec.elastic_rtts is not None
                else [cross_rtt] * spec.elastic_flows)
        for i in range(spec.elastic_flows):
            network.add_flow(Flow(cc=spec.elastic_cc_factory(),
                                  prop_rtt=rtts[i % len(rtts)],
                                  name="cross-elastic"))


def run_accuracy_scenario(scheme: str, spec: CrossSpec,
                          link_mbps: float = 96.0, prop_rtt: float = 0.05,
                          buffer_ms: float = 100.0, duration: float = 60.0,
                          dt: float = 0.002, seed: int = 0,
                          aqm_target_ms: Optional[float] = None,
                          settle: float = 6.0,
                          **scheme_overrides) -> AccuracyScenarioResult:
    """Run ``scheme`` against ``spec`` and score its mode decisions.

    The warmup excludes the first FFT window plus slow start; the ground
    truth is constant over the run (the cross traffic composition does not
    change), so accuracy is simply the fraction of post-warmup time spent in
    the correct mode.
    """
    network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt, seed=seed,
                           aqm_target_ms=aqm_target_ms)
    add_main_flow(network, scheme, link_mbps, prop_rtt=prop_rtt,
                  **scheme_overrides)
    install_cross_traffic(network, spec, link_mbps, prop_rtt, seed=seed)
    network.run(duration)

    recorder = network.recorder
    times, modes = recorder.mode_series(MAIN_FLOW)
    warmup = max(8.0, 6.0 * prop_rtt + 6.0)
    report = classification_accuracy(
        times, modes, elastic_truth=lambda t: spec.has_elastic,
        warmup=warmup, settle=0.0)
    from .common import queue_delay_stats

    stats = queue_delay_stats(recorder, start=warmup)
    return AccuracyScenarioResult(
        scheme=scheme, spec=spec, report=report,
        mean_throughput_mbps=recorder.mean_throughput(MAIN_FLOW, start=warmup),
        mean_queue_delay_ms=stats["mean"])


def sweep(scheme: str, specs: List[CrossSpec], **kwargs
          ) -> List[AccuracyScenarioResult]:
    """Run a list of scenarios for one scheme."""
    return [run_accuracy_scenario(scheme, spec, **kwargs) for spec in specs]
