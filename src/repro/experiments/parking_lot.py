"""Parking-lot topology: one flow over every hop vs. per-hop cross flows.

The classic multi-bottleneck stress test the single-queue simulator could
not express: a *main* flow traverses a chain of N identical links, while
each cross flow enters at one hop and leaves at the next — so the main flow
competes at every queue against traffic that only pays the price of one.
Loss-based schemes are known to drive the main flow far below its 1/2 fair
share as N grows; the interesting question for Nimbus is whether the
elasticity detector still tracks cross traffic it only shares one hop with.

Every case runs through the scenario runtime (cached, batched); the hop
count, cross-flow count, rates, and delays are all plain numeric sweep
axes::

    python -m repro.experiments.runner parking_lot --duration 5
    python -m repro.experiments.runner sweep parking_lot --set hops=2,3,5 \\
        --set cross_flows=2,4 --duration 20
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..analysis.metrics import summarize_flow
from ..runtime import ScenarioSpec, run_batch
from ..simulator import Flow, TopologyNetwork, mbps_to_bytes_per_sec
from .common import (
    MAIN_FLOW,
    ExperimentResult,
    LinkSpec,
    SchemeResult,
    make_multihop_network,
    make_scheme,
    queue_delay_stats,
)

DEFAULT_SCHEMES = ("nimbus", "cubic", "vegas")


def hop_name(index: int) -> str:
    """Canonical name of hop ``index`` (0-based): ``hop1``, ``hop2``, ..."""
    return f"hop{index + 1}"


def build_network(hops: int = 3, link_mbps: float = 48.0,
                  hop_delay_ms: float = 10.0, buffer_ms: float = 100.0,
                  dt: float = 0.002, seed: int = 0) -> TopologyNetwork:
    """A chain of ``hops`` identical links named ``hop1 .. hopN``.

    The first hop is the monitor link: it is where the main flow meets the
    first cross flow, so its queue is the one the recorder tracks.
    """
    hops = int(hops)
    if hops < 1:
        raise ValueError("a parking lot needs at least one hop")
    links = tuple(LinkSpec(hop_name(i), link_mbps, delay_ms=hop_delay_ms,
                           buffer_ms=buffer_ms) for i in range(hops))
    return make_multihop_network(links, dt=dt, seed=seed,
                                 monitor=hop_name(0))


def add_cross_flows(network: TopologyNetwork, count: int,
                    scheme: str = "cubic", link_mbps: float = 48.0,
                    prop_rtt: float = 0.05,
                    stagger: float = 0.0) -> Tuple[Flow, ...]:
    """Add ``count`` single-hop cross flows, round-robin over the hops.

    Cross flow ``j`` enters the topology at hop ``j mod N`` and leaves at
    the next hop — the defining parking-lot contention pattern.
    """
    hops = len(network.topology.links)
    mu = mbps_to_bytes_per_sec(link_mbps)
    flows = []
    for j in range(int(count)):
        flow = Flow(cc=make_scheme(scheme, mu), prop_rtt=prop_rtt,
                    start_time=stagger * j, name=f"cross{j + 1}")
        network.add_flow(flow, path=(hop_name(j % hops),))
        flows.append(flow)
    return tuple(flows)


def run_case(scheme: str = "nimbus", hops: int = 3, cross_flows: int = 2,
             link_mbps: float = 48.0, hop_delay_ms: float = 10.0,
             buffer_ms: float = 100.0, prop_rtt: float = 0.05,
             cross_scheme: str = "cubic", cross_rtt: float = 0.05,
             cross_stagger: float = 1.0, duration: float = 30.0,
             dt: float = 0.002, seed: int = 0) -> dict:
    """One scheme through the parking lot, reduced to a picklable payload.

    The batch unit behind :func:`run`: executed in worker processes and
    memoised by the runtime, so only picklable summaries leave here.
    """
    hops = int(hops)
    cross_flows = int(cross_flows)
    network = build_network(hops=hops, link_mbps=link_mbps,
                            hop_delay_ms=hop_delay_ms, buffer_ms=buffer_ms,
                            dt=dt, seed=seed)
    mu = mbps_to_bytes_per_sec(link_mbps)
    network.add_flow(Flow(cc=make_scheme(scheme, mu), prop_rtt=prop_rtt,
                          name=MAIN_FLOW))
    add_cross_flows(network, cross_flows, scheme=cross_scheme,
                    link_mbps=link_mbps, prop_rtt=cross_rtt,
                    stagger=cross_stagger)
    network.run(duration)

    recorder = network.recorder
    warmup = duration / 6.0
    summary = summarize_flow(recorder, MAIN_FLOW, scheme=scheme,
                             start=warmup)
    per_hop = {}
    for link, delay in zip(network.topology.links,
                           network.topology.delays):
        times, qdelay_ms = recorder.link_queue_delay_series(link.name)
        _, tput_mbps = recorder.link_throughput_series(link.name)
        _, drop_mbps = recorder.link_drop_series(link.name)
        settled = times >= warmup
        per_hop[link.name] = {
            "offered_bytes": link.total_offered,
            "served_bytes": link.total_served,
            "dropped_bytes": link.total_drops,
            "queued_bytes": link.queue_bytes,
            "delay_ms": delay * 1e3,
            "queue_delay_ms_mean": (float(qdelay_ms[settled].mean())
                                    if settled.any() else 0.0),
            "throughput_mbps_mean": (float(tput_mbps[settled].mean())
                                     if settled.any() else 0.0),
            "drop_mbps_mean": (float(drop_mbps[settled].mean())
                               if settled.any() else 0.0),
        }
    cross_tput = {
        flow.name: recorder.mean_throughput(flow.name, start=warmup)
        for flow in network.flows[1:]
    }
    return {
        "scheme": scheme,
        "summary": summary,
        "extra": {
            "hops": hops,
            "cross_flows": cross_flows,
            "queue": queue_delay_stats(recorder, start=warmup),
            "main_share": (summary.mean_throughput_mbps
                           / link_mbps if link_mbps else 0.0),
        },
        "data": {
            "per_hop": per_hop,
            "cross_throughput_mbps": cross_tput,
        },
    }


def run(schemes: Iterable[str] = DEFAULT_SCHEMES, hops: int = 3,
        cross_flows: int = 2, link_mbps: float = 48.0,
        hop_delay_ms: float = 10.0, buffer_ms: float = 100.0,
        prop_rtt: float = 0.05, duration: float = 30.0, dt: float = 0.002,
        seed: int = 0) -> ExperimentResult:
    """Run every scheme through the same parking lot as one cached batch."""
    schemes = list(schemes)
    result = ExperimentResult(
        name="parking_lot",
        parameters=dict(schemes=schemes, hops=int(hops),
                        cross_flows=int(cross_flows), link_mbps=link_mbps,
                        duration=duration))
    specs = [ScenarioSpec.make(run_case, label=scheme, scheme=scheme,
                               hops=int(hops), cross_flows=int(cross_flows),
                               link_mbps=link_mbps,
                               hop_delay_ms=hop_delay_ms,
                               buffer_ms=buffer_ms, prop_rtt=prop_rtt,
                               duration=duration, dt=dt, seed=seed)
             for scheme in schemes]
    for payload in run_batch(specs):
        scheme = payload["scheme"]
        result.schemes[scheme] = SchemeResult(
            scheme=scheme, summary=payload["summary"],
            extra=payload["extra"])
        result.data[scheme] = payload["data"]
    return result
