"""Figure 9 (and the basis of Figs. 10, 12, 13, 21): WAN cross traffic.

A bulk flow runs each scheme against cross traffic generated from a
heavy-tailed flow-size distribution with Poisson arrivals at 50 % load on a
96 Mbit/s, 50 ms, 100 ms-buffer link.  Nimbus should match Cubic and BBR's
throughput distribution while keeping the RTT distribution close to the
delay-based schemes (Vegas/Copa), which themselves lose throughput.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..analysis.metrics import rate_cdf_over_intervals, summarize_flow
from ..runtime import ScenarioSpec, run_batch
from ..traffic import WanTrafficGenerator, WanWorkloadConfig
from ..simulator import mbps_to_bytes_per_sec
from .common import (
    MAIN_FLOW,
    ExperimentResult,
    FluidClassSpec,
    SchemeResult,
    add_main_flow,
    attach_fluid_classes,
    make_network,
    queue_delay_stats,
)

DEFAULT_SCHEMES = ("nimbus", "cubic", "bbr", "vegas", "copa", "pcc-vivace")


def run_single(scheme: str, link_mbps: float = 96.0, prop_rtt: float = 0.05,
               buffer_ms: float = 100.0, load: float = 0.5,
               duration: float = 60.0, dt: float = 0.002, seed: int = 1,
               fluid: int = 0, fluid_arrivals: float = 0.0,
               **scheme_overrides):
    """Run one scheme against the WAN workload; returns (recorder, generator).

    ``fluid=1`` replaces the per-flow cross-traffic generator with one
    fluid-aggregate elastic class at the same load (``fluid_arrivals``
    overrides its Poisson flow-arrival rate — how a run stands for 10^5
    background flows at unchanged cost); the default ``fluid=0`` is the
    per-flow path, bit-identical to a build without the parameters.
    """
    network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt, seed=seed)
    flow = add_main_flow(network, scheme, link_mbps, prop_rtt=prop_rtt,
                         **scheme_overrides)
    if fluid:
        attach_fluid_classes(network, (FluidClassSpec(
            "wan", kind="elastic", load=load, rtt_ms=prop_rtt * 1e3,
            arrivals_per_sec=fluid_arrivals or None, seed=seed),))
        generator = None
    else:
        generator = WanTrafficGenerator(network, WanWorkloadConfig(
            link_rate=mbps_to_bytes_per_sec(link_mbps), load=load,
            prop_rtt=prop_rtt, seed=seed))
        generator.start()
    network.run(duration)
    return network, flow, generator


def run_case(scheme: str, link_mbps: float = 96.0, prop_rtt: float = 0.05,
             buffer_ms: float = 100.0, load: float = 0.5,
             duration: float = 60.0, dt: float = 0.002, seed: int = 1,
             fluid: int = 0, fluid_arrivals: float = 0.0,
             **scheme_overrides) -> dict:
    """One scheme under the WAN workload, reduced to a picklable payload.

    This is the batch unit behind :func:`run` (and Fig. 13's load sweep):
    the runtime executes it in worker processes and memoises the returned
    payload, so only picklable summaries leave this function — never the
    network object itself.
    """
    network, _, generator = run_single(
        scheme, link_mbps=link_mbps, prop_rtt=prop_rtt, buffer_ms=buffer_ms,
        load=load, duration=duration, dt=dt, seed=seed,
        fluid=fluid, fluid_arrivals=fluid_arrivals, **scheme_overrides)
    recorder = network.recorder
    warmup = duration / 6.0
    rate_values, rate_probs = rate_cdf_over_intervals(
        recorder, MAIN_FLOW, interval=1.0, start=warmup)
    rtt_samples = recorder.rtt_samples(MAIN_FLOW) * 1e3
    summary = summarize_flow(recorder, MAIN_FLOW, scheme=scheme, start=warmup)
    if generator is not None:
        cross_flows = len(generator.records)
        fct_records = generator.completed_records()
        fluid_extra = {}
    else:
        cls = network.fluid_classes()[0]
        cross_flows = int(cls.flows_created)
        fct_records = []
        fluid_extra = {"fluid": {
            "offered_bytes": cls.total_offered,
            "served_bytes": cls.total_served,
            "dropped_bytes": cls.total_dropped,
            "flows_created": cls.flows_created,
        }}
    return {
        "scheme": scheme,
        "summary": summary,
        "extra": {
            "median_rtt_ms": (float(np.median(rtt_samples))
                              if rtt_samples.size else 0.0),
            "queue": queue_delay_stats(recorder, start=warmup),
            "cross_flows": cross_flows,
            **fluid_extra,
        },
        "data": {
            "rate_cdf": (rate_values, rate_probs),
            "rtt_samples_ms": rtt_samples,
            "fct_records": fct_records,
        },
    }


def run(schemes: Iterable[str] = ("nimbus", "cubic", "vegas"),
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, load: float = 0.5, duration: float = 60.0,
        dt: float = 0.002, seed: int = 1) -> ExperimentResult:
    """Run the WAN workload for each scheme and collect rate/RTT CDFs."""
    schemes = list(schemes)
    result = ExperimentResult(
        name="fig09_wan",
        parameters=dict(schemes=schemes, link_mbps=link_mbps,
                        load=load, duration=duration))
    specs = [ScenarioSpec.make(run_case, label=scheme, scheme=scheme,
                               link_mbps=link_mbps, prop_rtt=prop_rtt,
                               buffer_ms=buffer_ms, load=load,
                               duration=duration, dt=dt, seed=seed)
             for scheme in schemes]
    for payload in run_batch(specs):
        scheme = payload["scheme"]
        result.schemes[scheme] = SchemeResult(
            scheme=scheme, summary=payload["summary"],
            extra=payload["extra"])
        result.data[scheme] = payload["data"]
    return result
