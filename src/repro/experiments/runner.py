"""Command-line runner for the experiment drivers.

Lets a user regenerate any paper artefact from the shell without writing
code::

    python -m repro.experiments.runner fig09 --duration 45
    python -m repro.experiments.runner table1
    python -m repro.experiments.runner --list

Arbitrary numeric keyword overrides can be passed as ``--set name=value``;
they are forwarded to the driver's ``run`` function.  ``sweep`` mode
expands comma-separated ``--set`` values into the cross product and runs
the whole grid as one scenario batch (parallel workers + result cache)::

    python -m repro.experiments.runner sweep fig09 --set seed=1,2,3 \\
        --set load=0.5,0.9 --duration 30

Execution goes through :mod:`repro.runtime`, so repeated invocations with
identical parameters are served from the on-disk cache (see
``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` / ``REPRO_BENCH_WORKERS``).

Observability flags: ``--metrics PATH`` appends one JSONL record per spec
(cache hit/miss, wall seconds, worker pid — see
:mod:`repro.runtime.metrics`); ``--trace PATH`` streams structured engine
events to a JSONL file (see :mod:`repro.simulator.telemetry`).  Tracing
forces a cold, serial run: a cache hit would simulate nothing (and emit no
events), and pool workers appending to one file would interleave lines.

Robustness flags: any of ``--timeout SECONDS`` (per-spec deadline),
``--max-retries N`` (bounded retry with exponential backoff), or
``--resume`` switches the batch onto the hardened executor — every miss
runs crash-isolated, a raising/hanging spec becomes a structured failure
printed after the healthy results instead of killing the batch, and each
spec's terminal state is journalled (``--journal PATH`` overrides the
content-addressed default under the cache directory).  ``--resume`` keeps
the previous journal and, with the cache enabled, re-attempts only the
failed or never-completed specs.  Exit code 3 means the batch finished
but some specs failed.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from typing import Dict, List, Tuple

from ..runtime import (
    BatchExecutor,
    ResultCache,
    ScenarioSpec,
    SpecFailure,
    batch_id,
    default_journal_path,
)
from ..runtime.spec import expand_grid
from . import EXPERIMENT_INDEX
from .common import ExperimentResult


def _parse_overrides(pairs: List[str]) -> Dict[str, float]:
    """Turn ``name=value`` strings into keyword arguments (numbers only)."""
    overrides: Dict[str, float] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--set expects name=value, got {pair!r}")
        name, value = pair.split("=", 1)
        try:
            overrides[name.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"--set expects a numeric value, got {pair!r}")
    return overrides


def _parse_sweep_overrides(
        pairs: List[str]) -> Tuple[Dict[str, float], Dict[str, List[float]]]:
    """Split ``--set`` pairs into fixed overrides and sweep axes.

    ``name=a,b,c`` becomes a sweep axis with values ``[a, b, c]``;
    single-valued pairs stay plain overrides.
    """
    fixed: Dict[str, float] = {}
    axes: Dict[str, List[float]] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--set expects name=value[,value...], "
                             f"got {pair!r}")
        name, raw = pair.split("=", 1)
        name = name.strip()
        try:
            values = [float(v) for v in raw.split(",") if v.strip() != ""]
        except ValueError:
            raise ValueError(
                f"--set expects numeric values, got {pair!r}")
        if not values:
            raise ValueError(f"--set got no values in {pair!r}")
        if len(values) == 1:
            fixed[name] = values[0]
        else:
            axes[name] = values
    return fixed, axes


def _sweep_row_label(spec: ScenarioSpec, axes: Dict[str, List[float]]) -> str:
    """The full parameter tuple of one sweep row.

    The grid label only names the swept axes, which is ambiguous once
    several axes (and fixed ``--set`` overrides) are in play: two rows can
    print identically while differing in a fixed parameter, and the axis
    order is whatever the label generator chose.  Here every parameter of
    the spec is shown — swept axes first, in the order they were declared
    on the command line, then the fixed parameters, sorted by name.
    """
    params = spec.kwargs()
    names = [name for name in axes if name in params]
    names += sorted(name for name in params if name not in axes)
    return ", ".join(f"{name}={params[name]}" for name in names)


def _describe(result: ExperimentResult) -> str:
    """Render an experiment result for the terminal."""
    lines = [result.table(), ""]
    for key, value in result.data.items():
        # Only print small scalar summaries; arrays stay accessible via the
        # Python API.
        if isinstance(value, (int, float, str, bool)):
            lines.append(f"{key}: {value}")
    return "\n".join(lines)


def _describe_failure(failure: SpecFailure) -> str:
    """Render a structured spec failure for the terminal."""
    return (f"FAILED: {failure.label} ({failure.fn}) — {failure.outcome} "
            f"after {failure.attempts} attempt(s)\n  {failure.summary}")


def _print_profile(stats, wall: float) -> None:
    """Render per-scenario wall times and cache accounting for --profile."""
    print("--- profile ---")
    for label, seconds in stats.timings:
        status = "cached" if seconds is None else f"{seconds:8.2f}s"
        print(f"{label:<40} {status}")
    failed = f", {stats.failed} failed" if stats.failed else ""
    corrupt = (f", {stats.corrupt} corrupt cache entr"
               f"{'y' if stats.corrupt == 1 else 'ies'} re-executed"
               if stats.corrupt else "")
    print(f"batch: {len(stats.timings)} spec(s) in {wall:.2f}s — "
          f"{stats.hits} cache hit(s), {stats.misses} miss(es), "
          f"{stats.executed} executed{failed}{corrupt}")


def _accepts_kwarg(fn, name: str) -> bool:
    """Whether calling ``fn(name=...)`` is legal (named param or **kwargs)."""
    parameters = inspect.signature(fn).parameters
    if name in parameters:
        return True
    return any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in parameters.values())


def _print_listing() -> None:
    for key in sorted(EXPERIMENT_INDEX):
        module = EXPERIMENT_INDEX[key]
        summary = (module.__doc__ or "").strip().splitlines()
        print(f"{key:<8} {summary[0] if summary else ''}")


def main(argv: List[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="Regenerate a table or figure of the Nimbus paper.")
    parser.add_argument("experiment", nargs="?",
                        help="Experiment id (e.g. fig09, fig14, table1), or "
                             "the literal 'sweep' followed by an id")
    parser.add_argument("target", nargs="?",
                        help="Experiment id to sweep (with 'sweep')")
    parser.add_argument("--list", action="store_true",
                        help="List available experiment ids and exit")
    parser.add_argument("--duration", type=float, default=None,
                        help="Override the experiment duration in seconds")
    parser.add_argument("--dt", type=float, default=0.002,
                        help="Simulation tick in seconds (default 2 ms)")
    parser.add_argument("--set", dest="overrides", action="append",
                        default=[], metavar="NAME=VALUE",
                        help="Additional numeric keyword override; in sweep "
                             "mode NAME=V1,V2,... adds a sweep axis "
                             "(repeatable)")
    parser.add_argument("--profile", action="store_true",
                        help="After the batch, print per-scenario wall time "
                             "and cache hit/miss counts")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="Append one runtime-metrics JSONL record per "
                             "scenario to PATH")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="Stream structured engine events to a JSONL "
                             "trace at PATH (forces a cold, serial run; "
                             "filters via REPRO_TRACE_FLOWS/LINKS/EVENTS/"
                             "SAMPLE)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="Per-spec wall-clock deadline; a spec still "
                             "running is terminated and recorded as a "
                             "failure (enables the hardened executor)")
    parser.add_argument("--max-retries", type=int, default=0, metavar="N",
                        help="Retry a failed/timed-out/crashed spec up to "
                             "N extra times with exponential backoff "
                             "(enables the hardened executor)")
    parser.add_argument("--resume", action="store_true",
                        help="Keep the batch journal from a previous "
                             "(interrupted or failed) run and re-attempt "
                             "only failed or incomplete specs")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="Batch journal location (default: derived "
                             "from the batch content, under the cache "
                             "directory)")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        _print_listing()
        return 0

    sweep_mode = args.experiment == "sweep"
    experiment_id = args.target if sweep_mode else args.experiment
    if sweep_mode and not experiment_id:
        print("sweep mode needs an experiment id, e.g. "
              "'runner sweep fig09 --set seed=1,2,3'", file=sys.stderr)
        return 2
    module = EXPERIMENT_INDEX.get(experiment_id)
    if module is None:
        print(f"unknown experiment {experiment_id!r}; "
              f"try --list", file=sys.stderr)
        return 2

    fn = f"{module.__name__}:run"
    # Some drivers do not take a duration (they use phase_duration etc.);
    # decide up front instead of re-running a whole batch on TypeError.
    takes_duration = _accepts_kwarg(module.run, "duration")
    axes: Dict[str, List[float]] = {}
    try:
        if sweep_mode:
            base, axes = _parse_sweep_overrides(args.overrides)
            base.setdefault("dt", args.dt)
            if args.duration is not None:
                base["duration"] = args.duration
            if not takes_duration:
                if "duration" in axes:
                    print(f"{experiment_id} does not take a duration; it "
                          f"cannot be a sweep axis", file=sys.stderr)
                    return 2
                base.pop("duration", None)
            specs = list(expand_grid(fn, base, axes))
        else:
            kwargs = _parse_overrides(args.overrides)
            kwargs.setdefault("dt", args.dt)
            if args.duration is not None:
                kwargs["duration"] = args.duration
            if not takes_duration:
                kwargs.pop("duration", None)
            specs = [ScenarioSpec.make(fn, label=experiment_id, **kwargs)]
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    for label, path in (("--trace", args.trace), ("--metrics", args.metrics)):
        if path:
            # Fail before simulating, not after: both files are appended
            # to at the end of (or during) a possibly long run.
            try:
                open(path, "a").close()
            except OSError as error:
                print(f"{label} {path}: {error}", file=sys.stderr)
                return 2

    robust = (args.timeout is not None or args.max_retries > 0
              or args.resume or args.journal is not None)
    hardened: Dict[str, object] = {}
    if robust:
        journal_path = args.journal or default_journal_path(
            batch_id([spec.spec_hash() for spec in specs]))
        hardened = dict(timeout=args.timeout,
                        max_retries=max(0, args.max_retries),
                        on_error="record", journal_path=journal_path,
                        resume=args.resume)
        print(f"journal: {journal_path}")
    if args.trace:
        # A warm cache would simulate nothing (no events to trace), and
        # parallel workers appending to one JSONL file would interleave
        # partial lines — so tracing runs cold and serial.
        executor = BatchExecutor(workers=1, cache=ResultCache(enabled=False),
                                 metrics_path=args.metrics, **hardened)
    else:
        executor = BatchExecutor(metrics_path=args.metrics, **hardened)
    begin = time.perf_counter()
    if args.trace:
        # The engine reads REPRO_TRACE at construction time, deep inside
        # the driver, and drivers run their own nested batches — the
        # environment is the only channel that reaches all of them.
        # REPRO_NO_CACHE keeps those nested batches from serving cached
        # results (a cache hit simulates nothing, so it traces nothing)
        # and REPRO_BENCH_WORKERS=1 keeps pool workers from interleaving
        # partial lines in the one JSONL file.
        forced = {"REPRO_TRACE": args.trace, "REPRO_NO_CACHE": "1",
                  "REPRO_BENCH_WORKERS": "1"}
        saved = {key: os.environ.get(key) for key in forced}
        os.environ.update(forced)
        try:
            results = executor.run(specs)
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
    else:
        results = executor.run(specs)
    wall = time.perf_counter() - begin
    failures: List[SpecFailure] = []
    for spec, result in zip(specs, results):
        if sweep_mode:
            print(f"--- {experiment_id} [{_sweep_row_label(spec, axes)}] ---")
        if isinstance(result, SpecFailure):
            failures.append(result)
            print(_describe_failure(result))
        else:
            print(_describe(result))
    if args.profile:
        _print_profile(executor.last_stats, wall)
    if failures:
        print(f"{len(failures)} of {len(specs)} spec(s) failed; "
              f"re-attempt them with --resume", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
