"""Command-line runner for the experiment drivers.

Lets a user regenerate any paper artefact from the shell without writing
code::

    python -m repro.experiments.runner fig09 --duration 45
    python -m repro.experiments.runner table1
    python -m repro.experiments.runner --list

Arbitrary numeric keyword overrides can be passed as ``--set name=value``;
they are forwarded to the driver's ``run`` function.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from . import EXPERIMENT_INDEX
from .common import ExperimentResult


def _parse_overrides(pairs: List[str]) -> Dict[str, float]:
    """Turn ``name=value`` strings into keyword arguments (numbers only)."""
    overrides: Dict[str, float] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--set expects name=value, got {pair!r}")
        name, value = pair.split("=", 1)
        overrides[name.strip()] = float(value)
    return overrides


def _describe(result: ExperimentResult) -> str:
    """Render an experiment result for the terminal."""
    lines = [result.table(), ""]
    for key, value in result.data.items():
        # Only print small scalar summaries; arrays stay accessible via the
        # Python API.
        if isinstance(value, (int, float, str, bool)):
            lines.append(f"{key}: {value}")
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="Regenerate a table or figure of the Nimbus paper.")
    parser.add_argument("experiment", nargs="?",
                        help="Experiment id, e.g. fig09, fig14, table1")
    parser.add_argument("--list", action="store_true",
                        help="List available experiment ids and exit")
    parser.add_argument("--duration", type=float, default=None,
                        help="Override the experiment duration in seconds")
    parser.add_argument("--dt", type=float, default=0.002,
                        help="Simulation tick in seconds (default 2 ms)")
    parser.add_argument("--set", dest="overrides", action="append",
                        default=[], metavar="NAME=VALUE",
                        help="Additional numeric keyword override "
                             "(repeatable)")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for key in sorted(EXPERIMENT_INDEX):
            module = EXPERIMENT_INDEX[key]
            summary = (module.__doc__ or "").strip().splitlines()
            print(f"{key:<8} {summary[0] if summary else ''}")
        return 0

    module = EXPERIMENT_INDEX.get(args.experiment)
    if module is None:
        print(f"unknown experiment {args.experiment!r}; "
              f"try --list", file=sys.stderr)
        return 2

    kwargs = _parse_overrides(args.overrides)
    kwargs.setdefault("dt", args.dt)
    if args.duration is not None:
        kwargs["duration"] = args.duration

    run = getattr(module, "run")
    try:
        result = run(**kwargs)
    except TypeError:
        # Some drivers do not take a duration (they use phase_duration etc.);
        # retry without the optional overrides that they rejected.
        kwargs.pop("duration", None)
        result = run(**kwargs)
    print(_describe(result))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
