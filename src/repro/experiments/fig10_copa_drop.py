"""Figure 10: Copa's throughput drops against elastic flows; Nimbus's does not.

A bulk flow (Nimbus or Copa) shares the link with a long-running Cubic flow
that arrives mid-experiment.  Copa's mode detector misfires intermittently
and its throughput collapses for extended periods, while Nimbus switches to
TCP-competitive mode and keeps its fair share.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..cc import Cubic
from ..simulator import Flow
from .common import MAIN_FLOW, ExperimentResult, add_main_flow, make_network


def run(schemes: Iterable[str] = ("nimbus", "copa"),
        link_mbps: float = 96.0, prop_rtt: float = 0.05,
        buffer_ms: float = 100.0, elastic_start: float = 15.0,
        duration: float = 60.0, cross_rtt_ratio: float = 2.0,
        dt: float = 0.002, seed: int = 0) -> ExperimentResult:
    """Compare Nimbus and Copa throughput while an elastic flow is active.

    The cross flow uses a larger RTT (2x by default), the regime in which
    Copa's queue-draining heuristic is most easily fooled (§8.2).
    """
    result = ExperimentResult(
        name="fig10_copa_drop",
        parameters=dict(link_mbps=link_mbps, duration=duration,
                        elastic_start=elastic_start,
                        cross_rtt_ratio=cross_rtt_ratio))
    fair_share = link_mbps / 2.0
    for scheme in schemes:
        network = make_network(link_mbps, buffer_ms=buffer_ms, dt=dt,
                               seed=seed)
        add_main_flow(network, scheme, link_mbps, prop_rtt=prop_rtt)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=prop_rtt * cross_rtt_ratio,
                              start_time=elastic_start, name="cross"))
        network.run(duration)
        recorder = network.recorder
        times, tput = recorder.throughput_series(MAIN_FLOW)
        window = (times >= elastic_start + 10.0) & (times <= duration)
        during_elastic = float(np.mean(tput[window])) if window.any() else 0.0
        # Fraction of 1-second intervals far below the fair share: Copa's
        # characteristic starvation periods.
        starved = float(np.mean(tput[window] < 0.5 * fair_share)) if window.any() else 0.0
        result.add_scheme(scheme, recorder, start=elastic_start + 10.0,
                          throughput_during_elastic=during_elastic,
                          starved_fraction=starved,
                          fair_share_mbps=fair_share)
        result.data[scheme] = {"times": times, "throughput_mbps": tput}
    return result
