"""Declarative campaign manifests: experiments × grids × faults × seeds.

A campaign manifest is a TOML (or JSON) file describing a grid of
scenarios across one or more experiment drivers.  It expands into a list
of :class:`CampaignCell` — a stable cell id plus a canonical
:class:`~repro.runtime.spec.ScenarioSpec` — which the campaign runner
(:mod:`repro.runtime.campaign`) executes as cached, journalled batches.

Schema (TOML spelling)::

    [campaign]
    name = "smoke"          # required; names the output directory
    seeds = [0, 1]          # optional: default seed axis for experiments

    [[experiment]]
    id = "flap"             # required, unique per manifest
    driver = "link_flap"    # experiment id, or a dotted "module:callable"
    seeds = [0]             # optional: overrides the campaign seeds

    [experiment.params]     # fixed parameters, passed to every cell
    duration = 4
    dt = 0.01

    [experiment.axes]       # sweep axes: name -> list of values; cells
    period = [2, 4]         # are the cross product, in declared order
    depth = [0.5, 1.0]

    [[experiment.faults]]   # optional: FaultSpec rows, passed to the
    kind = "link_flap"      # driver as a ``faults=(FaultSpec(...), ...)``
    link = "wan"            # parameter
    start = 1.0
    duration = 0.5

    [[experiment.include]]  # optional: keep only cells matching at least
    depth = 1.0             # one include row (all listed params equal)

    [[experiment.exclude]]  # optional: drop cells matching any row;
    period = 2              # applied after include
    depth = 0.5

Cell ids are ``<experiment id>[axis=value,...]`` with values in canonical
spelling (``2.0`` prints as ``2``), so the same manifest always produces
the same ids — they are the join key for ``repro-campaign diff``.

Bare ``driver`` names are resolved against the experiment registry
*lazily* (only during :meth:`CampaignManifest.expand`), so importing this
module — and the whole ``repro.runtime`` package — never pulls the driver
layer in, preserving the runtime-below-experiments layering rule.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, \
    Tuple, Union

from .build import FaultSpec
from .spec import ScenarioSpec, canonicalize

#: Keys accepted at each level; anything else is a spelling mistake and
#: rejected loudly rather than silently ignored.
_CAMPAIGN_KEYS = frozenset({"name", "seeds"})
_EXPERIMENT_KEYS = frozenset({"id", "driver", "params", "axes", "seeds",
                              "faults", "include", "exclude"})
_TOP_KEYS = frozenset({"campaign", "experiment"})


class ManifestError(ValueError):
    """The manifest file is malformed or semantically invalid."""


def default_experiment_resolver(name: str) -> str:
    """Map a bare experiment id to its driver's dotted ``run`` path.

    Imports :mod:`repro.experiments` lazily — only when a manifest
    actually uses a bare id — so the runtime package stays importable
    without the driver layer.
    """
    import importlib

    experiments = importlib.import_module("repro.experiments")
    module = experiments.EXPERIMENT_INDEX.get(name)
    if module is None:
        known = ", ".join(sorted(experiments.EXPERIMENT_INDEX))
        raise ManifestError(
            f"unknown experiment id {name!r}; known ids: {known} "
            f"(or use a dotted 'module:callable' path)")
    return f"{module.__name__}:run"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ManifestError(message)


def _scalar_list(value: Any, where: str) -> Tuple[Any, ...]:
    _require(isinstance(value, (list, tuple)) and len(value) > 0,
             f"{where} must be a non-empty list, got {value!r}")
    for item in value:
        _require(isinstance(item, (str, int, float, bool)) or item is None,
                 f"{where} entries must be scalars, got {item!r}")
    return tuple(value)


def _format_value(value: Any) -> str:
    """Canonical display spelling for a cell id (``2.0`` -> ``2``)."""
    return str(canonicalize(value))


def _matches(params: Mapping[str, Any], row: Mapping[str, Any]) -> bool:
    """Whether a cell's parameters satisfy one include/exclude row."""
    return all(name in params
               and canonicalize(params[name]) == canonicalize(value)
               for name, value in row.items())


@dataclass(frozen=True)
class ExperimentBlock:
    """One ``[[experiment]]`` table of a manifest, validated."""

    id: str
    driver: str
    params: Tuple[Tuple[str, Any], ...] = ()
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    seeds: Optional[Tuple[int, ...]] = None
    faults: Tuple[Tuple[Tuple[str, Any], ...], ...] = ()
    include: Tuple[Tuple[Tuple[str, Any], ...], ...] = ()
    exclude: Tuple[Tuple[Tuple[str, Any], ...], ...] = ()


@dataclass(frozen=True)
class CampaignCell:
    """One expanded grid point: stable id + canonical scenario spec."""

    cell_id: str
    experiment: str
    spec: ScenarioSpec


@dataclass
class CampaignManifest:
    """A parsed campaign manifest, ready to expand into cells.

    Attributes:
        name: Campaign name (output directory / journal naming).
        seeds: Campaign-level default seed axis (may be ``None``).
        experiments: The validated experiment blocks, in file order.
        path: Source file, when loaded from disk.
        digest: Content hash of the manifest source (summary provenance).
    """

    name: str
    experiments: List[ExperimentBlock]
    seeds: Optional[Tuple[int, ...]] = None
    path: Optional[Path] = None
    digest: str = ""
    _raw: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # Parsing
    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignManifest":
        """Parse a ``.toml`` or ``.json`` manifest file."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as error:
            raise ManifestError(f"cannot read manifest {path}: {error}")
        suffix = path.suffix.lower()
        if suffix == ".toml":
            import tomllib

            try:
                data = tomllib.loads(raw.decode("utf-8"))
            except tomllib.TOMLDecodeError as error:
                raise ManifestError(f"{path}: invalid TOML: {error}")
        elif suffix == ".json":
            try:
                data = json.loads(raw)
            except json.JSONDecodeError as error:
                raise ManifestError(f"{path}: invalid JSON: {error}")
        else:
            raise ManifestError(
                f"manifest must be .toml or .json, got {path.name!r}")
        manifest = cls.from_mapping(data)
        manifest.path = path
        manifest.digest = hashlib.sha256(raw).hexdigest()[:16]
        return manifest

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "CampaignManifest":
        """Build and validate a manifest from an already-parsed mapping."""
        _require(isinstance(data, Mapping), "manifest must be a table")
        unknown = set(data) - _TOP_KEYS
        _require(not unknown,
                 f"unknown top-level manifest keys {sorted(unknown)}; "
                 f"expected {sorted(_TOP_KEYS)}")
        campaign = data.get("campaign")
        _require(isinstance(campaign, Mapping),
                 "manifest needs a [campaign] table")
        unknown = set(campaign) - _CAMPAIGN_KEYS
        _require(not unknown,
                 f"unknown [campaign] keys {sorted(unknown)}")
        name = campaign.get("name")
        _require(isinstance(name, str) and name.strip() != "",
                 "[campaign].name must be a non-empty string")
        seeds = campaign.get("seeds")
        if seeds is not None:
            seeds = tuple(int(s) for s in _scalar_list(
                seeds, "[campaign].seeds"))
        blocks_raw = data.get("experiment")
        _require(isinstance(blocks_raw, list) and blocks_raw,
                 "manifest needs at least one [[experiment]] table")
        blocks, seen_ids = [], set()
        for index, block in enumerate(blocks_raw):
            where = f"[[experiment]] #{index + 1}"
            _require(isinstance(block, Mapping), f"{where} must be a table")
            unknown = set(block) - _EXPERIMENT_KEYS
            _require(not unknown, f"{where}: unknown keys {sorted(unknown)}")
            block_id = block.get("id")
            _require(isinstance(block_id, str) and block_id.strip() != "",
                     f"{where}: id must be a non-empty string")
            _require(block_id not in seen_ids,
                     f"{where}: duplicate experiment id {block_id!r}")
            seen_ids.add(block_id)
            driver = block.get("driver")
            _require(isinstance(driver, str) and driver.strip() != "",
                     f"{where}: driver must be a non-empty string")
            params = block.get("params", {})
            _require(isinstance(params, Mapping),
                     f"{where}: params must be a table")
            axes_raw = block.get("axes", {})
            _require(isinstance(axes_raw, Mapping),
                     f"{where}: axes must be a table of lists")
            axes = []
            for axis, values in axes_raw.items():
                _require(axis not in params,
                         f"{where}: {axis!r} is both a fixed param and an "
                         f"axis")
                axes.append((axis, _scalar_list(
                    values, f"{where}: axes.{axis}")))
            block_seeds = block.get("seeds")
            if block_seeds is not None:
                block_seeds = tuple(int(s) for s in _scalar_list(
                    block_seeds, f"{where}: seeds"))
            faults = block.get("faults", [])
            _require(isinstance(faults, list),
                     f"{where}: faults must be a list of tables")
            include = block.get("include", [])
            exclude = block.get("exclude", [])
            for label, rows in (("include", include), ("exclude", exclude)):
                _require(isinstance(rows, list) and all(
                    isinstance(row, Mapping) for row in rows),
                    f"{where}: {label} must be a list of tables")
            blocks.append(ExperimentBlock(
                id=block_id, driver=driver,
                params=tuple(sorted(params.items())),
                axes=tuple(axes), seeds=block_seeds,
                faults=tuple(tuple(sorted(f.items())) for f in faults),
                include=tuple(tuple(sorted(r.items())) for r in include),
                exclude=tuple(tuple(sorted(r.items())) for r in exclude)))
        return cls(name=name, experiments=blocks, seeds=seeds,
                   _raw=dict(data))

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def expand(self, resolver: Optional[Callable[[str], str]] = None
               ) -> List[CampaignCell]:
        """Expand every experiment block into its filtered grid of cells.

        ``resolver`` maps bare driver names to dotted paths; defaults to
        the experiment registry (:func:`default_experiment_resolver`).
        """
        resolve = resolver or default_experiment_resolver
        cells: List[CampaignCell] = []
        seen: Dict[str, str] = {}
        for block in self.experiments:
            fn = block.driver if ":" in block.driver \
                else resolve(block.driver)
            base: Dict[str, Any] = dict(block.params)
            if block.faults:
                _require("faults" not in base,
                         f"experiment {block.id!r}: faults given both as a "
                         f"param and as [[experiment.faults]] tables")
                try:
                    base["faults"] = tuple(
                        FaultSpec(**dict(row)) for row in block.faults)
                except TypeError as error:
                    raise ManifestError(
                        f"experiment {block.id!r}: bad fault spec: {error}")
            axes: List[Tuple[str, Sequence[Any]]] = list(block.axes)
            seeds = block.seeds if block.seeds is not None else self.seeds
            if seeds is not None:
                _require(all(axis != "seed" for axis, _ in axes)
                         and "seed" not in base,
                         f"experiment {block.id!r}: seeds given while "
                         f"'seed' is already a param or axis")
                axes.append(("seed", seeds))
            names = [axis for axis, _ in axes]
            combos = itertools.product(*(values for _, values in axes)) \
                if axes else iter(((),))
            for combo in combos:
                params = dict(base)
                params.update(zip(names, combo))
                if block.include and not any(
                        _matches(params, dict(row)) for row in block.include):
                    continue
                if any(_matches(params, dict(row)) for row in block.exclude):
                    continue
                if names:
                    point = ",".join(
                        f"{name}={_format_value(value)}"
                        for name, value in zip(names, combo))
                    cell_id = f"{block.id}[{point}]"
                else:
                    cell_id = block.id
                _require(cell_id not in seen,
                         f"duplicate cell id {cell_id!r} (experiments "
                         f"{seen.get(cell_id)!r} and {block.id!r})")
                seen[cell_id] = block.id
                cells.append(CampaignCell(
                    cell_id=cell_id, experiment=block.id,
                    spec=ScenarioSpec.make(fn, label=cell_id, **params)))
        _require(bool(cells), "manifest expands to zero cells "
                              "(filters removed everything)")
        return cells

    def driver_modules(self, resolver: Optional[Callable[[str], str]] = None
                       ) -> Tuple[str, ...]:
        """Sorted module names behind every experiment block's driver.

        These are the cache-key scopes of the campaign: feed them to
        ``python -m repro.runtime.depgraph key`` to derive a CI cache key
        that only changes when code the campaign actually runs changes.
        """
        resolve = resolver or default_experiment_resolver
        modules = set()
        for block in self.experiments:
            fn = block.driver if ":" in block.driver \
                else resolve(block.driver)
            modules.add(fn.partition(":")[0])
        return tuple(sorted(modules))
