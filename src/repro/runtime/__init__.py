"""Scenario-batch execution runtime.

This package is the repository's answer to "every driver re-simulates from
scratch on each invocation": a :class:`ScenarioSpec` fully describes one
simulation (target function plus canonicalised parameters), a
:class:`BatchExecutor` fans a batch of specs across a process pool and
memoises each result in an on-disk cache keyed by spec hash + the
dependency-aware digest of the spec's driver module
(:mod:`repro.runtime.depgraph`), and :mod:`repro.runtime.build` houses the
network/scheme factories shared by every driver.

The campaign layer — declarative manifests
(:mod:`repro.runtime.manifest`) and the ``repro-campaign`` runner/CLI
(:mod:`repro.runtime.campaign`) — is deliberately *not* re-exported here:
every driver imports ``repro.runtime``, so anything this ``__init__``
pulls in lands in every driver's cache-key dependency closure, and an
edit to the campaign front-end would needlessly cold-start all simulation
caches.  Import those submodules directly.

Environment knobs:

``REPRO_BENCH_WORKERS``
    Worker processes per batch (default ``os.cpu_count()``).
``REPRO_CACHE_DIR``
    Cache directory (default ``~/.cache/repro-runtime``).
``REPRO_NO_CACHE``
    Set to ``1`` to disable the on-disk cache entirely.

Layering rule: ``repro.runtime`` never imports ``repro.experiments`` —
drivers import the runtime, not the reverse.
"""

from .build import (
    FaultSpec,
    FluidClassSpec,
    LinkSpec,
    RoutedLinkSpec,
    RouteSpec,
    RoutingSpec,
    attach_fluid_classes,
    flap_fault_specs,
    make_fault_schedule,
    make_multihop_network,
    make_network,
    make_routed_network,
    make_routed_topology,
    make_scheme,
    make_topology,
)
from .cache import ResultCache, cache_enabled, default_cache_dir, source_digest
from .depgraph import DependencyGraph, module_digest
from .executor import (
    BatchExecutor,
    BatchStats,
    SpecExecutionError,
    SpecFailure,
    configured_workers,
    execute_spec,
    run_batch,
    run_scenario,
)
from .journal import (
    JOURNAL_SCHEMA_VERSION,
    BatchJournal,
    batch_id,
    default_journal_path,
)
from .metrics import (
    METRICS_SCHEMA_VERSION,
    OUTCOMES,
    metrics_record,
    validate_metrics_record,
    write_metrics,
)
from .spec import ScenarioSpec

__all__ = [
    "BatchExecutor",
    "BatchJournal",
    "BatchStats",
    "DependencyGraph",
    "FaultSpec",
    "FluidClassSpec",
    "JOURNAL_SCHEMA_VERSION",
    "LinkSpec",
    "METRICS_SCHEMA_VERSION",
    "OUTCOMES",
    "ResultCache",
    "RoutedLinkSpec",
    "RouteSpec",
    "RoutingSpec",
    "ScenarioSpec",
    "SpecExecutionError",
    "SpecFailure",
    "attach_fluid_classes",
    "batch_id",
    "cache_enabled",
    "configured_workers",
    "default_cache_dir",
    "default_journal_path",
    "execute_spec",
    "flap_fault_specs",
    "make_fault_schedule",
    "make_multihop_network",
    "make_network",
    "make_routed_network",
    "make_routed_topology",
    "make_scheme",
    "make_topology",
    "metrics_record",
    "module_digest",
    "run_batch",
    "run_scenario",
    "source_digest",
    "validate_metrics_record",
    "write_metrics",
]
