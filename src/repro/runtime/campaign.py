"""Campaign runner: execute a manifest as cached, journalled batches.

``repro-campaign`` promotes the batch runtime from "run one figure's
batch" to a manifest-driven campaign service::

    repro-campaign run    benchmarks/campaigns/smoke.toml --out runs/smoke
    repro-campaign status benchmarks/campaigns/smoke.toml --out runs/smoke
    repro-campaign resume benchmarks/campaigns/smoke.toml --out runs/smoke
    repro-campaign diff   runs/smoke/summary.json runs/other/summary.json

``run`` expands the manifest (see :mod:`repro.runtime.manifest`) and
executes the cells in chunks on the hardened executor — per-spec crash
isolation, structured failures, one campaign-level journal spanning every
chunk — streaming one JSONL line per cell to ``<out>/results.jsonl`` as it
settles and writing ``<out>/summary.json`` at the end.  Because results
are memoised per spec hash × driver-module digest, re-running a campaign
re-executes only cells whose code or parameters changed; everything else
resolves as cache hits.

``status`` reads the campaign journal without executing anything.
``resume`` keeps the journal and re-attempts only failed or never-resolved
cells.  ``diff`` compares two summaries cell by cell (outcome changes,
accuracy deltas, cache behaviour) and exits non-zero when a previously-ok
cell regressed.

Exit codes mirror the experiment runner: 0 success, 2 usage/manifest
error, 3 campaign completed but some cells failed.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .cache import ResultCache
from .executor import BatchExecutor, SpecFailure
from .journal import BatchJournal
from .manifest import CampaignCell, CampaignManifest, ManifestError

#: Version tag stamped into result lines and summaries.
CAMPAIGN_SCHEMA_VERSION = 1

#: Cells executed per executor batch.  Chunking is what makes a campaign
#: *stream*: results and journal lines appear as each chunk settles
#: instead of after the whole grid.
DEFAULT_CHUNK = 8


def _accuracy_of(result: Any) -> Optional[float]:
    """Best-effort classification accuracy of one cell's result.

    Duck-typed on purpose — the runtime layer must not import the driver
    layer.  Understands :class:`~repro.experiments.common.
    ExperimentResult`-shaped objects (mean of per-scheme
    ``extra["mode_accuracy"]``) and the plain payload dicts the per-case
    drivers return.
    """
    if isinstance(result, SpecFailure):
        return None
    schemes = getattr(result, "schemes", None)
    if isinstance(schemes, dict):
        values = [s.extra.get("mode_accuracy") for s in schemes.values()
                  if getattr(s, "extra", None)]
        values = [v for v in values if isinstance(v, (int, float))]
        if values:
            return float(sum(values) / len(values))
    data = result.get("extra") if isinstance(result, dict) else None
    if isinstance(data, dict):
        value = data.get("mode_accuracy")
        if isinstance(value, (int, float)):
            return float(value)
    return None


def _scalars_of(result: Any) -> Dict[str, Any]:
    """Small scalar summary of a cell result for the JSONL stream."""
    if isinstance(result, SpecFailure):
        return {"error": result.summary}
    source = None
    if isinstance(result, dict):
        source = result
    elif hasattr(result, "data") and isinstance(result.data, dict):
        source = result.data
    if not source:
        return {}
    return {key: value for key, value in sorted(source.items())
            if isinstance(value, (int, float, str, bool))}


class CampaignRunner:
    """Executes one manifest's cells with caching, journalling, streaming.

    Args:
        manifest: Parsed campaign manifest.
        out_dir: Output directory; defaults to ``campaign-runs/<name>``.
            Holds ``results.jsonl``, ``summary.json``, ``journal.jsonl``.
        workers: Executor pool width (``None`` reads the environment).
        cache: Result cache override (tests inject toy-package graphs).
        timeout: Per-cell wall-clock deadline in seconds.
        max_retries: Extra attempts per failed cell.
        chunk: Cells per executor batch (streaming granularity).
        resolver: Bare-driver-name resolver override (tests).
    """

    def __init__(self, manifest: CampaignManifest,
                 out_dir: Union[str, Path, None] = None,
                 workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 timeout: Optional[float] = None, max_retries: int = 0,
                 chunk: int = DEFAULT_CHUNK,
                 resolver: Optional[Callable[[str], str]] = None) -> None:
        self.manifest = manifest
        self.out_dir = Path(out_dir) if out_dir is not None \
            else Path("campaign-runs") / manifest.name
        self.workers = workers
        self.cache = cache
        self.timeout = timeout
        self.max_retries = max_retries
        self.chunk = max(1, int(chunk))
        self.cells: List[CampaignCell] = manifest.expand(resolver)

    @property
    def results_path(self) -> Path:
        return self.out_dir / "results.jsonl"

    @property
    def summary_path(self) -> Path:
        return self.out_dir / "summary.json"

    @property
    def journal_path(self) -> Path:
        return self.out_dir / "journal.jsonl"

    # ------------------------------------------------------------------ #
    def run(self, resume: bool = False,
            echo: Optional[Callable[[str], None]] = None) -> dict:
        """Execute the campaign; returns (and writes) the summary dict."""
        self.out_dir.mkdir(parents=True, exist_ok=True)
        executor = BatchExecutor(
            workers=self.workers, cache=self.cache,
            timeout=self.timeout, max_retries=self.max_retries,
            on_error="record", journal_path=str(self.journal_path),
            resume=resume)
        begin = time.perf_counter()
        cell_rows: Dict[str, dict] = {}
        mode = "a" if resume and self.results_path.exists() else "w"
        with open(self.results_path, mode, encoding="utf-8") as stream:
            for start in range(0, len(self.cells), self.chunk):
                batch = self.cells[start:start + self.chunk]
                results = executor.run([cell.spec for cell in batch])
                for cell, result, record in zip(batch, results,
                                                executor.last_metrics):
                    row = {
                        "schema_version": CAMPAIGN_SCHEMA_VERSION,
                        "campaign": self.manifest.name,
                        "cell": cell.cell_id,
                        "experiment": cell.experiment,
                        "spec_hash": record["spec_hash"],
                        "fn": record["fn"],
                        "cache": record["cache"],
                        "outcome": record["outcome"],
                        "attempts": record["attempts"],
                        "seconds": record["seconds"],
                        "accuracy": _accuracy_of(result),
                        "scalars": _scalars_of(result),
                    }
                    stream.write(json.dumps(row, separators=(",", ":"),
                                            sort_keys=True) + "\n")
                    cell_rows[cell.cell_id] = {
                        key: row[key] for key in (
                            "experiment", "spec_hash", "cache", "outcome",
                            "attempts", "seconds", "accuracy")}
                    if echo is not None:
                        seconds = row["seconds"]
                        timing = "cached" if seconds is None \
                            else f"{seconds:6.2f}s"
                        echo(f"{cell.cell_id:<44} {row['cache']:>7} "
                             f"{row['outcome']:<7} {timing}")
                stream.flush()
        summary = self._build_summary(cell_rows,
                                      wall=time.perf_counter() - begin)
        self._write_summary(summary)
        return summary

    def _build_summary(self, cell_rows: Dict[str, dict],
                       wall: float) -> dict:
        seconds = [row["seconds"] for row in cell_rows.values()
                   if row["seconds"] is not None]
        totals = {
            "cells": len(cell_rows),
            "ok": sum(r["outcome"] == "ok" for r in cell_rows.values()),
            "failed": sum(r["outcome"] != "ok"
                          for r in cell_rows.values()),
            "hits": sum(r["cache"] == "hit" for r in cell_rows.values()),
            "misses": sum(r["cache"] == "miss"
                          for r in cell_rows.values()),
            "corrupt": sum(r["cache"] == "corrupt"
                           for r in cell_rows.values()),
            "sim_seconds": sum(seconds),
            "wall_seconds": wall,
        }
        return {
            "schema_version": CAMPAIGN_SCHEMA_VERSION,
            "campaign": self.manifest.name,
            "manifest": str(self.manifest.path) if self.manifest.path
            else None,
            "manifest_digest": self.manifest.digest,
            "cells": cell_rows,
            "totals": totals,
        }

    def _write_summary(self, summary: dict) -> None:
        tmp = self.summary_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        os.replace(tmp, self.summary_path)

    # ------------------------------------------------------------------ #
    def status(self) -> dict:
        """Campaign progress from the journal, without executing anything."""
        journal = BatchJournal(self.journal_path, resume=True) \
            if self.journal_path.exists() else None
        cells = {}
        for cell in self.cells:
            outcome = journal.outcome_of(cell.spec.spec_hash()) \
                if journal else None
            cells[cell.cell_id] = outcome or "pending"
        counts: Dict[str, int] = {}
        for outcome in cells.values():
            counts[outcome] = counts.get(outcome, 0) + 1
        return {"campaign": self.manifest.name, "cells": cells,
                "counts": counts,
                "journal": str(self.journal_path)
                if journal is not None else None}


# ---------------------------------------------------------------------- #
# Summary diffing
# ---------------------------------------------------------------------- #
def diff_summaries(old: dict, new: dict,
                   accuracy_tolerance: float = 1e-9) -> dict:
    """Cell-by-cell comparison of two campaign summaries.

    Returns added/removed cell ids, outcome changes, accuracy deltas
    beyond ``accuracy_tolerance``, and the list of *regressed* cells
    (previously ``ok``, now not) that drives the CLI exit code.
    """
    old_cells = old.get("cells", {})
    new_cells = new.get("cells", {})
    added = sorted(set(new_cells) - set(old_cells))
    removed = sorted(set(old_cells) - set(new_cells))
    outcome_changes = {}
    accuracy_deltas = {}
    regressed = []
    for cell in sorted(set(old_cells) & set(new_cells)):
        before, after = old_cells[cell], new_cells[cell]
        if before["outcome"] != after["outcome"]:
            outcome_changes[cell] = (before["outcome"], after["outcome"])
            if before["outcome"] == "ok" and after["outcome"] != "ok":
                regressed.append(cell)
        acc_before, acc_after = before.get("accuracy"), after.get("accuracy")
        if isinstance(acc_before, (int, float)) \
                and isinstance(acc_after, (int, float)) \
                and abs(acc_after - acc_before) > accuracy_tolerance:
            accuracy_deltas[cell] = (acc_before, acc_after)
    return {
        "added": added,
        "removed": removed,
        "outcome_changes": outcome_changes,
        "accuracy_deltas": accuracy_deltas,
        "regressed": regressed,
        "wall_seconds": (old.get("totals", {}).get("wall_seconds"),
                         new.get("totals", {}).get("wall_seconds")),
    }


def render_diff(diff: dict) -> str:
    lines = []
    for key in ("added", "removed"):
        for cell in diff[key]:
            lines.append(f"{key}: {cell}")
    for cell, (before, after) in sorted(diff["outcome_changes"].items()):
        lines.append(f"outcome: {cell}: {before} -> {after}")
    for cell, (before, after) in sorted(diff["accuracy_deltas"].items()):
        lines.append(f"accuracy: {cell}: {before:.4f} -> {after:.4f} "
                     f"({after - before:+.4f})")
    if not lines:
        lines.append("no cell-level differences")
    if diff["regressed"]:
        lines.append(f"{len(diff['regressed'])} cell(s) regressed from ok")
    return "\n".join(lines)


def _render_totals(summary: dict) -> str:
    totals = summary["totals"]
    corrupt = f", {totals['corrupt']} corrupt" if totals["corrupt"] else ""
    return (f"campaign {summary['campaign']}: {totals['cells']} cell(s) — "
            f"{totals['ok']} ok, {totals['failed']} failed, "
            f"{totals['hits']} cache hit(s), {totals['misses']} "
            f"miss(es){corrupt}, {totals['sim_seconds']:.2f}s simulated "
            f"in {totals['wall_seconds']:.2f}s")


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
def _add_exec_options(cmd) -> None:
    cmd.add_argument("--out", metavar="DIR", default=None,
                     help="Output directory (default: "
                          "campaign-runs/<campaign name>)")
    cmd.add_argument("--workers", type=int, default=None,
                     help="Executor pool width (default: "
                          "REPRO_BENCH_WORKERS / cpu count)")
    cmd.add_argument("--timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="Per-cell wall-clock deadline")
    cmd.add_argument("--max-retries", type=int, default=0, metavar="N",
                     help="Extra attempts per failed cell")
    cmd.add_argument("--chunk", type=int, default=DEFAULT_CHUNK,
                     metavar="N", help="Cells per executor batch "
                                       f"(default {DEFAULT_CHUNK})")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-campaign`` entry point; returns a process exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run, inspect, and compare scenario campaigns.")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, doc in (("run", "Execute a campaign manifest"),
                      ("resume", "Re-attempt only failed/pending cells"),
                      ("status", "Per-cell progress from the journal"),
                      ("dry-run", "List the expanded cells and exit")):
        cmd = sub.add_parser(name, help=doc)
        cmd.add_argument("manifest", help="Path to a .toml/.json manifest")
        if name in ("run", "resume"):
            _add_exec_options(cmd)
        elif name == "status":
            cmd.add_argument("--out", metavar="DIR", default=None)
    diff_cmd = sub.add_parser(
        "diff", help="Compare two campaign summary.json files")
    diff_cmd.add_argument("old")
    diff_cmd.add_argument("new")
    args = parser.parse_args(argv)

    if args.command == "diff":
        try:
            old = json.loads(Path(args.old).read_text(encoding="utf-8"))
            new = json.loads(Path(args.new).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot load summary: {error}", file=sys.stderr)
            return 2
        diff = diff_summaries(old, new)
        print(render_diff(diff))
        return 1 if diff["regressed"] else 0

    try:
        manifest = CampaignManifest.load(args.manifest)
        runner = CampaignRunner(
            manifest,
            out_dir=getattr(args, "out", None),
            workers=getattr(args, "workers", None),
            timeout=getattr(args, "timeout", None),
            max_retries=getattr(args, "max_retries", 0),
            chunk=getattr(args, "chunk", DEFAULT_CHUNK))
    except ManifestError as error:
        print(str(error), file=sys.stderr)
        return 2

    if args.command == "dry-run":
        for cell in runner.cells:
            print(f"{cell.cell_id:<44} {cell.spec.fn}")
        print(f"{len(runner.cells)} cell(s)")
        return 0
    if args.command == "status":
        status = runner.status()
        for cell_id, outcome in status["cells"].items():
            print(f"{cell_id:<44} {outcome}")
        counts = ", ".join(f"{n} {outcome}" for outcome, n
                           in sorted(status["counts"].items()))
        print(f"campaign {status['campaign']}: {counts}")
        return 0

    summary = runner.run(resume=args.command == "resume", echo=print)
    print(_render_totals(summary))
    print(f"summary: {runner.summary_path}")
    if summary["totals"]["failed"]:
        print(f"{summary['totals']['failed']} cell(s) failed; re-attempt "
              f"them with 'repro-campaign resume'", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
