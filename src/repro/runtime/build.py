"""Factories that turn scenario parameters into simulator objects.

These used to live in ``repro.experiments.common``; they sit in the runtime
layer now so that scenario execution (and anything else below the driver
layer) can build networks and schemes without importing the experiments
package.  ``repro.experiments.common`` re-exports both names, so existing
driver code is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..cc import (
    BasicDelay,
    Bbr,
    Compound,
    Copa,
    Cubic,
    NewReno,
    Vegas,
    Vivace,
)
from ..cc.base import CongestionControl
from ..core.nimbus import Nimbus
from ..simulator import (
    BottleneckLink,
    DropTail,
    FaultEvent,
    FaultSchedule,
    FluidClass,
    Network,
    Pie,
    RoutedNetwork,
    RoutedTopology,
    Topology,
    TopologyNetwork,
    mbps_to_bytes_per_sec,
)


@dataclass(frozen=True)
class LinkSpec:
    """Declarative description of one hop of a topology.

    A plain frozen dataclass with init-only scalar fields, so it
    canonicalises into a :class:`~repro.runtime.spec.ScenarioSpec` — multi-
    hop scenario parameters hash, cache, and batch exactly like single-link
    ones.

    Attributes:
        name: Link label, unique within the topology.
        mbps: Link rate in Mbit/s.
        delay_ms: Propagation delay from this link to the next hop (ignored
            for the last hop of a path, where the flow's own ``prop_rtt``
            supplies the receiver and ACK legs).
        buffer_ms: Queue depth in milliseconds at this link's rate.
        aqm_target_ms: Switch the hop's queue policy from drop-tail to PIE
            with this target delay.
    """

    name: str
    mbps: float
    delay_ms: float = 0.0
    buffer_ms: float = 100.0
    aqm_target_ms: Optional[float] = None


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of one fault window (driver units).

    The :class:`LinkSpec` sibling for the chaos layer: a frozen dataclass
    with init-only scalar fields, so a tuple of these canonicalises into a
    :class:`~repro.runtime.spec.ScenarioSpec` and fault scenarios hash,
    cache, and batch like any other.  Times are in seconds; ``delay_ms``
    is in milliseconds to match :class:`LinkSpec`.

    Attributes:
        kind: ``capacity_dip``, ``link_flap``, ``delay_jitter``, or
            ``burst_loss``.
        link: Name of the target link.
        start: Window start in simulation seconds.
        duration: Window length in seconds.
        factor: Capacity multiplier during a ``capacity_dip``.
        drop_queued: ``link_flap`` queue policy — flush the queue and
            blackhole arrivals instead of freezing and draining later.
        delay_ms: Extra propagation delay for ``delay_jitter``.
        loss_rate: Per-chunk drop probability for ``burst_loss``.
    """

    kind: str
    link: str
    start: float
    duration: float
    factor: float = 0.5
    drop_queued: bool = False
    delay_ms: float = 0.0
    loss_rate: float = 0.0


@dataclass(frozen=True)
class FluidClassSpec:
    """Declarative description of one fluid-aggregate cross-traffic class.

    The :class:`LinkSpec` sibling for
    :class:`~repro.simulator.fluid.FluidClass`: frozen with init-only
    scalar fields, so a tuple of these canonicalises into a
    :class:`~repro.runtime.spec.ScenarioSpec` and fluid scenarios hash,
    cache, and batch like any other.  Rates are driver units (Mbit/s,
    milliseconds); byte-domain conversion happens at build time against
    the target link's capacity.

    Attributes:
        name: Class label, unique per network.
        kind: ``"elastic"`` or ``"inelastic"``.
        link: Name of the link the class loads; ``None`` targets the
            monitor link.
        load: Target offered load as a fraction of the link rate
            (ignored when ``rate_mbps`` is given).
        rate_mbps: Explicit target offered rate in Mbit/s.
        rtt_ms: Propagation RTT of the member flows in milliseconds.
        flows: ``> 0`` makes an elastic class a fixed population of this
            many long-running backlogged flows (no arrivals).
        arrivals_per_sec: Poisson flow-arrival rate; sampled flow sizes
            are rescaled so offered load stays at the target while the
            flow count scales freely.
        seed: Seed of the class's private generator.
    """

    name: str
    kind: str = "elastic"
    link: Optional[str] = None
    load: float = 0.5
    rate_mbps: Optional[float] = None
    rtt_ms: float = 50.0
    flows: int = 0
    arrivals_per_sec: Optional[float] = None
    seed: int = 1


def attach_fluid_classes(network: TopologyNetwork,
                         fluid: Sequence[FluidClassSpec]) -> None:
    """Attach the described fluid classes to a built network."""
    for spec in fluid:
        link = (network.topology.link(spec.link)
                if spec.link is not None else network.link)
        network.attach_fluid_class(
            FluidClass(
                spec.name, link.capacity, kind=spec.kind, load=spec.load,
                rate=(mbps_to_bytes_per_sec(spec.rate_mbps)
                      if spec.rate_mbps is not None else None),
                rtt=spec.rtt_ms / 1e3, flows=spec.flows,
                arrivals_per_sec=spec.arrivals_per_sec, seed=spec.seed),
            link=spec.link)


@dataclass(frozen=True)
class RoutedLinkSpec:
    """Declarative description of one *directed* link of a routed topology.

    The :class:`LinkSpec` sibling for node/table topologies: same units,
    plus explicit endpoint node names.  Frozen with init-only scalar
    fields, so it canonicalises into a
    :class:`~repro.runtime.spec.ScenarioSpec`.

    Attributes:
        name: Link label, unique within the topology.
        mbps: Link rate in Mbit/s.
        src / dst: Endpoint node names (nodes are created on first
            appearance, in declaration order).
        delay_ms: Propagation delay from this link to its ``dst`` node
            (final-hop wire time comes from the flow's own ``prop_rtt``).
        buffer_ms: Queue depth in milliseconds at this link's rate.
        aqm_target_ms: Switch the queue policy from drop-tail to PIE.
    """

    name: str
    mbps: float
    src: str
    dst: str
    delay_ms: float = 0.0
    buffer_ms: float = 100.0
    aqm_target_ms: Optional[float] = None


@dataclass(frozen=True)
class RouteSpec:
    """One explicit routing-table entry: ``node`` reaches ``dst`` through
    ``links`` (primary first, then backups in failover order)."""

    node: str
    dst: str
    links: Tuple[str, ...]


@dataclass(frozen=True)
class RoutingSpec:
    """Declarative description of a routed topology and its tables.

    Attributes:
        links: The directed links (nodes are inferred from endpoints).
        routes: Explicit table entries; an empty tuple computes every
            table from shortest paths
            (:meth:`~repro.simulator.routing.RoutedTopology.compute_routes`),
            so backups fall out of the graph automatically.
        convergence_ms: Reroute convergence delay in milliseconds — the
            lag between a link-state change and tables re-resolving.
        monitor: Monitor link name; defaults to the narrowest link.
    """

    links: Tuple[RoutedLinkSpec, ...]
    routes: Tuple[RouteSpec, ...] = ()
    convergence_ms: float = 50.0
    monitor: Optional[str] = None


def make_routed_topology(routing: RoutingSpec, seed: int = 0
                         ) -> RoutedTopology:
    """Wire a :class:`RoutingSpec` into a concrete :class:`RoutedTopology`."""
    if not routing.links:
        raise ValueError("RoutingSpec needs at least one link")
    topology = RoutedTopology(
        name="+".join(spec.name for spec in routing.links))
    for spec in routing.links:
        for name in (spec.src, spec.dst):
            if name not in {node.name for node in topology.nodes}:
                topology.add_node(name)
    for position, spec in enumerate(routing.links):
        mu = mbps_to_bytes_per_sec(spec.mbps)
        topology.add_link(spec.name, mu, src=spec.src, dst=spec.dst,
                          delay=spec.delay_ms / 1e3,
                          policy=_policy_for(mu, spec.buffer_ms,
                                             spec.aqm_target_ms,
                                             seed + position))
    topology.compute_routes()
    for route in routing.routes:
        topology.set_route(route.node, route.dst, tuple(route.links))
    monitor = routing.monitor
    if monitor is None:
        monitor = min(routing.links, key=lambda spec: spec.mbps).name
    topology.set_monitor(monitor)
    return topology


def make_routed_network(routing: RoutingSpec, dt: float = 0.002,
                        seed: int = 0, faults: Sequence[FaultSpec] = ()
                        ) -> RoutedNetwork:
    """A :class:`RoutedNetwork` over the described node/link graph.

    The destination-routed sibling of :func:`make_multihop_network`: same
    seeding and fault arming, but flows are added with source/destination
    nodes and chunks follow the routing tables — so an armed ``link_flap``
    triggers failover instead of a dead end.
    """
    network = RoutedNetwork(make_routed_topology(routing, seed=seed),
                            dt=dt, seed=seed,
                            convergence_delay=routing.convergence_ms / 1e3)
    if faults:
        make_fault_schedule(faults, seed=seed).apply(network)
    return network


def make_fault_schedule(faults: Sequence[FaultSpec],
                        seed: int = 0) -> FaultSchedule:
    """Convert driver-unit :class:`FaultSpec` entries into a schedule."""
    events = [FaultEvent(kind=spec.kind, link=spec.link, start=spec.start,
                         duration=spec.duration, factor=spec.factor,
                         drop_queued=bool(spec.drop_queued),
                         delay=spec.delay_ms / 1e3,
                         loss_rate=spec.loss_rate)
              for spec in faults]
    return FaultSchedule(events, seed=seed)


def flap_fault_specs(link: str, period: float, duty: float, until: float,
                     depth: float = 1.0, start: Optional[float] = None,
                     drop_queued: bool = False) -> tuple:
    """Periodic fault windows for a flapping link.

    Each ``period`` the link degrades for ``duty * period`` seconds: fully
    down (``link_flap``) when ``depth >= 1``, else a ``capacity_dip`` to
    ``1 - depth`` of its rate.  The first window opens after one healthy
    up-phase (or at ``start``); windows are generated while they begin
    before ``until``.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if not 0.0 < duty < 1.0:
        raise ValueError(f"duty must be in (0, 1), got {duty}")
    if not 0.0 < depth <= 1.0:
        raise ValueError(f"depth must be in (0, 1], got {depth}")
    down = duty * period
    first = (period - down) if start is None else start
    faults = []
    begin = first
    while begin < until:
        if depth >= 1.0:
            faults.append(FaultSpec("link_flap", link, begin, down,
                                    drop_queued=drop_queued))
        else:
            faults.append(FaultSpec("capacity_dip", link, begin, down,
                                    factor=1.0 - depth))
        begin += period
    return tuple(faults)


def _policy_for(mu: float, buffer_ms: float,
                aqm_target_ms: Optional[float], seed: int):
    buffer_bytes = mu * buffer_ms / 1e3
    if aqm_target_ms is not None:
        return Pie(target_delay=aqm_target_ms / 1e3,
                   buffer_bytes=buffer_bytes, seed=seed)
    return DropTail(buffer_bytes)


def make_topology(links: Sequence[LinkSpec],
                  monitor: Optional[str] = None, seed: int = 0) -> Topology:
    """Wire :class:`LinkSpec` descriptions into a :class:`Topology`.

    The monitor link (what ``network.link`` and the recorder observe)
    defaults to the narrowest hop — the natural bottleneck — with ties
    going to the earliest link.
    """
    if not links:
        raise ValueError("make_topology needs at least one LinkSpec")
    topology = Topology(name="+".join(spec.name for spec in links))
    for position, spec in enumerate(links):
        mu = mbps_to_bytes_per_sec(spec.mbps)
        # Each hop's policy gets its own RNG stream: identical seeds would
        # perfectly correlate the random drop decisions of stacked AQMs.
        topology.add_link(spec.name, mu, delay=spec.delay_ms / 1e3,
                          policy=_policy_for(mu, spec.buffer_ms,
                                             spec.aqm_target_ms,
                                             seed + position))
    if monitor is None:
        monitor = min(links, key=lambda spec: spec.mbps).name
    topology.set_monitor(monitor)
    return topology


def make_multihop_network(links: Sequence[LinkSpec], dt: float = 0.002,
                          seed: int = 0, monitor: Optional[str] = None,
                          faults: Sequence[FaultSpec] = (),
                          fluid: Sequence[FluidClassSpec] = ()
                          ) -> TopologyNetwork:
    """A :class:`TopologyNetwork` over the described chain of hops.

    The multi-hop sibling of :func:`make_network`: same defaults, same
    seeding, but flows may traverse any path over the named links.  Any
    ``faults`` are armed and ``fluid`` classes attached on the fresh
    network (seeded from ``seed``); empty sequences leave the engine
    untouched — bit-identical to a build without the parameters.
    """
    network = TopologyNetwork(make_topology(links, monitor=monitor,
                                            seed=seed),
                              dt=dt, seed=seed)
    if faults:
        make_fault_schedule(faults, seed=seed).apply(network)
    if fluid:
        attach_fluid_classes(network, fluid)
    return network


def make_network(link_mbps: float, buffer_ms: float = 100.0,
                 dt: float = 0.002, seed: int = 0,
                 aqm_target_ms: Optional[float] = None,
                 fluid: Sequence[FluidClassSpec] = ()) -> Network:
    """Standard single-bottleneck network used across experiments.

    ``aqm_target_ms`` switches the queue policy from drop-tail to PIE with
    the given target delay (Appendix E.2).  ``fluid`` attaches aggregate
    background-traffic classes to the bottleneck; the default empty
    sequence is bit-identical to a build without the parameter.
    """
    mu = mbps_to_bytes_per_sec(link_mbps)
    policy = _policy_for(mu, buffer_ms, aqm_target_ms, seed)
    link = BottleneckLink(capacity=mu, policy=policy)
    network = Network(link, dt=dt, seed=seed)
    if fluid:
        attach_fluid_classes(network, fluid)
    return network


def make_scheme(name: str, mu: float, **overrides) -> CongestionControl:
    """Instantiate a congestion-control scheme by name.

    Supported names: ``nimbus`` (Cubic + BasicDelay), ``nimbus-copa``
    (Cubic + Copa default mode), ``nimbus-vegas``, ``nimbus-delay`` (the
    delay algorithm alone, no mode switching), ``cubic``, ``newreno``,
    ``vegas``, ``copa``, ``copa-default``, ``bbr``, ``pcc-vivace``,
    ``compound``, ``basicdelay``.
    """
    factories: Dict[str, Callable[[], CongestionControl]] = {
        "nimbus": lambda: Nimbus(mu=mu, **overrides),
        "nimbus-copa": lambda: Nimbus(
            mu=mu, delay=Copa(mode_switching=False), **overrides),
        "nimbus-vegas": lambda: Nimbus(mu=mu, delay=Vegas(), **overrides),
        "nimbus-delay": lambda: BasicDelay(mu, **overrides),
        "basicdelay": lambda: BasicDelay(mu, **overrides),
        "cubic": lambda: Cubic(**overrides),
        "newreno": lambda: NewReno(**overrides),
        "reno": lambda: NewReno(**overrides),
        "vegas": lambda: Vegas(**overrides),
        "copa": lambda: Copa(**overrides),
        "copa-default": lambda: Copa(mode_switching=False, **overrides),
        "bbr": lambda: Bbr(**overrides),
        "pcc-vivace": lambda: Vivace(**overrides),
        "compound": lambda: Compound(**overrides),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}; known: {sorted(factories)}")
