"""Factories that turn scenario parameters into simulator objects.

These used to live in ``repro.experiments.common``; they sit in the runtime
layer now so that scenario execution (and anything else below the driver
layer) can build networks and schemes without importing the experiments
package.  ``repro.experiments.common`` re-exports both names, so existing
driver code is unaffected.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..cc import (
    BasicDelay,
    Bbr,
    Compound,
    Copa,
    Cubic,
    NewReno,
    Vegas,
    Vivace,
)
from ..cc.base import CongestionControl
from ..core.nimbus import Nimbus
from ..simulator import (
    BottleneckLink,
    DropTail,
    Network,
    Pie,
    mbps_to_bytes_per_sec,
)


def make_network(link_mbps: float, buffer_ms: float = 100.0,
                 dt: float = 0.002, seed: int = 0,
                 aqm_target_ms: Optional[float] = None) -> Network:
    """Standard single-bottleneck network used across experiments.

    ``aqm_target_ms`` switches the queue policy from drop-tail to PIE with
    the given target delay (Appendix E.2).
    """
    mu = mbps_to_bytes_per_sec(link_mbps)
    buffer_bytes = mu * buffer_ms / 1e3
    if aqm_target_ms is not None:
        policy = Pie(target_delay=aqm_target_ms / 1e3,
                     buffer_bytes=buffer_bytes, seed=seed)
    else:
        policy = DropTail(buffer_bytes)
    link = BottleneckLink(capacity=mu, policy=policy)
    return Network(link, dt=dt, seed=seed)


def make_scheme(name: str, mu: float, **overrides) -> CongestionControl:
    """Instantiate a congestion-control scheme by name.

    Supported names: ``nimbus`` (Cubic + BasicDelay), ``nimbus-copa``
    (Cubic + Copa default mode), ``nimbus-vegas``, ``nimbus-delay`` (the
    delay algorithm alone, no mode switching), ``cubic``, ``newreno``,
    ``vegas``, ``copa``, ``copa-default``, ``bbr``, ``pcc-vivace``,
    ``compound``, ``basicdelay``.
    """
    factories: Dict[str, Callable[[], CongestionControl]] = {
        "nimbus": lambda: Nimbus(mu=mu, **overrides),
        "nimbus-copa": lambda: Nimbus(
            mu=mu, delay=Copa(mode_switching=False), **overrides),
        "nimbus-vegas": lambda: Nimbus(mu=mu, delay=Vegas(), **overrides),
        "nimbus-delay": lambda: BasicDelay(mu, **overrides),
        "basicdelay": lambda: BasicDelay(mu, **overrides),
        "cubic": lambda: Cubic(**overrides),
        "newreno": lambda: NewReno(**overrides),
        "reno": lambda: NewReno(**overrides),
        "vegas": lambda: Vegas(**overrides),
        "copa": lambda: Copa(**overrides),
        "copa-default": lambda: Copa(mode_switching=False, **overrides),
        "bbr": lambda: Bbr(**overrides),
        "pcc-vivace": lambda: Vivace(**overrides),
        "compound": lambda: Compound(**overrides),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}; known: {sorted(factories)}")
