"""Factories that turn scenario parameters into simulator objects.

These used to live in ``repro.experiments.common``; they sit in the runtime
layer now so that scenario execution (and anything else below the driver
layer) can build networks and schemes without importing the experiments
package.  ``repro.experiments.common`` re-exports both names, so existing
driver code is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from ..cc import (
    BasicDelay,
    Bbr,
    Compound,
    Copa,
    Cubic,
    NewReno,
    Vegas,
    Vivace,
)
from ..cc.base import CongestionControl
from ..core.nimbus import Nimbus
from ..simulator import (
    BottleneckLink,
    DropTail,
    Network,
    Pie,
    Topology,
    TopologyNetwork,
    mbps_to_bytes_per_sec,
)


@dataclass(frozen=True)
class LinkSpec:
    """Declarative description of one hop of a topology.

    A plain frozen dataclass with init-only scalar fields, so it
    canonicalises into a :class:`~repro.runtime.spec.ScenarioSpec` — multi-
    hop scenario parameters hash, cache, and batch exactly like single-link
    ones.

    Attributes:
        name: Link label, unique within the topology.
        mbps: Link rate in Mbit/s.
        delay_ms: Propagation delay from this link to the next hop (ignored
            for the last hop of a path, where the flow's own ``prop_rtt``
            supplies the receiver and ACK legs).
        buffer_ms: Queue depth in milliseconds at this link's rate.
        aqm_target_ms: Switch the hop's queue policy from drop-tail to PIE
            with this target delay.
    """

    name: str
    mbps: float
    delay_ms: float = 0.0
    buffer_ms: float = 100.0
    aqm_target_ms: Optional[float] = None


def _policy_for(mu: float, buffer_ms: float,
                aqm_target_ms: Optional[float], seed: int):
    buffer_bytes = mu * buffer_ms / 1e3
    if aqm_target_ms is not None:
        return Pie(target_delay=aqm_target_ms / 1e3,
                   buffer_bytes=buffer_bytes, seed=seed)
    return DropTail(buffer_bytes)


def make_topology(links: Sequence[LinkSpec],
                  monitor: Optional[str] = None, seed: int = 0) -> Topology:
    """Wire :class:`LinkSpec` descriptions into a :class:`Topology`.

    The monitor link (what ``network.link`` and the recorder observe)
    defaults to the narrowest hop — the natural bottleneck — with ties
    going to the earliest link.
    """
    if not links:
        raise ValueError("make_topology needs at least one LinkSpec")
    topology = Topology(name="+".join(spec.name for spec in links))
    for position, spec in enumerate(links):
        mu = mbps_to_bytes_per_sec(spec.mbps)
        # Each hop's policy gets its own RNG stream: identical seeds would
        # perfectly correlate the random drop decisions of stacked AQMs.
        topology.add_link(spec.name, mu, delay=spec.delay_ms / 1e3,
                          policy=_policy_for(mu, spec.buffer_ms,
                                             spec.aqm_target_ms,
                                             seed + position))
    if monitor is None:
        monitor = min(links, key=lambda spec: spec.mbps).name
    topology.set_monitor(monitor)
    return topology


def make_multihop_network(links: Sequence[LinkSpec], dt: float = 0.002,
                          seed: int = 0,
                          monitor: Optional[str] = None) -> TopologyNetwork:
    """A :class:`TopologyNetwork` over the described chain of hops.

    The multi-hop sibling of :func:`make_network`: same defaults, same
    seeding, but flows may traverse any path over the named links.
    """
    return TopologyNetwork(make_topology(links, monitor=monitor, seed=seed),
                           dt=dt, seed=seed)


def make_network(link_mbps: float, buffer_ms: float = 100.0,
                 dt: float = 0.002, seed: int = 0,
                 aqm_target_ms: Optional[float] = None) -> Network:
    """Standard single-bottleneck network used across experiments.

    ``aqm_target_ms`` switches the queue policy from drop-tail to PIE with
    the given target delay (Appendix E.2).
    """
    mu = mbps_to_bytes_per_sec(link_mbps)
    policy = _policy_for(mu, buffer_ms, aqm_target_ms, seed)
    link = BottleneckLink(capacity=mu, policy=policy)
    return Network(link, dt=dt, seed=seed)


def make_scheme(name: str, mu: float, **overrides) -> CongestionControl:
    """Instantiate a congestion-control scheme by name.

    Supported names: ``nimbus`` (Cubic + BasicDelay), ``nimbus-copa``
    (Cubic + Copa default mode), ``nimbus-vegas``, ``nimbus-delay`` (the
    delay algorithm alone, no mode switching), ``cubic``, ``newreno``,
    ``vegas``, ``copa``, ``copa-default``, ``bbr``, ``pcc-vivace``,
    ``compound``, ``basicdelay``.
    """
    factories: Dict[str, Callable[[], CongestionControl]] = {
        "nimbus": lambda: Nimbus(mu=mu, **overrides),
        "nimbus-copa": lambda: Nimbus(
            mu=mu, delay=Copa(mode_switching=False), **overrides),
        "nimbus-vegas": lambda: Nimbus(mu=mu, delay=Vegas(), **overrides),
        "nimbus-delay": lambda: BasicDelay(mu, **overrides),
        "basicdelay": lambda: BasicDelay(mu, **overrides),
        "cubic": lambda: Cubic(**overrides),
        "newreno": lambda: NewReno(**overrides),
        "reno": lambda: NewReno(**overrides),
        "vegas": lambda: Vegas(**overrides),
        "copa": lambda: Copa(**overrides),
        "copa-default": lambda: Copa(mode_switching=False, **overrides),
        "bbr": lambda: Bbr(**overrides),
        "pcc-vivace": lambda: Vivace(**overrides),
        "compound": lambda: Compound(**overrides),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}; known: {sorted(factories)}")
