"""On-disk memoisation of scenario results.

Results are pickled under ``<cache dir>/mod-<module digest>/<spec hash>.pkl``
where the *module digest* is the dependency-aware digest of the spec's
driver module (see :mod:`repro.runtime.depgraph`): the hash of the driver's
own source plus every module it can statically reach.  Editing an
experiment driver therefore invalidates only that driver's entries, while
editing something everyone imports (``simulator/engine.py``) invalidates
everything — stale results from older code can never be served, but
unrelated edits keep the cache warm.

Legacy layout and migration: entries written before per-module keying live
under ``<cache dir>/<whole-package digest>/``.  A miss in the new layout
falls back to the legacy location (when the package digest still matches,
i.e. no source changed since the entry was written) and migrates the entry
— the identical pickle bytes — into the new layout, so one run after an
upgrade rekeys everything it touches without re-simulating.

Corrupt entries (truncated pickles, results pickled against code that no
longer exists) are deleted on load failure rather than left to fail again
forever; the executor reports them as ``cache="corrupt"`` in the runtime
metrics.  Writes go through a temp file plus atomic rename, so a crashed
or parallel writer can at worst leave an orphan temp file, never a
truncated entry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Set, Tuple

from . import depgraph

#: Sentinel distinguishing "no cached entry" from a cached ``None``.
MISS = object()

_SOURCE_DIGEST: Optional[str] = None


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set to anything but an explicit no.

    Anyone setting the variable wants the cache off; only the empty string
    and explicit falsy spellings (``0``, ``false``, ``no``, ``off``) keep
    it on.
    """
    return os.environ.get("REPRO_NO_CACHE", "").strip().lower() in (
        "", "0", "false", "no", "off")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-runtime``."""
    override = os.environ.get("REPRO_CACHE_DIR", "")
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-runtime"


def source_digest() -> str:
    """Hash of all ``repro`` package sources, memoised per process.

    This is the *legacy* whole-package cache key, kept for the migration
    fallback read and for callers that key artefacts against the entire
    source tree.  New cache entries are keyed per driver module via
    :func:`repro.runtime.depgraph.module_digest` instead.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).resolve().parent
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _SOURCE_DIGEST = digest.hexdigest()[:16]
    return _SOURCE_DIGEST


class ResultCache:
    """Pickle-per-entry result store, keyed by spec hash + module digest.

    Args:
        directory: Cache root; defaults to :func:`default_cache_dir`.
        enabled: Defaults to :func:`cache_enabled` (``REPRO_NO_CACHE``).
        graph: Dependency graph used for module digests; defaults to the
            shared per-process graph (injectable for tests that build toy
            package trees).
    """

    def __init__(self, directory: Optional[Path] = None,
                 enabled: Optional[bool] = None,
                 graph: Optional["depgraph.DependencyGraph"] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.enabled = cache_enabled() if enabled is None else enabled
        self.graph = graph
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self._corrupt_hashes: Set[str] = set()

    # ------------------------------------------------------------------ #
    # Key layout
    # ------------------------------------------------------------------ #
    def _module_dir(self, fn: Optional[str]) -> str:
        """Directory name for a spec target's dependency digest.

        ``fn`` is the spec's dotted target (``"module:callable"`` or a
        bare module name); ``None`` — or a module the dependency graph
        cannot resolve — falls back to the legacy whole-package digest,
        which is always a valid (if coarse) key.
        """
        if fn is not None:
            module = fn.partition(":")[0]
            graph = self.graph if self.graph is not None \
                else depgraph.default_graph()
            try:
                return f"mod-{graph.digest_for(module)}"
            except Exception:
                pass
        return source_digest()

    def _entry_path(self, spec_hash: str, fn: Optional[str] = None) -> Path:
        return self.directory / self._module_dir(fn) / f"{spec_hash}.pkl"

    def _legacy_path(self, spec_hash: str) -> Path:
        return self.directory / source_digest() / f"{spec_hash}.pkl"

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def _load(self, path: Path, spec_hash: str) -> Tuple[str, Any]:
        """(status, value): ``"hit"``, ``"absent"``, or ``"corrupt"``.

        A corrupt entry — truncated, garbage, or pickled against code that
        no longer exists — is deleted so it cannot shadow the slot forever,
        and remembered for the executor's metrics (see
        :meth:`take_corrupt`).
        """
        try:
            handle = open(path, "rb")
        except OSError:
            return "absent", None
        try:
            with handle:
                return "hit", pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            try:
                os.unlink(path)
            except OSError:
                pass
            self.corrupt += 1
            self._corrupt_hashes.add(spec_hash)
            return "corrupt", None

    def get(self, spec_hash: str, fn: Optional[str] = None) -> Any:
        """The cached result, or the module-level ``MISS`` sentinel.

        With ``fn`` set (the spec's dotted target), the per-module layout
        is consulted first, then the legacy whole-package layout; a legacy
        hit is migrated — byte-identical — into the new layout on the way
        out.
        """
        if not self.enabled:
            return MISS
        path = self._entry_path(spec_hash, fn)
        status, value = self._load(path, spec_hash)
        if status == "hit":
            self.hits += 1
            return value
        if fn is not None:
            legacy = self._legacy_path(spec_hash)
            if legacy != path:
                status, value = self._load(legacy, spec_hash)
                if status == "hit":
                    self._migrate(legacy, path)
                    self.hits += 1
                    return value
        self.misses += 1
        return MISS

    def _migrate(self, legacy: Path, path: Path) -> None:
        """Copy a legacy entry's exact bytes into the per-module layout."""
        try:
            self._write_bytes(path, legacy.read_bytes())
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def _write_bytes(self, path: Path, payload: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def put(self, spec_hash: str, result: Any,
            fn: Optional[str] = None) -> bool:
        """Store a result; returns False when disabled or unpicklable."""
        if not self.enabled:
            return False
        try:
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            self._write_bytes(self._entry_path(spec_hash, fn), payload)
        except (OSError, pickle.PicklingError, TypeError):
            return False
        return True

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def stats(self) -> Tuple[int, int]:
        """(hits, misses) observed by this cache instance."""
        return self.hits, self.misses

    def take_corrupt(self) -> Set[str]:
        """Spec hashes whose entries were corrupt since the last call.

        Returns and clears the set, so each :meth:`~repro.runtime.executor.
        BatchExecutor.run` reports only its own corruption events.
        """
        taken = self._corrupt_hashes
        self._corrupt_hashes = set()
        return taken
