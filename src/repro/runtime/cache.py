"""On-disk memoisation of scenario results.

Results are pickled under ``<cache dir>/<source digest>/<spec hash>.pkl``.
The source digest hashes every ``.py`` file of the installed ``repro``
package, so editing any simulator/driver code invalidates the whole cache
(stale results from older code can never be served).  Writes go through a
temp file plus atomic rename, so a crashed or parallel writer can at worst
leave an orphan temp file, never a truncated entry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

#: Sentinel distinguishing "no cached entry" from a cached ``None``.
MISS = object()

_SOURCE_DIGEST: Optional[str] = None


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set to anything but an explicit no.

    Anyone setting the variable wants the cache off; only the empty string
    and explicit falsy spellings (``0``, ``false``, ``no``, ``off``) keep
    it on.
    """
    return os.environ.get("REPRO_NO_CACHE", "").strip().lower() in (
        "", "0", "false", "no", "off")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-runtime``."""
    override = os.environ.get("REPRO_CACHE_DIR", "")
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-runtime"


def source_digest() -> str:
    """Hash of all ``repro`` package sources, memoised per process."""
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).resolve().parent
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _SOURCE_DIGEST = digest.hexdigest()[:16]
    return _SOURCE_DIGEST


class ResultCache:
    """Pickle-per-entry result store, keyed by spec hash + source digest.

    Args:
        directory: Cache root; defaults to :func:`default_cache_dir`.
        enabled: Defaults to :func:`cache_enabled` (``REPRO_NO_CACHE``).
    """

    def __init__(self, directory: Optional[Path] = None,
                 enabled: Optional[bool] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.enabled = cache_enabled() if enabled is None else enabled
        self.hits = 0
        self.misses = 0

    def _entry_path(self, spec_hash: str) -> Path:
        return self.directory / source_digest() / f"{spec_hash}.pkl"

    def get(self, spec_hash: str) -> Any:
        """The cached result, or the module-level ``MISS`` sentinel."""
        if not self.enabled:
            return MISS
        path = self._entry_path(spec_hash)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError):
            # Absent, truncated, or pickled against code that no longer
            # exists: all are plain misses.
            self.misses += 1
            return MISS
        self.hits += 1
        return result

    def put(self, spec_hash: str, result: Any) -> bool:
        """Store a result; returns False when disabled or unpicklable."""
        if not self.enabled:
            return False
        path = self._entry_path(spec_hash)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                            suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(result, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError):
            return False
        return True

    def stats(self) -> Tuple[int, int]:
        """(hits, misses) observed by this cache instance."""
        return self.hits, self.misses
