"""Hashable description of one simulation scenario.

A :class:`ScenarioSpec` pins down everything that determines a simulation's
outcome from the caller's side: the driver function (as an importable
``"module:callable"`` dotted path, so specs survive pickling into worker
processes) and its keyword arguments in a canonical, order-independent
form.  Two specs built from the same function and equivalent parameters —
regardless of dict ordering or list-vs-tuple spelling — compare equal and
hash identically, which is what makes the on-disk result cache sound.

Structured parameters are supported through init-only dataclasses: a tuple
of :class:`~repro.runtime.build.LinkSpec` hops, for example, canonicalises
field by field, so multi-hop topology scenarios cache and batch exactly
like scalar-parameter ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Tuple

#: Parameter value types a spec accepts.  Anything outside this set has no
#: canonical, process-independent representation, so it is rejected rather
#: than silently producing unstable cache keys.
_SCALARS = (str, int, float, bool, type(None))


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to a hashable canonical form.

    Lists and tuples become tuples; mappings become key-sorted tuples of
    pairs tagged with ``"!map"`` so ``{"a": 1}`` cannot collide with
    ``(("a", 1),)``; dataclass instances become ``("!dataclass", class
    path, fields)`` and are rebuilt by :func:`decanonicalize`; scalars pass
    through.  Raises ``TypeError`` for anything else (arbitrary objects,
    functions, arrays) — callers should pass the parameters that *build*
    those objects instead.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        # Normalise -0.0 and integral floats so 2.0 and 2 key identically
        # (drivers accept either spelling from --set overrides).
        if math.isfinite(value) and value == int(value):
            return int(value)
        return value
    if isinstance(value, (list, tuple)):
        return tuple(canonicalize(v) for v in value)
    if isinstance(value, Mapping):
        if any(not isinstance(k, str) for k in value):
            raise TypeError(
                f"mapping parameters need string keys to round-trip, "
                f"got keys {sorted(map(repr, value))}")
        items = sorted((k, canonicalize(v)) for k, v in value.items())
        return ("!map",) + tuple(items)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = dataclasses.fields(value)
        if any(not f.init for f in fields):
            raise TypeError(
                f"dataclass {type(value).__name__} has non-init fields and "
                f"cannot round-trip through a ScenarioSpec")
        cls = type(value)
        return ("!dataclass", f"{cls.__module__}:{cls.__qualname__}",
                tuple((f.name, canonicalize(getattr(value, f.name)))
                      for f in fields))
    raise TypeError(
        f"ScenarioSpec parameters must be scalars/tuples/dicts/dataclasses, "
        f"got {type(value).__name__}: {value!r}")


def decanonicalize(value: Any) -> Any:
    """Invert :func:`canonicalize` so specs can call their targets.

    Tagged maps become dicts again and tagged dataclasses are rebuilt from
    their class path; plain tuples stay tuples (every driver accepts
    ``Iterable`` where it accepts ``list``).
    """
    if isinstance(value, tuple):
        if value[:1] == ("!map",):
            return {name: decanonicalize(v) for name, v in value[1:]}
        if len(value) == 3 and value[0] == "!dataclass":
            module_name, _, qualname = value[1].partition(":")
            cls = importlib.import_module(module_name)
            for part in qualname.split("."):
                cls = getattr(cls, part)
            return cls(**{name: decanonicalize(v) for name, v in value[2]})
        return tuple(decanonicalize(v) for v in value)
    return value


def dotted_path(fn: Callable) -> str:
    """The ``"module:qualname"`` path under which ``fn`` can be re-imported."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname or "." in qualname:
        raise TypeError(
            f"need a module-level function for scenario execution, got {fn!r}")
    return f"{module}:{qualname}"


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described simulation: target function + parameters.

    Attributes:
        fn: Importable dotted path ``"package.module:function"``.
        params: Canonicalised keyword arguments, key-sorted.
        label: Free-form display label (not part of the identity hash).
    """

    fn: str
    params: Tuple[Tuple[str, Any], ...] = ()
    label: str = field(default="", compare=False)

    @classmethod
    def make(cls, fn: Callable | str, label: str = "",
             **params: Any) -> "ScenarioSpec":
        """Build a spec from a callable (or dotted path) and kwargs."""
        path = fn if isinstance(fn, str) else dotted_path(fn)
        if ":" not in path:
            raise ValueError(f"dotted path must be 'module:callable', got {path!r}")
        canonical = tuple(sorted(
            (name, canonicalize(value)) for name, value in params.items()))
        return cls(fn=path, params=canonical, label=label or path.split(":")[1])

    def kwargs(self) -> Dict[str, Any]:
        """The keyword arguments to call the target with.

        Sequence parameters come back as tuples — every driver accepts
        ``Iterable``/``Sequence``, so this is transparent — while tagged
        maps and dataclasses are rebuilt as real objects.
        """
        return {name: decanonicalize(value) for name, value in self.params}

    def resolve(self) -> Callable:
        """Import and return the target callable."""
        module_name, _, attr = self.fn.partition(":")
        module = importlib.import_module(module_name)
        target = getattr(module, attr, None)
        if not callable(target):
            raise AttributeError(
                f"{self.fn!r} does not resolve to a callable")
        return target

    @property
    def module(self) -> str:
        """Module part of the dotted target path.

        This is the scope of the spec's cache key: the result cache keys
        each entry by the dependency-aware digest of this module (see
        :mod:`repro.runtime.depgraph`).
        """
        return self.fn.partition(":")[0]

    def spec_hash(self) -> str:
        """Stable content hash of (fn, params) — the cache key core."""
        payload = repr((self.fn, self.params)).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def with_params(self, **updates: Any) -> "ScenarioSpec":
        """A copy of this spec with some parameters replaced or added."""
        merged = self.kwargs()
        merged.update(updates)
        return ScenarioSpec.make(self.fn, label=self.label, **merged)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.label or self.fn}({args})"


def expand_grid(fn: Callable | str, base: Mapping[str, Any],
                axes: Mapping[str, Any]) -> Tuple[ScenarioSpec, ...]:
    """Cross-product expansion of sweep axes into a batch of specs.

    ``axes`` maps parameter name -> iterable of values; ``base`` holds the
    parameters common to every point.  Returns one spec per point of the
    cross product, in row-major order of the axes as given.
    """
    import itertools

    names = list(axes)
    value_lists = [list(axes[name]) for name in names]
    specs = []
    for combo in itertools.product(*value_lists):
        params = dict(base)
        params.update(zip(names, combo))
        label = ",".join(f"{n}={v}" for n, v in zip(names, combo))
        specs.append(ScenarioSpec.make(fn, label=label, **params))
    return tuple(specs)
