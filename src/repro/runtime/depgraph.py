"""Static per-module dependency digests for cache keying.

The result cache used to key every entry by a digest of *all* ``repro``
sources, so touching any file cold-started every cached scenario.  This
module computes something finer: for a driver module ``M``, the digest of
``M``'s source plus every module ``M`` can statically reach through its
import graph.  Editing ``experiments/link_flap.py`` then changes only the
digests of modules that can reach it (just itself), while editing
``simulator/engine.py`` changes the digest of every driver that —
transitively — imports the engine.

The graph is built with :mod:`ast`, never by importing anything, and is
memoised per process.  Resolution rules, deliberately simple and
deterministic:

* ``import a.b.c`` depends on module ``a.b.c``.
* ``from a.b import x`` depends on ``a.b`` and, when ``a.b.x`` is itself a
  module, on ``a.b.x`` too.
* ``from . import x`` depends on ``<package>.x`` when that is a module,
  else on the package ``__init__`` itself.
* Ancestor package ``__init__`` files are *not* pulled in implicitly:
  ``from .common import X`` inside ``repro.experiments.link_flap`` depends
  on ``repro.experiments.common``, not on the ``repro.experiments``
  aggregator (which imports every driver and would glue all their cache
  keys together).  An ``__init__`` is a dependency only where it is the
  named import source (``from ..runtime import ScenarioSpec``).
* Imports whose top-level package is not *tracked* (numpy, stdlib, ...)
  are ignored; third-party upgrades are not a cache-correctness concern
  for this repository's own simulations.

Tracked packages: ``repro`` is always tracked; the top-level package of
any digest entry point is auto-registered (so a test driver living in its
own toy package gets the same treatment).  Cycles are tolerated — the
reachable set is a plain closure, and the digest is computed over the
sorted (module name, source sha) pairs, so it is deterministic across
interpreter runs and hash seeds.

A small CLI supports cache-key plumbing from CI::

    python -m repro.runtime.depgraph digest repro.experiments.link_flap
    python -m repro.runtime.depgraph deps repro.experiments.fig09_wan
    python -m repro.runtime.depgraph key repro.experiments.*  # one key
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple, Union

#: Length of the hex digests this module hands out (same as the legacy
#: whole-package digest, so directory names stay uniform).
DIGEST_LEN = 16


class DigestError(LookupError):
    """The entry-point module cannot be resolved to a source file."""


class DependencyGraph:
    """Memoised static import graph over a set of tracked packages.

    Args:
        packages: Mapping of top-level package name -> package directory
            (or single-module file).  ``repro`` is added automatically
            unless already present.
        overlay: Optional mapping of source path -> replacement bytes,
            consulted instead of the on-disk contents when hashing and
            parsing.  This answers "what would the digests be if I edited
            this file?" without touching the tree.
    """

    def __init__(self,
                 packages: Optional[Mapping[str, Union[str, Path]]] = None,
                 overlay: Optional[Mapping[Union[str, Path], bytes]] = None
                 ) -> None:
        self._roots: Dict[str, Path] = {}
        if packages:
            for name, root in packages.items():
                self._roots[name] = Path(root).resolve()
        if "repro" not in self._roots:
            import repro
            self._roots["repro"] = Path(repro.__file__).resolve().parent
        self._overlay: Dict[Path, bytes] = {}
        for key, value in (overlay or {}).items():
            data = value.encode("utf-8") if isinstance(value, str) else value
            self._overlay[Path(key).resolve()] = data
        self._unresolvable_tops: Set[str] = set()
        self._file_memo: Dict[str, Optional[Path]] = {}
        self._sha_memo: Dict[Path, str] = {}
        self._imports_memo: Dict[str, Tuple[str, ...]] = {}
        self._digest_memo: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Root management
    # ------------------------------------------------------------------ #
    def register(self, top: str, root: Union[str, Path]) -> None:
        """Track an additional top-level package (or single-file module)."""
        self._roots[top] = Path(root).resolve()
        self._unresolvable_tops.discard(top)
        self.invalidate()

    def _ensure_root(self, top: str) -> Optional[Path]:
        """Auto-register the entry point's top-level package if possible."""
        if top in self._roots:
            return self._roots[top]
        if top in self._unresolvable_tops:
            return None
        try:
            spec = importlib.util.find_spec(top)
        except (ImportError, ValueError):
            spec = None
        origin = getattr(spec, "origin", None)
        if not origin or not Path(origin).suffix == ".py":
            self._unresolvable_tops.add(top)
            return None
        path = Path(origin).resolve()
        root = path.parent if path.name == "__init__.py" else path
        self._roots[top] = root
        return root

    # ------------------------------------------------------------------ #
    # Module -> file resolution (tracked packages only)
    # ------------------------------------------------------------------ #
    def _module_file(self, module: str) -> Optional[Path]:
        if module in self._file_memo:
            return self._file_memo[module]
        top, _, rest = module.partition(".")
        root = self._roots.get(top)
        path: Optional[Path] = None
        if root is not None:
            if root.is_file():
                path = root if not rest else None
            else:
                sub = root.joinpath(*rest.split(".")) if rest else root
                init = sub / "__init__.py"
                if init.is_file():
                    path = init
                elif rest:
                    as_file = sub.parent / (sub.name + ".py")
                    if as_file.is_file():
                        path = as_file
        self._file_memo[module] = path
        return path

    def _read(self, path: Path) -> bytes:
        resolved = path.resolve()
        if resolved in self._overlay:
            return self._overlay[resolved]
        return path.read_bytes()

    def _file_sha(self, path: Path) -> str:
        resolved = path.resolve()
        if resolved not in self._sha_memo:
            self._sha_memo[resolved] = hashlib.sha256(
                self._read(path)).hexdigest()
        return self._sha_memo[resolved]

    # ------------------------------------------------------------------ #
    # Import extraction
    # ------------------------------------------------------------------ #
    def imports_of(self, module: str) -> Tuple[str, ...]:
        """Tracked modules that ``module`` imports directly (sorted)."""
        if module in self._imports_memo:
            return self._imports_memo[module]
        path = self._module_file(module)
        found: Set[str] = set()
        if path is not None:
            try:
                tree = ast.parse(self._read(path))
            except SyntaxError:
                tree = None
            if tree is not None:
                is_pkg = path.name == "__init__.py"
                for node in ast.walk(tree):
                    if isinstance(node, ast.Import):
                        for alias in node.names:
                            if self._module_file(alias.name) is not None:
                                found.add(alias.name)
                    elif isinstance(node, ast.ImportFrom):
                        found.update(self._from_import_targets(
                            module, is_pkg, node))
        found.discard(module)
        resolved = tuple(sorted(found))
        self._imports_memo[module] = resolved
        return resolved

    def _from_import_targets(self, module: str, is_pkg: bool,
                             node: ast.ImportFrom) -> Set[str]:
        """Modules referenced by one ``from ... import ...`` statement."""
        if node.level == 0:
            base = node.module
        else:
            parts = module.split(".")
            if not is_pkg:
                parts = parts[:-1]
            strip = node.level - 1
            if strip > len(parts):
                return set()
            parts = parts[:len(parts) - strip] if strip else parts
            if not parts and not node.module:
                return set()
            base = ".".join(parts + node.module.split(".")) if node.module \
                else ".".join(parts)
        if not base:
            return set()
        targets: Set[str] = set()
        if node.module is not None:
            # The source module was named explicitly: depend on it.
            if self._module_file(base) is not None:
                targets.add(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                candidate = f"{base}.{alias.name}"
                if self._module_file(candidate) is not None:
                    targets.add(candidate)
        else:
            # ``from . import x``: depend on the named submodules; fall
            # back to the package __init__ only for pure attributes.
            for alias in node.names:
                if alias.name == "*":
                    continue
                candidate = f"{base}.{alias.name}"
                if self._module_file(candidate) is not None:
                    targets.add(candidate)
                elif self._module_file(base) is not None:
                    targets.add(base)
        return targets

    # ------------------------------------------------------------------ #
    # Reachability and digests
    # ------------------------------------------------------------------ #
    def reachable(self, module: str) -> Tuple[str, ...]:
        """Sorted transitive import closure of ``module`` (inclusive).

        Cycles are harmless: the walk keeps a visited set, so mutually
        importing modules simply end up in each other's closures.
        """
        self._ensure_root(module.partition(".")[0])
        if self._module_file(module) is None:
            raise DigestError(
                f"cannot resolve {module!r} to a tracked source file "
                f"(tracked: {sorted(self._roots)})")
        seen: Set[str] = set()
        stack = [module]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(name for name in self.imports_of(current)
                         if name not in seen)
        return tuple(sorted(seen))

    def digest_for(self, module: str) -> str:
        """Hex digest of ``module``'s reachable closure (name + source sha).

        Deterministic across processes and interpreter hash seeds: the
        closure is sorted by module name and every file contributes its
        content sha256.
        """
        if module not in self._digest_memo:
            digest = hashlib.sha256()
            for name in self.reachable(module):
                digest.update(name.encode("utf-8"))
                digest.update(b"\0")
                digest.update(self._file_sha(
                    self._module_file(name)).encode("ascii"))
                digest.update(b"\n")
            self._digest_memo[module] = digest.hexdigest()[:DIGEST_LEN]
        return self._digest_memo[module]

    def invalidate(self) -> None:
        """Forget memoised files/imports/digests (after an on-disk edit)."""
        self._file_memo.clear()
        self._sha_memo.clear()
        self._imports_memo.clear()
        self._digest_memo.clear()


# ---------------------------------------------------------------------- #
# Process-wide default graph
# ---------------------------------------------------------------------- #
_DEFAULT: Optional[DependencyGraph] = None


def default_graph() -> DependencyGraph:
    """The shared per-process graph (tracks ``repro``; memoised)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = DependencyGraph()
    return _DEFAULT


def module_digest(module: str) -> str:
    """Dependency-aware digest of ``module`` via the default graph."""
    return default_graph().digest_for(module)


def invalidate() -> None:
    """Reset the default graph (tests/tools that edit sources mid-process)."""
    global _DEFAULT
    _DEFAULT = None


def combined_key(modules: Iterable[str]) -> str:
    """One stable key covering several entry points (CI cache key)."""
    graph = default_graph()
    digest = hashlib.sha256()
    for name in sorted(set(modules)):
        digest.update(f"{name}={graph.digest_for(name)}\n".encode("ascii"))
    return digest.hexdigest()[:DIGEST_LEN]


def main(argv=None) -> int:
    """``python -m repro.runtime.depgraph {digest,deps,key} MODULE...``"""
    import argparse

    parser = argparse.ArgumentParser(
        description="Per-module dependency-aware cache digests.")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, nargs in (("digest", "+"), ("deps", None), ("key", "+")):
        cmd = sub.add_parser(name)
        cmd.add_argument("modules", nargs=nargs or 1,
                         metavar="MODULE",
                         help="Dotted module name, e.g. "
                              "repro.experiments.link_flap")
    args = parser.parse_args(argv)
    graph = default_graph()
    try:
        if args.command == "digest":
            for module in args.modules:
                print(f"{module} {graph.digest_for(module)}")
        elif args.command == "deps":
            for name in graph.reachable(args.modules[0]):
                print(name)
        else:
            print(combined_key(args.modules))
    except DigestError as error:
        print(str(error), file=__import__("sys").stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    import sys

    sys.exit(main())
