"""Per-spec runtime metrics for batch execution.

Every :meth:`~repro.runtime.executor.BatchExecutor.run` can stream one
JSON-lines record per spec describing how that spec was resolved: served
from the on-disk cache, simulated fresh, or fanned out from an in-batch
duplicate.  The records are plain dicts, one JSON object per line, so any
log shipper (or :mod:`repro.analysis.telemetry`) can consume them without
a schema registry.

Record schema (``schema_version`` = :data:`METRICS_SCHEMA_VERSION`):

``schema_version``
    Integer schema tag for forward compatibility.
``spec_hash``
    The spec's content hash (cache key core).
``label`` / ``fn``
    Display label and dotted target path of the spec.
``cache``
    ``"hit"`` (served from the on-disk cache), ``"miss"`` (simulated), or
    ``"corrupt"`` (a cached entry existed but could not be loaded — it was
    deleted and the spec simulated fresh, so ``"corrupt"`` otherwise
    behaves like ``"miss"``).
``dedup``
    True when this position was a miss but shared another identical
    miss's execution instead of running its own simulation.
``seconds``
    Execution wall time; ``None`` for cache hits (duplicates report the
    shared execution's time).
``worker_pid``
    PID of the process that ran the simulation; ``None`` for cache hits.
``ticks``
    ``round(duration / dt)`` when both parameters are present on the
    spec, else ``None`` — the tick count the driver will simulate.
``ticks_per_sec``
    ``ticks / seconds`` when both are known, else ``None``.
``outcome``
    How the spec ended: ``"ok"``, or — under the hardened executor — one
    of ``"error"`` (the spec raised), ``"timeout"`` (exceeded the per-spec
    deadline and was terminated), ``"crash"`` (the worker process died
    without reporting).  Failures are never cached, so a failed spec is
    always ``cache="miss"``.
``attempts``
    Execution attempts consumed, including retries; ``0`` for cache hits.

Schema history: version 2 added ``outcome``/``attempts`` (records without
them no longer validate); version 3 added the ``"corrupt"`` cache state
(corrupt on-disk entries are deleted and re-executed instead of silently
masquerading as plain misses).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Optional, Union

from .spec import ScenarioSpec

#: Version tag stamped into every record.
METRICS_SCHEMA_VERSION = 3

#: Fields every record must carry (beyond these, extras are rejected).
_FIELDS = ("schema_version", "spec_hash", "label", "fn", "cache", "dedup",
           "seconds", "worker_pid", "ticks", "ticks_per_sec", "outcome",
           "attempts")

_CACHE_STATES = ("hit", "miss", "corrupt")

#: Terminal states a spec execution can reach.
OUTCOMES = ("ok", "error", "timeout", "crash")


def metrics_record(spec: ScenarioSpec, *, cache: str,
                   seconds: Optional[float] = None,
                   worker_pid: Optional[int] = None,
                   dedup: bool = False, outcome: str = "ok",
                   attempts: Optional[int] = None) -> dict:
    """Build one schema-conformant record for ``spec``."""
    params = spec.kwargs()
    ticks: Optional[int] = None
    duration = params.get("duration")
    dt = params.get("dt")
    if isinstance(duration, (int, float)) and isinstance(dt, (int, float)) \
            and dt > 0:
        ticks = int(round(duration / dt))
    ticks_per_sec: Optional[float] = None
    if ticks is not None and seconds:
        ticks_per_sec = ticks / seconds
    record = {
        "schema_version": METRICS_SCHEMA_VERSION,
        "spec_hash": spec.spec_hash(),
        "label": spec.label,
        "fn": spec.fn,
        "cache": cache,
        "dedup": bool(dedup),
        "seconds": seconds,
        "worker_pid": worker_pid,
        "ticks": ticks,
        "ticks_per_sec": ticks_per_sec,
        "outcome": outcome,
        "attempts": (0 if cache == "hit" else 1)
        if attempts is None else attempts,
    }
    validate_metrics_record(record)
    return record


def validate_metrics_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the documented schema."""
    if not isinstance(record, dict):
        raise ValueError(f"metrics record must be a dict, got "
                         f"{type(record).__name__}")
    missing = [name for name in _FIELDS if name not in record]
    if missing:
        raise ValueError(f"metrics record missing fields {missing}")
    extras = [name for name in record if name not in _FIELDS]
    if extras:
        raise ValueError(f"metrics record has unknown fields {extras}")
    if record["schema_version"] != METRICS_SCHEMA_VERSION:
        raise ValueError(
            f"metrics schema_version must be {METRICS_SCHEMA_VERSION}, "
            f"got {record['schema_version']!r}")
    if record["cache"] not in _CACHE_STATES:
        raise ValueError(f"cache must be one of {_CACHE_STATES}, "
                         f"got {record['cache']!r}")
    for name in ("spec_hash", "label", "fn"):
        if not isinstance(record[name], str):
            raise ValueError(f"{name} must be a string, "
                             f"got {record[name]!r}")
    if not isinstance(record["dedup"], bool):
        raise ValueError(f"dedup must be a bool, got {record['dedup']!r}")
    seconds = record["seconds"]
    if seconds is not None and not (isinstance(seconds, (int, float))
                                    and not isinstance(seconds, bool)
                                    and seconds >= 0):
        raise ValueError(f"seconds must be None or >= 0, got {seconds!r}")
    if record["cache"] == "hit" and seconds is not None:
        raise ValueError("cache hits must report seconds=None")
    pid = record["worker_pid"]
    if pid is not None and not (isinstance(pid, int)
                                and not isinstance(pid, bool) and pid > 0):
        raise ValueError(f"worker_pid must be None or a positive int, "
                         f"got {pid!r}")
    ticks = record["ticks"]
    if ticks is not None and not (isinstance(ticks, int)
                                  and not isinstance(ticks, bool)
                                  and ticks >= 0):
        raise ValueError(f"ticks must be None or a non-negative int, "
                         f"got {ticks!r}")
    outcome = record["outcome"]
    if outcome not in OUTCOMES:
        raise ValueError(f"outcome must be one of {OUTCOMES}, "
                         f"got {outcome!r}")
    attempts = record["attempts"]
    if not (isinstance(attempts, int) and not isinstance(attempts, bool)
            and attempts >= 0):
        raise ValueError(f"attempts must be a non-negative int, "
                         f"got {attempts!r}")
    if record["cache"] == "hit" and (outcome != "ok" or attempts != 0):
        raise ValueError("cache hits must report outcome='ok' and "
                         "attempts=0 (failed specs are never cached)")


def write_metrics(records: Iterable[dict],
                  path_or_handle: Union[str, IO[str]]) -> int:
    """Append ``records`` to a JSONL file (or open handle); returns count.

    Lines are compact, key-sorted JSON — the same framing the trace sink
    uses — so the two files can share loaders.
    """
    written = 0
    if isinstance(path_or_handle, str):
        handle: IO[str] = open(path_or_handle, "a", encoding="utf-8")
        owns = True
    else:
        handle, owns = path_or_handle, False
    try:
        for record in records:
            validate_metrics_record(record)
            handle.write(json.dumps(record, separators=(",", ":"),
                                    sort_keys=True) + "\n")
            written += 1
    finally:
        if owns:
            handle.close()
    return written
