"""Batch execution of scenario specs with memoisation.

The executor resolves each spec's result in three tiers: the on-disk cache,
then a process pool for the misses (``REPRO_BENCH_WORKERS`` workers,
default ``os.cpu_count()``), falling back to in-process serial execution
when only one worker is configured or the batch has a single miss.

Serial results are round-tripped through pickle before being returned, so
a batch produces bit-identical payloads whether it ran serially, pooled,
or from the cache — the pickle codec is the common denominator, and
structures that differ only in memoised object identity (shared vs copied
arrays) collapse to the same bytes.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from .cache import MISS, ResultCache
from .metrics import metrics_record, write_metrics
from .spec import ScenarioSpec

#: Set in worker processes (and honoured by nested executors) so a driver
#: that itself fans out a batch cannot recursively spawn pools.
_WORKER_ENV = "REPRO_RUNTIME_WORKER"


def configured_workers() -> int:
    """Worker count from ``REPRO_BENCH_WORKERS``, default ``os.cpu_count()``."""
    if os.environ.get(_WORKER_ENV):
        return 1
    raw = os.environ.get("REPRO_BENCH_WORKERS", "")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ValueError(
                f"REPRO_BENCH_WORKERS must be an integer, got {raw!r}")
    return os.cpu_count() or 1


def execute_spec(spec: ScenarioSpec) -> Any:
    """Run one spec to completion (no caching) and return its result."""
    target = spec.resolve()
    return target(**spec.kwargs())


def _timed_execute_in_worker(spec: ScenarioSpec) -> Tuple[float, int, Any]:
    """Pool entry point: mark the process as a worker, execute, and time it."""
    os.environ[_WORKER_ENV] = "1"
    begin = time.perf_counter()
    result = execute_spec(spec)
    return time.perf_counter() - begin, os.getpid(), result


@dataclass
class BatchStats:
    """Cache accounting for the most recent :meth:`BatchExecutor.run`.

    Attributes:
        hits: Spec positions served straight from the on-disk cache.
        misses: Spec positions that required a simulation.
        executed: Simulations actually run (misses minus in-batch
            duplicates, which are simulated once and fanned out).
        timings: One ``(label, seconds)`` pair per spec, in batch order;
            ``seconds`` is ``None`` for cache hits and the execution wall
            time otherwise (duplicates report the shared execution's time).
    """

    hits: int
    misses: int
    executed: int
    timings: List[Tuple[str, Optional[float]]]


def _pickle_roundtrip(result: Any) -> Any:
    """Re-serialise a result exactly as a pool worker would."""
    return pickle.loads(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))


class BatchExecutor:
    """Runs batches of :class:`ScenarioSpec` with caching and fan-out.

    Args:
        workers: Process-pool width; ``None`` reads the environment.
        cache: Result cache; ``None`` builds one from the environment.
            Pass ``ResultCache(enabled=False)`` to force cold runs.
        metrics_path: When set, every :meth:`run` appends one JSONL record
            per spec to this file (see :mod:`repro.runtime.metrics`).
    """

    def __init__(self, workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 metrics_path: Optional[str] = None) -> None:
        self.workers = configured_workers() if workers is None else max(1, workers)
        self.cache = ResultCache() if cache is None else cache
        self.metrics_path = metrics_path
        #: Accounting for the most recent batch (see :class:`BatchStats`).
        self.last_stats: Optional[BatchStats] = None
        #: Metrics records for the most recent batch, in spec order
        #: (populated even when ``metrics_path`` is unset).
        self.last_metrics: List[dict] = []

    def run(self, specs: Sequence[ScenarioSpec]) -> List[Any]:
        """Execute a batch; results come back in spec order.

        Identical specs within one batch are simulated once: the misses
        are deduplicated by spec hash and the shared result fanned back
        out to every position.
        """
        specs = list(specs)
        hashes = [spec.spec_hash() for spec in specs]
        results: List[Any] = [self.cache.get(h) for h in hashes]
        missed = [result is MISS for result in results]

        unique: dict = {}
        for index, result in enumerate(results):
            if result is MISS and hashes[index] not in unique:
                unique[hashes[index]] = index
        seconds_by_hash: dict = {}
        pid_by_hash: dict = {}
        if unique:
            fresh = self._run_misses([specs[i] for i in unique.values()])
            by_hash = dict(zip(unique, fresh))
            for spec_hash, (seconds, pid, result) in by_hash.items():
                seconds_by_hash[spec_hash] = seconds
                pid_by_hash[spec_hash] = pid
                self.cache.put(spec_hash, result)
            for index, result in enumerate(results):
                if result is MISS:
                    results[index] = by_hash[hashes[index]][2]
        self.last_stats = BatchStats(
            hits=missed.count(False),
            misses=missed.count(True),
            executed=len(unique),
            timings=[(spec.label,
                      seconds_by_hash[hashes[index]] if missed[index] else None)
                     for index, spec in enumerate(specs)])
        self.last_metrics = [
            metrics_record(
                spec,
                cache="miss" if missed[index] else "hit",
                seconds=seconds_by_hash[hashes[index]] if missed[index] else None,
                worker_pid=pid_by_hash[hashes[index]] if missed[index] else None,
                dedup=missed[index] and unique.get(hashes[index]) != index)
            for index, spec in enumerate(specs)]
        if self.metrics_path:
            write_metrics(self.last_metrics, self.metrics_path)
        return results

    def run_one(self, spec: ScenarioSpec) -> Any:
        """Single-spec convenience wrapper around :meth:`run`."""
        return self.run([spec])[0]

    def map(self, fn: Callable | str, param_sets: Iterable[dict],
            **shared: Any) -> List[Any]:
        """Run ``fn`` once per parameter set (plus shared kwargs)."""
        specs = [ScenarioSpec.make(fn, **{**shared, **params})
                 for params in param_sets]
        return self.run(specs)

    def _run_misses(
            self, specs: Sequence[ScenarioSpec]
    ) -> List[Tuple[float, int, Any]]:
        """Execute specs, returning ``(wall seconds, pid, result)`` per spec."""
        if self.workers <= 1 or len(specs) <= 1:
            timed: List[Tuple[float, int, Any]] = []
            pid = os.getpid()
            for spec in specs:
                begin = time.perf_counter()
                result = execute_spec(spec)
                timed.append((time.perf_counter() - begin, pid,
                              _pickle_roundtrip(result)))
            return timed
        width = min(self.workers, len(specs))
        with concurrent.futures.ProcessPoolExecutor(max_workers=width) as pool:
            return list(pool.map(_timed_execute_in_worker, specs))


def run_batch(specs: Sequence[ScenarioSpec],
              workers: Optional[int] = None,
              cache: Optional[ResultCache] = None) -> List[Any]:
    """Execute a batch of specs with a throwaway executor."""
    return BatchExecutor(workers=workers, cache=cache).run(specs)


def run_scenario(fn: Callable | str, **params: Any) -> Any:
    """Build one spec from ``fn``/``params`` and execute it (cached)."""
    return BatchExecutor().run_one(ScenarioSpec.make(fn, **params))
