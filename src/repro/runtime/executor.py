"""Batch execution of scenario specs with memoisation.

The executor resolves each spec's result in three tiers: the on-disk cache,
then a process pool for the misses (``REPRO_BENCH_WORKERS`` workers,
default ``os.cpu_count()``), falling back to in-process serial execution
when only one worker is configured or the batch has a single miss.

Serial results are round-tripped through pickle before being returned, so
a batch produces bit-identical payloads whether it ran serially, pooled,
or from the cache — the pickle codec is the common denominator, and
structures that differ only in memoised object identity (shared vs copied
arrays) collapse to the same bytes.

Hardened mode
-------------

Passing any of ``timeout``, ``max_retries``, or ``on_error="record"``
switches the executor onto a crash-isolated path: every miss runs in its
own dedicated process connected by a pipe, so a spec that raises, hangs,
or kills its interpreter cannot take the batch (or sibling specs) with
it.  Failures become structured :class:`SpecFailure` records — placed at
the spec's result position with ``on_error="record"``, or raised as one
:class:`SpecExecutionError` after the rest of the batch completes with
the default ``on_error="raise"``.  Failed specs are *never* written to
the result cache.  Retries back off with seeded full jitter: attempt
``n`` waits a uniform draw from ``[0, min(retry_backoff_max,
retry_backoff * 2**(n-1)))`` seconds, the draw keyed on
``(spec hash, attempt)`` so it is deterministic per spec and attempt —
concurrent retries decorrelate without making metrics irreproducible.
Because the child pickles its result into the pipe, hardened results are
bit-identical to pool and serial results regardless of worker width.

With ``journal_path`` set, every spec's terminal state is appended to a
:class:`~repro.runtime.journal.BatchJournal` the moment it resolves;
``resume=True`` keeps an existing journal, and — since successful results
were cached — a re-run only re-executes the failed or never-completed
specs.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import multiprocessing.connection
import os
import pickle
import random
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, \
    Tuple, Union

from .cache import MISS, ResultCache
from .journal import BatchJournal
from .metrics import metrics_record, write_metrics
from .spec import ScenarioSpec

#: Set in worker processes (and honoured by nested executors) so a driver
#: that itself fans out a batch cannot recursively spawn pools.
_WORKER_ENV = "REPRO_RUNTIME_WORKER"


def configured_workers() -> int:
    """Worker count from ``REPRO_BENCH_WORKERS``, default ``os.cpu_count()``."""
    if os.environ.get(_WORKER_ENV):
        return 1
    raw = os.environ.get("REPRO_BENCH_WORKERS", "")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ValueError(
                f"REPRO_BENCH_WORKERS must be an integer, got {raw!r}")
    return os.cpu_count() or 1


def execute_spec(spec: ScenarioSpec) -> Any:
    """Run one spec to completion (no caching) and return its result."""
    target = spec.resolve()
    return target(**spec.kwargs())


def _timed_execute_in_worker(spec: ScenarioSpec) -> Tuple[float, int, Any]:
    """Pool entry point: mark the process as a worker, execute, and time it."""
    os.environ[_WORKER_ENV] = "1"
    begin = time.perf_counter()
    result = execute_spec(spec)
    return time.perf_counter() - begin, os.getpid(), result


def _isolated_entry(conn, spec: ScenarioSpec) -> None:
    """Hardened-mode child entry: execute one spec, report over the pipe.

    The result is pickled *in the child* — the parent stores and fans out
    those exact bytes, so hardened results match pool results bit for bit.
    A raising spec (any ``BaseException``) reports its traceback instead;
    a child that dies outright simply never sends, which the parent
    classifies as a crash.
    """
    os.environ[_WORKER_ENV] = "1"
    begin = time.perf_counter()
    try:
        result = execute_spec(spec)
        payload = ("ok", time.perf_counter() - begin, os.getpid(),
                   pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
    except BaseException:
        payload = ("error", time.perf_counter() - begin, os.getpid(),
                   traceback.format_exc().strip())
    try:
        conn.send(payload)
    finally:
        conn.close()


@dataclass(frozen=True)
class SpecFailure:
    """Structured terminal failure of one spec under the hardened executor.

    Takes the place of the spec's result when ``on_error="record"``; never
    written to the result cache.

    Attributes:
        spec_hash: Content hash of the failed spec.
        label: Display label of the spec.
        fn: Dotted target path of the spec.
        outcome: ``"error"`` (the spec raised), ``"timeout"`` (deadline
            exceeded, worker terminated), or ``"crash"`` (worker died
            without reporting).
        attempts: Execution attempts consumed, including retries.
        error: Full traceback or diagnostic message of the last attempt.
        seconds: Wall time of the last attempt (the timeout for timeouts).
    """

    spec_hash: str
    label: str
    fn: str
    outcome: str
    attempts: int
    error: str
    seconds: float = 0.0

    @property
    def summary(self) -> str:
        """Last line of the error (the exception itself, for tracebacks)."""
        return self.error.strip().splitlines()[-1] if self.error else ""

    def __str__(self) -> str:
        return (f"{self.label} [{self.outcome} after {self.attempts} "
                f"attempt(s)]: {self.summary}")


class SpecExecutionError(RuntimeError):
    """Raised after a hardened batch when ``on_error="raise"``.

    Carries every :class:`SpecFailure` of the batch; the message shows the
    first one in full so the offending spec, outcome, attempt count, and
    traceback are readable without unpacking.
    """

    def __init__(self, failures: Sequence[SpecFailure]) -> None:
        self.failures = list(failures)
        first = self.failures[0]
        extra = (f" (+{len(self.failures) - 1} more failed spec(s))"
                 if len(self.failures) > 1 else "")
        super().__init__(
            f"spec {first.label!r} ({first.fn}) {first.outcome} after "
            f"{first.attempts} attempt(s){extra}:\n{first.error}")


@dataclass
class BatchStats:
    """Cache accounting for the most recent :meth:`BatchExecutor.run`.

    Attributes:
        hits: Spec positions served straight from the on-disk cache.
        misses: Spec positions that required a simulation.
        executed: Simulations actually run (misses minus in-batch
            duplicates, which are simulated once and fanned out).
        timings: One ``(label, seconds)`` pair per spec, in batch order;
            ``seconds`` is ``None`` for cache hits and the execution wall
            time otherwise (duplicates report the shared execution's time).
        failed: Spec positions that ended in a :class:`SpecFailure`
            (always 0 outside hardened mode).
        corrupt: Spec positions whose cached entry was corrupt (deleted
            and re-executed; a subset of ``misses``).
    """

    hits: int
    misses: int
    executed: int
    timings: List[Tuple[str, Optional[float]]]
    failed: int = 0
    corrupt: int = 0


def _pickle_roundtrip(result: Any) -> Any:
    """Re-serialise a result exactly as a pool worker would."""
    return pickle.loads(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))


class BatchExecutor:
    """Runs batches of :class:`ScenarioSpec` with caching and fan-out.

    Args:
        workers: Process-pool width; ``None`` reads the environment.
        cache: Result cache; ``None`` builds one from the environment.
            Pass ``ResultCache(enabled=False)`` to force cold runs.
        metrics_path: When set, every :meth:`run` appends one JSONL record
            per spec to this file (see :mod:`repro.runtime.metrics`).
        timeout: Per-spec wall-clock deadline in seconds; a spec still
            running at the deadline is terminated (hardened mode).
        max_retries: Extra attempts after a failed one — error, timeout,
            or crash alike (hardened mode).
        retry_backoff: Base of the exponential retry ceiling: attempt
            ``n`` waits a deterministic full-jitter draw from
            ``[0, min(retry_backoff_max, retry_backoff * 2**(n-1)))``
            seconds (see :meth:`retry_delay`).
        retry_backoff_max: Cap on the exponential ceiling, so deep retry
            chains cannot back off unboundedly.
        on_error: ``"raise"`` (default) raises :class:`SpecExecutionError`
            once the rest of the batch has completed; ``"record"`` places
            the :class:`SpecFailure` at the spec's result position.
        journal_path: Append every spec's terminal state to this JSONL
            journal (see :mod:`repro.runtime.journal`).
        resume: Keep an existing journal instead of truncating it; with
            the result cache enabled, previously-successful specs resolve
            as hits and only failed/incomplete ones re-execute.
    """

    def __init__(self, workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 metrics_path: Optional[str] = None, *,
                 timeout: Optional[float] = None, max_retries: int = 0,
                 retry_backoff: float = 0.25,
                 retry_backoff_max: float = 8.0, on_error: str = "raise",
                 journal_path: Union[str, os.PathLike, None] = None,
                 resume: bool = False) -> None:
        self.workers = configured_workers() if workers is None else max(1, workers)
        self.cache = ResultCache() if cache is None else cache
        self.metrics_path = metrics_path
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, "
                             f"got {retry_backoff}")
        if retry_backoff_max <= 0:
            raise ValueError(f"retry_backoff_max must be positive, "
                             f"got {retry_backoff_max}")
        if on_error not in ("raise", "record"):
            raise ValueError(f"on_error must be 'raise' or 'record', "
                             f"got {on_error!r}")
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self.on_error = on_error
        self.journal_path = journal_path
        self.resume = resume
        self._journal: Optional[BatchJournal] = None
        #: Accounting for the most recent batch (see :class:`BatchStats`).
        self.last_stats: Optional[BatchStats] = None
        #: Metrics records for the most recent batch, in spec order
        #: (populated even when ``metrics_path`` is unset).
        self.last_metrics: List[dict] = []

    @property
    def hardened(self) -> bool:
        """Whether misses run crash-isolated (see the module docstring).

        False by default, keeping the legacy serial/pool path — and its
        bit-identical, allocation-lean behaviour — untouched.
        """
        return (self.timeout is not None or self.max_retries > 0
                or self.on_error == "record")

    def retry_delay(self, spec_hash: str, attempt: int) -> float:
        """Backoff before re-running ``spec_hash`` after attempt ``attempt``.

        Full jitter over a capped exponential ceiling: a uniform draw from
        ``[0, min(retry_backoff_max, retry_backoff * 2**(attempt-1)))``.
        The draw comes from a private RNG seeded on ``(spec_hash,
        attempt)``, so the same spec's same attempt always waits the same
        time — retries of a re-run batch are reproducible — while
        concurrent retries of *different* specs decorrelate instead of
        thundering back in lockstep.
        """
        ceiling = min(self.retry_backoff_max,
                      self.retry_backoff * (2 ** (attempt - 1)))
        return random.Random(f"{spec_hash}:{attempt}").random() * ceiling

    def _ensure_journal(self) -> Optional[BatchJournal]:
        if self.journal_path is not None and self._journal is None:
            self._journal = BatchJournal(self.journal_path,
                                         resume=self.resume)
        return self._journal

    def run(self, specs: Sequence[ScenarioSpec]) -> List[Any]:
        """Execute a batch; results come back in spec order.

        Identical specs within one batch are simulated once: the misses
        are deduplicated by spec hash and the shared result fanned back
        out to every position.  In hardened mode a position may resolve to
        a :class:`SpecFailure` (``on_error="record"``) or the batch may
        raise :class:`SpecExecutionError` after every spec has settled
        (``on_error="raise"``).
        """
        specs = list(specs)
        hashes = [spec.spec_hash() for spec in specs]
        results: List[Any] = [self.cache.get(h, fn=spec.fn)
                              for h, spec in zip(hashes, specs)]
        missed = [result is MISS for result in results]
        corrupt_hashes = self.cache.take_corrupt()
        journal = self._ensure_journal()
        if journal is not None:
            recorded = set()
            for index, spec in enumerate(specs):
                if not missed[index] and hashes[index] not in recorded:
                    recorded.add(hashes[index])
                    journal.record(spec_hash=hashes[index], label=spec.label,
                                   outcome="ok", attempts=0, seconds=None)

        unique: dict = {}
        for index, result in enumerate(results):
            if result is MISS and hashes[index] not in unique:
                unique[hashes[index]] = index
        seconds_by_hash: dict = {}
        pid_by_hash: dict = {}
        attempts_by_hash: dict = {}
        failure_by_hash: Dict[str, SpecFailure] = {}
        if unique:
            miss_specs = [specs[i] for i in unique.values()]
            if self.hardened:
                fresh = self._run_misses_hardened(miss_specs, list(unique),
                                                  journal)
            else:
                fresh = [(seconds, pid, result, 1) for seconds, pid, result
                         in self._run_misses(miss_specs)]
            by_hash = dict(zip(unique, fresh))
            for spec_hash, settled in by_hash.items():
                if isinstance(settled, SpecFailure):
                    failure_by_hash[spec_hash] = settled
                    seconds_by_hash[spec_hash] = settled.seconds
                    pid_by_hash[spec_hash] = None
                    attempts_by_hash[spec_hash] = settled.attempts
                    continue
                seconds, pid, result, attempts = settled
                seconds_by_hash[spec_hash] = seconds
                pid_by_hash[spec_hash] = pid
                attempts_by_hash[spec_hash] = attempts
                self.cache.put(spec_hash, result,
                               fn=specs[unique[spec_hash]].fn)
                if journal is not None and not self.hardened:
                    # The hardened scheduler journals at reap time; the
                    # legacy path settles everything here.
                    journal.record(spec_hash=spec_hash,
                                   label=specs[unique[spec_hash]].label,
                                   outcome="ok", attempts=attempts,
                                   seconds=seconds)
            for index, result in enumerate(results):
                if result is MISS:
                    settled = by_hash[hashes[index]]
                    results[index] = settled if isinstance(
                        settled, SpecFailure) else settled[2]
        self.last_stats = BatchStats(
            hits=missed.count(False),
            misses=missed.count(True),
            executed=len(unique),
            timings=[(spec.label,
                      seconds_by_hash[hashes[index]] if missed[index] else None)
                     for index, spec in enumerate(specs)],
            failed=sum(1 for result in results
                       if isinstance(result, SpecFailure)),
            corrupt=sum(1 for index in range(len(specs))
                        if missed[index] and hashes[index] in corrupt_hashes))
        self.last_metrics = [
            metrics_record(
                spec,
                cache=("corrupt" if hashes[index] in corrupt_hashes
                       else "miss") if missed[index] else "hit",
                seconds=seconds_by_hash[hashes[index]] if missed[index] else None,
                worker_pid=pid_by_hash[hashes[index]] if missed[index] else None,
                dedup=missed[index] and unique.get(hashes[index]) != index,
                outcome=failure_by_hash[hashes[index]].outcome
                if hashes[index] in failure_by_hash else "ok",
                attempts=attempts_by_hash.get(
                    hashes[index], 1 if missed[index] else 0))
            for index, spec in enumerate(specs)]
        if self.metrics_path:
            write_metrics(self.last_metrics, self.metrics_path)
        if failure_by_hash and self.on_error == "raise":
            raise SpecExecutionError(list(failure_by_hash.values()))
        return results

    def run_one(self, spec: ScenarioSpec) -> Any:
        """Single-spec convenience wrapper around :meth:`run`."""
        return self.run([spec])[0]

    def map(self, fn: Callable | str, param_sets: Iterable[dict],
            **shared: Any) -> List[Any]:
        """Run ``fn`` once per parameter set (plus shared kwargs)."""
        specs = [ScenarioSpec.make(fn, **{**shared, **params})
                 for params in param_sets]
        return self.run(specs)

    def _run_misses(
            self, specs: Sequence[ScenarioSpec]
    ) -> List[Tuple[float, int, Any]]:
        """Execute specs, returning ``(wall seconds, pid, result)`` per spec."""
        if self.workers <= 1 or len(specs) <= 1:
            timed: List[Tuple[float, int, Any]] = []
            pid = os.getpid()
            for spec in specs:
                begin = time.perf_counter()
                result = execute_spec(spec)
                timed.append((time.perf_counter() - begin, pid,
                              _pickle_roundtrip(result)))
            return timed
        width = min(self.workers, len(specs))
        with concurrent.futures.ProcessPoolExecutor(max_workers=width) as pool:
            return list(pool.map(_timed_execute_in_worker, specs))

    def _run_misses_hardened(
            self, specs: Sequence[ScenarioSpec], hashes: Sequence[str],
            journal: Optional[BatchJournal]
    ) -> List[Union[Tuple[float, int, Any, int], SpecFailure]]:
        """Crash-isolated execution: one dedicated process per attempt.

        Returns, per spec, either ``(seconds, pid, result, attempts)`` or
        a terminal :class:`SpecFailure`.  A failed attempt (raise, timeout,
        worker death) is retried after a seeded full-jitter backoff
        (:meth:`retry_delay`) while attempts remain; sibling specs keep
        running throughout.  Terminal states
        are journalled the moment they settle, so an interrupted batch
        leaves a truthful journal behind.
        """
        ctx = multiprocessing.get_context()
        width = max(1, min(self.workers, len(specs)))
        settled_all: List[Any] = [None] * len(specs)
        #: (spec index, attempt number, not-before monotonic time)
        pending: List[Tuple[int, int, float]] = \
            [(index, 1, 0.0) for index in range(len(specs))]
        active: Dict[int, tuple] = {}
        while pending or active:
            now = time.monotonic()
            pending.sort(key=lambda entry: (entry[2], entry[0]))
            while pending and len(active) < width and pending[0][2] <= now:
                index, attempt, _ = pending.pop(0)
                parent, child = ctx.Pipe(duplex=False)
                process = ctx.Process(target=_isolated_entry,
                                      args=(child, specs[index]),
                                      daemon=True)
                process.start()
                child.close()
                deadline = None if self.timeout is None \
                    else time.monotonic() + self.timeout
                active[index] = (process, parent, deadline, attempt)
            if not active:
                # Every queued retry is still backing off.
                time.sleep(max(0.0, pending[0][2] - time.monotonic()) + 1e-3)
                continue
            multiprocessing.connection.wait(
                [conn for _, conn, _, _ in active.values()], timeout=0.05)
            for index, (process, conn, deadline, attempt) \
                    in list(active.items()):
                settled = None
                if conn.poll():
                    try:
                        message = conn.recv()
                    except EOFError:
                        message = None
                    process.join()
                    if message is None:
                        settled = ("crash", 0.0, None,
                                   f"worker pipe closed without a result "
                                   f"(exit code {process.exitcode})")
                    else:
                        status, seconds, pid, payload = message
                        settled = (status, seconds, pid, payload)
                elif not process.is_alive():
                    process.join()
                    if conn.poll():
                        # The result raced the exit; read it next sweep.
                        continue
                    settled = ("crash", 0.0, None,
                               f"worker died without reporting "
                               f"(exit code {process.exitcode})")
                elif deadline is not None and time.monotonic() >= deadline:
                    process.terminate()
                    process.join(5.0)
                    if process.is_alive():  # pragma: no cover - stuck child
                        process.kill()
                        process.join()
                    settled = ("timeout", float(self.timeout), None,
                               f"timed out after {self.timeout:g}s and was "
                               f"terminated")
                if settled is None:
                    continue
                conn.close()
                del active[index]
                status, seconds, pid, payload = settled
                if status == "ok":
                    settled_all[index] = (seconds, pid,
                                          pickle.loads(payload), attempt)
                    if journal is not None:
                        journal.record(spec_hash=hashes[index],
                                       label=specs[index].label,
                                       outcome="ok", attempts=attempt,
                                       seconds=seconds)
                elif attempt <= self.max_retries:
                    delay = self.retry_delay(hashes[index], attempt)
                    pending.append((index, attempt + 1,
                                    time.monotonic() + delay))
                else:
                    failure = SpecFailure(
                        spec_hash=hashes[index], label=specs[index].label,
                        fn=specs[index].fn, outcome=status,
                        attempts=attempt, error=str(payload),
                        seconds=float(seconds or 0.0))
                    settled_all[index] = failure
                    if journal is not None:
                        journal.record(spec_hash=failure.spec_hash,
                                       label=failure.label,
                                       outcome=failure.outcome,
                                       attempts=failure.attempts,
                                       seconds=failure.seconds,
                                       error=failure.summary)
        return settled_all


def run_batch(specs: Sequence[ScenarioSpec],
              workers: Optional[int] = None,
              cache: Optional[ResultCache] = None) -> List[Any]:
    """Execute a batch of specs with a throwaway executor."""
    return BatchExecutor(workers=workers, cache=cache).run(specs)


def run_scenario(fn: Callable | str, **params: Any) -> Any:
    """Build one spec from ``fn``/``params`` and execute it (cached)."""
    return BatchExecutor().run_one(ScenarioSpec.make(fn, **params))
