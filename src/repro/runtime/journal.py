"""Completed-spec journal: crash-safe bookkeeping for resumable batches.

A :class:`BatchJournal` is an append-only JSONL file recording the terminal
state of every spec of a batch — one line per resolution, flushed as soon
as it happens, so a batch killed mid-run (crash, ^C, OOM) leaves a truthful
record of what finished.  A subsequent run with ``resume=True`` keeps the
journal and re-attempts only the specs that failed or never completed:
specs journalled ``ok`` are served from the on-disk result cache (their
results were cached when they succeeded), everything else is a cache miss
and executes again.

Journal line schema (``JOURNAL_SCHEMA_VERSION`` = 1): ``schema_version``,
``spec_hash``, ``label``, ``outcome`` (``ok``/``error``/``timeout``/
``crash``), ``attempts`` (0 for cache hits), ``seconds`` (wall time or
null), ``error`` (message string or null).  A spec appearing several times
keeps its latest line.

The default journal location is derived from the batch content —
``<cache_dir>/journals/<batch_id>.jsonl`` with :func:`batch_id` the hash
of the sorted spec hashes — so re-running the same batch finds its own
journal without any path plumbing.

A journal is not limited to one executor batch: the campaign runner (see
:mod:`repro.runtime.campaign`) executes a manifest as a sequence of
chunked batches that all append to a single campaign-level journal, so
``status``/``resume`` see the whole campaign regardless of how it was
chunked.  :meth:`BatchJournal.counts` summarises that spanning view.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import IO, Dict, Optional, Sequence, Union

from .cache import default_cache_dir
from .metrics import OUTCOMES

#: Version tag stamped into every journal line.
JOURNAL_SCHEMA_VERSION = 1


def batch_id(spec_hashes: Sequence[str]) -> str:
    """Content id of a batch: hash of its sorted spec hashes.

    Sorted, so the id is insensitive to batch order; two invocations that
    run the same set of specs share a journal.
    """
    digest = hashlib.sha256("\n".join(sorted(spec_hashes)).encode("ascii"))
    return digest.hexdigest()[:16]


def default_journal_path(batch: str) -> str:
    """Default journal location for a :func:`batch_id`."""
    return str(Path(default_cache_dir()) / "journals" / f"{batch}.jsonl")


class BatchJournal:
    """Append-only terminal-state journal for one batch.

    Args:
        path: JSONL file to append to (parent directories are created).
        resume: Keep and load an existing journal instead of truncating
            it.  Without ``resume`` every run starts a fresh journal —
            stale outcomes from a previous batch must not mask new ones.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 resume: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Latest journalled record per spec hash.
        self.entries: Dict[str, dict] = {}
        if resume:
            self._load()
        elif self.path.exists():
            self.path.unlink()
        self._handle: Optional[IO[str]] = None

    def _load(self) -> None:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A run killed mid-write can leave one torn final line;
                    # everything before it is still trustworthy.
                    continue
                if isinstance(record, dict) and "spec_hash" in record:
                    self.entries[record["spec_hash"]] = record

    # ------------------------------------------------------------------ #
    def outcome_of(self, spec_hash: str) -> Optional[str]:
        """Latest journalled outcome for a spec, or ``None`` if absent."""
        entry = self.entries.get(spec_hash)
        return entry.get("outcome") if entry else None

    def counts(self) -> Dict[str, int]:
        """Journalled specs per outcome (latest line wins per spec).

        Campaign runs append every batch of every chunk to one journal, so
        this is the campaign-level progress summary behind
        ``repro-campaign status``.
        """
        totals: Dict[str, int] = {}
        for entry in self.entries.values():
            outcome = entry.get("outcome", "ok")
            totals[outcome] = totals.get(outcome, 0) + 1
        return totals

    def record(self, *, spec_hash: str, label: str, outcome: str,
               attempts: int, seconds: Optional[float],
               error: Optional[str] = None) -> dict:
        """Append one terminal-state line (flushed immediately)."""
        if outcome not in OUTCOMES:
            raise ValueError(f"outcome must be one of {OUTCOMES}, "
                             f"got {outcome!r}")
        entry = {
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "spec_hash": spec_hash,
            "label": label,
            "outcome": outcome,
            "attempts": int(attempts),
            "seconds": seconds,
            "error": error,
        }
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(entry, separators=(",", ":"),
                                      sort_keys=True) + "\n")
        self._handle.flush()
        self.entries[spec_hash] = entry
        return entry

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"BatchJournal(path={str(self.path)!r}, "
                f"entries={len(self.entries)})")
