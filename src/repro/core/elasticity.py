"""Elasticity detection from the frequency response of cross traffic
(§3.2–§3.4 of the paper).

The detector takes the sampled cross-traffic rate estimate ``z(t)`` over the
last FFT window (5 seconds by default), computes its discrete Fourier
transform, and forms the elasticity metric::

    eta = |FFT_z(fp)| / max_{f in (fp, 2*fp)} |FFT_z(f)|        (Eq. 3)

Elastic (ACK-clocked) cross traffic oscillates at the pulse frequency
``fp``, producing a pronounced peak at ``fp`` relative to the neighbouring
band, so ``eta`` is large; inelastic traffic spreads its energy across
frequencies and ``eta`` stays near 1.  Traffic is classified elastic when
``eta >= eta_thresh`` (2 by default).

The same machinery is reused by watcher flows (§6) to detect whether a
pulser is active, and at which of the two agreed frequencies it is pulsing,
by examining the FFT of their own receive rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

#: Default pulse frequency (Hz).
DEFAULT_PULSE_FREQUENCY = 5.0
#: Default FFT window (seconds).
DEFAULT_FFT_DURATION = 5.0
#: Default elasticity threshold.
DEFAULT_THRESHOLD = 2.0


def fft_magnitude(samples: Sequence[float], sample_interval: float
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Return (frequencies, magnitudes) of the one-sided FFT of ``samples``.

    The mean is removed first so the DC component does not dominate, and the
    magnitudes are normalised by the number of samples so that a sinusoid of
    amplitude ``a`` appears with magnitude ``~a/2`` regardless of window
    length (the absolute scale cancels in the elasticity ratio anyway).
    """
    x = np.asarray(samples, dtype=float)
    if x.size < 4:
        return np.array([]), np.array([])
    x = x - x.mean()
    spectrum = np.fft.rfft(x)
    freqs = np.fft.rfftfreq(x.size, d=sample_interval)
    mags = np.abs(spectrum) / x.size
    return freqs, mags


def band_peak(freqs: np.ndarray, mags: np.ndarray, low: float, high: float,
              include_low: bool = False, include_high: bool = False) -> float:
    """Largest magnitude with frequency in the interval (low, high).

    Endpoint inclusion is configurable; the elasticity metric excludes both
    endpoints (the pulse frequency itself and its first harmonic).
    """
    if freqs.size == 0:
        return 0.0
    lo = freqs >= low if include_low else freqs > low
    hi = freqs <= high if include_high else freqs < high
    mask = lo & hi
    if not mask.any():
        return 0.0
    return float(mags[mask].max())


def magnitude_at(freqs: np.ndarray, mags: np.ndarray, frequency: float
                 ) -> float:
    """Magnitude of the FFT bin closest to ``frequency``."""
    if freqs.size == 0:
        return 0.0
    idx = int(np.argmin(np.abs(freqs - frequency)))
    return float(mags[idx])


def elasticity_metric(samples: Sequence[float], sample_interval: float,
                      pulse_frequency: float = DEFAULT_PULSE_FREQUENCY
                      ) -> float:
    """Compute eta (Eq. 3) from a z(t) sample series.

    Returns 0.0 when there are not enough samples to resolve the pulse
    frequency (less than roughly two pulse periods of data).
    """
    x = np.asarray(samples, dtype=float)
    min_samples = max(8, int(round(2.0 / (pulse_frequency * sample_interval))))
    if x.size < min_samples:
        return 0.0
    freqs, mags = fft_magnitude(x, sample_interval)
    peak_at_fp = magnitude_at(freqs, mags, pulse_frequency)
    # Exclude the fp bin itself (and a guard bin either side) from the
    # comparison band so spectral leakage from the peak does not count
    # against it.
    resolution = freqs[1] - freqs[0] if freqs.size > 1 else sample_interval
    competitor = band_peak(freqs, mags,
                           pulse_frequency + 1.5 * resolution,
                           2.0 * pulse_frequency - 0.5 * resolution)
    if competitor <= 0.0:
        return float("inf") if peak_at_fp > 0 else 0.0
    return peak_at_fp / competitor


@dataclass
class DetectionResult:
    """Outcome of one elasticity evaluation."""

    eta: float
    elastic: bool
    pulse_frequency: float

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self.elastic


class ElasticityDetector:
    """Stateful wrapper: classify a z(t) series as elastic or inelastic.

    Args:
        sample_interval: Spacing of the z samples in seconds.
        pulse_frequency: The frequency fp at which the sender pulses.
        fft_duration: Length of the analysis window in seconds.
        threshold: eta threshold; >= threshold means elastic.
    """

    def __init__(self, sample_interval: float = 0.01,
                 pulse_frequency: float = DEFAULT_PULSE_FREQUENCY,
                 fft_duration: float = DEFAULT_FFT_DURATION,
                 threshold: float = DEFAULT_THRESHOLD) -> None:
        if threshold < 1.0:
            raise ValueError("threshold must be >= 1 (eta is a ratio)")
        self.sample_interval = sample_interval
        self.pulse_frequency = pulse_frequency
        self.fft_duration = fft_duration
        self.threshold = threshold
        self.last_result: Optional[DetectionResult] = None

    @property
    def window_samples(self) -> int:
        """Number of samples spanning one FFT window."""
        return int(round(self.fft_duration / self.sample_interval))

    def evaluate(self, z_samples: Sequence[float]) -> DetectionResult:
        """Classify the given z series (uses the trailing FFT window)."""
        x = np.asarray(z_samples, dtype=float)
        if x.size > self.window_samples:
            x = x[-self.window_samples:]
        eta = elasticity_metric(x, self.sample_interval, self.pulse_frequency)
        result = DetectionResult(eta=eta, elastic=eta >= self.threshold,
                                 pulse_frequency=self.pulse_frequency)
        self.last_result = result
        return result

    def has_full_window(self, z_samples: Sequence[float]) -> bool:
        """True when at least one full FFT window of samples is available."""
        return len(z_samples) >= self.window_samples


class PulserDetector:
    """Detects whether (and at which frequency) a Nimbus pulser is active.

    Watcher flows feed the FFT of their own receive rate to this detector:
    a peak at ``fpc`` means a pulser in TCP-competitive mode, a peak at
    ``fpd`` means a pulser in delay-control mode, and no peak at either
    frequency means there is currently no pulser (§6).
    """

    def __init__(self, sample_interval: float = 0.01,
                 competitive_frequency: float = 5.0,
                 delay_frequency: float = 6.0,
                 fft_duration: float = DEFAULT_FFT_DURATION,
                 threshold: float = DEFAULT_THRESHOLD) -> None:
        self.sample_interval = sample_interval
        self.competitive_frequency = competitive_frequency
        self.delay_frequency = delay_frequency
        self.fft_duration = fft_duration
        self.threshold = threshold

    @property
    def window_samples(self) -> int:
        return int(round(self.fft_duration / self.sample_interval))

    def evaluate(self, rate_samples: Sequence[float]
                 ) -> Tuple[bool, Optional[str], float, float]:
        """Return (pulser_present, mode, eta_competitive, eta_delay).

        ``mode`` is "competitive" or "delay" when a pulser is detected, and
        None otherwise.
        """
        x = np.asarray(rate_samples, dtype=float)
        if x.size > self.window_samples:
            x = x[-self.window_samples:]
        eta_c = elasticity_metric(x, self.sample_interval,
                                  self.competitive_frequency)
        eta_d = elasticity_metric(x, self.sample_interval,
                                  self.delay_frequency)
        if max(eta_c, eta_d) < self.threshold:
            return False, None, eta_c, eta_d
        mode = "competitive" if eta_c >= eta_d else "delay"
        return True, mode, eta_c, eta_d


def cross_correlation_detector(s_samples: Sequence[float],
                               z_samples: Sequence[float],
                               threshold: float = 0.3) -> Tuple[float, bool]:
    """The paper's rejected time-domain strawman (§3.3).

    Computes the maximum-magnitude normalised cross-correlation between the
    sender's rate S(t) and the cross-traffic estimate z(t) over all lags,
    and classifies the cross traffic as elastic when it exceeds the
    threshold.  Kept as an ablation baseline: it works only when the cross
    traffic is substantially elastic and shares the sender's RTT.
    """
    s = np.asarray(s_samples, dtype=float)
    z = np.asarray(z_samples, dtype=float)
    n = min(s.size, z.size)
    if n < 8:
        return 0.0, False
    s = s[-n:] - s[-n:].mean()
    z = z[-n:] - z[-n:].mean()
    denom = np.sqrt((s ** 2).sum() * (z ** 2).sum())
    if denom <= 0:
        return 0.0, False
    corr = np.correlate(z, s, mode="full") / denom
    peak = float(np.max(np.abs(corr)))
    return peak, peak >= threshold
