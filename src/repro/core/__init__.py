"""The paper's contribution: cross-traffic estimation, elasticity detection,
and the Nimbus mode-switching congestion controller.
"""

from .elasticity import (
    DetectionResult,
    ElasticityDetector,
    PulserDetector,
    cross_correlation_detector,
    elasticity_metric,
    fft_magnitude,
)
from .estimator import CrossTrafficEstimator, estimate_cross_traffic
from .multiflow import (
    ROLE_PULSER,
    ROLE_WATCHER,
    PulserElection,
    WatcherRateFilter,
)
from .nimbus import MODE_COMPETITIVE, MODE_DELAY, Nimbus
from .pulses import (
    AsymmetricSinusoidPulse,
    NoPulse,
    PulseShape,
    SquareWavePulse,
    SymmetricSinusoidPulse,
)

__all__ = [
    "AsymmetricSinusoidPulse",
    "CrossTrafficEstimator",
    "DetectionResult",
    "ElasticityDetector",
    "MODE_COMPETITIVE",
    "MODE_DELAY",
    "Nimbus",
    "NoPulse",
    "PulseShape",
    "PulserDetector",
    "PulserElection",
    "ROLE_PULSER",
    "ROLE_WATCHER",
    "SquareWavePulse",
    "SymmetricSinusoidPulse",
    "WatcherRateFilter",
    "cross_correlation_detector",
    "elasticity_metric",
    "estimate_cross_traffic",
    "fft_magnitude",
]
