"""Coordination of multiple Nimbus flows (§6 of the paper).

When several Nimbus flows share a bottleneck, exactly one of them — the
*pulser* — modulates its rate, while the others — *watchers* — infer the
pulser's mode from the FFT of their own receive rate and simply copy it.
There is no explicit communication: the roles are maintained by

* a randomized, decentralized *election*: a flow that sees no pulser in its
  receive-rate FFT becomes a pulser with probability proportional to its
  throughput share (Eq. 5), so that the expected number of new pulsers per
  FFT window is at most ``kappa``;
* an *EWMA filter* on each watcher's transmission rate that removes
  frequencies at or above the pulsing frequencies, so watcher traffic looks
  inelastic to the pulser;
* a *conflict check* on the pulser: if the cross traffic oscillates more at
  the pulse frequency than the pulser's own receive rate does, another
  pulser is probably active, and the flow demotes itself to watcher with a
  fixed probability.
"""

from __future__ import annotations

import math
import random
from typing import Optional

#: Role labels.
ROLE_PULSER = "pulser"
ROLE_WATCHER = "watcher"


class PulserElection:
    """Randomized pulser election (Eq. 5).

    Each decision interval ``tau`` (10 ms by default), a watcher that
    detects no pulser becomes one with probability::

        p_i = (kappa * tau / fft_duration) * (R_i / mu)

    Summed over all flows and all decisions in one FFT window, the expected
    number of new pulsers is at most ``kappa`` because the receive rates sum
    to at most ``mu``.
    """

    def __init__(self, kappa: float = 1.0, decision_interval: float = 0.01,
                 fft_duration: float = 5.0,
                 demotion_probability: float = 0.5,
                 rng: Optional[random.Random] = None) -> None:
        if kappa <= 0:
            raise ValueError("kappa must be positive")
        self.kappa = kappa
        self.decision_interval = decision_interval
        self.fft_duration = fft_duration
        self.demotion_probability = demotion_probability
        self.rng = rng if rng is not None else random.Random(0)
        self._last_decision = -math.inf

    def election_probability(self, receive_rate: float, mu: float) -> float:
        """Probability of becoming a pulser at one decision point."""
        if mu <= 0:
            return 0.0
        share = min(max(receive_rate / mu, 0.0), 1.0)
        return min(1.0, self.kappa * self.decision_interval
                   / self.fft_duration * share)

    def should_become_pulser(self, now: float, receive_rate: float,
                             mu: float) -> bool:
        """Roll the election dice, at most once per decision interval."""
        if now - self._last_decision < self.decision_interval - 1e-12:
            return False
        self._last_decision = now
        return self.rng.random() < self.election_probability(receive_rate, mu)

    def should_demote(self) -> bool:
        """Whether a pulser that detected a conflict steps down."""
        return self.rng.random() < self.demotion_probability

    def expected_pulsers_per_window(self, total_share: float = 1.0) -> float:
        """Expected number of pulser elections over one FFT window.

        ``total_share`` is the fraction of the link carried by all Nimbus
        flows; with the whole link (1.0) the expectation equals ``kappa``.
        """
        return self.kappa * min(max(total_share, 0.0), 1.0)


class WatcherRateFilter:
    """Low-pass (EWMA) filter applied to a watcher's transmission rate.

    The cut-off is placed at the lower of the two agreed pulsing
    frequencies, so any oscillation a watcher would otherwise exhibit at the
    pulser's frequency is smoothed away and the pulser keeps classifying
    watcher traffic as inelastic.
    """

    def __init__(self, cutoff_frequency: float,
                 update_interval: float = 0.01) -> None:
        if cutoff_frequency <= 0:
            raise ValueError("cutoff_frequency must be positive")
        if update_interval <= 0:
            raise ValueError("update_interval must be positive")
        self.cutoff_frequency = cutoff_frequency
        self.update_interval = update_interval
        # Standard bilinear mapping of a first-order RC low-pass filter.
        time_constant = 1.0 / (2.0 * math.pi * cutoff_frequency)
        self.alpha = update_interval / (update_interval + time_constant)
        self._state: Optional[float] = None

    def filter(self, rate: float) -> float:
        """Return the smoothed rate after incorporating ``rate``."""
        if self._state is None:
            self._state = rate
        else:
            self._state += self.alpha * (rate - self._state)
        return self._state

    def reset(self, rate: Optional[float] = None) -> None:
        """Forget the filter state (e.g. when a watcher becomes a pulser)."""
        self._state = rate
