"""Rate-modulation pulses (§3.4, Fig. 7 of the paper).

The sender perturbs its transmission rate with a pulse train at a known
frequency ``fp``.  The paper's pulse is an *asymmetric sinusoid*: during the
first quarter of each period the sender adds a half-sine of amplitude
``A = pulse_fraction * mu`` to its rate; during the remaining three quarters
it subtracts a half-sine of amplitude ``A / 3``.  The two halves integrate
to the same number of bytes, so the mean rate is unchanged, and the burst
injected per pulse is ``mu * T / (8 * pi)`` — about 4 % of a BDP when the
period equals the RTT.

The asymmetric shape lets a sender whose base rate is as low as ``A / 3``
pulse with peak amplitude ``A``; a symmetric sinusoid (provided for the
ablation study) would require a base rate of at least ``A``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class PulseShape(ABC):
    """A zero-mean periodic rate perturbation, as a fraction of ``mu``."""

    def __init__(self, frequency: float, pulse_fraction: float = 0.25) -> None:
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        if pulse_fraction <= 0:
            raise ValueError("pulse_fraction must be positive")
        self.frequency = frequency
        self.pulse_fraction = pulse_fraction

    @property
    def period(self) -> float:
        """Pulse period T = 1 / fp in seconds."""
        return 1.0 / self.frequency

    @abstractmethod
    def offset_fraction(self, t: float) -> float:
        """Rate offset at time ``t`` as a (signed) fraction of ``mu``."""

    def offset(self, t: float, mu: float) -> float:
        """Rate offset at time ``t`` in bytes/s for a link of rate ``mu``."""
        return self.offset_fraction(t) * mu

    def min_base_fraction(self) -> float:
        """Smallest base rate (fraction of mu) that keeps the rate positive."""
        return -min(self.offset_fraction(i * self.period / 1000.0)
                    for i in range(1000))


class AsymmetricSinusoidPulse(PulseShape):
    """The paper's pulse: +A half-sine for T/4, then -A/3 half-sine for 3T/4."""

    def offset_fraction(self, t: float) -> float:
        phase = math.fmod(t, self.period)
        if phase < 0:
            phase += self.period
        quarter = self.period / 4.0
        amplitude = self.pulse_fraction
        if phase < quarter:
            # Positive half-sine over the first quarter period.
            return amplitude * math.sin(math.pi * phase / quarter)
        # Negative half-sine, one third the amplitude, over the rest.
        rest = self.period - quarter
        return -(amplitude / 3.0) * math.sin(math.pi * (phase - quarter) / rest)

    def burst_bytes(self, mu: float) -> float:
        """Bytes sent above the mean rate during one pulse: mu*T/(8*pi)."""
        return mu * self.period * self.pulse_fraction / (2.0 * math.pi) * 2.0

    def min_base_fraction(self) -> float:
        return self.pulse_fraction / 3.0


class SymmetricSinusoidPulse(PulseShape):
    """A plain sinusoid at ``fp`` — the ablation baseline for pulse shaping."""

    def offset_fraction(self, t: float) -> float:
        return self.pulse_fraction * math.sin(2.0 * math.pi * self.frequency * t)

    def min_base_fraction(self) -> float:
        return self.pulse_fraction


class SquareWavePulse(PulseShape):
    """A square wave: the paper's first (rejected) time-domain design used
    square pulses; kept for the cross-correlation ablation."""

    def offset_fraction(self, t: float) -> float:
        phase = math.fmod(t, self.period)
        if phase < 0:
            phase += self.period
        return self.pulse_fraction if phase < self.period / 2 else -self.pulse_fraction


class NoPulse(PulseShape):
    """No modulation at all (watcher flows, and ablation baselines)."""

    def __init__(self, frequency: float = 1.0,
                 pulse_fraction: float = 1e-9) -> None:
        super().__init__(frequency, pulse_fraction)

    def offset_fraction(self, t: float) -> float:
        return 0.0

    def min_base_fraction(self) -> float:
        return 0.0
