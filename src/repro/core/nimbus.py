"""Nimbus: mode-switching congestion control driven by elasticity detection
(§4 and §6 of the paper).

Nimbus runs two inner congestion-control algorithms — a TCP-competitive one
(Cubic by default) and a delay-controlling one (BasicDelay by default) — and
uses the elasticity detector to decide which one governs the sending rate:

* the sender's rate is modulated with asymmetric sinusoidal pulses at a
  known frequency;
* the cross-traffic rate ``z(t)`` is estimated every 10 ms from the sender's
  own send and receive rates (Eq. 1);
* the FFT of the last 5 seconds of ``z(t)`` yields the elasticity metric
  ``eta`` (Eq. 3); ``eta >= 2`` means elastic cross traffic, so Nimbus uses
  the TCP-competitive algorithm, otherwise the delay-control algorithm;
* when switching into TCP-competitive mode, the rate is reset to its value
  from one FFT window ago, undoing the throughput the delay algorithm ceded
  while the elastic cross traffic was ramping up.

With ``multi_flow=True`` the controller additionally plays the
pulser/watcher protocol of §6: watchers do not pulse, low-pass filter their
rate, and copy the mode signalled by the pulser's choice of frequency
(``fpc`` in competitive mode, ``fpd`` in delay mode).
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Callable, Deque, Optional, Tuple

from ..cc.base import CongestionControl
from ..cc.basic_delay import BasicDelay
from ..cc.cubic import Cubic
from ..simulator.units import MSS_BYTES
from .elasticity import (
    ElasticityDetector,
    PulserDetector,
    elasticity_metric,
    fft_magnitude,
    magnitude_at,
)
from .estimator import CrossTrafficEstimator
from .multiflow import ROLE_PULSER, ROLE_WATCHER, PulserElection, WatcherRateFilter
from .pulses import AsymmetricSinusoidPulse, NoPulse, PulseShape

#: Mode labels (shared with Copa's so classification accuracy is comparable).
MODE_DELAY = "delay"
MODE_COMPETITIVE = "competitive"


class Nimbus(CongestionControl):
    """The Nimbus mode-switching congestion controller.

    Args:
        mu: Bottleneck link rate in bytes/s.  If None, Nimbus estimates it
            as the maximum delivery rate observed (as the implementation in
            the paper does, §4.2).
        competitive: TCP-competitive inner algorithm (default: Cubic).
        delay: Delay-controlling inner algorithm (default: BasicDelay wired
            to Nimbus's cross-traffic estimator).
        pulse_fraction: Peak pulse amplitude as a fraction of ``mu`` (0.25).
        pulse_frequency: Pulse frequency in Hz for single-flow operation.
        fft_duration: Elasticity FFT window in seconds (5 s).
        threshold: Elasticity threshold ``eta_thresh`` (2).
        sample_interval: Spacing of z samples and control decisions (10 ms).
        multi_flow: Enable the pulser/watcher protocol of §6.
        competitive_frequency / delay_frequency: The two agreed pulse
            frequencies ``fpc`` and ``fpd`` used in multi-flow operation.
        kappa: Expected number of pulser elections per FFT window.
        pulse_shape_factory: Alternative pulse shape (ablations).
        switch_to_delay_persistence: Seconds eta must stay below the
            threshold before switching back from TCP-competitive to
            delay-control mode (switching into competitive mode is always
            immediate).
        seed: Seed for the election randomness.
    """

    name = "nimbus"
    elastic = True

    def __init__(self, mu: Optional[float] = None,
                 competitive: Optional[CongestionControl] = None,
                 delay: Optional[CongestionControl] = None,
                 pulse_fraction: float = 0.25,
                 pulse_frequency: float = 5.0,
                 fft_duration: float = 5.0,
                 threshold: float = 2.0,
                 sample_interval: float = 0.01,
                 multi_flow: bool = False,
                 competitive_frequency: float = 5.0,
                 delay_frequency: float = 6.0,
                 kappa: float = 1.0,
                 pulse_shape_factory: Optional[
                     Callable[[float, float], PulseShape]] = None,
                 switch_to_delay_persistence: float = 1.0,
                 seed: int = 0) -> None:
        super().__init__()
        self.mu_configured = mu
        self._mu_estimate = mu if mu is not None else 0.0
        self.pulse_fraction = pulse_fraction
        self.pulse_frequency = pulse_frequency
        self.fft_duration = fft_duration
        self.threshold = threshold
        self.sample_interval = sample_interval
        self.multi_flow = multi_flow
        self.competitive_frequency = competitive_frequency
        self.delay_frequency = delay_frequency
        #: How long eta must stay below the threshold before leaving
        #: TCP-competitive mode.  Switching into competitive mode is
        #: immediate (protecting throughput); switching back to delay mode
        #: is deliberately sticky so that noise around the threshold does
        #: not flap the mode and repeatedly give up bandwidth.
        self.switch_to_delay_persistence = switch_to_delay_persistence

        shape_factory = (pulse_shape_factory if pulse_shape_factory is not None
                         else AsymmetricSinusoidPulse)
        self._shape_factory = shape_factory
        self._pulse_single = shape_factory(pulse_frequency, pulse_fraction)
        self._pulse_competitive = shape_factory(competitive_frequency,
                                                pulse_fraction)
        self._pulse_delay = shape_factory(delay_frequency, pulse_fraction)

        self.competitive_cc = competitive if competitive is not None else Cubic()
        if delay is not None:
            self.delay_cc = delay
        else:
            self.delay_cc = BasicDelay(
                mu if mu is not None else 1.0,
                z_provider=lambda now: self.latest_z)

        self.estimator = CrossTrafficEstimator(
            mu if mu is not None and mu > 0 else 1.0,
            sample_interval=sample_interval)
        self.detector = ElasticityDetector(sample_interval=sample_interval,
                                           pulse_frequency=pulse_frequency,
                                           fft_duration=fft_duration,
                                           threshold=threshold)
        self.pulser_detector = PulserDetector(
            sample_interval=sample_interval,
            competitive_frequency=competitive_frequency,
            delay_frequency=delay_frequency,
            fft_duration=fft_duration,
            threshold=threshold)
        self.election = PulserElection(kappa=kappa,
                                       decision_interval=sample_interval,
                                       fft_duration=fft_duration,
                                       rng=random.Random(seed))
        self.watcher_filter = WatcherRateFilter(
            min(competitive_frequency, delay_frequency),
            update_interval=sample_interval)

        self.mode = MODE_DELAY
        self.role = ROLE_WATCHER if multi_flow else ROLE_PULSER
        self.last_eta = 0.0
        self.latest_z = 0.0
        #: (time, eta) samples recorded at every detector evaluation; used by
        #: the Fig. 6 / Fig. 12 / Fig. 26 experiments.
        self.eta_history: list = []
        self.cwnd = None
        self.rate = None
        self._rate_history: Deque[Tuple[float, float]] = deque()
        self._last_sample = -math.inf
        self._last_switch = -math.inf
        self._last_eta_above_threshold = -math.inf
        self._started = False

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def mu(self) -> float:
        """Current bottleneck-rate estimate (bytes/s)."""
        if self.mu_configured is not None:
            return self.mu_configured
        return max(self._mu_estimate, 1.0)

    @property
    def active_inner(self) -> CongestionControl:
        """The inner algorithm currently governing the base rate."""
        return (self.competitive_cc if self.mode == MODE_COMPETITIVE
                else self.delay_cc)

    @property
    def current_pulse(self) -> PulseShape:
        """The pulse shape in use, given the role and mode."""
        if self.role == ROLE_WATCHER:
            return NoPulse()
        if not self.multi_flow:
            return self._pulse_single
        return (self._pulse_competitive if self.mode == MODE_COMPETITIVE
                else self._pulse_delay)

    # ------------------------------------------------------------------ #
    # Registration / delegation
    # ------------------------------------------------------------------ #
    def register(self, flow) -> None:
        super().register(flow)
        self.competitive_cc.register(flow)
        self.delay_cc.register(flow)

    def on_ack(self, ack, now: float) -> None:
        self._update_mu()
        self.active_inner.on_ack(ack, now)

    def on_loss(self, lost_bytes: float, now: float) -> None:
        self.active_inner.on_loss(lost_bytes, now)

    # ------------------------------------------------------------------ #
    # Main control loop (every control interval, default 10 ms)
    # ------------------------------------------------------------------ #
    def on_control_tick(self, now: float, dt: float) -> None:
        m = self.measurement
        self._update_mu()
        self.active_inner.on_control_tick(now, dt)
        if m.rtt <= 0:
            # No feedback yet: let the inner algorithm's defaults drive us.
            self._apply_rate(now, initial=True)
            return

        if now - self._last_sample >= self.sample_interval - 1e-12:
            self._last_sample = now
            self._take_sample(now)
            if self.multi_flow:
                self._multi_flow_logic(now)
            else:
                self._single_flow_logic(now)

        self._apply_rate(now)

    # ------------------------------------------------------------------ #
    # Sampling and detection
    # ------------------------------------------------------------------ #
    def _update_mu(self) -> None:
        if self.mu_configured is not None:
            return
        rate = self.measurement.max_delivery_rate
        if rate > self._mu_estimate:
            self._mu_estimate = rate
            self.estimator.mu = self.mu
            if isinstance(self.delay_cc, BasicDelay):
                self.delay_cc.mu = self.mu

    def _take_sample(self, now: float) -> None:
        self.estimator.mu = self.mu
        z = self.estimator.maybe_sample(now, self.measurement)
        if z is not None:
            self.latest_z = z

    def actual_sample_interval(self) -> float:
        """Observed spacing of the z samples.

        The control loop runs on the simulator's tick grid, so the realised
        sample spacing can differ from the nominal ``sample_interval`` (e.g.
        a 10 ms target on a 4 ms grid yields 12 ms samples).  The FFT's
        frequency axis must use the realised spacing or the pulse peak lands
        in the wrong bin.
        """
        times = self.estimator.times()
        if len(times) < 3:
            return self.sample_interval
        import numpy as np

        spacing = float(np.median(np.diff(times[-200:])))
        return spacing if spacing > 0 else self.sample_interval

    def _single_flow_logic(self, now: float) -> None:
        z = self.estimator.z_series(self.fft_duration)
        if not self.detector.has_full_window(z):
            return
        self.detector.sample_interval = self.actual_sample_interval()
        result = self.detector.evaluate(z)
        self.last_eta = result.eta
        self.eta_history.append((now, result.eta))
        target_mode = self._decide_mode(result.eta, now)
        if target_mode != self.mode:
            self._switch_mode(target_mode, now)

    def _multi_flow_logic(self, now: float) -> None:
        r_series = self.estimator.r_series(self.fft_duration)
        sample_interval = self.actual_sample_interval()
        self.pulser_detector.sample_interval = sample_interval
        if self.role == ROLE_WATCHER:
            if len(r_series) < self.pulser_detector.window_samples:
                return
            present, mode, _, _ = self.pulser_detector.evaluate(r_series)
            if present and mode is not None:
                if mode != self.mode:
                    self._switch_mode(mode, now)
            else:
                # No pulser seen: maybe volunteer (Eq. 5).
                receive_rate = self.measurement.delivery_rate(now)
                if self.election.should_become_pulser(now, receive_rate,
                                                      self.mu):
                    self.role = ROLE_PULSER
                    self.watcher_filter.reset()
            return

        # Pulser: ordinary elasticity detection on z, plus conflict check.
        z_series = self.estimator.z_series(self.fft_duration)
        if not self.detector.has_full_window(z_series):
            return
        fp = self.current_pulse.frequency
        eta = elasticity_metric(z_series, sample_interval, fp)
        self.last_eta = eta
        self.eta_history.append((now, eta))
        target_mode = self._decide_mode(eta, now)
        if target_mode != self.mode:
            self._switch_mode(target_mode, now)
        self._check_pulser_conflict(z_series, r_series, fp)

    def _check_pulser_conflict(self, z_series, r_series, fp: float) -> None:
        """Demote to watcher if the cross traffic pulses harder than we do."""
        if len(r_series) < self.pulser_detector.window_samples:
            return
        sample_interval = self.actual_sample_interval()
        zf, zm = fft_magnitude(z_series, sample_interval)
        rf, rm = fft_magnitude(r_series, sample_interval)
        z_peak = magnitude_at(zf, zm, fp)
        r_peak = magnitude_at(rf, rm, fp)
        if z_peak > r_peak * 1.2 and self.election.should_demote():
            self.role = ROLE_WATCHER
            self.watcher_filter.reset()

    # ------------------------------------------------------------------ #
    # Mode switching
    # ------------------------------------------------------------------ #
    def _decide_mode(self, eta: float, now: float) -> str:
        """Hard decision on eta, with a persistence guard on leaving
        competitive mode (see ``switch_to_delay_persistence``)."""
        if eta >= self.threshold:
            self._last_eta_above_threshold = now
            return MODE_COMPETITIVE
        if (self.mode == MODE_COMPETITIVE
                and now - self._last_eta_above_threshold
                < self.switch_to_delay_persistence):
            return MODE_COMPETITIVE
        return MODE_DELAY

    def _switch_mode(self, target_mode: str, now: float) -> None:
        previous_rate = self._rate_at(now - self.fft_duration)
        current_rate = self._current_base_rate(now)
        self.mode = target_mode
        self._last_switch = now
        rtt = max(self.measurement.rtt, self.measurement.base_rtt())
        if target_mode == MODE_COMPETITIVE:
            # Reset to the rate from one FFT window ago: the elastic cross
            # traffic has been stealing bandwidth while we detected it.
            restore = max(previous_rate, current_rate)
            cwnd = max(restore * rtt, 4 * MSS_BYTES)
            self.competitive_cc.cwnd = cwnd
            if hasattr(self.competitive_cc, "ssthresh"):
                self.competitive_cc.ssthresh = cwnd
            if hasattr(self.competitive_cc, "_epoch_start"):
                self.competitive_cc._epoch_start = None
            if hasattr(self.competitive_cc, "w_max"):
                self.competitive_cc.w_max = cwnd
        else:
            if isinstance(self.delay_cc, BasicDelay):
                self.delay_cc.set_rate(current_rate)
            elif self.delay_cc.cwnd is not None:
                self.delay_cc.cwnd = max(current_rate * rtt, 4 * MSS_BYTES)

    # ------------------------------------------------------------------ #
    # Rate computation
    # ------------------------------------------------------------------ #
    def _current_base_rate(self, now: float) -> float:
        inner = self.active_inner
        rate = inner.pacing_rate
        if rate is not None and rate > 0:
            return rate
        cwnd = inner.cwnd_bytes
        rtt = self.measurement.rtt or self.measurement.base_rtt()
        if cwnd is not None and rtt > 0:
            return cwnd / rtt
        return max(self.mu * 0.05, MSS_BYTES / max(rtt, 1e-3))

    def _apply_rate(self, now: float, initial: bool = False) -> None:
        base = self._current_base_rate(now)
        if self.role == ROLE_WATCHER:
            base = self.watcher_filter.filter(base)
            offset = 0.0
        else:
            offset = self.current_pulse.offset(now, self.mu) if not initial else 0.0
        floor = max(0.02 * self.mu, MSS_BYTES / max(self.measurement.base_rtt(),
                                                    1e-3))
        self.rate = max(base + offset, floor)
        # Keep a generous window cap so a stale pacing rate cannot flood the
        # queue unboundedly if ACKs stall.
        rtt = max(self.measurement.rtt, self.measurement.base_rtt())
        if rtt > 0 and math.isfinite(rtt):
            self.cwnd = max(2.0 * base * rtt + 8 * MSS_BYTES, 10 * MSS_BYTES)
        self._record_rate(now, base)

    def _record_rate(self, now: float, rate: float) -> None:
        self._rate_history.append((now, rate))
        horizon = self.fft_duration + 2.0
        while self._rate_history and self._rate_history[0][0] < now - horizon:
            self._rate_history.popleft()

    def _rate_at(self, when: float) -> float:
        """Base rate closest to the requested (past) time."""
        if not self._rate_history:
            return 0.0
        best_rate = self._rate_history[0][1]
        for t, rate in self._rate_history:
            if t <= when:
                best_rate = rate
            else:
                break
        return best_rate
