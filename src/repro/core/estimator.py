"""Cross-traffic rate estimation (§3.1 of the paper).

The sender estimates the total rate of cross traffic sharing its bottleneck
from nothing but its own send rate ``S(t)``, its delivery rate ``R(t)``, and
the bottleneck link rate ``mu``::

    z_hat(t) = mu * S(t) / R(t) - S(t)            (Eq. 1)

As long as the bottleneck queue is non-empty and the router serves traffic
FIFO, the fraction of the link the flow receives equals its share of the
arriving traffic, which is what the formula inverts.

:class:`CrossTrafficEstimator` additionally keeps a regularly sampled time
series of the estimates — the signal whose FFT the elasticity detector
inspects — together with the matched samples of ``S`` and ``R`` needed by
the pulser-conflict check of §6.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from ..simulator.measurement import FlowMeasurement


def estimate_cross_traffic(mu: float, send_rate: float,
                           delivery_rate: float) -> float:
    """Eq. (1): estimate the cross-traffic rate from S, R, and mu.

    Returns 0 when the inputs are degenerate (no deliveries yet).
    The result is clamped to the physically meaningful range [0, mu].
    """
    if mu <= 0:
        raise ValueError("mu must be positive")
    if send_rate <= 0 or delivery_rate <= 0:
        return 0.0
    z = mu * send_rate / delivery_rate - send_rate
    return float(min(max(z, 0.0), mu))


class CrossTrafficEstimator:
    """Sampled cross-traffic rate estimate for one flow.

    Args:
        mu: Bottleneck link rate in bytes per second.
        sample_interval: Spacing of the recorded time series (10 ms default,
            matching the paper's CCP reporting interval).
        history: How many seconds of samples to retain (at least the FFT
            duration; the default keeps 30 s for rate-reset bookkeeping).
    """

    def __init__(self, mu: float, sample_interval: float = 0.01,
                 history: float = 30.0) -> None:
        if mu <= 0:
            raise ValueError("mu must be positive")
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.mu = mu
        self.sample_interval = sample_interval
        self.maxlen = max(2, int(round(history / sample_interval)))
        self._z: Deque[float] = deque(maxlen=self.maxlen)
        self._s: Deque[float] = deque(maxlen=self.maxlen)
        self._r: Deque[float] = deque(maxlen=self.maxlen)
        self._times: Deque[float] = deque(maxlen=self.maxlen)
        self._last_sample = -float("inf")

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def maybe_sample(self, now: float, measurement: FlowMeasurement,
                     window: Optional[float] = None) -> Optional[float]:
        """Record a sample if at least one sample interval has elapsed.

        Returns the new z estimate, or None if it is not yet time to sample.
        ``window`` overrides the measurement window (defaults to one RTT).
        """
        if now - self._last_sample < self.sample_interval - 1e-12:
            return None
        self._last_sample = now
        s, r = measurement.paired_rates(now, window)
        z = estimate_cross_traffic(self.mu, s, r)
        self._z.append(z)
        self._s.append(s)
        self._r.append(r)
        self._times.append(now)
        return z

    def add_sample(self, now: float, send_rate: float,
                   delivery_rate: float) -> float:
        """Record a sample from externally supplied S and R values."""
        z = estimate_cross_traffic(self.mu, send_rate, delivery_rate)
        self._z.append(z)
        self._s.append(send_rate)
        self._r.append(delivery_rate)
        self._times.append(now)
        self._last_sample = now
        return z

    # ------------------------------------------------------------------ #
    # Series access
    # ------------------------------------------------------------------ #
    def z_series(self, duration: Optional[float] = None) -> np.ndarray:
        """The most recent ``duration`` seconds of z samples (all if None)."""
        return self._tail(self._z, duration)

    def s_series(self, duration: Optional[float] = None) -> np.ndarray:
        """The matched send-rate samples."""
        return self._tail(self._s, duration)

    def r_series(self, duration: Optional[float] = None) -> np.ndarray:
        """The matched delivery-rate samples."""
        return self._tail(self._r, duration)

    def times(self, duration: Optional[float] = None) -> np.ndarray:
        """Timestamps of the retained samples."""
        return self._tail(self._times, duration)

    def latest(self) -> Tuple[float, float, float]:
        """Most recent (z, S, R) sample, or zeros if nothing sampled yet."""
        if not self._z:
            return 0.0, 0.0, 0.0
        return self._z[-1], self._s[-1], self._r[-1]

    def sample_count(self, duration: float) -> int:
        """Number of samples spanning ``duration`` seconds."""
        return int(round(duration / self.sample_interval))

    def __len__(self) -> int:
        return len(self._z)

    def _tail(self, series: Deque[float],
              duration: Optional[float]) -> np.ndarray:
        arr = np.asarray(series, dtype=float)
        if duration is None:
            return arr
        n = self.sample_count(duration)
        if n >= len(arr):
            return arr
        return arr[-n:]
