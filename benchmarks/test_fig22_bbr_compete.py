"""Figure 22 / Appendix C: competing against BBR, Nimbus's throughput tracks
Cubic's across buffer sizes."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig22_bbr_compete


def test_fig22_bbr_compete(benchmark):
    result = run_once(benchmark, fig22_bbr_compete.run,
                      buffer_bdp_multipliers=(2.0, 4.0), duration=40.0,
                      dt=BENCH_DT)
    throughput = result.data["throughput"]
    for multiplier, per_scheme in throughput.items():
        nimbus, cubic = per_scheme["nimbus"], per_scheme["cubic"]
        # Same ballpark as Cubic for every buffer size (the paper's claim).
        assert nimbus > 0.4 * cubic
        assert nimbus < 2.5 * max(cubic, 1e-9)
