"""Figure 21 / Appendix B: cross-flow completion times are no worse under
Nimbus than under Cubic for short flows, and Vegas (which cedes bandwidth)
gives the best cross-flow FCTs."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig21_fct


def test_fig21_fct(benchmark):
    result = run_once(benchmark, fig21_fct.run,
                      schemes=("nimbus", "cubic", "vegas"), duration=50.0,
                      dt=BENCH_DT)
    normalized = result.data["normalized_p95"]
    # Short-flow bins: Cubic's p95 FCT is at least as large as Nimbus's.
    short_bins = [label for label in ("15KB", "150KB")
                  if normalized["cubic"].get(label, 0) > 0]
    assert short_bins, "no short cross flows completed"
    assert any(normalized["cubic"][label] >= 0.9 for label in short_bins)
    # Vegas is the gentlest on cross traffic.
    assert all(normalized["vegas"][label] <= normalized["cubic"][label] + 0.5
               for label in short_bins)
