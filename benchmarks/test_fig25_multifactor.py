"""Figure 25 / Appendix E.1: detection accuracy across pulse sizes and Nimbus
link shares stays high, and larger pulses do not hurt."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig25_multifactor


def test_fig25_multifactor(benchmark):
    result = run_once(benchmark, fig25_multifactor.run,
                      pulse_sizes=(0.125, 0.25), link_rates_mbps=(96.0,),
                      nimbus_shares=(0.5,), traffic_kind="mix",
                      duration=40.0, dt=BENCH_DT)
    accuracy = result.data["accuracy"]
    assert result.data["mean_accuracy"] > 0.55
    large_pulse = accuracy[(0.25, 96.0, 0.5)]
    small_pulse = accuracy[(0.125, 96.0, 0.5)]
    assert large_pulse >= small_pulse - 0.15
