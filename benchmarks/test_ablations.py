"""Ablations of Nimbus design choices called out in DESIGN.md: FFT window
length, detection threshold, pulse shape, and the rejected time-domain
cross-correlation detector."""

import numpy as np

from conftest import BENCH_DT

from repro.core.elasticity import cross_correlation_detector, elasticity_metric
from repro.core.pulses import AsymmetricSinusoidPulse, SymmetricSinusoidPulse
from repro.experiments.accuracy_scenarios import CrossSpec, run_accuracy_scenario


def _signal(frequency=5.0, noise=1.0, duration=5.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(0, duration, 0.01)
    return np.sin(2 * np.pi * frequency * t) + rng.normal(0, noise, t.size)


def test_ablation_fft_window(benchmark):
    """Longer FFT windows separate elastic from inelastic more cleanly."""
    def evaluate():
        out = {}
        for duration in (1.0, 5.0):
            elastic = elasticity_metric(_signal(duration=duration), 0.01, 5.0)
            inelastic = elasticity_metric(
                np.random.default_rng(1).normal(0, 1.0, int(duration / 0.01)),
                0.01, 5.0)
            out[duration] = (elastic, inelastic)
        return out
    out = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    margin_short = out[1.0][0] / max(out[1.0][1], 1e-9)
    margin_long = out[5.0][0] / max(out[5.0][1], 1e-9)
    assert margin_long > margin_short


def test_ablation_threshold(benchmark):
    """eta_thresh = 2 separates a strongly elastic signal from noise."""
    def evaluate():
        elastic = elasticity_metric(_signal(noise=0.5), 0.01, 5.0)
        inelastic = elasticity_metric(
            np.random.default_rng(2).normal(0, 1.0, 500), 0.01, 5.0)
        return elastic, inelastic
    elastic, inelastic = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    assert inelastic < 2.0 <= elastic


def test_ablation_pulse_shape(benchmark):
    """The asymmetric pulse needs only a third of the base rate a symmetric
    pulse needs, while achieving the same detection accuracy."""
    def evaluate():
        spec = CrossSpec(kind="elastic", elastic_flows=1)
        asym = run_accuracy_scenario(
            "nimbus", spec, duration=30.0, dt=BENCH_DT,
            pulse_shape_factory=AsymmetricSinusoidPulse)
        sym = run_accuracy_scenario(
            "nimbus", spec, duration=30.0, dt=BENCH_DT,
            pulse_shape_factory=SymmetricSinusoidPulse)
        return asym, sym
    asym, sym = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    assert AsymmetricSinusoidPulse(5.0, 0.25).min_base_fraction() < \
        SymmetricSinusoidPulse(5.0, 0.25).min_base_fraction()
    assert asym.report.accuracy >= sym.report.accuracy - 0.2


def test_ablation_crosscorr(benchmark):
    """The time-domain cross-correlation strawman is far less selective than
    the frequency-domain metric when the response is delayed and noisy."""
    def evaluate():
        rng = np.random.default_rng(3)
        t = np.arange(0, 5.0, 0.01)
        s = np.sin(2 * np.pi * 5.0 * t)
        # Inelastic z: pure noise. The strawman's false-positive rate is the
        # fraction of noise realisations whose peak correlation crosses the
        # detection threshold; the FFT metric stays firmly below its own.
        false_positives = 0
        fft_false_positives = 0
        for i in range(20):
            z = rng.normal(0, 1.0, t.size)
            _, flagged = cross_correlation_detector(s, z, threshold=0.15)
            false_positives += int(flagged)
            fft_false_positives += int(
                elasticity_metric(z, 0.01, 5.0) >= 2.0)
        return false_positives, fft_false_positives
    cc_fp, fft_fp = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    assert fft_fp <= cc_fp
