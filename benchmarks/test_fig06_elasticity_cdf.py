"""Figure 6: the elasticity metric grows with the elastic share of cross
traffic; purely inelastic traffic sits near eta=1, purely elastic well above
the threshold of 2."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig06_elasticity_cdf


def test_fig06_elasticity_cdf(benchmark):
    result = run_once(benchmark, fig06_elasticity_cdf.run,
                      elastic_fractions=(0.0, 0.5, 1.0), duration=30.0,
                      dt=BENCH_DT)
    medians = result.data["median_eta"]
    # Monotone direction: fully elastic >> fully inelastic.
    assert medians[1.0] > medians[0.0]
    # Purely inelastic traffic stays below the threshold...
    assert medians[0.0] < 2.0
    # ...and any substantial elastic component pushes the median up.
    assert medians[1.0] > 1.5
    assert medians[0.5] > medians[0.0]
