"""Figure 4: elastic cross traffic reacts to rate pulses, inelastic does not."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig04_pulse_response


def test_fig04_pulse_response(benchmark):
    result = run_once(benchmark, fig04_pulse_response.run, duration=25.0,
                      dt=BENCH_DT)
    elastic = result.data["elastic"]
    inelastic = result.data["inelastic"]
    # The elastic cross traffic's estimated rate oscillates with the pulses
    # (visible as a much larger eta / peak at fp than for inelastic traffic).
    assert elastic["eta"] > 1.5 * inelastic["eta"]
    assert elastic["peak_at_fp"] > inelastic["peak_at_fp"]
