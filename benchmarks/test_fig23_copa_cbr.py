"""Figure 23 / Appendix D.1: against a low-rate CBR both Copa and Nimbus keep
delay low; against a high-rate CBR Copa misclassifies and suffers high delay
while Nimbus stays low."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig23_copa_cbr


def test_fig23_copa_cbr(benchmark):
    result = run_once(benchmark, fig23_copa_cbr.run,
                      cbr_fractions=(0.25, 0.83), duration=40.0, dt=BENCH_DT)
    delays = result.data["mean_queue_delay_ms"]
    # Low-rate CBR: both keep the queue small.
    assert delays["nimbus"][0.25] < 35.0
    assert delays["copa"][0.25] < 35.0
    # High-rate CBR: Copa's delay inflates well beyond Nimbus's.
    assert delays["copa"][0.83] > 1.5 * delays["nimbus"][0.83]
    assert delays["nimbus"][0.83] < 60.0
