"""Table 1: the detector classifies ACK-clocked protocols as elastic and
application-limited / constant-rate / slow-reacting traffic as inelastic."""

from conftest import BENCH_DT, run_once

from repro.experiments import table1_classification


def test_table1_classification(benchmark):
    classes = ("cubic", "reno", "vegas", "fixed-window", "app-limited",
               "constant-stream", "pcc-vivace")
    result = run_once(benchmark, table1_classification.run,
                      traffic_classes=classes, duration=35.0, dt=BENCH_DT)
    rows = result.data["rows"]
    # The headline rows of Table 1: loss-based ACK-clocked traffic is
    # elastic; application-limited and constant streams are inelastic.
    assert rows["cubic"]["classification"] == "elastic"
    assert rows["reno"]["classification"] == "elastic"
    assert rows["constant-stream"]["classification"] == "inelastic"
    assert rows["pcc-vivace"]["classification"] == "inelastic"
    # Overall: at least 5 of the 7 rows match the paper's table.
    correct = sum(1 for r in rows.values() if r["correct"])
    assert correct >= 5
