"""Figure 3: self-inflicted delay is the same for elastic and inelastic cross
traffic and therefore cannot be used as an elasticity signal."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig03_self_inflicted


def test_fig03_self_inflicted(benchmark):
    result = run_once(benchmark, fig03_self_inflicted.run,
                      phase_duration=25.0, dt=BENCH_DT)
    data = result.data
    self_elastic = data["self_inflicted_elastic_mean"]
    self_inelastic = data["self_inflicted_inelastic_mean"]
    # The self-inflicted delay looks nearly identical in both phases
    # (the paper's point): within a factor of two of each other...
    assert 0.4 < self_elastic / max(self_inelastic, 1e-9) < 2.5
    # ...and is roughly half of the total delay (the Cubic flow holds about
    # half of the queue because it holds about half of the throughput).
    assert self_elastic < 0.8 * data["total_elastic_mean"]
    assert data["total_elastic_mean"] > 30.0
