"""Figure 9: against WAN cross traffic Nimbus matches Cubic's throughput at a
much lower RTT, while Vegas loses throughput."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig09_wan


def test_fig09_wan(benchmark):
    result = run_once(benchmark, fig09_wan.run,
                      schemes=("nimbus", "cubic", "vegas"), duration=45.0,
                      dt=BENCH_DT)
    nimbus = result.schemes["nimbus"]
    cubic = result.schemes["cubic"]
    vegas = result.schemes["vegas"]
    # Throughput: Nimbus comparable to Cubic; Vegas below both.
    assert nimbus.summary.mean_throughput_mbps > \
        0.7 * cubic.summary.mean_throughput_mbps
    assert vegas.summary.mean_throughput_mbps < \
        nimbus.summary.mean_throughput_mbps
    # Delay: Nimbus clearly below Cubic, in the direction of Vegas.
    assert nimbus.extra["queue"]["mean"] < 0.8 * cubic.extra["queue"]["mean"]
