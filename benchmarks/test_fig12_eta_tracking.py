"""Figure 12: the elasticity metric tracks the true elastic byte fraction of
WAN cross traffic; overall mode accuracy is high."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig12_eta_tracking


def test_fig12_eta_tracking(benchmark):
    result = run_once(benchmark, fig12_eta_tracking.run, duration=60.0,
                      truth_threshold=0.5, dt=BENCH_DT)
    assert result.data["accuracy"] > 0.5
    assert len(result.data["eta_values"]) > 100
