"""Figures 18/19: across emulated Internet path profiles, Nimbus achieves
throughput comparable to Cubic/BBR with lower delay."""

import numpy as np

from conftest import BENCH_DT, run_once

from repro.experiments import internet_paths


def test_fig18_internet_paths(benchmark):
    profiles = internet_paths.DEFAULT_PROFILES[:3]
    result = run_once(benchmark, internet_paths.run, profiles=profiles,
                      schemes=("nimbus", "cubic", "bbr", "vegas"),
                      duration=30.0, dt=BENCH_DT)
    per_path = result.data["per_path"]
    tput_ratio = []
    delay_gap = []
    for path, schemes in per_path.items():
        tput_ratio.append(schemes["nimbus"]["throughput_mbps"]
                          / max(schemes["cubic"]["throughput_mbps"], 1e-9))
        delay_gap.append(schemes["cubic"]["mean_delay_ms"]
                         - schemes["nimbus"]["mean_delay_ms"])
    # Throughput comparable to Cubic on average across paths...
    assert float(np.mean(tput_ratio)) > 0.7
    # ...with lower delay on at least some paths and never dramatically worse.
    assert max(delay_gap) > 0.0
    assert float(np.mean(delay_gap)) > -10.0
