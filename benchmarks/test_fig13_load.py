"""Figure 13: Nimbus keeps its delay advantage over Cubic at 50% and 90%
cross-traffic load without giving up throughput."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig13_load


def test_fig13_load(benchmark):
    result = run_once(benchmark, fig13_load.run, loads=(0.5, 0.9),
                      pulse_sizes=(0.25,), baselines=("cubic",),
                      duration=40.0, dt=BENCH_DT)
    s = result.schemes
    for load in (50, 90):
        nimbus = s[f"nimbus0.25@load{load}"]
        cubic = s[f"cubic@load{load}"]
        assert nimbus.summary.mean_throughput_mbps > \
            0.6 * cubic.summary.mean_throughput_mbps
        assert nimbus.extra["queue"]["mean"] <= \
            cubic.extra["queue"]["mean"] + 5.0
    # Delay benefit is most pronounced at the lower load.
    assert s["nimbus0.25@load50"].extra["queue"]["mean"] < \
        0.85 * s["cubic@load50"].extra["queue"]["mean"]
