#!/usr/bin/env python
"""Engine microbenchmarks: the tracked perf trajectory of the simulator.

Times three representative scenarios end to end (no caching, no pytest):

* ``cruise``        — one Cubic flow on a 24 Mbit/s link (the tier-1 staple),
* ``contention16``  — sixteen Cubic flows sharing a 96 Mbit/s link,
* ``fig09_wan``     — a Nimbus flow against Poisson/heavy-tailed WAN cross
                      traffic at 50 % load (the Figure 9 regime, and the
                      historical hot spot: thousands of short flows churn
                      through the engine),
* ``fig09_fluid``   — the same regime with the cross-traffic crowd as one
                      fluid-aggregate class at the per-flow run's scale
                      (~2535 flows),
* ``fig09_fluid100k`` — the fluid class standing for 100 000 flows; the
                      pair demonstrates near-constant cost in the flow
                      count (tier-1 asserts the 100k run stays within
                      1.3x of the 2.5k run),
* ``parking_lot3``  — a Nimbus flow over a three-hop parking lot against
                      two single-hop Cubic cross flows (the multi-hop
                      topology hot path: per-hop service plus hop-forwarding
                      events).

Results are written to ``BENCH_engine.json`` at the repo root — one schema,
one file, appended to version control so every PR is held to the trajectory.
``--check`` compares a fresh run against the committed baseline and exits
non-zero when any tracked scenario regressed more than ``--threshold``
(default 2x), which is what the CI perf-smoke job runs.

Usage::

    python benchmarks/perf_engine.py                  # time + write JSON
    python benchmarks/perf_engine.py --check          # compare vs committed
    python benchmarks/perf_engine.py --scenario cruise --repeat 3
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Callable, Dict, Optional

# Allow running from a source checkout without installation, while still
# honouring a PYTHONPATH that points at another tree (A/B timing).
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, _SRC)

from repro.cc import Cubic  # noqa: E402
from repro.core.nimbus import Nimbus  # noqa: E402
from repro.runtime.build import (  # noqa: E402
    LinkSpec,
    make_multihop_network,
    make_network,
)
from repro.simulator import FluidClass, Flow, mbps_to_bytes_per_sec  # noqa: E402
from repro.traffic import WanTrafficGenerator, WanWorkloadConfig  # noqa: E402

#: Default location of the tracked trajectory file (repo root).
DEFAULT_OUTPUT = os.path.join(_ROOT, "BENCH_engine.json")

#: Schema version of the JSON payload.  v2 added ``schema_version`` (alias
#: of the historical ``schema`` key) and ``git_commit`` provenance.
SCHEMA = 2


def _git_commit() -> Optional[str]:
    """The source commit the numbers were recorded at, or ``None``.

    A ``-dirty`` suffix marks numbers recorded from a working tree with
    uncommitted changes, so a baseline can't silently claim provenance
    from a commit whose code it didn't actually run.
    """
    try:
        out = subprocess.run(
            ["git", "-C", _ROOT, "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10)
        # The trajectory file itself is excluded from the dirtiness probe:
        # re-recording it is the whole point of a baseline run, and a
        # modified BENCH_engine.json must not taint its own provenance.
        status = subprocess.run(
            ["git", "-C", _ROOT, "status", "--porcelain",
             "--untracked-files=no", "--", ".",
             ":(exclude)BENCH_engine.json"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    commit = out.stdout.strip()
    if out.returncode != 0 or not commit:
        return None
    if status.returncode == 0 and status.stdout.strip():
        commit += "-dirty"
    return commit


def _scenario_cruise() -> Dict[str, float]:
    """Single-flow cruise: one Cubic flow saturating a 24 Mbit/s link."""
    network = make_network(link_mbps=24.0, buffer_ms=100.0, dt=0.002, seed=0)
    network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="cubic"))
    return _run_and_measure(network, duration=30.0)


def _scenario_contention16() -> Dict[str, float]:
    """Sixteen Cubic flows with staggered starts sharing a 96 Mbit/s link."""
    network = make_network(link_mbps=96.0, buffer_ms=100.0, dt=0.002, seed=0)
    for index in range(16):
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05,
                              start_time=0.25 * index, name=f"f{index}"))
    return _run_and_measure(network, duration=10.0)


def _scenario_fig09_wan() -> Dict[str, float]:
    """Figure-9 regime: Nimbus vs heavy-tailed WAN cross traffic at 50 % load."""
    link_mbps = 96.0
    network = make_network(link_mbps=link_mbps, buffer_ms=100.0, dt=0.002,
                           seed=1)
    mu = mbps_to_bytes_per_sec(link_mbps)
    network.add_flow(Flow(cc=Nimbus(mu=mu), prop_rtt=0.05, name="nimbus"))
    generator = WanTrafficGenerator(network, WanWorkloadConfig(
        link_rate=mu, load=0.5, prop_rtt=0.05, seed=1))
    generator.start()
    return _run_and_measure(network, duration=15.0)


def _fig09_fluid(arrivals_per_sec: float) -> Dict[str, float]:
    """Figure-9 regime with the cross-traffic crowd as one fluid class.

    ``arrivals_per_sec`` sets how many background flows the 15 s run
    stands for; the class rescales flow sizes so the offered load stays
    at 50 % regardless, which is what makes the timing near-constant in
    the flow count.
    """
    link_mbps = 96.0
    network = make_network(link_mbps=link_mbps, buffer_ms=100.0, dt=0.002,
                           seed=1)
    mu = mbps_to_bytes_per_sec(link_mbps)
    network.add_flow(Flow(cc=Nimbus(mu=mu), prop_rtt=0.05, name="nimbus"))
    fluid = FluidClass("wan", mu, kind="elastic", load=0.5, rtt=0.05,
                       arrivals_per_sec=arrivals_per_sec, seed=1)
    network.attach_fluid_class(fluid)
    stats = _run_and_measure(network, duration=15.0)
    stats["cross_flows"] = float(fluid.flows_created)
    return stats


def _scenario_fig09_fluid() -> Dict[str, float]:
    """Fluid Figure 9 at the per-flow run's crowd size (~2535 flows/15 s)."""
    return _fig09_fluid(arrivals_per_sec=2535.0 / 15.0)


def _scenario_fig09_fluid100k() -> Dict[str, float]:
    """Fluid Figure 9 standing for 100 000 background flows in 15 s."""
    return _fig09_fluid(arrivals_per_sec=100000.0 / 15.0)


def _scenario_parking_lot3() -> Dict[str, float]:
    """Three-hop parking lot: Nimbus end to end, two one-hop Cubic crosses."""
    link_mbps = 48.0
    mu = mbps_to_bytes_per_sec(link_mbps)
    network = make_multihop_network(
        tuple(LinkSpec(f"hop{i + 1}", link_mbps, delay_ms=10.0,
                       buffer_ms=100.0) for i in range(3)),
        dt=0.002, seed=0, monitor="hop1")
    network.add_flow(Flow(cc=Nimbus(mu=mu), prop_rtt=0.05, name="main"))
    for index in ("hop1", "hop2"):
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05,
                              name=f"cross-{index}"), path=(index,))
    return _run_and_measure(network, duration=15.0)


SCENARIOS: Dict[str, Callable[[], Dict[str, float]]] = {
    "cruise": _scenario_cruise,
    "contention16": _scenario_contention16,
    "fig09_wan": _scenario_fig09_wan,
    "fig09_fluid": _scenario_fig09_fluid,
    "fig09_fluid100k": _scenario_fig09_fluid100k,
    "parking_lot3": _scenario_parking_lot3,
}


def _run_and_measure(network, duration: float) -> Dict[str, float]:
    start = time.perf_counter()
    network.run(duration)
    elapsed = time.perf_counter() - start
    ticks = int(round(network.now / network.dt))
    return {
        "seconds": elapsed,
        "sim_seconds": duration,
        "dt": network.dt,
        "ticks": ticks,
        "ticks_per_sec": ticks / elapsed if elapsed > 0 else 0.0,
        "flows": len(network.flows),
    }


def run_scenarios(names, repeat: int = 1) -> Dict[str, Dict[str, float]]:
    """Run each named scenario ``repeat`` times; keep the fastest timing."""
    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        best: Dict[str, float] | None = None
        for _ in range(max(1, repeat)):
            stats = SCENARIOS[name]()
            if best is None or stats["seconds"] < best["seconds"]:
                best = stats
        assert best is not None
        results[name] = best
        print(f"{name:<14} {best['seconds']:8.2f}s  "
              f"{best['ticks_per_sec']:>10.0f} ticks/s  "
              f"({best['flows']} flows)")
    return results


def write_report(results: Dict[str, Dict[str, float]], path: str) -> dict:
    report = {
        "schema": SCHEMA,
        "schema_version": SCHEMA,
        "bench": "engine",
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "git_commit": _git_commit(),
        "scenarios": results,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def check_against_baseline(results: Dict[str, Dict[str, float]],
                           baseline_path: str, threshold: float) -> int:
    """Exit code 0 when no tracked scenario regressed beyond ``threshold``."""
    try:
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read baseline {baseline_path}: {error}",
              file=sys.stderr)
        return 2
    commit = baseline.get("git_commit")
    if isinstance(commit, str) and commit.endswith("-dirty"):
        print(f"warning: baseline {baseline_path} was recorded from a "
              f"dirty working tree ({commit}); its numbers may not match "
              f"any committed revision — re-record from a clean tree",
              file=sys.stderr)
    failures = []
    for name, stats in sorted(results.items()):
        ref = baseline.get("scenarios", {}).get(name)
        if ref is None:
            print(f"{name}: no baseline entry (new scenario), skipping")
            continue
        ratio = stats["seconds"] / max(ref["seconds"], 1e-9)
        status = "OK" if ratio <= threshold else "REGRESSED"
        print(f"{name:<14} {ref['seconds']:7.2f}s -> {stats['seconds']:7.2f}s "
              f"({ratio:.2f}x)  {status}")
        if ratio > threshold:
            failures.append(name)
    if failures:
        print(f"perf regression (> {threshold:.1f}x) in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    compared = sum(1 for name in results
                   if name in baseline.get("scenarios", {}))
    print(f"perf check OK: {compared} scenario(s) within "
          f"{threshold:.2f}x of baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the simulator hot path on tracked scenarios.")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="Where to write the JSON report "
                             "(default: BENCH_engine.json at the repo root)")
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        choices=sorted(SCENARIOS), default=None,
                        help="Scenario subset (repeatable; default: all)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="Runs per scenario; the fastest is kept")
    parser.add_argument("--check", action="store_true",
                        help="Compare against the committed baseline instead "
                             "of overwriting it; exit 1 on regression")
    parser.add_argument("--baseline", default=DEFAULT_OUTPUT,
                        help="Baseline JSON for --check "
                             "(default: the committed BENCH_engine.json)")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="Allowed slowdown factor for --check (default 2)")
    args = parser.parse_args(argv)

    names = args.scenarios or sorted(SCENARIOS)
    results = run_scenarios(names, repeat=args.repeat)
    if args.check:
        # Keep the committed baseline untouched, but still emit the fresh
        # numbers when an explicit --output differs (CI uploads them as an
        # artifact of the perf-smoke job).
        if os.path.abspath(args.output) != os.path.abspath(args.baseline):
            write_report(results, args.output)
            print(f"wrote {args.output}")
        return check_against_baseline(results, args.baseline, args.threshold)
    write_report(results, args.output)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
