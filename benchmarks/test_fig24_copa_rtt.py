"""Figure 24 / Appendix D.2: with an equal-RTT NewReno competitor both schemes
compete; with a 4x-RTT competitor Copa stays in default mode and loses
throughput while Nimbus keeps its share."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig24_copa_rtt


def test_fig24_copa_rtt(benchmark):
    result = run_once(benchmark, fig24_copa_rtt.run, rtt_ratios=(1.0, 4.0),
                      duration=50.0, dt=BENCH_DT)
    tput = result.data["throughput"]
    fair = result.data["fair_share_mbps"]
    # Equal RTT: both get a meaningful share.
    assert tput["nimbus"][1.0] > 0.4 * fair
    # 4x RTT competitor: Nimbus retains at least as much as Copa, and a
    # healthy fraction of the fair share (RTT bias works in its favour).
    assert tput["nimbus"][4.0] >= tput["copa"][4.0] * 0.9
    assert tput["nimbus"][4.0] > 0.5 * fair
