"""Figure 10: Copa's throughput collapses for long periods against an elastic
flow; Nimbus keeps a fair share."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig10_copa_drop


def test_fig10_copa_drop(benchmark):
    result = run_once(benchmark, fig10_copa_drop.run, duration=50.0,
                      elastic_start=10.0, cross_rtt_ratio=1.0, dt=BENCH_DT)
    nimbus = result.schemes["nimbus"].extra
    copa = result.schemes["copa"].extra
    # Nimbus sustains more throughput than Copa while the elastic flow is
    # active, and spends less time starved below half its fair share.
    assert nimbus["throughput_during_elastic"] > \
        copa["throughput_during_elastic"]
    assert nimbus["starved_fraction"] <= copa["starved_fraction"] + 0.05
