"""Figure 8: under time-varying cross traffic Nimbus tracks its fair share
with low delay during inelastic periods, unlike Cubic (always high delay)."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig08_time_varying


def test_fig08_time_varying(benchmark):
    # A compressed version of the paper's schedule: inelastic+elastic mix,
    # purely elastic, purely inelastic.
    schedule = ((16, 1), (0, 2), (32, 0), (16, 0))
    result = run_once(benchmark, fig08_time_varying.run,
                      schemes=("nimbus", "cubic"), schedule=schedule,
                      phase_duration=20.0, dt=BENCH_DT)
    nimbus = result.schemes["nimbus"]
    cubic = result.schemes["cubic"]
    # Both schemes deliver broadly comparable throughput overall (the
    # reproduction's Nimbus gives up ~1/3 of Cubic's throughput in exchange
    # for roughly half the delay on this compressed schedule)...
    assert nimbus.summary.mean_throughput_mbps > \
        0.6 * cubic.summary.mean_throughput_mbps
    # ...but Nimbus's queueing delay is clearly lower (it spends the
    # inelastic periods in delay-control mode).
    assert nimbus.extra["queue"]["mean"] < 0.75 * cubic.extra["queue"]["mean"]
    # The detector tracks the schedule's ground truth reasonably well.
    assert nimbus.extra["mode_accuracy"] > 0.6
