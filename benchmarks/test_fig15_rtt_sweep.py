"""Figure 15: detection accuracy is insensitive to the cross traffic's RTT
for pure elastic and pure inelastic traffic, and stays usable for mixes."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig15_rtt_sweep


def test_fig15_rtt_sweep(benchmark):
    result = run_once(benchmark, fig15_rtt_sweep.run,
                      rtt_ratios=(0.5, 2.0), categories=("elastic", "poisson"),
                      duration=40.0, dt=BENCH_DT)
    accuracy = result.data["accuracy"]
    for ratio in (0.5, 2.0):
        assert accuracy["elastic"][ratio] > 0.55
        assert accuracy["poisson"][ratio] > 0.7
