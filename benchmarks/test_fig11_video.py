"""Figure 11: with 1080p (inelastic) video cross traffic Nimbus matches
Cubic's throughput at lower delay; with 4K (elastic) video Vegas collapses
while Nimbus stays competitive."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig11_video


def test_fig11_video(benchmark):
    result = run_once(benchmark, fig11_video.run,
                      schemes=("nimbus", "cubic", "vegas"),
                      video_kinds=("4k", "1080p"), duration=45.0, dt=BENCH_DT)
    s = result.schemes
    # 1080p (app-limited, inelastic): similar throughput, lower delay.
    assert s["nimbus@1080p"].summary.mean_throughput_mbps > \
        0.7 * s["cubic@1080p"].summary.mean_throughput_mbps
    assert s["nimbus@1080p"].extra["queue"]["mean"] < \
        0.8 * s["cubic@1080p"].extra["queue"]["mean"]
    # 4K (network-limited, elastic): Vegas gets starved, Nimbus does not.
    assert s["vegas@4k"].summary.mean_throughput_mbps < \
        0.6 * s["nimbus@4k"].summary.mean_throughput_mbps
