"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at reduced
scale (shorter durations, coarser tick) and asserts the *shape* of the
paper's result — who wins, in which direction, where the crossover lies —
rather than absolute numbers.  Each experiment is executed exactly once per
benchmark (``rounds=1``): the interesting measurement is the experiment's
outcome, with wall-clock time reported by pytest-benchmark as a bonus.
"""

from __future__ import annotations

import os
import sys

# Allow running the benchmarks from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: Simulation tick used across benchmarks: coarse enough to be quick, fine
#: enough for 5 Hz pulses and 50 ms RTTs.
BENCH_DT = 0.004


def run_once(benchmark, fn, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)
