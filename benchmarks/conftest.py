"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at reduced
scale (shorter durations, coarser tick) and asserts the *shape* of the
paper's result — who wins, in which direction, where the crossover lies —
rather than absolute numbers.  Each experiment is executed exactly once per
benchmark (``rounds=1``): the interesting measurement is the experiment's
outcome, with wall-clock time reported by pytest-benchmark as a bonus.

Execution goes through :mod:`repro.runtime`: the driver call becomes a
:class:`~repro.runtime.ScenarioSpec` and runs under the shared
:class:`~repro.runtime.BatchExecutor`, so a repeated benchmark run is
served from the on-disk result cache (``REPRO_CACHE_DIR`` /
``REPRO_NO_CACHE``) instead of re-simulating.

Benchmarks that fail at the seed are recorded in ``known_failures.json``
and collected as ``xfail(strict=False)``: CI stays green on the historical
failures while any *new* failure — or a regression in a passing benchmark —
turns the run red.  Delete an entry once its benchmark is fixed.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

# Allow running the benchmarks from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.runtime import BatchExecutor, ScenarioSpec  # noqa: E402

#: Simulation tick used across benchmarks: coarse enough to be quick, fine
#: enough for 5 Hz pulses and 50 ms RTTs.
BENCH_DT = 0.004

#: One executor for the whole benchmark session (shared cache statistics).
EXECUTOR = BatchExecutor()

_KNOWN_FAILURES_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                    "known_failures.json")


def run_once(benchmark, fn, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark.

    The (driver, kwargs) pair becomes a scenario spec executed by the
    shared runtime executor, so identical re-runs hit the result cache.
    """
    spec = ScenarioSpec.make(fn, **kwargs)
    return benchmark.pedantic(EXECUTOR.run_one, args=(spec,), rounds=1,
                              iterations=1, warmup_rounds=0)


def _load_known_failures() -> dict:
    with open(_KNOWN_FAILURES_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def pytest_collection_modifyitems(config, items):
    """Mark the seed's known-failing benchmarks as non-strict xfails."""
    known = _load_known_failures()
    for item in items:
        key = f"{os.path.basename(str(item.fspath))}::{item.name}"
        reason = known.get(key)
        if reason is not None:
            item.add_marker(pytest.mark.xfail(reason=reason, strict=False))
