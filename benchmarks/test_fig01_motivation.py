"""Figure 1: Nimbus matches Cubic's throughput against elastic cross traffic
and achieves much lower delay against inelastic cross traffic."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig01_motivation


def test_fig01_motivation(benchmark):
    result = run_once(benchmark, fig01_motivation.run,
                      schemes=("cubic", "basicdelay", "nimbus"),
                      phase_duration=25.0, dt=BENCH_DT)
    cubic = result.schemes["cubic"].extra
    delay_cc = result.schemes["basicdelay"].extra
    nimbus = result.schemes["nimbus"].extra

    # Cubic keeps the queue full in both phases (high delay throughout).
    assert cubic["inelastic_delay_ms"] > 40.0
    # The pure delay-control scheme is starved by the elastic Cubic flow.
    assert delay_cc["elastic_throughput"] < 0.5 * cubic["elastic_throughput"]
    # Nimbus competes against the elastic flow (within ~2x of Cubic's share)
    # and keeps the delay low once the cross traffic is inelastic.
    assert nimbus["elastic_throughput"] > 0.5 * cubic["elastic_throughput"]
    assert nimbus["inelastic_delay_ms"] < 0.6 * cubic["inelastic_delay_ms"]
    # Throughput against inelastic traffic is the spare capacity (~24 Mbit/s).
    assert abs(nimbus["inelastic_throughput"] - 24.0) < 8.0
