"""Figure 5: the cross-traffic FFT has a pronounced peak at fp only when the
cross traffic is elastic."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig05_fft


def test_fig05_fft(benchmark):
    result = run_once(benchmark, fig05_fft.run, duration=25.0, dt=BENCH_DT)
    elastic = result.data["elastic"]
    inelastic = result.data["inelastic"]
    # Elastic: the fp peak dominates its neighbourhood (eta above threshold).
    assert elastic["eta"] >= 1.5
    assert elastic["peak_at_fp"] > elastic["peak_neighbourhood"]
    # Inelastic: no dominant peak at fp.
    assert inelastic["eta"] < 2.0
