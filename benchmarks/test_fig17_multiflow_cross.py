"""Figure 17: several Nimbus flows take their aggregate fair share against
elastic cross traffic and keep delays low against inelastic cross traffic."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig17_multiflow_cross


def test_fig17_multiflow_cross(benchmark):
    result = run_once(benchmark, fig17_multiflow_cross.run, n_flows=3,
                      phase_duration=40.0, warmup=20.0, dt=BENCH_DT)
    data = result.data
    # Aggregate throughput within a factor of ~2 of the fair share in the
    # elastic phase, and at least the spare capacity in the inelastic phase.
    assert data["aggregate_elastic_mean"] > 0.5 * data["fair_share_elastic_mbps"]
    assert data["aggregate_inelastic_mean"] > 0.6 * data["fair_share_inelastic_mbps"]
    # Delays drop when the cross traffic becomes inelastic.
    assert data["delay_inelastic_mean_ms"] < data["delay_elastic_mean_ms"]
