"""Figure 14: Nimbus classifies more accurately than Copa when inelastic
traffic occupies most of the link and when elastic cross traffic has a much
larger RTT."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig14_accuracy_vs_copa


def test_fig14_accuracy_vs_copa(benchmark):
    result = run_once(benchmark, fig14_accuracy_vs_copa.run,
                      inelastic_shares=(0.5, 0.85),
                      inelastic_kinds=("poisson",),
                      rtt_ratios=(1.0, 4.0), duration=45.0, dt=BENCH_DT)
    inelastic = result.data["inelastic"]
    rtt = result.data["rtt"]
    # High inelastic load: Nimbus stays reasonably accurate, Copa degrades.
    assert inelastic["nimbus"][("poisson", 0.85)] > 0.5
    assert inelastic["nimbus"][("poisson", 0.85)] > \
        inelastic["copa"][("poisson", 0.85)]
    # Large cross-traffic RTT: Nimbus detects the elastic flow, Copa falters.
    assert rtt["nimbus"][4.0] > 0.6
    assert rtt["nimbus"][4.0] >= rtt["copa"][4.0] - 0.05
