"""Figure 16: multiple Nimbus flows share the link fairly, elect at most a
handful of pulsers, and keep delays low."""

from conftest import BENCH_DT, run_once

from repro.experiments import fig16_multiflow


def test_fig16_multiflow(benchmark):
    result = run_once(benchmark, fig16_multiflow.run, n_flows=3, stagger=15.0,
                      flow_duration=50.0, dt=BENCH_DT)
    data = result.data
    assert data["jain_fairness"] > 0.7
    # Decentralised election keeps concurrent pulsers low (paper: ~1).
    assert data["mean_pulsers"] <= 2.0
    # Flows spend the majority of their time in delay mode, keeping the
    # queue well below a buffer-filling scheme's level.
    assert sum(data["delay_mode_fraction"]) / len(data["delay_mode_fraction"]) > 0.5
    assert data["queue"]["mean"] < 60.0
