"""Figure 20 / Appendix A: on a path with inelastic cross traffic the
delay-control algorithm alone achieves Cubic-like throughput at much lower
delay."""

from conftest import BENCH_DT, run_once

from repro.experiments import internet_paths


def test_fig20_inelastic_paths(benchmark):
    result = run_once(benchmark, internet_paths.run_appendix_a,
                      duration=30.0, dt=BENCH_DT)
    cubic = result.schemes["cubic"]
    delay = result.schemes["nimbus-delay"]
    assert delay.summary.mean_throughput_mbps > \
        0.7 * cubic.summary.mean_throughput_mbps
    assert delay.extra["queue"]["mean"] < 0.7 * cubic.extra["queue"]["mean"]
