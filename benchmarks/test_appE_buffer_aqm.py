"""Appendix E.2: detection accuracy holds across buffer sizes and under PIE."""

from conftest import BENCH_DT, run_once

from repro.experiments import appE_buffer_aqm


def test_appE_buffer_aqm(benchmark):
    result = run_once(benchmark, appE_buffer_aqm.run,
                      buffer_bdp_multipliers=(1.0, 2.0), prop_rtts=(0.05,),
                      categories=("elastic", "poisson"),
                      pie_targets_bdp=(1.0,), duration=35.0, dt=BENCH_DT)
    accuracy = result.data["accuracy"]
    assert result.data["mean_accuracy"] > 0.6
    # Deep drop-tail buffers (the common case) classify well for both pure
    # traffic types.
    assert accuracy[("elastic", 0.05, 2.0, "droptail")] > 0.6
    assert accuracy[("poisson", 0.05, 2.0, "droptail")] > 0.7
