"""Figure 26 / Appendix F: PCC-Vivace looks inelastic at the default 5 Hz
pulses but is classified elastic when the pulses are slowed to 2 Hz."""

import numpy as np

from conftest import BENCH_DT, run_once

from repro.experiments import fig26_vivace_pulse


def test_fig26_vivace_pulse(benchmark):
    result = run_once(benchmark, fig26_vivace_pulse.run,
                      pulse_frequencies=(5.0, 2.0), duration=50.0,
                      dt=BENCH_DT)
    etas = result.data["eta_distributions"]
    median_5hz = float(np.median(etas[5.0])) if len(etas[5.0]) else 0.0
    median_2hz = float(np.median(etas[2.0])) if len(etas[2.0]) else 0.0
    # Slower pulses make the slow-reacting Vivace flow look more elastic.
    assert median_2hz > median_5hz
