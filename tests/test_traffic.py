"""Traffic generators: flow sizes, WAN workload, scripted phases."""

import pytest

from repro import quick_network
from repro.simulator import mbps_to_bytes_per_sec
from repro.traffic import (
    ELASTIC_THRESHOLD_BYTES,
    HeavyTailedFlowSizes,
    Phase,
    ScriptedCrossTraffic,
    WanTrafficGenerator,
    WanWorkloadConfig,
)


class TestFlowSizes:
    def test_sizes_positive_and_bounded(self):
        dist = HeavyTailedFlowSizes(seed=1)
        samples = dist.sample_many(2000)
        assert all(100.0 <= s.size_bytes <= dist.max_bytes for s in samples)

    def test_heavy_tail_present(self):
        dist = HeavyTailedFlowSizes(seed=2)
        sizes = sorted(s.size_bytes for s in dist.sample_many(5000))
        top_1pct = sizes[int(0.99 * len(sizes)):]
        # The top 1% of flows must be far larger than the median.
        assert min(top_1pct) > 20 * sizes[len(sizes) // 2]

    def test_most_flows_short_most_bytes_long(self):
        dist = HeavyTailedFlowSizes(seed=3)
        samples = dist.sample_many(5000)
        short = [s for s in samples if not s.elastic]
        elastic_bytes = sum(s.size_bytes for s in samples if s.elastic)
        total_bytes = sum(s.size_bytes for s in samples)
        assert len(short) / len(samples) > 0.5
        assert elastic_bytes / total_bytes > 0.5

    def test_elastic_flag_matches_threshold(self):
        dist = HeavyTailedFlowSizes(seed=4)
        for sample in dist.sample_many(500):
            assert sample.elastic == (sample.size_bytes > ELASTIC_THRESHOLD_BYTES)

    def test_arrival_rate_for_load(self):
        dist = HeavyTailedFlowSizes(seed=5)
        mu = mbps_to_bytes_per_sec(96)
        rate = dist.arrival_rate_for_load(mu, load=0.5)
        assert rate * dist.mean_bytes() == pytest.approx(0.5 * mu, rel=1e-6)

    def test_reproducibility(self):
        a = [s.size_bytes for s in HeavyTailedFlowSizes(seed=7).sample_many(50)]
        b = [s.size_bytes for s in HeavyTailedFlowSizes(seed=7).sample_many(50)]
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HeavyTailedFlowSizes(short_fraction=1.5)
        with pytest.raises(ValueError):
            HeavyTailedFlowSizes(pareto_shape=0.9)


class TestWanGenerator:
    @pytest.fixture(scope="class")
    def wan_run(self):
        network, _ = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
        config = WanWorkloadConfig(link_rate=mbps_to_bytes_per_sec(24),
                                   load=0.5, prop_rtt=0.05, seed=3)
        generator = WanTrafficGenerator(network, config)
        generator.start()
        network.run(30.0)
        return network, generator

    def test_flows_created(self, wan_run):
        _, generator = wan_run
        assert len(generator.records) > 5

    def test_offered_load_roughly_respected(self, wan_run):
        network, _ = wan_run
        tput = network.recorder.mean_throughput("cross", start=5.0)
        # Offered 12 Mbit/s; delivery should be in the right ballpark.
        assert 4.0 < tput < 20.0

    def test_some_flows_complete(self, wan_run):
        _, generator = wan_run
        completed = generator.completed_records()
        assert len(completed) > 0
        assert all(r.fct > 0 for r in completed)

    def test_elastic_byte_fraction_bounds(self, wan_run):
        _, generator = wan_run
        frac = generator.elastic_byte_fraction(0.0, 30.0)
        assert 0.0 <= frac <= 1.0

    def test_stop_halts_arrivals(self):
        network, _ = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
        config = WanWorkloadConfig(link_rate=mbps_to_bytes_per_sec(24),
                                   load=0.5, prop_rtt=0.05, seed=3)
        generator = WanTrafficGenerator(network, config)
        generator.start()
        network.run(5.0)
        generator.stop()
        count = len(generator.records)
        network.run(10.0)
        assert len(generator.records) == count


class TestScripted:
    def test_phase_lookup(self):
        phases = [Phase(duration=10.0, elastic_flows=1),
                  Phase(duration=10.0, inelastic_rate=1e6)]
        network, _ = quick_network(link_mbps=24, dt=0.004)
        script = ScriptedCrossTraffic(network=network, phases=phases)
        assert script.phase_at(5.0).has_elastic
        assert not script.phase_at(15.0).has_elastic
        assert script.phase_at(25.0) is None

    def test_elastic_present_ground_truth(self):
        phases = [Phase(duration=10.0), Phase(duration=10.0, elastic_flows=2)]
        network, _ = quick_network(link_mbps=24, dt=0.004)
        script = ScriptedCrossTraffic(network=network, phases=phases)
        assert not script.elastic_present(5.0)
        assert script.elastic_present(15.0)

    def test_fair_share(self):
        mu = mbps_to_bytes_per_sec(96)
        phases = [Phase(duration=10.0, elastic_flows=1),
                  Phase(duration=10.0, inelastic_rate=0.5 * mu)]
        network, _ = quick_network(link_mbps=96, dt=0.004)
        script = ScriptedCrossTraffic(network=network, phases=phases)
        assert script.fair_share(5.0, mu) == pytest.approx(mu / 2)
        assert script.fair_share(15.0, mu) == pytest.approx(mu / 2)

    def test_flows_start_and_stop(self):
        network, _ = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
        phases = [Phase(duration=8.0, elastic_flows=1),
                  Phase(duration=8.0, inelastic_rate=mbps_to_bytes_per_sec(6))]
        script = ScriptedCrossTraffic(network=network, phases=phases,
                                      prop_rtt=0.05)
        script.install()
        network.run(16.5)
        first = network.recorder.mean_throughput("cross", start=2.0, end=8.0)
        second = network.recorder.mean_throughput("cross", start=10.0,
                                                  end=16.0)
        assert first == pytest.approx(24.0, rel=0.25)   # backlogged Cubic
        assert second == pytest.approx(6.0, rel=0.3)    # 6 Mbit/s Poisson
        assert script.total_duration == pytest.approx(16.0)
