"""The Nimbus controller: detection, mode switching, pulsing, multi-flow roles."""

import numpy as np
import pytest

from repro import quick_network
from repro.cc import Cubic, NullCC, Vegas
from repro.core.nimbus import MODE_COMPETITIVE, MODE_DELAY, Nimbus
from repro.core.pulses import SymmetricSinusoidPulse
from repro.simulator import Flow, mbps_to_bytes_per_sec
from repro.traffic import PoissonSource

MU_24 = mbps_to_bytes_per_sec(24)


def run_nimbus(cross: str, duration: float = 35.0, link_mbps: float = 24,
               **nimbus_kwargs):
    """Run one Nimbus flow against the given cross traffic kind."""
    network, link = quick_network(link_mbps=link_mbps, buffer_ms=100, dt=0.004)
    mu = mbps_to_bytes_per_sec(link_mbps)
    nimbus = Nimbus(mu=mu, **nimbus_kwargs)
    flow = Flow(cc=nimbus, prop_rtt=0.05, name="nimbus")
    network.add_flow(flow)
    if cross == "elastic":
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="cross"))
    elif cross == "inelastic":
        network.add_flow(Flow(cc=NullCC(), prop_rtt=0.05,
                              source=PoissonSource(0.5 * mu, seed=2),
                              name="cross"))
    network.run(duration)
    return network, nimbus


class TestConstruction:
    def test_defaults(self):
        nimbus = Nimbus(mu=MU_24)
        assert nimbus.mode == MODE_DELAY
        assert isinstance(nimbus.competitive_cc, Cubic)
        assert nimbus.threshold == pytest.approx(2.0)

    def test_custom_inner_algorithms(self):
        nimbus = Nimbus(mu=MU_24, delay=Vegas())
        assert isinstance(nimbus.delay_cc, Vegas)

    def test_custom_pulse_shape(self):
        nimbus = Nimbus(mu=MU_24, pulse_shape_factory=SymmetricSinusoidPulse)
        assert isinstance(nimbus.current_pulse, SymmetricSinusoidPulse)

    def test_mu_property(self):
        assert Nimbus(mu=MU_24).mu == pytest.approx(MU_24)
        assert Nimbus(mu=None).mu >= 1.0


@pytest.mark.slow
class TestDetectionIntegration:
    def test_elastic_cross_traffic_detected(self):
        network, nimbus = run_nimbus("elastic")
        etas = [eta for t, eta in nimbus.eta_history
                if t > 15.0 and np.isfinite(eta)]
        # The elasticity metric sits around/above the threshold against a
        # backlogged Cubic flow (well above the ~0.3-0.5 seen for inelastic
        # traffic), and the flow ends up in competitive mode for the
        # majority of the post-detection period.
        assert float(np.median(etas)) > 1.0
        times, modes = network.recorder.mode_series("nimbus")
        active = [m for t, m in zip(times, modes) if t > 15.0 and m]
        assert active.count(MODE_COMPETITIVE) > 0.5 * len(active)

    def test_inelastic_cross_traffic_detected(self):
        _, nimbus = run_nimbus("inelastic")
        assert nimbus.last_eta < nimbus.threshold
        assert nimbus.mode == MODE_DELAY

    def test_low_delay_against_inelastic(self):
        network, _ = run_nimbus("inelastic")
        _, qd = network.recorder.link_queue_delay_series()
        assert float(np.mean(qd[len(qd) // 2:])) < 40.0

    def test_fair_share_against_elastic(self):
        network, _ = run_nimbus("elastic", duration=40.0)
        nimbus_tput = network.recorder.mean_throughput("nimbus", start=15.0)
        cross_tput = network.recorder.mean_throughput("cross", start=15.0)
        # Competitive to within a factor of ~2.5 (a pure delay controller is
        # starved to well under a third of the Cubic competitor's rate).
        assert nimbus_tput > 0.4 * cross_tput

    def test_grabs_spare_capacity_when_inelastic(self):
        network, _ = run_nimbus("inelastic")
        tput = network.recorder.mean_throughput("nimbus", start=15.0)
        assert tput == pytest.approx(12.0, rel=0.3)

    def test_eta_history_recorded(self):
        _, nimbus = run_nimbus("inelastic", duration=20.0)
        assert len(nimbus.eta_history) > 10
        times = [t for t, _ in nimbus.eta_history]
        assert times == sorted(times)

    def test_mu_estimation_without_configuration(self):
        network, link = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
        nimbus = Nimbus(mu=None)
        network.add_flow(Flow(cc=nimbus, prop_rtt=0.05, name="nimbus"))
        network.run(20.0)
        assert nimbus.mu == pytest.approx(MU_24, rel=0.25)


class TestRateAndPulsing:
    def test_rate_is_pulsed_in_single_flow_mode(self):
        network, nimbus = run_nimbus(cross=None, duration=10.0)
        # The pacing rate must reflect the pulse: sample the pulse shape.
        offsets = [nimbus.current_pulse.offset_fraction(t / 100.0)
                   for t in range(100)]
        assert max(offsets) > 0.2
        assert min(offsets) < 0.0

    def test_rate_floor_positive(self):
        network, nimbus = run_nimbus(cross=None, duration=5.0)
        assert nimbus.rate is not None and nimbus.rate > 0

    def test_switch_to_competitive_restores_rate(self):
        nimbus = Nimbus(mu=MU_24)
        flow = Flow(cc=nimbus, prop_rtt=0.05)
        flow.flow_id = 0
        flow.start(0.0)
        nimbus.measurement.on_ack(0.0, 1500, 0.05, 0.0)
        nimbus._record_rate(0.0, 0.5 * MU_24)
        nimbus._record_rate(5.0, 0.1 * MU_24)
        nimbus._switch_mode(MODE_COMPETITIVE, 5.0)
        # The competitive window is seeded from the max of the rate 5 s ago
        # and now, i.e. at least 0.5*mu*rtt.
        assert nimbus.competitive_cc.cwnd >= 0.5 * MU_24 * 0.05 * 0.99

    def test_switch_to_delay_sets_rate(self):
        nimbus = Nimbus(mu=MU_24)
        flow = Flow(cc=nimbus, prop_rtt=0.05)
        flow.flow_id = 0
        flow.start(0.0)
        nimbus.measurement.on_ack(0.0, 1500, 0.05, 0.0)
        nimbus.mode = MODE_COMPETITIVE
        nimbus.competitive_cc.cwnd = 0.5 * MU_24 * 0.05
        nimbus._switch_mode(MODE_DELAY, 1.0)
        assert nimbus.delay_cc.rate == pytest.approx(0.5 * MU_24, rel=0.2)


@pytest.mark.slow
class TestMultiFlow:
    def test_roles_and_fair_share(self):
        network, _ = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
        flows = []
        for i in range(2):
            nimbus = Nimbus(mu=MU_24, multi_flow=True, seed=i)
            flow = Flow(cc=nimbus, prop_rtt=0.05, name=f"n{i}")
            network.add_flow(flow)
            flows.append(flow)
        network.run(40.0)
        rates = [network.recorder.mean_throughput(f"n{i}", start=20.0)
                 for i in range(2)]
        assert sum(rates) == pytest.approx(24.0, rel=0.2)
        roles = {f.cc.role for f in flows}
        # At most one pulser at the end of the run.
        assert sum(1 for f in flows if f.cc.role == "pulser") <= 1
        assert roles  # non-empty sanity

    def test_watchers_stay_in_delay_mode_without_cross_traffic(self):
        network, _ = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
        for i in range(2):
            nimbus = Nimbus(mu=MU_24, multi_flow=True, seed=10 + i)
            network.add_flow(Flow(cc=nimbus, prop_rtt=0.05, name=f"n{i}"))
        network.run(40.0)
        _, qd = network.recorder.link_queue_delay_series()
        assert float(np.mean(qd[len(qd) // 2:])) < 50.0
