"""Queue admission policies: DropTail and PIE."""

import pytest

from repro.simulator.aqm import DropTail, Pie


class TestDropTail:
    def test_admit_all_when_empty(self):
        policy = DropTail(buffer_bytes=10_000)
        assert policy.admit(1500, 0.0, 0.0, now=0.0) == pytest.approx(1500)

    def test_partial_admit_near_full(self):
        policy = DropTail(buffer_bytes=10_000)
        assert policy.admit(1500, 9_000, 0.0, now=0.0) == pytest.approx(1000)

    def test_reject_when_full(self):
        policy = DropTail(buffer_bytes=10_000)
        assert policy.admit(1500, 10_000, 0.0, now=0.0) == 0.0

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            DropTail(buffer_bytes=0)


class TestPie:
    def test_no_drops_below_target(self):
        pie = Pie(target_delay=0.02, buffer_bytes=100_000)
        admitted = [pie.admit(1500, 1000, 0.001, now=t * 0.01)
                    for t in range(100)]
        assert all(a == pytest.approx(1500) for a in admitted)

    def test_drop_probability_grows_above_target(self):
        pie = Pie(target_delay=0.02, buffer_bytes=1e9)
        for t in range(200):
            pie.admit(1500, 50_000, 0.2, now=t * 0.02)
        assert pie.drop_prob > 0.0

    def test_drop_probability_recovers(self):
        pie = Pie(target_delay=0.02, buffer_bytes=1e9)
        for t in range(200):
            pie.admit(1500, 50_000, 0.2, now=t * 0.02)
        high = pie.drop_prob
        for t in range(200, 600):
            pie.admit(1500, 100, 0.0, now=t * 0.02)
        assert pie.drop_prob < high

    def test_hard_buffer_cap(self):
        pie = Pie(target_delay=0.02, buffer_bytes=10_000)
        assert pie.admit(1500, 10_000, 0.5, now=0.0) == 0.0

    def test_drop_prob_bounded(self):
        pie = Pie(target_delay=0.001, buffer_bytes=1e9)
        for t in range(1000):
            pie.admit(1500, 1e6, 1.0, now=t * 0.02)
        assert 0.0 <= pie.drop_prob <= 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Pie(target_delay=0.0, buffer_bytes=1000)
        with pytest.raises(ValueError):
            Pie(target_delay=0.01, buffer_bytes=0)
