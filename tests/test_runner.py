"""The command-line experiment runner."""

import pytest

import _toy_driver
from repro.experiments import EXPERIMENT_INDEX, runner


@pytest.fixture
def toy_index(monkeypatch):
    """Register the microscopic fake driver under the id ``toy``."""
    monkeypatch.setitem(EXPERIMENT_INDEX, "toy", _toy_driver)
    return "toy"


def test_list_exits_cleanly(capsys):
    assert runner.main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig09" in out and "table1" in out


def test_unknown_experiment():
    assert runner.main(["figXX"]) == 2


def test_parse_overrides():
    assert runner._parse_overrides(["load=0.9", "seed=3"]) == {
        "load": 0.9, "seed": 3.0}
    with pytest.raises(ValueError):
        runner._parse_overrides(["oops"])
    with pytest.raises(ValueError):
        runner._parse_overrides(["seed=banana"])


def test_bad_override_exits_with_error(toy_index, capsys):
    assert runner.main(["toy", "--set", "oops"]) == 2
    assert "name=value" in capsys.readouterr().err
    assert runner.main(["toy", "--set", "seed=banana"]) == 2
    assert "numeric" in capsys.readouterr().err


def test_single_run_via_runtime(toy_index, capsys):
    assert runner.main(["toy", "--set", "seed=4", "--duration", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "== toy ==" in out
    assert "mean:" in out and "n:" in out


def test_duration_dropped_for_drivers_without_duration(monkeypatch, capsys):
    import _toy_driver2

    monkeypatch.setitem(EXPERIMENT_INDEX, "toy2", _toy_driver2)
    assert runner.main(["toy2", "--duration", "9.0"]) == 0
    assert "== toy ==" in capsys.readouterr().out


def test_duration_sweep_axis_rejected_without_duration(monkeypatch, capsys):
    import _toy_driver2

    monkeypatch.setitem(EXPERIMENT_INDEX, "toy2", _toy_driver2)
    assert runner.main(["sweep", "toy2", "--set", "duration=1,2"]) == 2
    assert "cannot be a sweep axis" in capsys.readouterr().err
    # A sweep over a parameter the driver does accept still works.
    assert runner.main(["sweep", "toy2", "--set", "seed=1,2"]) == 0
    assert capsys.readouterr().out.count("--- toy2 [") == 2


def test_parse_sweep_overrides():
    fixed, axes = runner._parse_sweep_overrides(
        ["seed=1,2,3", "load=0.9", "scale=1,2"])
    assert fixed == {"load": 0.9}
    assert axes == {"seed": [1.0, 2.0, 3.0], "scale": [1.0, 2.0]}
    with pytest.raises(ValueError):
        runner._parse_sweep_overrides(["oops"])
    with pytest.raises(ValueError):
        runner._parse_sweep_overrides(["seed=1,banana"])
    with pytest.raises(ValueError):
        runner._parse_sweep_overrides(["seed=,"])


def test_sweep_mode_expands_the_grid(toy_index, capsys):
    code = runner.main(["sweep", "toy", "--duration", "0.5",
                        "--set", "seed=1,2,3", "--set", "scale=2"])
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("--- toy [") == 3
    for seed in (1, 2, 3):
        assert f"seed={seed}" in out
    # Every row shows the *full* parameter tuple: the fixed --set override
    # and the duration ride along with the swept axis.
    assert out.count("scale=2") == 3
    assert out.count("duration=0.5") == 3


def test_sweep_rows_disambiguate_multi_axis_combinations(toy_index, capsys):
    """With several axes every row names every (axis, value) pair, swept
    axes first in command-line order, so no two rows print identically."""
    code = runner.main(["sweep", "toy", "--duration", "0.5",
                        "--set", "scale=1,2", "--set", "seed=3,4"])
    assert code == 0
    out = capsys.readouterr().out
    rows = [line for line in out.splitlines()
            if line.startswith("--- toy [")]
    assert len(rows) == 4
    assert len(set(rows)) == 4
    for scale in (1, 2):
        for seed in (3, 4):
            assert any(f"[scale={scale}, seed={seed}," in row
                       for row in rows), rows


def test_sweep_mode_requires_target(capsys):
    assert runner.main(["sweep"]) == 2
    assert "experiment id" in capsys.readouterr().err


def test_sweep_unknown_experiment(capsys):
    assert runner.main(["sweep", "figXX"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


@pytest.mark.slow
def test_runs_a_small_experiment(capsys):
    code = runner.main(["fig23", "--dt", "0.004", "--duration", "15",
                        "--set", "seed=1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig23" in out


def test_profile_flag_reports_timings_and_cache_counts(toy_index, capsys):
    assert runner.main(["toy", "--set", "seed=11", "--duration", "0.5",
                        "--profile"]) == 0
    out = capsys.readouterr().out
    assert "--- profile ---" in out
    assert "0 cache hit(s), 1 miss(es), 1 executed" in out
    # Second identical invocation is served entirely from the cache.
    assert runner.main(["toy", "--set", "seed=11", "--duration", "0.5",
                        "--profile"]) == 0
    out = capsys.readouterr().out
    assert "cached" in out
    assert "1 cache hit(s), 0 miss(es), 0 executed" in out


def test_no_profile_by_default(toy_index, capsys):
    assert runner.main(["toy", "--set", "seed=12", "--duration", "0.5"]) == 0
    assert "--- profile ---" not in capsys.readouterr().out
