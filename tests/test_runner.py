"""The command-line experiment runner."""

import pytest

from repro.experiments import runner


def test_list_exits_cleanly(capsys):
    assert runner.main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig09" in out and "table1" in out


def test_unknown_experiment():
    assert runner.main(["figXX"]) == 2


def test_parse_overrides():
    assert runner._parse_overrides(["load=0.9", "seed=3"]) == {
        "load": 0.9, "seed": 3.0}
    with pytest.raises(ValueError):
        runner._parse_overrides(["oops"])


@pytest.mark.slow
def test_runs_a_small_experiment(capsys):
    code = runner.main(["fig23", "--dt", "0.004", "--duration", "15",
                        "--set", "seed=1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig23" in out
