"""Multi-flow coordination primitives: election and watcher filtering (§6)."""

import math
import random

import pytest

from repro.core.multiflow import PulserElection, WatcherRateFilter


class TestPulserElection:
    def test_probability_formula(self):
        election = PulserElection(kappa=1.0, decision_interval=0.01,
                                  fft_duration=5.0)
        # Eq. 5: p = kappa * tau / FFT * (R / mu).
        assert election.election_probability(50.0, 100.0) == pytest.approx(
            1.0 * 0.01 / 5.0 * 0.5)

    def test_probability_bounded(self):
        election = PulserElection(kappa=1e6)
        assert election.election_probability(1.0, 1.0) <= 1.0
        assert election.election_probability(0.0, 1.0) == 0.0
        assert election.election_probability(1.0, 0.0) == 0.0

    def test_expected_pulsers_equals_kappa(self):
        election = PulserElection(kappa=0.8)
        assert election.expected_pulsers_per_window(1.0) == pytest.approx(0.8)
        assert election.expected_pulsers_per_window(0.5) == pytest.approx(0.4)

    def test_decision_interval_rate_limits(self):
        election = PulserElection(kappa=1.0, decision_interval=0.01,
                                  rng=random.Random(0))
        election.should_become_pulser(0.0, 50.0, 100.0)
        # A second roll within the same decision interval never fires.
        assert election.should_become_pulser(0.005, 1e12, 100.0) is False

    def test_empirical_election_rate(self):
        election = PulserElection(kappa=1.0, decision_interval=0.01,
                                  fft_duration=5.0, rng=random.Random(1))
        elections = 0
        trials = 50_000
        for i in range(trials):
            if election.should_become_pulser(i * 0.01, 100.0, 100.0):
                elections += 1
        # Expected once per FFT window (500 decisions) => ~100 over 50k.
        assert elections == pytest.approx(trials / 500, rel=0.35)

    def test_demotion_probability(self):
        election = PulserElection(demotion_probability=1.0,
                                  rng=random.Random(0))
        assert election.should_demote() is True
        election = PulserElection(demotion_probability=0.0,
                                  rng=random.Random(0))
        assert election.should_demote() is False

    def test_invalid_kappa(self):
        with pytest.raises(ValueError):
            PulserElection(kappa=0.0)


class TestWatcherRateFilter:
    def test_passes_dc(self):
        filt = WatcherRateFilter(cutoff_frequency=5.0, update_interval=0.01)
        out = 0.0
        for _ in range(1000):
            out = filt.filter(100.0)
        assert out == pytest.approx(100.0, rel=1e-3)

    def test_attenuates_pulse_frequency(self):
        filt = WatcherRateFilter(cutoff_frequency=5.0, update_interval=0.01)
        outputs = []
        for i in range(2000):
            t = i * 0.01
            outputs.append(filt.filter(100.0 + 50.0 * math.sin(2 * math.pi
                                                               * 5.0 * t)))
        tail = outputs[1000:]
        swing = (max(tail) - min(tail)) / 2.0
        # A first-order filter at its cutoff attenuates to ~0.7; at 5 Hz with
        # a 5 Hz cutoff it should clearly reduce the 50-unit swing.
        assert swing < 0.75 * 50.0

    def test_passes_slow_variation(self):
        filt = WatcherRateFilter(cutoff_frequency=5.0, update_interval=0.01)
        outputs = []
        for i in range(4000):
            t = i * 0.01
            outputs.append(filt.filter(100.0 + 50.0 * math.sin(2 * math.pi
                                                               * 0.05 * t)))
        tail = outputs[2000:]
        swing = (max(tail) - min(tail)) / 2.0
        assert swing > 0.9 * 50.0

    def test_reset(self):
        filt = WatcherRateFilter(cutoff_frequency=5.0)
        filt.filter(100.0)
        filt.reset()
        assert filt.filter(0.0) == pytest.approx(0.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WatcherRateFilter(cutoff_frequency=0.0)
        with pytest.raises(ValueError):
            WatcherRateFilter(cutoff_frequency=5.0, update_interval=0.0)
