"""Cross-traffic rate estimator (Eq. 1) and its sampled time series."""

import numpy as np
import pytest

from repro.core.estimator import CrossTrafficEstimator, estimate_cross_traffic
from repro.simulator.measurement import FlowMeasurement
from repro.simulator.units import MSS_BYTES, mbps_to_bytes_per_sec

MU = mbps_to_bytes_per_sec(96)


class TestEquationOne:
    def test_no_cross_traffic(self):
        # R == S means the flow gets everything it sends: z = mu - S... no:
        # z = mu*S/R - S = mu - S when R == S and the link is saturated.
        # With S == mu, z must be zero.
        assert estimate_cross_traffic(MU, MU, MU) == pytest.approx(0.0)

    def test_half_share(self):
        # The flow receives half of what would be its saturated share:
        # S = mu/2 delivered at R = mu/2 with the link full means the cross
        # traffic fills the other half.
        z = estimate_cross_traffic(MU, MU / 2, MU / 2)
        assert z == pytest.approx(MU / 2)

    def test_proportional_share(self):
        # S / (S + z_true) == R / mu  =>  the estimator inverts exactly.
        z_true = 0.3 * MU
        s = 0.5 * MU
        r = MU * s / (s + z_true)
        assert estimate_cross_traffic(MU, s, r) == pytest.approx(z_true, rel=1e-9)

    def test_clamped_to_physical_range(self):
        assert estimate_cross_traffic(MU, MU, 0.01 * MU) <= MU
        assert estimate_cross_traffic(MU, 0.1 * MU, MU) >= 0.0

    def test_degenerate_inputs(self):
        assert estimate_cross_traffic(MU, 0.0, MU) == 0.0
        assert estimate_cross_traffic(MU, MU, 0.0) == 0.0

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            estimate_cross_traffic(0.0, 1.0, 1.0)


class TestCrossTrafficEstimator:
    def _measurement_at_half_link(self) -> FlowMeasurement:
        """Packets sent and delivered at mu/2 with a constant 50 ms RTT.

        With the link saturated, S == R == mu/2 implies (Eq. 1) that the
        cross traffic occupies the other half of the link.
        """
        m = FlowMeasurement()
        gap = MSS_BYTES / (0.5 * MU)
        for i in range(200):
            send_t = i * gap
            m.on_send(send_t, MSS_BYTES)
            m.on_ack(send_t + 0.05, MSS_BYTES, 0.05, 0.0)
        return m

    def test_sampling_interval_respected(self):
        est = CrossTrafficEstimator(MU, sample_interval=0.01)
        m = self._measurement_at_half_link()
        now = 200 * MSS_BYTES / (0.5 * MU)
        assert est.maybe_sample(now, m) is not None
        assert est.maybe_sample(now + 0.005, m) is None
        assert est.maybe_sample(now + 0.011, m) is not None

    def test_estimates_cross_share(self):
        est = CrossTrafficEstimator(MU, sample_interval=0.01)
        m = self._measurement_at_half_link()
        now = 200 * MSS_BYTES / (0.5 * MU)
        z = est.maybe_sample(now, m)
        # The flow receives half the link, so the cross traffic is ~half.
        assert z == pytest.approx(0.5 * MU, rel=0.15)

    def test_series_retention(self):
        est = CrossTrafficEstimator(MU, sample_interval=0.01, history=1.0)
        for i in range(500):
            est.add_sample(i * 0.01, 0.5 * MU, 0.4 * MU)
        assert len(est) <= est.maxlen
        assert est.z_series(0.5).shape[0] == 50

    def test_add_sample_and_latest(self):
        est = CrossTrafficEstimator(MU)
        est.add_sample(0.0, 0.5 * MU, 0.25 * MU)
        z, s, r = est.latest()
        assert s == pytest.approx(0.5 * MU)
        assert r == pytest.approx(0.25 * MU)
        # The raw Eq. (1) value (1.5 mu) exceeds the link rate, so the
        # estimate is clamped to mu.
        assert z == pytest.approx(MU)

    def test_latest_empty(self):
        assert CrossTrafficEstimator(MU).latest() == (0.0, 0.0, 0.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CrossTrafficEstimator(0.0)
        with pytest.raises(ValueError):
            CrossTrafficEstimator(MU, sample_interval=0.0)

    def test_series_are_aligned(self):
        est = CrossTrafficEstimator(MU)
        for i in range(20):
            est.add_sample(i * 0.01, 0.5 * MU, 0.5 * MU)
        assert len(est.z_series()) == len(est.s_series()) == len(est.r_series())
        assert len(est.times()) == len(est.z_series())
        assert np.all(np.diff(est.times()) > 0)
