"""Rate-based algorithms: BBR, PCC-Vivace, and the simple reference senders."""

import pytest

from repro import quick_network
from repro.cc import Bbr, ConstantRate, FixedWindow, NullCC, Vivace
from repro.cc.bbr import PROBE_BW, STARTUP
from repro.cc.misc import AppLimited
from repro.simulator import Flow, mbps_to_bytes_per_sec
from repro.simulator.source import PacedSource
from repro.simulator.units import MSS_BYTES


class TestBbrUnit:
    def test_initial_state(self):
        bbr = Bbr()
        assert bbr.state == STARTUP

    def test_model_from_samples(self):
        bbr = Bbr()
        flow = Flow(cc=bbr, prop_rtt=0.05)
        flow.flow_id = 0
        flow.start(0.0)
        for i in range(200):
            t = i * 0.01
            bbr.measurement.on_send(t, MSS_BYTES)
            bbr.measurement.on_ack(t + 0.05, MSS_BYTES, 0.05, 0.0)
            bbr.on_control_tick(t + 0.05, 0.01)
        assert bbr.btl_bw > 0
        assert bbr.rt_prop == pytest.approx(0.05, rel=0.05)
        assert bbr.rate is not None and bbr.rate > 0


class TestBbrIntegration:
    @pytest.fixture(scope="class")
    def bbr_run(self):
        network, link = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
        flow = Flow(cc=Bbr(), prop_rtt=0.05, name="bbr")
        network.add_flow(flow)
        network.run(25.0)
        return network, flow

    def test_reaches_link_rate(self, bbr_run):
        network, _ = bbr_run
        assert network.recorder.mean_throughput("bbr", start=10.0) == \
            pytest.approx(24.0, rel=0.15)

    def test_exits_startup(self, bbr_run):
        _, flow = bbr_run
        assert flow.cc.state in (PROBE_BW, "probe_rtt", "drain")

    def test_bandwidth_estimate_close_to_link(self, bbr_run):
        _, flow = bbr_run
        assert flow.cc.btl_bw == pytest.approx(mbps_to_bytes_per_sec(24),
                                               rel=0.2)

    def test_queue_bounded_by_inflight_cap(self, bbr_run):
        network, _ = bbr_run
        import numpy as np
        _, qd = network.recorder.link_queue_delay_series()
        # BBR alone should not sit at the full 100 ms buffer.
        assert float(np.mean(qd[len(qd) // 2:])) < 90.0


class TestVivace:
    def test_rate_grows_on_empty_link(self):
        network, _ = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
        flow = Flow(cc=Vivace(), prop_rtt=0.05, name="vivace")
        network.add_flow(flow)
        network.run(20.0)
        assert network.recorder.mean_throughput("vivace", start=10.0) > 10.0

    def test_utility_penalises_latency_growth(self):
        rate_mbps = 10.0
        flat = rate_mbps ** Vivace.EXPONENT
        penalised = (rate_mbps ** Vivace.EXPONENT
                     - Vivace.LATENCY_COEFF * rate_mbps * 0.05)
        assert penalised < flat

    def test_reacts_slower_than_an_rtt(self):
        # Vivace only changes its base rate once per three monitor intervals,
        # i.e. not within a single RTT: this is what makes it look inelastic
        # to 5 Hz pulses.
        vivace = Vivace()
        flow = Flow(cc=vivace, prop_rtt=0.05)
        flow.flow_id = 0
        flow.start(0.0)
        vivace.measurement.on_ack(0.0, MSS_BYTES, 0.05, 0.0)
        base_before = vivace._base_rate
        vivace.on_control_tick(0.01, 0.01)
        vivace.on_control_tick(0.06, 0.01)
        assert vivace._base_rate == pytest.approx(base_before)


class TestReferenceSenders:
    def test_constant_rate_is_inelastic(self):
        assert ConstantRate(1e6).elastic is False

    def test_constant_rate_invalid(self):
        with pytest.raises(ValueError):
            ConstantRate(0)

    def test_fixed_window_is_elastic(self):
        fw = FixedWindow(window_segments=50)
        assert fw.elastic is True
        assert fw.cwnd == pytest.approx(50 * MSS_BYTES)

    def test_null_cc_imposes_no_limits(self):
        null = NullCC()
        assert null.cwnd_bytes is None
        assert null.pacing_rate is None
        assert null.elastic is False

    def test_app_limited_delegates(self):
        inner_limits = AppLimited()
        assert inner_limits.elastic is False
        assert inner_limits.cwnd_bytes == inner_limits.inner.cwnd_bytes

    def test_app_limited_flow_stays_below_fair_share(self):
        network, _ = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
        mu = mbps_to_bytes_per_sec(24)
        network.add_flow(Flow(cc=AppLimited(), prop_rtt=0.05,
                              source=PacedSource(0.2 * mu), name="applim"))
        network.run(10.0)
        assert network.recorder.mean_throughput("applim", start=3.0) == \
            pytest.approx(0.2 * 24, rel=0.15)
