"""Shared pytest fixtures and path setup for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import quick_network  # noqa: E402
from repro.simulator import Flow, mbps_to_bytes_per_sec  # noqa: E402
from repro.cc import Cubic, NullCC  # noqa: E402
from repro.traffic import PoissonSource  # noqa: E402


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the scenario-result cache at a per-test directory.

    Unit tests must neither read stale entries from nor write entries into
    the user's real ``~/.cache/repro-runtime``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def small_network():
    """A 24 Mbit/s, 100 ms-buffer network with a coarse tick for fast tests."""
    network, link = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
    return network, link


@pytest.fixture
def mu_24() -> float:
    """Link rate of the small_network fixture, in bytes/s."""
    return mbps_to_bytes_per_sec(24)


def add_cubic(network, rtt: float = 0.05, name: str = "cubic") -> Flow:
    """Convenience used by several test modules."""
    flow = Flow(cc=Cubic(), prop_rtt=rtt, name=name)
    network.add_flow(flow)
    return flow


def add_poisson(network, rate: float, rtt: float = 0.05,
                name: str = "poisson", seed: int = 1) -> Flow:
    """Add an inelastic Poisson cross flow."""
    flow = Flow(cc=NullCC(), prop_rtt=rtt,
                source=PoissonSource(rate, seed=seed), name=name)
    network.add_flow(flow)
    return flow
