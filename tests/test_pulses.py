"""Pulse shapes: zero mean, amplitudes, minimum base rate (Fig. 7)."""

import math

import numpy as np
import pytest

from repro.core.pulses import (
    AsymmetricSinusoidPulse,
    NoPulse,
    SquareWavePulse,
    SymmetricSinusoidPulse,
)

SHAPES = [AsymmetricSinusoidPulse, SymmetricSinusoidPulse, SquareWavePulse]


def integrate(pulse, cycles=1, samples_per_cycle=10_000):
    ts = np.linspace(0, cycles * pulse.period, cycles * samples_per_cycle,
                     endpoint=False)
    values = np.array([pulse.offset_fraction(t) for t in ts])
    return values, ts


@pytest.mark.parametrize("shape", SHAPES)
def test_zero_mean_over_period(shape):
    pulse = shape(frequency=5.0, pulse_fraction=0.25)
    values, _ = integrate(pulse)
    assert abs(values.mean()) < 1e-3


@pytest.mark.parametrize("shape", SHAPES)
def test_periodicity(shape):
    pulse = shape(frequency=5.0, pulse_fraction=0.25)
    for t in (0.01, 0.07, 0.13):
        assert pulse.offset_fraction(t) == pytest.approx(
            pulse.offset_fraction(t + pulse.period), abs=1e-9)


class TestAsymmetricPulse:
    def test_peak_amplitude(self):
        pulse = AsymmetricSinusoidPulse(frequency=5.0, pulse_fraction=0.25)
        values, _ = integrate(pulse)
        assert values.max() == pytest.approx(0.25, rel=1e-3)

    def test_negative_amplitude_is_one_third(self):
        pulse = AsymmetricSinusoidPulse(frequency=5.0, pulse_fraction=0.25)
        values, _ = integrate(pulse)
        assert values.min() == pytest.approx(-0.25 / 3, rel=1e-3)

    def test_positive_quarter_negative_three_quarters(self):
        pulse = AsymmetricSinusoidPulse(frequency=5.0, pulse_fraction=0.25)
        values, ts = integrate(pulse)
        quarter = pulse.period / 4
        assert np.all(values[ts % pulse.period < quarter - 1e-6] >= -1e-12)
        assert np.all(values[ts % pulse.period > quarter + 1e-6] <= 1e-12)

    def test_min_base_fraction(self):
        pulse = AsymmetricSinusoidPulse(frequency=5.0, pulse_fraction=0.25)
        # The sender only needs mu/12 of base rate to use a mu/4 pulse.
        assert pulse.min_base_fraction() == pytest.approx(0.25 / 3)

    def test_burst_size_matches_paper(self):
        # Burst above the mean is mu*T/(8*pi) ~ 4% of a BDP when T == RTT.
        mu = 12e6
        pulse = AsymmetricSinusoidPulse(frequency=5.0, pulse_fraction=0.25)
        values, ts = integrate(pulse)
        dt = ts[1] - ts[0]
        burst = float(values[values > 0].sum() * dt * mu)
        assert burst == pytest.approx(mu * pulse.period / (8 * math.pi),
                                      rel=0.01)

    def test_offset_scales_with_mu(self):
        pulse = AsymmetricSinusoidPulse(frequency=5.0, pulse_fraction=0.25)
        assert pulse.offset(0.01, 2e6) == pytest.approx(
            2 * pulse.offset(0.01, 1e6))


class TestOtherShapes:
    def test_symmetric_requires_full_amplitude_base(self):
        pulse = SymmetricSinusoidPulse(frequency=5.0, pulse_fraction=0.25)
        assert pulse.min_base_fraction() == pytest.approx(0.25)

    def test_square_wave_levels(self):
        pulse = SquareWavePulse(frequency=5.0, pulse_fraction=0.25)
        assert pulse.offset_fraction(0.01) == pytest.approx(0.25)
        assert pulse.offset_fraction(0.15) == pytest.approx(-0.25)

    def test_no_pulse_is_flat(self):
        pulse = NoPulse()
        values, _ = integrate(pulse)
        assert np.all(values == 0.0)
        assert pulse.min_base_fraction() == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AsymmetricSinusoidPulse(frequency=0.0)
        with pytest.raises(ValueError):
            AsymmetricSinusoidPulse(frequency=5.0, pulse_fraction=0.0)


def test_harmonics_spare_detection_band():
    """The asymmetric pulse's harmonics fall at multiples of fp, outside the
    (fp, 2fp) band used by the elasticity metric."""
    pulse = AsymmetricSinusoidPulse(frequency=5.0, pulse_fraction=0.25)
    ts = np.arange(0, 5.0, 0.01)
    signal = np.array([pulse.offset_fraction(t) for t in ts])
    spectrum = np.abs(np.fft.rfft(signal - signal.mean())) / len(signal)
    freqs = np.fft.rfftfreq(len(signal), d=0.01)
    peak_fp = spectrum[np.argmin(np.abs(freqs - 5.0))]
    in_band = (freqs > 5.6) & (freqs < 9.4)
    assert spectrum[in_band].max() < 0.2 * peak_fp
