"""Per-module dependency digests: closure rules, granularity, determinism."""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runtime import depgraph
from repro.runtime.depgraph import DependencyGraph, DigestError, combined_key


# --------------------------------------------------------------------- #
# A toy package with a shared engine, two drivers, and an import cycle
# --------------------------------------------------------------------- #
_TOY_SOURCES = {
    "__init__.py": "",
    "util.py": "X = 1\n",
    "engine.py": ("from .util import X\n"
                  "\n"
                  "def simulate(n):\n"
                  "    return X * n\n"),
    "driver_a.py": ("from .engine import simulate\n"
                    "\n"
                    "def run(n=1):\n"
                    "    return {'a': simulate(n)}\n"),
    "driver_b.py": ("from . import engine\n"
                    "\n"
                    "def run(n=1):\n"
                    "    return {'b': engine.simulate(n)}\n"),
    "cyc_a.py": "import toypkg.cyc_b\nA = 1\n",
    "cyc_b.py": "from .cyc_a import A\nB = A\n",
    "sub/__init__.py": "VALUE = 3\n",
    "attr_user.py": "from .sub import VALUE\n",
}


@pytest.fixture
def toy_root(tmp_path):
    root = tmp_path / "toypkg"
    for name, text in _TOY_SOURCES.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return root


@pytest.fixture
def toy_graph(toy_root):
    return DependencyGraph(packages={"toypkg": toy_root})


# --------------------------------------------------------------------- #
# Closure rules
# --------------------------------------------------------------------- #
def test_closure_follows_explicit_imports(toy_graph):
    assert toy_graph.reachable("toypkg.driver_a") == (
        "toypkg.driver_a", "toypkg.engine", "toypkg.util")


def test_from_package_import_module_targets_the_module(toy_graph):
    # ``from . import engine`` depends on the submodule, not on the
    # package __init__ (which would glue every driver's key together).
    closure = toy_graph.reachable("toypkg.driver_b")
    assert "toypkg.engine" in closure
    assert "toypkg" not in closure


def test_named_package_source_is_a_dependency(toy_graph):
    # ``from .sub import VALUE`` names the package explicitly, so its
    # __init__ is a legitimate dependency.
    assert "toypkg.sub" in toy_graph.reachable("toypkg.attr_user")


def test_import_cycles_are_tolerated(toy_graph):
    closure = toy_graph.reachable("toypkg.cyc_a")
    assert "toypkg.cyc_a" in closure and "toypkg.cyc_b" in closure
    assert toy_graph.digest_for("toypkg.cyc_a")
    assert toy_graph.digest_for("toypkg.cyc_b")


def test_unresolvable_module_raises(toy_graph):
    with pytest.raises(DigestError):
        toy_graph.reachable("toypkg.no_such_module")
    with pytest.raises(DigestError):
        DependencyGraph().digest_for("no_such_package.mod")


# --------------------------------------------------------------------- #
# Granularity: the reason this module exists
# --------------------------------------------------------------------- #
def _overlay_graph(toy_root, filename):
    original = (toy_root / filename).read_bytes()
    return DependencyGraph(
        packages={"toypkg": toy_root},
        overlay={toy_root / filename: original + b"\n# edited\n"})


def test_editing_a_driver_keeps_other_digests_warm(toy_root, toy_graph):
    edited = _overlay_graph(toy_root, "driver_a.py")
    assert edited.digest_for("toypkg.driver_a") != \
        toy_graph.digest_for("toypkg.driver_a")
    assert edited.digest_for("toypkg.driver_b") == \
        toy_graph.digest_for("toypkg.driver_b")
    assert edited.digest_for("toypkg.engine") == \
        toy_graph.digest_for("toypkg.engine")


def test_editing_the_engine_invalidates_every_driver(toy_root, toy_graph):
    edited = _overlay_graph(toy_root, "engine.py")
    for module in ("toypkg.driver_a", "toypkg.driver_b", "toypkg.engine"):
        assert edited.digest_for(module) != toy_graph.digest_for(module)


def test_transitive_edits_propagate(toy_root, toy_graph):
    # util.py is two hops from the drivers; its edit must still reach them.
    edited = _overlay_graph(toy_root, "util.py")
    assert edited.digest_for("toypkg.driver_a") != \
        toy_graph.digest_for("toypkg.driver_a")
    assert edited.digest_for("toypkg.driver_b") != \
        toy_graph.digest_for("toypkg.driver_b")


def test_on_disk_edit_after_invalidate(toy_root, toy_graph):
    before = toy_graph.digest_for("toypkg.driver_a")
    keep = toy_graph.digest_for("toypkg.driver_b")
    with open(toy_root / "driver_a.py", "a", encoding="utf-8") as handle:
        handle.write("\n# on-disk edit\n")
    toy_graph.invalidate()
    assert toy_graph.digest_for("toypkg.driver_a") != before
    assert toy_graph.digest_for("toypkg.driver_b") == keep


# --------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------- #
def _digest_in_subprocess(toy_root, module, hashseed):
    import repro

    src = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = str(hashseed)
    code = ("from repro.runtime.depgraph import DependencyGraph; "
            f"g = DependencyGraph(packages={{'toypkg': {str(toy_root)!r}}}); "
            f"print(g.digest_for({module!r}))")
    out = subprocess.check_output([sys.executable, "-c", code], env=env)
    return out.decode().strip()


def test_digest_is_deterministic_across_interpreter_runs(toy_root, toy_graph):
    """Same sources -> same digest, regardless of process or hash seed."""
    local = toy_graph.digest_for("toypkg.driver_a")
    assert _digest_in_subprocess(toy_root, "toypkg.driver_a", 0) == local
    assert _digest_in_subprocess(toy_root, "toypkg.driver_a", 12345) == local


def test_fresh_graph_instances_agree(toy_root, toy_graph):
    again = DependencyGraph(packages={"toypkg": toy_root})
    assert again.digest_for("toypkg.driver_b") == \
        toy_graph.digest_for("toypkg.driver_b")


# --------------------------------------------------------------------- #
# The real package: the property the result cache relies on
# --------------------------------------------------------------------- #
def _origin(module):
    return Path(importlib.util.find_spec(module).origin)


def test_real_drivers_share_the_engine_but_not_each_other():
    graph = DependencyGraph()
    flap = graph.reachable("repro.experiments.link_flap")
    wan = graph.reachable("repro.experiments.fig09_wan")
    assert "repro.simulator.engine" in flap
    assert "repro.simulator.engine" in wan
    assert "repro.experiments.fig09_wan" not in flap
    assert "repro.experiments.link_flap" not in wan
    # The aggregator __init__ imports every driver; including it would
    # collapse all driver digests into one.
    assert "repro.experiments" not in flap
    assert "repro.experiments" not in wan


def test_real_driver_edit_keeps_the_other_family_warm():
    clean = DependencyGraph()
    path = _origin("repro.experiments.link_flap")
    edited = DependencyGraph(
        overlay={path: path.read_bytes() + b"\n# what-if\n"})
    assert edited.digest_for("repro.experiments.link_flap") != \
        clean.digest_for("repro.experiments.link_flap")
    assert edited.digest_for("repro.experiments.fig09_wan") == \
        clean.digest_for("repro.experiments.fig09_wan")


def test_real_engine_edit_invalidates_every_driver():
    clean = DependencyGraph()
    path = _origin("repro.simulator.engine")
    edited = DependencyGraph(
        overlay={path: path.read_bytes() + b"\n# what-if\n"})
    for module in ("repro.experiments.link_flap",
                   "repro.experiments.fig09_wan"):
        assert edited.digest_for(module) != clean.digest_for(module)


# --------------------------------------------------------------------- #
# Module-level helpers and CLI
# --------------------------------------------------------------------- #
def test_combined_key_is_order_independent():
    modules = ("repro.experiments.link_flap", "repro.experiments.fig09_wan")
    assert combined_key(modules) == combined_key(tuple(reversed(modules)))
    assert len(combined_key(modules)) == depgraph.DIGEST_LEN


def test_cli_digest_deps_key(capsys):
    assert depgraph.main(["digest", "repro.experiments.link_flap"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("repro.experiments.link_flap ")

    assert depgraph.main(["deps", "repro.experiments.link_flap"]) == 0
    deps = capsys.readouterr().out.split()
    assert "repro.simulator.engine" in deps

    assert depgraph.main(["key", "repro.experiments.link_flap",
                          "repro.experiments.fig09_wan"]) == 0
    key = capsys.readouterr().out.strip()
    assert key == combined_key(("repro.experiments.link_flap",
                                "repro.experiments.fig09_wan"))


def test_cli_unresolvable_module_exits_2(capsys):
    assert depgraph.main(["digest", "repro.no_such_module"]) == 2
    assert "no_such_module" in capsys.readouterr().err
