"""Hardened-executor tests: crash isolation, timeouts, retries, resume.

Every failing spec here comes from :mod:`repro.experiments.selftest`,
whose failure modes (raise, sleep, hard exit, fail-N-times-then-succeed)
are part of its parameter space — so these tests drive the executor
exactly the way the runner's ``--timeout``/``--max-retries``/``--resume``
flags do.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.runtime import (
    BatchExecutor,
    BatchJournal,
    ScenarioSpec,
    SpecExecutionError,
    SpecFailure,
    batch_id,
    default_journal_path,
)
from repro.runtime.cache import MISS, ResultCache
from repro.runtime.metrics import validate_metrics_record

RUN = "repro.experiments.selftest:run"
FLAKY = "repro.experiments.selftest:flaky_run"
SLEEPY = "repro.experiments.selftest:sleepy_run"
HARD_EXIT = "repro.experiments.selftest:hard_exit"


def _spec(**params):
    return ScenarioSpec.make(RUN, **params)


def _outcomes(executor):
    return [(r["cache"], r["outcome"], r["attempts"])
            for r in executor.last_metrics]


class TestCrashIsolation:
    def test_raising_spec_recorded_siblings_complete(self):
        executor = BatchExecutor(workers=2, on_error="record")
        specs = [_spec(seed=1), _spec(seed=2, crash=1), _spec(seed=3)]
        results = executor.run(specs)
        assert results[0].data["n"] > 0
        assert results[2].data["n"] > 0
        failure = results[1]
        assert isinstance(failure, SpecFailure)
        assert failure.outcome == "error"
        assert failure.attempts == 1
        assert "deliberate crash" in failure.error
        assert "RuntimeError" in failure.error  # full traceback
        assert failure.fn == RUN
        assert executor.last_stats.failed == 1

    def test_default_on_error_raises_after_batch(self):
        executor = BatchExecutor(workers=2, timeout=60.0)
        specs = [_spec(seed=1), _spec(seed=2, crash=1), _spec(seed=3)]
        with pytest.raises(SpecExecutionError) as excinfo:
            executor.run(specs)
        assert "deliberate crash" in str(excinfo.value)
        assert len(excinfo.value.failures) == 1
        # The siblings still completed and were cached before the raise.
        assert executor.last_stats.executed == 3
        cache = ResultCache()
        assert cache.get(specs[0].spec_hash(), fn=specs[0].fn) is not MISS
        assert cache.get(specs[1].spec_hash(), fn=specs[1].fn) is MISS

    def test_worker_death_is_a_crash_outcome(self):
        executor = BatchExecutor(workers=2, on_error="record")
        spec = ScenarioSpec.make(HARD_EXIT, seed=1, code=17)
        failure = executor.run([spec, _spec(seed=4)])[0]
        assert isinstance(failure, SpecFailure)
        assert failure.outcome == "crash"
        assert "exit code 17" in failure.error

    def test_failed_specs_never_cached(self):
        executor = BatchExecutor(workers=1, on_error="record")
        spec = _spec(seed=5, crash=1)
        executor.run([spec])
        assert ResultCache().get(spec.spec_hash(), fn=spec.fn) is MISS
        # A second run re-executes instead of hitting the cache.
        executor2 = BatchExecutor(workers=1, on_error="record")
        executor2.run([spec])
        assert _outcomes(executor2) == [("miss", "error", 1)]


class TestTimeout:
    def test_hung_spec_terminated_and_recorded(self):
        executor = BatchExecutor(workers=2, timeout=0.4,
                                 on_error="record")
        specs = [_spec(seed=1, sleep=30.0), _spec(seed=2)]
        results = executor.run(specs)
        failure = results[0]
        assert isinstance(failure, SpecFailure)
        assert failure.outcome == "timeout"
        assert failure.seconds == pytest.approx(0.4)
        assert "terminated" in failure.error
        assert results[1].data["n"] > 0

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            BatchExecutor(timeout=0.0)


class TestRetries:
    def test_flaky_spec_retries_then_succeeds_and_caches(self, tmp_path):
        marker = str(tmp_path / "flaky-marker")
        spec = ScenarioSpec.make(FLAKY, marker=marker, fail_times=2)
        executor = BatchExecutor(workers=1, max_retries=2,
                                 retry_backoff=0.01, on_error="record")
        result = executor.run([spec])[0]
        assert not isinstance(result, SpecFailure)
        assert result.data["attempts"] == 3
        assert _outcomes(executor) == [("miss", "ok", 3)]
        # The eventual success landed in the cache.
        executor2 = BatchExecutor(workers=1, max_retries=2,
                                  on_error="record")
        executor2.run([spec])
        assert _outcomes(executor2) == [("hit", "ok", 0)]

    def test_retries_exhausted_reports_attempt_count(self, tmp_path):
        marker = str(tmp_path / "stubborn-marker")
        spec = ScenarioSpec.make(FLAKY, marker=marker, fail_times=10)
        executor = BatchExecutor(workers=1, max_retries=1,
                                 retry_backoff=0.01, on_error="record")
        failure = executor.run([spec])[0]
        assert isinstance(failure, SpecFailure)
        assert failure.attempts == 2
        assert "transient failure 2/10" in failure.summary

    def test_invalid_retry_settings_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            BatchExecutor(max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            BatchExecutor(max_retries=1, retry_backoff=-0.1)
        with pytest.raises(ValueError, match="retry_backoff_max"):
            BatchExecutor(max_retries=1, retry_backoff_max=0.0)
        with pytest.raises(ValueError, match="on_error"):
            BatchExecutor(on_error="ignore")


class TestRetryJitter:
    """Seeded full-jitter backoff: deterministic, bounded, capped."""

    def test_delay_deterministic_per_spec_and_attempt(self):
        executor = BatchExecutor(max_retries=3, retry_backoff=0.5)
        twin = BatchExecutor(max_retries=3, retry_backoff=0.5)
        for attempt in (1, 2, 3):
            delay = executor.retry_delay("a" * 64, attempt)
            assert delay == twin.retry_delay("a" * 64, attempt)
        # Different specs and attempts draw different jitter.
        draws = {executor.retry_delay(hash_ * 64, attempt)
                 for hash_ in "ab" for attempt in (1, 2, 3)}
        assert len(draws) == 6

    def test_delay_bounded_by_exponential_ceiling(self):
        executor = BatchExecutor(max_retries=8, retry_backoff=0.5,
                                 retry_backoff_max=8.0)
        for attempt in range(1, 9):
            ceiling = min(8.0, 0.5 * 2 ** (attempt - 1))
            delay = executor.retry_delay("c" * 64, attempt)
            assert 0.0 <= delay <= ceiling

    def test_cap_applies_to_late_attempts(self):
        executor = BatchExecutor(max_retries=64, retry_backoff=1.0,
                                 retry_backoff_max=2.0)
        # 2**63 seconds without the cap; with it, never above 2s.
        assert executor.retry_delay("d" * 64, 64) <= 2.0


class TestBitIdentity:
    def test_hardened_serial_pool_and_legacy_agree(self):
        specs = [_spec(seed=seed) for seed in (1, 2, 3, 4)]
        cold = dict(cache=ResultCache(enabled=False))

        legacy = BatchExecutor(workers=1, **cold).run(specs)
        serial = BatchExecutor(workers=1, timeout=60.0, **cold).run(specs)
        pooled = BatchExecutor(workers=4, timeout=60.0, **cold).run(specs)

        dumps = [pickle.dumps(batch) for batch in (legacy, serial, pooled)]
        assert dumps[0] == dumps[1] == dumps[2]

    def test_hardened_not_engaged_by_default(self):
        executor = BatchExecutor(workers=1)
        assert not executor.hardened
        assert BatchExecutor(workers=1, timeout=1.0).hardened
        assert BatchExecutor(workers=1, max_retries=1).hardened
        assert BatchExecutor(workers=1, on_error="record").hardened


class TestMetricsV2:
    def test_records_validate_and_carry_outcomes(self, tmp_path):
        metrics_path = tmp_path / "metrics.jsonl"
        executor = BatchExecutor(workers=2, on_error="record",
                                 metrics_path=str(metrics_path))
        executor.run([_spec(seed=1), _spec(seed=2, crash=1)])
        lines = [json.loads(line) for line
                 in metrics_path.read_text().splitlines()]
        assert len(lines) == 2
        for record in lines:
            validate_metrics_record(record)
        by_outcome = {record["outcome"]: record for record in lines}
        assert by_outcome["ok"]["worker_pid"] is not None
        assert by_outcome["error"]["worker_pid"] is None
        assert by_outcome["error"]["attempts"] == 1

    def test_hits_report_ok_with_zero_attempts(self):
        spec = _spec(seed=9)
        BatchExecutor(workers=1).run([spec])
        executor = BatchExecutor(workers=1, on_error="record")
        executor.run([spec])
        assert _outcomes(executor) == [("hit", "ok", 0)]
        for record in executor.last_metrics:
            validate_metrics_record(record)


class TestJournalAndResume:
    def test_journal_records_terminal_states(self, tmp_path):
        journal_path = tmp_path / "batch.jsonl"
        executor = BatchExecutor(workers=2, on_error="record",
                                 journal_path=journal_path)
        specs = [_spec(seed=1), _spec(seed=2, crash=1)]
        executor.run(specs)
        entries = {record["spec_hash"]: record for record in
                   (json.loads(line) for line
                    in journal_path.read_text().splitlines())}
        ok = entries[specs[0].spec_hash()]
        bad = entries[specs[1].spec_hash()]
        assert ok["outcome"] == "ok" and ok["attempts"] == 1
        assert bad["outcome"] == "error"
        assert "deliberate crash" in bad["error"]

    def test_resume_skips_successes_retries_failures(self, tmp_path):
        journal_path = tmp_path / "batch.jsonl"
        specs = [_spec(seed=1), _spec(seed=2, crash=1)]
        BatchExecutor(workers=2, on_error="record",
                      journal_path=journal_path).run(specs)

        resumed = BatchExecutor(workers=2, on_error="record",
                                journal_path=journal_path, resume=True)
        resumed.run(specs)
        assert _outcomes(resumed) == [("hit", "ok", 0),
                                      ("miss", "error", 1)]
        # Latest-wins: the journal now holds both runs' lines, but the
        # per-spec view reflects the most recent attempt.
        journal = BatchJournal(journal_path, resume=True)
        assert journal.outcome_of(specs[0].spec_hash()) == "ok"
        assert journal.outcome_of(specs[1].spec_hash()) == "error"
        raw_lines = journal_path.read_text().splitlines()
        assert len(raw_lines) == 4  # two per run, append-only

    def test_resume_reexecutes_timed_out_spec(self, tmp_path):
        """A timed-out spec is unfinished work, not a terminal verdict:
        ``--resume`` must run it again (where, the stall being first-run
        only, it now succeeds)."""
        journal_path = tmp_path / "batch.jsonl"
        marker = str(tmp_path / "sleepy-marker")
        spec = ScenarioSpec.make(SLEEPY, marker=marker, sleep=30.0)
        first = BatchExecutor(workers=1, timeout=0.4, on_error="record",
                              journal_path=journal_path)
        failure = first.run([spec])[0]
        assert isinstance(failure, SpecFailure)
        assert failure.outcome == "timeout"
        journal = BatchJournal(journal_path, resume=True)
        assert journal.outcome_of(spec.spec_hash()) == "timeout"

        resumed = BatchExecutor(workers=1, timeout=0.4, on_error="record",
                                journal_path=journal_path, resume=True)
        result = resumed.run([spec])[0]
        assert not isinstance(result, SpecFailure)
        assert result.data["slept"] is False  # genuinely re-executed
        assert _outcomes(resumed) == [("miss", "ok", 1)]
        assert BatchJournal(journal_path,
                            resume=True).outcome_of(spec.spec_hash()) == "ok"

    def test_fresh_run_truncates_journal(self, tmp_path):
        journal_path = tmp_path / "batch.jsonl"
        journal_path.write_text('{"bogus": "stale line"}\n')
        executor = BatchExecutor(workers=1, on_error="record",
                                 journal_path=journal_path)
        executor.run([_spec(seed=1)])
        lines = journal_path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["outcome"] == "ok"

    def test_torn_trailing_line_tolerated_on_resume(self, tmp_path):
        journal_path = tmp_path / "batch.jsonl"
        executor = BatchExecutor(workers=1, on_error="record",
                                 journal_path=journal_path)
        spec = _spec(seed=1)
        executor.run([spec])
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"spec_hash": "abc", "outco')  # torn write
        journal = BatchJournal(journal_path, resume=True)
        assert journal.outcome_of(spec.spec_hash()) == "ok"
        assert journal.outcome_of("abc") is None

    def test_batch_id_is_order_independent(self):
        hashes = ["b" * 64, "a" * 64]
        assert batch_id(hashes) == batch_id(list(reversed(hashes)))
        assert len(batch_id(hashes)) == 16
        assert batch_id(hashes) != batch_id(["c" * 64])

    def test_default_journal_path_lives_under_cache_dir(self, tmp_path,
                                                        monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = str(default_journal_path("deadbeef00112233"))
        assert path.startswith(str(tmp_path / "cache"))
        assert path.endswith("deadbeef00112233.jsonl")


class TestDedupUnderFailure:
    def test_duplicate_failing_specs_share_one_execution(self):
        executor = BatchExecutor(workers=2, on_error="record")
        spec = _spec(seed=7, crash=1)
        results = executor.run([spec, spec])
        assert all(isinstance(result, SpecFailure) for result in results)
        assert results[0] is results[1]
        assert executor.last_stats.executed == 1
        assert executor.last_stats.failed == 2
