"""Network engine: event delivery, RTTs, dynamic flows, callbacks."""

import pytest

from repro import quick_network
from repro.cc import Cubic, NullCC
from repro.simulator import Flow, FiniteSource
from repro.simulator.source import PacedSource


class TestBasicOperation:
    def test_single_flow_saturates_link(self, small_network):
        network, link = small_network
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="cubic"))
        network.run(15.0)
        tput = network.recorder.mean_throughput("cubic", start=5.0)
        assert tput == pytest.approx(24.0, rel=0.1)

    def test_rtt_at_least_propagation(self, small_network):
        network, _ = small_network
        flow = Flow(cc=Cubic(), prop_rtt=0.08, name="cubic")
        network.add_flow(flow)
        network.run(5.0)
        assert flow.measurement.min_rtt >= 0.08 - 1e-9
        # And not wildly larger than propagation plus the buffer (100 ms).
        assert flow.measurement.min_rtt < 0.08 + 0.02

    def test_paced_flow_receives_its_rate(self, small_network, mu_24):
        network, _ = small_network
        rate = 0.25 * mu_24
        network.add_flow(Flow(cc=NullCC(), prop_rtt=0.05,
                              source=PacedSource(rate), name="cbr"))
        network.run(10.0)
        tput = network.recorder.mean_throughput("cbr", start=2.0)
        assert tput == pytest.approx(6.0, rel=0.1)

    def test_delivered_never_exceeds_sent(self, small_network):
        network, _ = small_network
        flow = Flow(cc=Cubic(), prop_rtt=0.05, name="cubic")
        network.add_flow(flow)
        network.run(8.0)
        assert flow.stats.bytes_delivered <= flow.stats.bytes_sent + 1e-6

    def test_run_for(self, small_network):
        network, _ = small_network
        network.run_for(1.0)
        assert network.now == pytest.approx(1.0, abs=0.01)


class TestDynamicFlows:
    def test_delayed_start(self, small_network):
        network, _ = small_network
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="late",
                              start_time=5.0))
        network.run(4.0)
        assert network.recorder.mean_throughput("late", start=0.0) == 0.0
        network.run(10.0)
        assert network.recorder.mean_throughput("late", start=6.0) > 1.0

    def test_schedule_call(self, small_network):
        network, _ = small_network
        calls = []
        network.schedule_call(2.0, lambda now: calls.append(now))
        network.run(3.0)
        assert len(calls) == 1
        assert calls[0] == pytest.approx(2.0, abs=0.01)

    def test_finite_flow_completion(self, small_network):
        network, _ = small_network
        flow = Flow(cc=Cubic(), prop_rtt=0.05, source=FiniteSource(200e3),
                    name="finite")
        network.add_flow(flow)
        network.run(20.0)
        assert flow.finished
        assert flow.fct is not None
        assert flow.fct > 0.05  # at least one RTT

    def test_stop_releases_bandwidth(self, small_network):
        network, _ = small_network
        cross = Flow(cc=Cubic(), prop_rtt=0.05, name="cross")
        main = Flow(cc=Cubic(), prop_rtt=0.05, name="main")
        network.add_flow(cross)
        network.add_flow(main)
        network.schedule_call(10.0, lambda now: cross.stop(now))
        network.run(25.0)
        before = network.recorder.mean_throughput("main", start=5.0, end=10.0)
        after = network.recorder.mean_throughput("main", start=15.0, end=25.0)
        assert after > before

    def test_flows_named(self, small_network):
        network, _ = small_network
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="a"))
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="a"))
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="b"))
        assert len(network.flows_named("a")) == 2
        assert len(network.flows_named("b")) == 1


class TestSharing:
    def test_two_identical_flows_split_fairly(self):
        network, _ = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="a"))
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="b"))
        network.run(40.0)
        a = network.recorder.mean_throughput("a", start=15.0)
        b = network.recorder.mean_throughput("b", start=15.0)
        assert a + b == pytest.approx(24.0, rel=0.15)
        assert min(a, b) / max(a, b) > 0.3

    def test_losses_occur_with_small_buffer(self):
        network, link = quick_network(link_mbps=24, buffer_ms=20, dt=0.004)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="cubic"))
        network.run(15.0)
        assert link.total_drops > 0

    def test_invalid_dt(self):
        from repro.simulator import BottleneckLink, Network
        with pytest.raises(ValueError):
            Network(BottleneckLink(capacity=1e6), dt=0.0)
