"""Network engine: event delivery, RTTs, dynamic flows, callbacks."""

import pytest

from repro import quick_network
from repro.cc import Cubic, NullCC
from repro.simulator import Flow, FiniteSource
from repro.simulator.source import PacedSource


class TestBasicOperation:
    def test_single_flow_saturates_link(self, small_network):
        network, link = small_network
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="cubic"))
        network.run(15.0)
        tput = network.recorder.mean_throughput("cubic", start=5.0)
        assert tput == pytest.approx(24.0, rel=0.1)

    def test_rtt_at_least_propagation(self, small_network):
        network, _ = small_network
        flow = Flow(cc=Cubic(), prop_rtt=0.08, name="cubic")
        network.add_flow(flow)
        network.run(5.0)
        assert flow.measurement.min_rtt >= 0.08 - 1e-9
        # And not wildly larger than propagation plus the buffer (100 ms).
        assert flow.measurement.min_rtt < 0.08 + 0.02

    def test_paced_flow_receives_its_rate(self, small_network, mu_24):
        network, _ = small_network
        rate = 0.25 * mu_24
        network.add_flow(Flow(cc=NullCC(), prop_rtt=0.05,
                              source=PacedSource(rate), name="cbr"))
        network.run(10.0)
        tput = network.recorder.mean_throughput("cbr", start=2.0)
        assert tput == pytest.approx(6.0, rel=0.1)

    def test_delivered_never_exceeds_sent(self, small_network):
        network, _ = small_network
        flow = Flow(cc=Cubic(), prop_rtt=0.05, name="cubic")
        network.add_flow(flow)
        network.run(8.0)
        assert flow.stats.bytes_delivered <= flow.stats.bytes_sent + 1e-6

    def test_run_for(self, small_network):
        network, _ = small_network
        network.run_for(1.0)
        assert network.now == pytest.approx(1.0, abs=0.01)


class TestDynamicFlows:
    def test_delayed_start(self, small_network):
        network, _ = small_network
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="late",
                              start_time=5.0))
        network.run(4.0)
        assert network.recorder.mean_throughput("late", start=0.0) == 0.0
        network.run(10.0)
        assert network.recorder.mean_throughput("late", start=6.0) > 1.0

    def test_schedule_call(self, small_network):
        network, _ = small_network
        calls = []
        network.schedule_call(2.0, lambda now: calls.append(now))
        network.run(3.0)
        assert len(calls) == 1
        assert calls[0] == pytest.approx(2.0, abs=0.01)

    def test_finite_flow_completion(self, small_network):
        network, _ = small_network
        flow = Flow(cc=Cubic(), prop_rtt=0.05, source=FiniteSource(200e3),
                    name="finite")
        network.add_flow(flow)
        network.run(20.0)
        assert flow.finished
        assert flow.fct is not None
        assert flow.fct > 0.05  # at least one RTT

    def test_stop_releases_bandwidth(self, small_network):
        network, _ = small_network
        cross = Flow(cc=Cubic(), prop_rtt=0.05, name="cross")
        main = Flow(cc=Cubic(), prop_rtt=0.05, name="main")
        network.add_flow(cross)
        network.add_flow(main)
        network.schedule_call(10.0, lambda now: cross.stop(now))
        network.run(25.0)
        before = network.recorder.mean_throughput("main", start=5.0, end=10.0)
        after = network.recorder.mean_throughput("main", start=15.0, end=25.0)
        assert after > before

    def test_flows_named(self, small_network):
        network, _ = small_network
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="a"))
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="a"))
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="b"))
        assert len(network.flows_named("a")) == 2
        assert len(network.flows_named("b")) == 1


class TestSharing:
    def test_two_identical_flows_split_fairly(self):
        network, _ = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="a"))
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="b"))
        network.run(40.0)
        a = network.recorder.mean_throughput("a", start=15.0)
        b = network.recorder.mean_throughput("b", start=15.0)
        assert a + b == pytest.approx(24.0, rel=0.15)
        assert min(a, b) / max(a, b) > 0.3

    def test_losses_occur_with_small_buffer(self):
        network, link = quick_network(link_mbps=24, buffer_ms=20, dt=0.004)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="cubic"))
        network.run(15.0)
        assert link.total_drops > 0

    def test_invalid_dt(self):
        from repro.simulator import BottleneckLink, Network
        with pytest.raises(ValueError):
            Network(BottleneckLink(capacity=1e6), dt=0.0)


class TestCalendarQueue:
    """Regression coverage for the calendar/bucket event store."""

    def test_same_tick_callbacks_run_in_push_order(self, small_network):
        network, _ = small_network
        order = []
        when = 0.1
        network.schedule_call(when, lambda now: order.append("a"))
        network.schedule_call(when, lambda now: order.append("b"))
        network.schedule_call(when, lambda now: order.append("c"))
        network.run(0.2)
        assert order == ["a", "b", "c"]

    def test_callback_scheduling_for_current_tick_runs_same_tick(
            self, small_network):
        network, _ = small_network
        seen = []

        def outer(now):
            seen.append(("outer", now))
            network.schedule_call(now, lambda t: seen.append(("inner", t)))

        network.schedule_call(0.1, outer)
        network.run(0.2)
        assert len(seen) == 2
        # The chained callback fired at the same clock reading, exactly as
        # it would have popped from a single global heap.
        assert seen[0][1] == seen[1][1]

    def test_far_future_event_spills_without_growing_the_clock(
            self, small_network):
        network, _ = small_network
        horizon = network._spill_span
        network.schedule_call(network.now + horizon + 1.0,
                              lambda now: None)
        assert len(network._spill) == 1
        assert not network._calendar
        # The future-clock array must not have materialised a million ticks.
        assert len(network._future_times) < 1000
        network.run(0.1)
        assert len(network._spill) == 1  # still parked, still cheap

    def test_finished_flow_leaves_the_active_roster(self, small_network):
        network, _ = small_network
        flow = network.add_flow(Flow(cc=Cubic(), prop_rtt=0.04,
                                     source=FiniteSource(200_000),
                                     name="finite"))
        assert network.active_flow_ids() == [flow.flow_id]
        network.run(30.0)
        assert flow.finished
        assert network.active_flow_ids() == []
        assert list(network.active_flows()) == []

    def test_delayed_start_joins_the_roster(self, small_network):
        network, _ = small_network
        late = network.add_flow(Flow(cc=Cubic(), prop_rtt=0.04, name="late",
                                     start_time=0.5))
        assert network.active_flow_ids() == []
        network.run(1.0)
        assert network.active_flow_ids() == [late.flow_id]

    def test_raising_handler_keeps_undispatched_events(self, small_network):
        network, _ = small_network
        fired = []

        def boom(now):
            raise RuntimeError("boom")

        network.schedule_call(0.1, boom)
        network.schedule_call(0.1, lambda now: fired.append(now))
        with pytest.raises(RuntimeError):
            network.run(0.2)
        # The old global heap kept the second callback queued; resuming
        # after catching the error must still deliver it.
        network.run(0.2)
        assert fired

    def test_clock_trimming_preserves_repeated_dt_chain(self):
        from repro import quick_network

        dt = 0.002
        network, _ = quick_network(link_mbps=24, buffer_ms=100, dt=dt)
        ticks = 3 * 4096 + 37
        expected = 0.0
        for _ in range(ticks):
            network.step()
            expected += dt
        # Bit-identical to the historical `now += dt` accumulation...
        assert network.now == expected
        # ...with the consumed prefix trimmed instead of growing forever.
        assert len(network._future_times) < 4200
