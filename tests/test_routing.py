"""Routed-topology tests: tables, failover, blackholes, determinism.

Covers the destination-routed forwarding layer end to end — topology and
table construction, failure-driven reroute after the convergence delay,
graceful degradation into the explicit blackhole state, the three new
control-plane telemetry kinds, and — promoted to tier 1 per the roadmap —
the per-hop conservation audit running through an active reroute and
through a blackhole window.  The serial/pooled/legacy bit-identity check
mirrors ``tests/test_executor_robust.py::TestBitIdentity`` but over the
reroute driver, where the control-plane event *sequence* must also agree.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.analysis import telemetry as telemetry_cli
from repro.experiments import EXPERIMENT_INDEX, reroute
from repro.experiments.common import MAIN_FLOW, make_scheme
from repro.runtime import (
    BatchExecutor,
    FaultSpec,
    RoutedLinkSpec,
    RouteSpec,
    RoutingSpec,
    ScenarioSpec,
    make_routed_network,
    make_routed_topology,
)
from repro.runtime.cache import ResultCache
from repro.runtime.spec import canonicalize
from repro.simulator import (
    Flow,
    ListTraceSink,
    RoutedNetwork,
    RoutedTopology,
    RoutingTable,
    mbps_to_bytes_per_sec,
    validate_trace_record,
)
from repro.simulator.topology import Topology

RUN_CASE = "repro.experiments.reroute:run_case"


def _spec(convergence_ms: float = 50.0) -> RoutingSpec:
    """The driver's primary/backup two-path topology, test-sized."""
    return RoutingSpec(
        links=(RoutedLinkSpec("primary", 96.0, "S", "M", delay_ms=10.0),
               RoutedLinkSpec("backup", 64.0, "S", "M", delay_ms=20.0),
               RoutedLinkSpec("bottleneck", 48.0, "M", "D")),
        convergence_ms=convergence_ms,
        monitor="bottleneck")


def _network(convergence_ms: float = 50.0, faults=(), dt: float = 0.002,
             seed: int = 1, flow: bool = True) -> RoutedNetwork:
    network = make_routed_network(_spec(convergence_ms), dt=dt, seed=seed,
                                  faults=faults)
    if flow:
        mu = mbps_to_bytes_per_sec(48.0)
        network.add_flow(Flow(cc=make_scheme("cubic", mu), prop_rtt=0.05,
                              name=MAIN_FLOW), src="S", dst="D")
    return network


def _link(network, name):
    return network.topology.links[network.topology.index_of(name)]


def _route_names(network, flow_id: int = 0):
    return tuple(link.name for link in network.route_of(flow_id))


class TestRoutedTopology:
    def test_duplicate_node_rejected(self):
        topology = RoutedTopology()
        topology.add_node("S")
        with pytest.raises(ValueError, match="duplicate node"):
            topology.add_node("S")

    def test_plain_attach_rejected(self):
        with pytest.raises(TypeError, match="endpoints"):
            make_routed_topology(_spec()).attach(None)

    def test_link_requires_known_nodes(self):
        topology = RoutedTopology()
        topology.add_node("S")
        with pytest.raises(KeyError, match="no node named 'M'"):
            topology.add_link("up", 1e6, src="S", dst="M")

    def test_self_loop_link_rejected(self):
        topology = RoutedTopology()
        topology.add_node("S")
        with pytest.raises(ValueError, match="loop"):
            topology.add_link("up", 1e6, src="S", dst="S")

    def test_compute_routes_primary_then_backup(self):
        topology = make_routed_topology(_spec())
        table = topology.node("S").table
        # Both S->M links tie on hop count; attachment order breaks the
        # tie, so `primary` (position 0) leads and is the active choice.
        assert table.candidates("D") == (0, 1)
        assert table.active("D") == 0
        assert table.candidates("M") == (0, 1)
        # D is a sink: nothing routes back, and D's own table is empty.
        assert topology.node("D").table.destinations == ()
        assert topology.node("M").table.candidates("S") == ()

    def test_set_route_validates_origin(self):
        topology = make_routed_topology(_spec())
        with pytest.raises(ValueError, match="does not originate"):
            topology.set_route("M", "D", ["primary"])

    def test_set_route_to_self_rejected(self):
        topology = make_routed_topology(_spec())
        with pytest.raises(ValueError, match="cannot route to itself"):
            topology.set_route("S", "S", ["primary"])

    def test_explicit_route_overrides_computed(self):
        routing = RoutingSpec(links=_spec().links,
                              routes=(RouteSpec("S", "D",
                                                ("backup", "primary")),),
                              monitor="bottleneck")
        topology = make_routed_topology(routing)
        assert topology.node("S").table.active("D") == \
            topology.index_of("backup")

    def test_empty_candidate_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            RoutingTable().set("D", ())


class TestRoutedNetworkConstruction:
    def test_requires_routed_topology(self):
        with pytest.raises(TypeError, match="RoutedTopology"):
            RoutedNetwork(Topology("chain"))

    def test_negative_convergence_rejected(self):
        with pytest.raises(ValueError, match="convergence_delay"):
            RoutedNetwork(make_routed_topology(_spec()),
                          convergence_delay=-0.1)

    def test_add_flow_defaults_to_first_and_last_node(self):
        network = _network(flow=False)
        mu = mbps_to_bytes_per_sec(48.0)
        network.add_flow(Flow(cc=make_scheme("cubic", mu), prop_rtt=0.05))
        assert _route_names(network) == ("primary", "bottleneck")

    def test_same_endpoints_rejected(self):
        network = _network(flow=False)
        mu = mbps_to_bytes_per_sec(48.0)
        with pytest.raises(ValueError, match="must differ"):
            network.add_flow(Flow(cc=make_scheme("cubic", mu),
                                  prop_rtt=0.05), src="S", dst="S")

    def test_flow_start_reports_current_path(self):
        network = _network(flow=False)
        sink = ListTraceSink(events=("flow_start",))
        network.set_trace_sink(sink)
        mu = mbps_to_bytes_per_sec(48.0)
        network.add_flow(Flow(cc=make_scheme("cubic", mu), prop_rtt=0.05,
                              name=MAIN_FLOW), src="S", dst="D")
        assert sink.records[0]["path"] == ["primary", "bottleneck"]


class TestFailover:
    FLAP = (FaultSpec("link_flap", "primary", 1.0, 1.0),)

    def test_reroute_waits_for_convergence_delay(self):
        network = _network(convergence_ms=50.0, faults=self.FLAP)
        network.run(1.02)
        assert not _link(network, "primary").up
        # Down but not yet converged: traffic still aims at the dead link.
        assert _route_names(network) == ("primary", "bottleneck")
        network.run(1.1)
        assert _route_names(network) == ("backup", "bottleneck")

    def test_failback_after_restore(self):
        network = _network(convergence_ms=50.0, faults=self.FLAP)
        network.run(1.9)
        assert _route_names(network) == ("backup", "bottleneck")
        network.run(2.2)
        assert _link(network, "primary").up
        assert _route_names(network) == ("primary", "bottleneck")

    def test_zero_convergence_reroutes_immediately(self):
        network = _network(convergence_ms=0.0, faults=self.FLAP)
        network.run(1.0 + 3 * network.dt)
        assert _route_names(network) == ("backup", "bottleneck")

    def test_traffic_survives_on_backup(self):
        network = _network(convergence_ms=50.0, faults=self.FLAP)
        network.run(1.1)
        served_at_converge = _link(network, "backup").total_served
        network.run(1.9)
        assert _link(network, "backup").total_served > served_at_converge
        assert not network.is_blackholed(0)

    def test_route_change_events_validate_and_pair(self):
        network = _network(convergence_ms=50.0, faults=self.FLAP)
        sink = ListTraceSink(events=("route_change",))
        network.set_trace_sink(sink)
        network.run(3.0)
        records = sink.records
        # Node S re-resolves both destinations (M and D) at failover and
        # again at failback; M's bottleneck entry never moves.
        assert len(records) == 4
        for record in records:
            validate_trace_record(record)
        assert all(record["node"] == "S" for record in records)
        over = [r for r in records if r["time"] == pytest.approx(2.05)]
        assert {r["from_link"] for r in over} == {"backup"}
        assert {r["to_link"] for r in over} == {"primary"}

    def test_convergence_pass_is_idempotent(self):
        network = _network(convergence_ms=50.0, faults=self.FLAP)
        sink = ListTraceSink(events=("route_change",))
        network.set_trace_sink(sink)
        network.run(1.2)
        seen = len(sink.records)
        network._converge(network.now)  # nothing changed since the pass
        assert len(sink.records) == seen

    def test_audit_clean_through_reroute(self, monkeypatch):
        """Tier-1: the conservation audit re-checks every few ticks while
        the flap, the convergence pass, and the failback all happen."""
        monkeypatch.setenv("REPRO_AUDIT", "16")
        network = _network(convergence_ms=50.0, faults=self.FLAP)
        network.run(3.0)  # would raise AuditError on any leaked byte
        network.audit_conservation()
        assert _link(network, "bottleneck").total_served > 0


class TestBlackhole:
    FLAP = (FaultSpec("link_flap", "bottleneck", 1.0, 1.0,
                      drop_queued=True),)

    def test_no_survivor_blackholes_then_recovers(self):
        network = _network(convergence_ms=50.0, faults=self.FLAP)
        sink = ListTraceSink(events=("blackhole_start", "blackhole_end",
                                     "route_change"))
        network.set_trace_sink(sink)
        network.run(1.1)
        assert network.is_blackholed(0)
        assert _route_names(network) == ()
        network.run(2.2)
        assert not network.is_blackholed(0)
        assert _route_names(network) == ("primary", "bottleneck")
        kinds = [r["event"] for r in sink.records]
        assert kinds.count("blackhole_start") == 1
        assert kinds.count("blackhole_end") == 1
        for record in sink.records:
            validate_trace_record(record)
        start = next(r for r in sink.records
                     if r["event"] == "blackhole_start")
        assert start["flow"] == MAIN_FLOW
        assert start["node"] == "S" and start["destination"] == "D"
        # M's table entry for D lost its only candidate: to_link is None.
        dead = next(r for r in sink.records if r["event"] == "route_change"
                    and r["node"] == "M")
        assert dead["to_link"] is None

    def test_blackholed_emissions_surface_as_loss(self):
        network = _network(convergence_ms=50.0, faults=self.FLAP)
        sink = ListTraceSink(events=("loss",))
        network.set_trace_sink(sink)
        network.run(1.05)
        before = len(sink.records)
        network.run(1.6)  # mid-blackhole: every emission becomes a loss
        assert len(sink.records) > before

    def test_unreachable_destination_accepted_blackholed(self):
        network = _network(flow=False)
        network.topology.add_node("X")  # an island: no links touch it
        sink = ListTraceSink(events=("flow_start", "blackhole_start"))
        network.set_trace_sink(sink)
        mu = mbps_to_bytes_per_sec(48.0)
        network.add_flow(Flow(cc=make_scheme("cubic", mu), prop_rtt=0.05,
                              name=MAIN_FLOW), src="S", dst="X")
        assert network.is_blackholed(0)
        assert sink.records[0]["path"] == []
        assert sink.records[1]["event"] == "blackhole_start"

    def test_audit_clean_through_blackhole_window(self, monkeypatch):
        """Tier-1: conservation holds while the only route is down, its
        queue has been flushed, and the flow is emitting into the hole."""
        monkeypatch.setenv("REPRO_AUDIT", "16")
        network = _network(convergence_ms=50.0, faults=self.FLAP)
        network.run(1.5)
        assert network.is_blackholed(0)
        network.audit_conservation()  # mid-window: must not raise
        network.run(3.0)
        network.audit_conservation()


class TestRoutedTelemetry:
    def test_flow_filter_keeps_control_plane_kinds(self):
        network = _network(faults=(FaultSpec("link_flap", "primary",
                                             0.5, 0.5),))
        sink = ListTraceSink(flows=("no-such-flow",))
        network.set_trace_sink(sink)
        network.run(1.5)
        kinds = {r["event"] for r in sink.records}
        # route_change has no flow envelope and survives the flow filter,
        # like fault events; blackhole records carry a flow and drop out.
        assert kinds == {"fault_start", "fault_end", "route_change"}

    def test_validator_rejects_malformed_route_change(self):
        with pytest.raises(ValueError, match="route_change"):
            validate_trace_record({"time": 0.0, "event": "route_change",
                                   "node": "S", "destination": "D",
                                   "from_link": "primary"})

    def test_cli_require_flag(self, tmp_path):
        network = _network(faults=(FaultSpec("link_flap", "primary",
                                             0.5, 0.5),))
        sink = ListTraceSink()
        network.set_trace_sink(sink)
        network.run(1.5)
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for record in sink.records:
                handle.write(json.dumps(record) + "\n")
        ok = telemetry_cli.main(["validate", "--kind", "trace",
                                 "--require", "route_change", str(path)])
        assert ok == 0
        missing = telemetry_cli.main(["validate", "--kind", "trace",
                                      "--require", "blackhole_start",
                                      str(path)])
        assert missing == 1
        with pytest.raises(SystemExit):
            telemetry_cli.main(["summary", "--kind", "trace",
                                "--require", "route_change", str(path)])


class TestSpecPlumbing:
    def test_routing_spec_canonicalises(self):
        frozen = canonicalize(_spec())
        assert pickle.loads(pickle.dumps(frozen)) == frozen

    def test_convergence_delay_in_cache_key(self):
        base = dict(scheme="cubic", period=3.0, duration=6.0, dt=0.008,
                    seed=1)
        fast = ScenarioSpec.make(RUN_CASE, convergence_ms=10.0, **base)
        slow = ScenarioSpec.make(RUN_CASE, convergence_ms=250.0, **base)
        assert fast.spec_hash() != slow.spec_hash()
        assert fast.spec_hash() == \
            ScenarioSpec.make(RUN_CASE, convergence_ms=10.0,
                              **base).spec_hash()

    def test_driver_registered(self):
        assert EXPERIMENT_INDEX["reroute"] is reroute


class TestRerouteDriver:
    CASE = dict(scheme="cubic", period=3.0, convergence_ms=50.0,
                phase_duration=2.0, duration=6.0, dt=0.008, seed=1)

    def test_run_case_payload_shape(self):
        payload = reroute.run_case(**self.CASE)
        extra = payload["extra"]
        assert extra["fault_windows"] >= 1
        assert extra["route_changes"] >= 2  # failover + failback
        assert extra["blackhole_seconds"] == pytest.approx(0.0)
        assert set(payload["data"]["per_link"]) == \
            {"primary", "backup", "bottleneck"}
        for record in payload["data"]["route_events"]:
            validate_trace_record(record)

    def test_route_events_bit_identical_across_executors(self):
        """Acceptance: the reroute payload — control-plane event sequence
        included — agrees byte for byte across legacy in-process, hardened
        serial, and pooled subprocess execution."""
        specs = [ScenarioSpec.make(RUN_CASE, label="cubic", **self.CASE)]
        cold = dict(cache=ResultCache(enabled=False))
        legacy = BatchExecutor(workers=1, **cold).run(specs)
        serial = BatchExecutor(workers=1, timeout=300.0, **cold).run(specs)
        pooled = BatchExecutor(workers=2, timeout=300.0, **cold).run(specs)
        dumps = [pickle.dumps(batch) for batch in (legacy, serial, pooled)]
        assert dumps[0] == dumps[1] == dumps[2]
        assert legacy[0]["extra"]["route_changes"] >= 2
