"""Campaign manifests: parsing, validation, and grid expansion."""

from __future__ import annotations

import json

import pytest

from repro.runtime.build import FaultSpec
from repro.runtime.manifest import (
    CampaignManifest,
    ManifestError,
    default_experiment_resolver,
)

_TOML = """
[campaign]
name = "demo"
seeds = [0, 1]

[[experiment]]
id = "toy"
driver = "_toy_driver:run"

[experiment.params]
dt = 0.004

[experiment.axes]
scale = [1.0, 2.0]
"""


def _mapping(**overrides):
    data = {
        "campaign": {"name": "demo"},
        "experiment": [
            {"id": "toy", "driver": "_toy_driver:run",
             "params": {"dt": 0.004}, "axes": {"scale": [1.0, 2.0]}},
        ],
    }
    data.update(overrides)
    return data


# --------------------------------------------------------------------- #
# Parsing
# --------------------------------------------------------------------- #
def test_toml_load_and_expand(tmp_path):
    path = tmp_path / "demo.toml"
    path.write_text(_TOML, encoding="utf-8")
    manifest = CampaignManifest.load(path)
    assert manifest.name == "demo"
    assert manifest.path == path
    assert len(manifest.digest) == 16
    cells = manifest.expand()
    assert [c.cell_id for c in cells] == [
        "toy[scale=1,seed=0]", "toy[scale=1,seed=1]",
        "toy[scale=2,seed=0]", "toy[scale=2,seed=1]"]
    assert all(c.spec.fn == "_toy_driver:run" for c in cells)
    assert cells[0].spec.kwargs() == {"dt": 0.004, "scale": 1, "seed": 0}


def test_json_load_matches_toml(tmp_path):
    data = _mapping(campaign={"name": "demo", "seeds": [0, 1]})
    path = tmp_path / "demo.json"
    path.write_text(json.dumps(data), encoding="utf-8")
    cells = CampaignManifest.load(path).expand()
    assert len(cells) == 4
    assert cells[0].cell_id == "toy[scale=1,seed=0]"


def test_unknown_suffix_rejected(tmp_path):
    path = tmp_path / "demo.yaml"
    path.write_text("campaign:\n", encoding="utf-8")
    with pytest.raises(ManifestError, match="toml or .json"):
        CampaignManifest.load(path)


def test_invalid_toml_names_the_file(tmp_path):
    path = tmp_path / "broken.toml"
    path.write_text("[campaign\nname =", encoding="utf-8")
    with pytest.raises(ManifestError, match="invalid TOML"):
        CampaignManifest.load(path)


# --------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------- #
def test_unknown_keys_rejected_at_every_level():
    with pytest.raises(ManifestError, match="top-level"):
        CampaignManifest.from_mapping(_mapping(extras={}))
    with pytest.raises(ManifestError, match="campaign"):
        CampaignManifest.from_mapping(
            _mapping(campaign={"name": "x", "typo": 1}))
    bad = _mapping()
    bad["experiment"][0]["axis"] = {}  # misspelt "axes"
    with pytest.raises(ManifestError, match="unknown keys"):
        CampaignManifest.from_mapping(bad)


def test_campaign_name_required():
    with pytest.raises(ManifestError, match="name"):
        CampaignManifest.from_mapping(_mapping(campaign={}))


def test_duplicate_experiment_ids_rejected():
    data = _mapping()
    data["experiment"].append(dict(data["experiment"][0]))
    with pytest.raises(ManifestError, match="duplicate experiment id"):
        CampaignManifest.from_mapping(data)


def test_axis_shadowing_a_param_rejected():
    data = _mapping()
    data["experiment"][0]["axes"]["dt"] = [0.01]
    with pytest.raises(ManifestError, match="both a fixed param"):
        CampaignManifest.from_mapping(data)


def test_seeds_with_explicit_seed_axis_rejected():
    data = _mapping(campaign={"name": "demo", "seeds": [0]})
    data["experiment"][0]["axes"]["seed"] = [7]
    with pytest.raises(ManifestError, match="seed"):
        CampaignManifest.from_mapping(data).expand()


def test_duplicate_cell_ids_rejected():
    # 1 and 1.0 canonicalise identically, so the grid would collide.
    data = _mapping()
    data["experiment"][0]["axes"]["scale"] = [1, 1.0]
    with pytest.raises(ManifestError, match="duplicate cell id"):
        CampaignManifest.from_mapping(data).expand()


def test_zero_cells_after_filtering_rejected():
    data = _mapping()
    data["experiment"][0]["exclude"] = [{"scale": 1.0}, {"scale": 2.0}]
    with pytest.raises(ManifestError, match="zero cells"):
        CampaignManifest.from_mapping(data).expand()


def test_bad_fault_field_rejected():
    data = _mapping()
    data["experiment"][0]["faults"] = [{"kind": "link_flap", "oops": 1}]
    with pytest.raises(ManifestError, match="bad fault spec"):
        CampaignManifest.from_mapping(data).expand()


# --------------------------------------------------------------------- #
# Expansion semantics
# --------------------------------------------------------------------- #
def test_include_then_exclude_filtering():
    data = _mapping()
    data["experiment"][0]["axes"]["scale"] = [1.0, 2.0, 3.0]
    data["experiment"][0]["include"] = [{"scale": 1.0}, {"scale": 3.0}]
    data["experiment"][0]["exclude"] = [{"scale": 3}]
    cells = CampaignManifest.from_mapping(data).expand()
    assert [c.cell_id for c in cells] == ["toy[scale=1]"]


def test_cell_ids_use_canonical_value_spelling():
    # 2.0 and 2 are the same parameter value; the id must spell them the
    # same way or diff join keys break between TOML and JSON manifests.
    data = _mapping()
    data["experiment"][0]["axes"]["scale"] = [2.0]
    cells = CampaignManifest.from_mapping(data).expand()
    assert cells[0].cell_id == "toy[scale=2]"


def test_block_seeds_override_campaign_seeds():
    data = _mapping(campaign={"name": "demo", "seeds": [0, 1, 2]})
    data["experiment"][0]["seeds"] = [9]
    cells = CampaignManifest.from_mapping(data).expand()
    assert [c.spec.kwargs()["seed"] for c in cells] == [9, 9]


def test_faults_become_fault_spec_parameters():
    data = _mapping()
    data["experiment"][0]["faults"] = [
        {"kind": "link_flap", "link": "wan", "start": 1.0, "duration": 0.5}]
    cells = CampaignManifest.from_mapping(data).expand()
    (fault,) = cells[0].spec.kwargs()["faults"]
    assert fault == FaultSpec(kind="link_flap", link="wan",
                              start=1.0, duration=0.5)


def test_no_axes_yields_a_single_bare_cell():
    data = _mapping()
    data["experiment"][0].pop("axes")
    cells = CampaignManifest.from_mapping(data).expand()
    assert [c.cell_id for c in cells] == ["toy"]
    assert cells[0].spec.kwargs() == {"dt": 0.004}


def test_custom_resolver_maps_bare_driver_names():
    data = _mapping()
    data["experiment"][0]["driver"] = "toyname"
    cells = CampaignManifest.from_mapping(data).expand(
        resolver=lambda name: {"toyname": "_toy_driver:run"}[name])
    assert cells[0].spec.fn == "_toy_driver:run"


def test_default_resolver_uses_the_experiment_registry():
    assert default_experiment_resolver("link_flap") == \
        "repro.experiments.link_flap:run"
    with pytest.raises(ManifestError, match="unknown experiment id"):
        default_experiment_resolver("definitely_not_registered")


def test_driver_modules_lists_cache_key_scopes():
    data = _mapping()
    data["experiment"].append(
        {"id": "other", "driver": "repro.experiments.fig09_wan:run"})
    manifest = CampaignManifest.from_mapping(data)
    assert manifest.driver_modules() == (
        "_toy_driver", "repro.experiments.fig09_wan")
