"""The engine perf-bench harness: report schema and regression gating."""

import importlib.util
import json
import pathlib
import re

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _load_perf_engine():
    spec = importlib.util.spec_from_file_location(
        "perf_engine", _ROOT / "benchmarks" / "perf_engine.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


perf_engine = _load_perf_engine()


def _stats(seconds):
    return {"seconds": seconds, "sim_seconds": 1.0, "dt": 0.002,
            "ticks": 500, "ticks_per_sec": 500 / seconds, "flows": 1}


def _write_baseline(path, seconds_by_name):
    report = {"schema": perf_engine.SCHEMA, "bench": "engine",
              "scenarios": {name: _stats(seconds)
                            for name, seconds in seconds_by_name.items()}}
    path.write_text(json.dumps(report))


class TestCheckAgainstBaseline:
    def test_within_threshold_passes(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        _write_baseline(baseline, {"cruise": 1.0})
        code = perf_engine.check_against_baseline(
            {"cruise": _stats(1.5)}, str(baseline), threshold=2.0)
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out
        # Per-scenario ratio lines plus a one-line success summary.
        assert "1.50x" in out
        assert "perf check OK: 1 scenario(s)" in out

    def test_regression_fails(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        _write_baseline(baseline, {"cruise": 1.0, "fig09_wan": 2.0})
        code = perf_engine.check_against_baseline(
            {"cruise": _stats(0.9), "fig09_wan": _stats(4.5)},
            str(baseline), threshold=2.0)
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "fig09_wan" in captured.err

    def test_new_scenario_without_baseline_is_skipped(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        _write_baseline(baseline, {"cruise": 1.0})
        code = perf_engine.check_against_baseline(
            {"cruise": _stats(1.0), "novel": _stats(99.0)},
            str(baseline), threshold=2.0)
        assert code == 0
        assert "skipping" in capsys.readouterr().out

    def test_missing_baseline_is_an_error(self, tmp_path, capsys):
        code = perf_engine.check_against_baseline(
            {"cruise": _stats(1.0)}, str(tmp_path / "nope.json"),
            threshold=2.0)
        assert code == 2
        assert "cannot read baseline" in capsys.readouterr().err


class TestReport:
    def test_write_report_schema(self, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        report = perf_engine.write_report({"cruise": _stats(1.0)}, str(out))
        on_disk = json.loads(out.read_text())
        assert on_disk == report
        assert on_disk["schema"] == perf_engine.SCHEMA
        assert on_disk["schema_version"] == perf_engine.SCHEMA
        assert on_disk["bench"] == "engine"
        assert "git_commit" in on_disk
        commit = on_disk["git_commit"]
        assert commit is None or re.fullmatch(r"[0-9a-f]{40}(-dirty)?",
                                              commit)
        assert set(on_disk["scenarios"]) == {"cruise"}
        stats = on_disk["scenarios"]["cruise"]
        assert {"seconds", "sim_seconds", "dt", "ticks",
                "ticks_per_sec", "flows"} <= set(stats)

    def test_tracked_scenarios_exist(self):
        assert {"cruise", "contention16", "fig09_wan", "fig09_fluid",
                "fig09_fluid100k"} <= set(perf_engine.SCENARIOS)

    def test_run_scenarios_keeps_fastest_repeat(self, monkeypatch, capsys):
        calls = iter([3.0, 1.0, 2.0])

        def fake_scenario():
            return _stats(next(calls))

        monkeypatch.setitem(perf_engine.SCENARIOS, "fake", fake_scenario)
        results = perf_engine.run_scenarios(["fake"], repeat=3)
        assert results["fake"]["seconds"] == pytest.approx(1.0)


class TestProvenance:
    def test_dirty_baseline_warns_on_check(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        report = {"schema": perf_engine.SCHEMA, "bench": "engine",
                  "git_commit": "a" * 40 + "-dirty",
                  "scenarios": {"cruise": _stats(1.0)}}
        baseline.write_text(json.dumps(report))
        code = perf_engine.check_against_baseline(
            {"cruise": _stats(1.0)}, str(baseline), threshold=2.0)
        assert code == 0
        err = capsys.readouterr().err
        assert "dirty working tree" in err

    def test_clean_baseline_does_not_warn(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        report = {"schema": perf_engine.SCHEMA, "bench": "engine",
                  "git_commit": "a" * 40,
                  "scenarios": {"cruise": _stats(1.0)}}
        baseline.write_text(json.dumps(report))
        assert perf_engine.check_against_baseline(
            {"cruise": _stats(1.0)}, str(baseline), threshold=2.0) == 0
        assert "dirty" not in capsys.readouterr().err


class TestCommittedBaseline:
    """Contracts on the BENCH_engine.json actually checked in."""

    @pytest.fixture(scope="class")
    def committed(self):
        return json.loads((_ROOT / "BENCH_engine.json").read_text())

    def test_provenance_is_a_clean_commit(self, committed):
        commit = committed["git_commit"]
        assert commit is not None, "baseline recorded outside git"
        assert re.fullmatch(r"[0-9a-f]{40}", commit), \
            f"baseline provenance is not a clean commit: {commit}"

    def test_fluid_cost_near_constant_in_flow_count(self, committed):
        """The tentpole's headline: 100k flows within 1.3x of ~2.5k flows."""
        scenarios = committed["scenarios"]
        small = scenarios["fig09_fluid"]
        large = scenarios["fig09_fluid100k"]
        assert large["seconds"] <= 1.3 * small["seconds"], (
            f"fluid aggregate cost scales with flow count: "
            f"{small['seconds']:.2f}s -> {large['seconds']:.2f}s")
        # And the two runs really differ by ~40x in represented flows.
        assert large["cross_flows"] > 30 * small["cross_flows"]
