"""Recorder: throughput/delay/mode series extraction."""

import numpy as np
import pytest

from repro import quick_network
from repro.cc import Cubic
from repro.core.nimbus import Nimbus
from repro.simulator import Flow, mbps_to_bytes_per_sec


@pytest.fixture(scope="module")
def recorded_run():
    network, link = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
    mu = mbps_to_bytes_per_sec(24)
    network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="cubic"))
    network.add_flow(Flow(cc=Nimbus(mu=mu), prop_rtt=0.05, name="nimbus"))
    network.run(20.0)
    return network


def test_times_monotone(recorded_run):
    times = recorded_run.recorder.times()
    assert np.all(np.diff(times) > 0)


def test_throughput_series_sums_to_link(recorded_run):
    rec = recorded_run.recorder
    _, cubic = rec.throughput_series("cubic")
    _, nimbus = rec.throughput_series("nimbus")
    total = (cubic + nimbus)[50:]
    assert float(np.mean(total)) == pytest.approx(24.0, rel=0.15)


def test_throughput_all_flows_default(recorded_run):
    rec = recorded_run.recorder
    _, total = rec.throughput_series()
    assert float(np.mean(total[50:])) == pytest.approx(24.0, rel=0.15)


def test_queue_delay_series_nonnegative(recorded_run):
    _, delays = recorded_run.recorder.queue_delay_series("cubic")
    assert np.all(delays >= 0)


def test_link_queue_delay_series(recorded_run):
    times, delays = recorded_run.recorder.link_queue_delay_series()
    assert len(times) == len(delays)
    assert np.all(delays >= 0)
    assert delays.max() <= 110.0  # bounded by the 100 ms buffer (plus slack)


def test_mode_series_only_for_mode_switching(recorded_run):
    rec = recorded_run.recorder
    _, cubic_modes = rec.mode_series("cubic")
    _, nimbus_modes = rec.mode_series("nimbus")
    assert all(m is None for m in cubic_modes)
    assert any(m in ("delay", "competitive") for m in nimbus_modes)


def test_queue_delay_samples(recorded_run):
    samples = recorded_run.recorder.queue_delay_samples("cubic")
    assert samples.size > 0
    assert np.all(samples >= 0)


def test_rtt_samples_above_propagation(recorded_run):
    samples = recorded_run.recorder.rtt_samples("cubic")
    assert samples.size > 0
    assert samples.min() >= 0.05 - 1e-9


def test_mean_throughput_window(recorded_run):
    rec = recorded_run.recorder
    full = rec.mean_throughput("cubic")
    tail = rec.mean_throughput("cubic", start=10.0)
    assert full >= 0 and tail >= 0


def test_mean_throughput_unknown_flow(recorded_run):
    assert recorded_run.recorder.mean_throughput("missing") == 0.0
