"""Recorder: throughput/delay/mode series extraction."""

import numpy as np
import pytest

from repro import quick_network
from repro.cc import Cubic
from repro.core.nimbus import Nimbus
from repro.simulator import Flow, mbps_to_bytes_per_sec


@pytest.fixture(scope="module")
def recorded_run():
    network, link = quick_network(link_mbps=24, buffer_ms=100, dt=0.004)
    mu = mbps_to_bytes_per_sec(24)
    network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="cubic"))
    network.add_flow(Flow(cc=Nimbus(mu=mu), prop_rtt=0.05, name="nimbus"))
    network.run(20.0)
    return network


def test_times_monotone(recorded_run):
    times = recorded_run.recorder.times()
    assert np.all(np.diff(times) > 0)


def test_throughput_series_sums_to_link(recorded_run):
    rec = recorded_run.recorder
    _, cubic = rec.throughput_series("cubic")
    _, nimbus = rec.throughput_series("nimbus")
    total = (cubic + nimbus)[50:]
    assert float(np.mean(total)) == pytest.approx(24.0, rel=0.15)


def test_throughput_all_flows_default(recorded_run):
    rec = recorded_run.recorder
    _, total = rec.throughput_series()
    assert float(np.mean(total[50:])) == pytest.approx(24.0, rel=0.15)


def test_queue_delay_series_nonnegative(recorded_run):
    _, delays = recorded_run.recorder.queue_delay_series("cubic")
    assert np.all(delays >= 0)


def test_link_queue_delay_series(recorded_run):
    times, delays = recorded_run.recorder.link_queue_delay_series()
    assert len(times) == len(delays)
    assert np.all(delays >= 0)
    assert delays.max() <= 110.0  # bounded by the 100 ms buffer (plus slack)


def test_mode_series_only_for_mode_switching(recorded_run):
    rec = recorded_run.recorder
    _, cubic_modes = rec.mode_series("cubic")
    _, nimbus_modes = rec.mode_series("nimbus")
    assert all(m is None for m in cubic_modes)
    assert any(m in ("delay", "competitive") for m in nimbus_modes)


def test_queue_delay_samples(recorded_run):
    samples = recorded_run.recorder.queue_delay_samples("cubic")
    assert samples.size > 0
    assert np.all(samples >= 0)


def test_rtt_samples_above_propagation(recorded_run):
    samples = recorded_run.recorder.rtt_samples("cubic")
    assert samples.size > 0
    assert samples.min() >= 0.05 - 1e-9


def test_mean_throughput_window(recorded_run):
    rec = recorded_run.recorder
    full = rec.mean_throughput("cubic")
    tail = rec.mean_throughput("cubic", start=10.0)
    assert full >= 0 and tail >= 0


def test_mean_throughput_unknown_flow(recorded_run):
    assert recorded_run.recorder.mean_throughput("missing") == 0.0


# --------------------------------------------------------------------- #
# Per-link series over a multi-hop topology
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def multihop_run():
    from repro.runtime import LinkSpec, make_multihop_network
    network = make_multihop_network(
        (LinkSpec("hop1", 18.0, delay_ms=5.0, buffer_ms=100.0),
         LinkSpec("hop2", 12.0, delay_ms=5.0, buffer_ms=100.0)),
        dt=0.002, seed=0, monitor="hop2")
    network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="main"))
    network.run(15.0)
    return network


def test_link_names_in_attachment_order(multihop_run):
    assert multihop_run.recorder.link_names() == ["hop1", "hop2"]


def test_named_monitor_series_matches_legacy(multihop_run):
    rec = multihop_run.recorder
    times_legacy, legacy = rec.link_queue_delay_series()
    times_named, named = rec.link_queue_delay_series("hop2")
    assert np.array_equal(times_legacy, times_named)
    assert np.allclose(legacy, named)


def test_per_hop_throughput_converges_to_bottleneck(multihop_run):
    rec = multihop_run.recorder
    _, tput = rec.link_throughput_series("hop2")
    assert float(np.mean(tput[len(tput) // 3:])) == pytest.approx(12.0,
                                                                  rel=0.15)


def test_upstream_hop_sees_at_least_bottleneck_rate(multihop_run):
    rec = multihop_run.recorder
    _, up = rec.link_throughput_series("hop1")
    _, down = rec.link_throughput_series("hop2")
    settled = slice(len(up) // 3, None)
    assert float(np.mean(up[settled])) >= float(np.mean(down[settled])) - 1.0


def test_link_occupancy_and_drops_nonnegative(multihop_run):
    rec = multihop_run.recorder
    for name in rec.link_names():
        _, occ = rec.link_occupancy_series(name)
        _, drops = rec.link_drop_series(name)
        assert np.all(occ >= 0)
        assert np.all(drops >= 0)


def test_uncongested_hop_records_no_queueing(multihop_run):
    # hop1 runs 50% faster than the bottleneck: its queue stays shallow
    # compared to hop2's standing queue.
    rec = multihop_run.recorder
    _, q1 = rec.link_queue_delay_series("hop1")
    _, q2 = rec.link_queue_delay_series("hop2")
    assert float(np.mean(q1)) < float(np.mean(q2))


def test_unknown_link_raises_with_known_names(multihop_run):
    with pytest.raises(KeyError, match="hop1"):
        multihop_run.recorder.link_queue_delay_series("nope")
