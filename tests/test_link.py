"""Bottleneck link: FIFO ordering, service rate, drops, and accounting."""

import pytest

from repro.simulator.aqm import DropTail
from repro.simulator.link import BottleneckLink
from repro.simulator.packet import Chunk


def chunk(flow_id=0, size=1000.0, seq=0.0, sent=0.0):
    return Chunk(flow_id=flow_id, size=size, seq=seq, sent_time=sent)


def make_link(capacity=1e6, buffer_bytes=10e3):
    return BottleneckLink(capacity=capacity, policy=DropTail(buffer_bytes))


class TestEnqueue:
    def test_admits_within_buffer(self):
        link = make_link()
        drops = link.enqueue(chunk(size=5000), now=0.0)
        assert drops == []
        assert link.queue_bytes == pytest.approx(5000)

    def test_drop_tail_overflow(self):
        link = make_link(buffer_bytes=6000)
        link.enqueue(chunk(size=5000), now=0.0)
        drops = link.enqueue(chunk(size=5000, flow_id=1), now=0.0)
        assert len(drops) == 1
        assert drops[0].flow_id == 1
        assert drops[0].lost_bytes == pytest.approx(4000)
        assert link.queue_bytes == pytest.approx(6000)

    def test_full_buffer_drops_everything(self):
        link = make_link(buffer_bytes=1000)
        link.enqueue(chunk(size=1000), now=0.0)
        drops = link.enqueue(chunk(size=500), now=0.0)
        assert drops[0].lost_bytes == pytest.approx(500)

    def test_total_drops_accumulate(self):
        link = make_link(buffer_bytes=1000)
        link.enqueue(chunk(size=900), now=0.0)
        link.enqueue(chunk(size=900), now=0.0)
        assert link.total_drops == pytest.approx(800)


class TestService:
    def test_serves_at_capacity(self):
        link = make_link(capacity=1e6)
        link.enqueue(chunk(size=5000), now=0.0)
        served = link.service(now=0.001, dt=0.001)
        assert sum(c.size for c in served) == pytest.approx(1000)
        assert link.queue_bytes == pytest.approx(4000)

    def test_fifo_order(self):
        link = make_link(capacity=1e6, buffer_bytes=1e6)
        link.enqueue(chunk(flow_id=0, size=600), now=0.0)
        link.enqueue(chunk(flow_id=1, size=600), now=0.0)
        served = link.service(now=0.001, dt=0.001)
        assert [c.flow_id for c in served] == [0, 1]

    def test_partial_service_splits_head(self):
        link = make_link(capacity=1e6)
        link.enqueue(chunk(size=1500), now=0.0)
        served = link.service(now=0.001, dt=0.001)
        assert sum(c.size for c in served) == pytest.approx(1000)
        served2 = link.service(now=0.002, dt=0.001)
        assert sum(c.size for c in served2) == pytest.approx(500)

    def test_queue_delay_recorded(self):
        link = make_link(capacity=1e6)
        link.enqueue(chunk(size=500), now=0.0)
        served = link.service(now=0.05, dt=0.001)
        assert served[0].queue_delay == pytest.approx(0.05, abs=1e-6)

    def test_idle_link_has_no_credit_banking(self):
        link = make_link(capacity=1e6)
        # Idle for a long time: no stored-up service credit.
        link.service(now=1.0, dt=1.0)
        link.enqueue(chunk(size=100000), now=1.0)
        served = link.service(now=1.001, dt=0.001)
        assert sum(c.size for c in served) <= 1000 + 1e-6

    def test_conservation(self):
        link = make_link(capacity=1e6, buffer_bytes=5000)
        total_in = 0.0
        total_dropped = 0.0
        for i in range(20):
            c = chunk(size=800, seq=i * 800)
            total_in += c.size
            for d in link.enqueue(c, now=i * 0.001):
                total_dropped += d.lost_bytes
            link.service(now=(i + 1) * 0.001, dt=0.001)
        assert total_in == pytest.approx(
            link.total_served + link.queue_bytes + total_dropped)


def occupancy_invariants(link):
    """The per-flow counters must agree with the queue they summarise."""
    scanned = {}
    for c in link.iter_queue():
        scanned[c.flow_id] = scanned.get(c.flow_id, 0.0) + c.size
    for flow_id, nbytes in scanned.items():
        assert link.occupancy_of(flow_id) == pytest.approx(nbytes, abs=1e-6)
    assert sum(link._flow_bytes.values()) == pytest.approx(
        link.queue_bytes, abs=1e-6)
    assert set(link._flow_bytes) == set(scanned)


class TestOccupancyAccounting:
    def test_counter_tracks_enqueue_partial_drop_split_dequeue(self):
        link = make_link(capacity=1e6, buffer_bytes=8000)
        # Plain enqueues for two flows.
        link.enqueue(chunk(flow_id=0, size=3000), now=0.0)
        link.enqueue(chunk(flow_id=1, size=2500), now=0.0)
        occupancy_invariants(link)
        # Partial drop: only the admitted remainder may be counted.
        drops = link.enqueue(chunk(flow_id=0, size=4000), now=0.001)
        assert drops and drops[0].lost_bytes == pytest.approx(1500)
        assert link.occupancy_of(0) == pytest.approx(3000 + 2500)
        occupancy_invariants(link)
        # Partial service splits the head chunk of flow 0.
        link.service(now=0.002, dt=0.001)
        occupancy_invariants(link)
        # Drain everything; counters must disappear with their chunks.
        link.service(now=1.0, dt=1.0)
        occupancy_invariants(link)
        assert link.occupancy_of(0) == 0.0
        assert link.occupancy_of(1) == 0.0
        assert link._flow_bytes == {} and link._flow_chunks == {}

    def test_counter_exact_zero_after_flow_leaves(self):
        # Sizes chosen so incremental add/subtract would leave a float
        # residue; removing the last chunk must reset the flow exactly.
        link = make_link(capacity=1e6, buffer_bytes=1e9)
        for i in range(50):
            link.enqueue(chunk(flow_id=0, size=0.1 + i * 1e-3), now=0.0)
        while link.occupancy_of(0) > 0.0:
            link.service(now=1.0, dt=1.0)
        assert link.occupancy_of(0) == 0.0
        assert 0 not in link._flow_bytes

    def test_invariant_through_randomised_traffic(self):
        import random

        rng = random.Random(7)
        link = make_link(capacity=1e6, buffer_bytes=5000)
        now = 0.0
        for step in range(300):
            now += 0.001
            for flow_id in range(4):
                if rng.random() < 0.7:
                    link.enqueue(chunk(flow_id=flow_id,
                                       size=rng.uniform(10, 2000),
                                       seq=step), now=now)
            link.service(now=now, dt=0.001)
            occupancy_invariants(link)


class TestServiceCreditEdges:
    def test_head_within_tolerance_of_budget_fully_served(self):
        # The head is 1e-10 bytes larger than the budget: within the 1e-9
        # slack, so it must be dequeued whole instead of split.
        link = make_link(capacity=1e6)
        link.enqueue(chunk(size=1000 + 1e-10), now=0.0)
        served = link.service(now=0.001, dt=0.001)
        assert len(served) == 1
        assert served[0].size == pytest.approx(1000, abs=1e-6)
        assert not list(link.iter_queue())

    def test_credit_resets_when_queue_idles(self):
        link = make_link(capacity=1e6)
        link.enqueue(chunk(size=300), now=0.0)
        link.service(now=0.001, dt=0.001)  # 700 bytes of budget unused
        assert link._service_credit == 0.0  # queue idle: nothing banked
        # A busy queue does bank the unserved remainder of the budget.
        link.enqueue(chunk(size=1500), now=0.001)
        link.service(now=0.002, dt=0.001)
        assert link._service_credit == 0.0  # split consumed the full budget
        link.service(now=0.003, dt=0.001)
        assert link._service_credit == 0.0
        assert link.queue_bytes == pytest.approx(0.0, abs=1e-6)

    def test_partial_admission_cuts_drop_before_mutating_chunk(self):
        link = make_link(buffer_bytes=4000)
        c = chunk(flow_id=2, size=5000)
        drops = link.enqueue(c, now=0.0)
        # The drop record reflects the original size; the chunk was then
        # shrunk in place to the admitted bytes.
        assert drops[0].lost_bytes == pytest.approx(1000)
        assert c.size == pytest.approx(4000)
        assert c.enqueue_time == 0.0
        assert link.occupancy_of(2) == pytest.approx(4000)
        occupancy_invariants(link)


class TestQueries:
    def test_queue_delay_property(self):
        link = make_link(capacity=1e6)
        link.enqueue(chunk(size=2000), now=0.0)
        assert link.queue_delay == pytest.approx(0.002)

    def test_occupancy_of(self):
        link = make_link(buffer_bytes=1e6)
        link.enqueue(chunk(flow_id=0, size=1000), now=0.0)
        link.enqueue(chunk(flow_id=1, size=2000), now=0.0)
        assert link.occupancy_of(0) == pytest.approx(1000)
        assert link.occupancy_of(1) == pytest.approx(2000)
        assert link.occupancy_of(7) == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BottleneckLink(capacity=0)
