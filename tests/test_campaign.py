"""Campaign runner end to end: caching granularity, streaming, diffing.

The centrepiece is :func:`test_driver_edit_reexecutes_only_that_drivers_
cells` — the acceptance demo for per-module cache keys: a two-driver
campaign runs cold, re-runs fully warm, and after an edit to one driver's
source only that driver's cells re-execute.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.campaign import (
    CampaignRunner,
    diff_summaries,
    main,
    render_diff,
)
from repro.runtime.depgraph import DependencyGraph
from repro.runtime.manifest import CampaignManifest

# ---------------------------------------------------------------------- #
# A two-driver toy package sharing one engine module
# ---------------------------------------------------------------------- #
_CAMPKG_SOURCES = {
    "__init__.py": "",
    "engine.py": ("def simulate(x, seed):\n"
                  "    return (x * 17 + seed) % 101\n"),
    "driver_a.py": ("from .engine import simulate\n"
                    "\n"
                    "def run(x=1, seed=0):\n"
                    "    return {'value': simulate(x, seed), 'driver': 'a'}\n"),
    "driver_b.py": ("from .engine import simulate\n"
                    "\n"
                    "def run(x=1, seed=0):\n"
                    "    return {'value': simulate(x, seed), 'driver': 'b'}\n"),
    "flaky.py": ("def run(x=1, seed=0):\n"
                 "    if x == 2:\n"
                 "        raise RuntimeError('boom')\n"
                 "    return {'value': x}\n"),
}

_MANIFEST = {
    "campaign": {"name": "toycamp", "seeds": [0]},
    "experiment": [
        {"id": "alpha", "driver": "campkg.driver_a:run",
         "axes": {"x": [1, 2]}},
        {"id": "beta", "driver": "campkg.driver_b:run",
         "axes": {"x": [1]}},
    ],
}

_CELLS = ("alpha[x=1,seed=0]", "alpha[x=2,seed=0]", "beta[x=1,seed=0]")


@pytest.fixture
def campkg(tmp_path, monkeypatch):
    root = tmp_path / "campkg"
    root.mkdir()
    for name, text in _CAMPKG_SOURCES.items():
        (root / name).write_text(text, encoding="utf-8")
    monkeypatch.syspath_prepend(str(tmp_path))
    return root


def _runner(campkg, tmp_path, out_name, manifest=None):
    graph = DependencyGraph(packages={"campkg": campkg})
    cache = ResultCache(directory=tmp_path / "cache", enabled=True,
                        graph=graph)
    return CampaignRunner(
        CampaignManifest.from_mapping(manifest or _MANIFEST),
        out_dir=tmp_path / out_name, cache=cache, workers=1, chunk=2)


# ---------------------------------------------------------------------- #
# The acceptance demo: cold -> warm -> edit one driver
# ---------------------------------------------------------------------- #
def test_driver_edit_reexecutes_only_that_drivers_cells(campkg, tmp_path):
    cold = _runner(campkg, tmp_path, "run-cold").run()
    assert set(cold["cells"]) == set(_CELLS)
    assert cold["totals"]["ok"] == 3
    assert cold["totals"]["misses"] == 3 and cold["totals"]["hits"] == 0

    warm = _runner(campkg, tmp_path, "run-warm").run()
    assert warm["totals"]["hits"] == 3 and warm["totals"]["misses"] == 0

    with open(campkg / "driver_a.py", "a", encoding="utf-8") as handle:
        handle.write("\n# edited between runs\n")
    edited = _runner(campkg, tmp_path, "run-edited").run()
    states = {cell: row["cache"] for cell, row in edited["cells"].items()}
    assert states == {"alpha[x=1,seed=0]": "miss",
                      "alpha[x=2,seed=0]": "miss",
                      "beta[x=1,seed=0]": "hit"}
    # Identical parameters, identical code path: same results either way.
    for cell in _CELLS:
        assert edited["cells"][cell]["outcome"] == "ok"
        assert edited["cells"][cell]["spec_hash"] == \
            warm["cells"][cell]["spec_hash"]


def test_engine_edit_invalidates_every_driver(campkg, tmp_path):
    _runner(campkg, tmp_path, "run-a").run()
    with open(campkg / "engine.py", "a", encoding="utf-8") as handle:
        handle.write("\n# engine touched\n")
    summary = _runner(campkg, tmp_path, "run-b").run()
    assert summary["totals"]["misses"] == 3
    assert summary["totals"]["hits"] == 0


# ---------------------------------------------------------------------- #
# Artefacts: results stream, summary, status
# ---------------------------------------------------------------------- #
def test_results_stream_and_summary_files(campkg, tmp_path):
    runner = _runner(campkg, tmp_path, "run-files")
    summary = runner.run()
    rows = [json.loads(line)
            for line in runner.results_path.read_text().splitlines()]
    assert [row["cell"] for row in rows] == list(_CELLS)
    for row in rows:
        assert row["campaign"] == "toycamp"
        assert row["outcome"] == "ok" and row["cache"] == "miss"
        assert "value" in row["scalars"]
        assert row["fn"].startswith("campkg.driver_")
    on_disk = json.loads(runner.summary_path.read_text())
    assert on_disk["totals"]["cells"] == 3
    assert on_disk["cells"].keys() == summary["cells"].keys()
    assert runner.journal_path.exists()


def test_status_pending_then_ok(campkg, tmp_path):
    runner = _runner(campkg, tmp_path, "run-status")
    before = runner.status()
    assert set(before["cells"].values()) == {"pending"}
    assert before["counts"] == {"pending": 3}
    runner.run()
    after = _runner(campkg, tmp_path, "run-status").status()
    assert set(after["cells"].values()) == {"ok"}
    assert after["counts"] == {"ok": 3}


def test_failed_cells_are_recorded_not_raised(campkg, tmp_path):
    manifest = {
        "campaign": {"name": "flaky"},
        "experiment": [{"id": "fl", "driver": "campkg.flaky:run",
                        "axes": {"x": [1, 2]}}],
    }
    runner = _runner(campkg, tmp_path, "run-flaky", manifest)
    summary = runner.run()
    assert summary["totals"]["ok"] == 1
    assert summary["totals"]["failed"] == 1
    by_cell = summary["cells"]
    assert by_cell["fl[x=1]"]["outcome"] == "ok"
    assert by_cell["fl[x=2]"]["outcome"] == "error"
    rows = [json.loads(line)
            for line in runner.results_path.read_text().splitlines()]
    failed = next(r for r in rows if r["cell"] == "fl[x=2]")
    assert "boom" in failed["scalars"]["error"]
    # Resume re-attempts the failure; the healthy cell stays a cache hit.
    resumed = _runner(campkg, tmp_path, "run-flaky2", manifest).run(
        resume=True)
    assert resumed["cells"]["fl[x=1]"]["cache"] == "hit"
    assert resumed["cells"]["fl[x=2]"]["outcome"] == "error"


# ---------------------------------------------------------------------- #
# Summary diffing
# ---------------------------------------------------------------------- #
def _summary_with(cells):
    return {"campaign": "x", "cells": cells,
            "totals": {"wall_seconds": 1.0}}


def test_diff_flags_regressions_and_accuracy_shifts():
    old = _summary_with({
        "a": {"outcome": "ok", "accuracy": 0.9},
        "b": {"outcome": "ok", "accuracy": 0.5},
        "gone": {"outcome": "ok", "accuracy": None},
    })
    new = _summary_with({
        "a": {"outcome": "error", "accuracy": None},
        "b": {"outcome": "ok", "accuracy": 0.7},
        "fresh": {"outcome": "ok", "accuracy": 1.0},
    })
    diff = diff_summaries(old, new)
    assert diff["added"] == ["fresh"] and diff["removed"] == ["gone"]
    assert diff["outcome_changes"] == {"a": ("ok", "error")}
    assert diff["regressed"] == ["a"]
    assert diff["accuracy_deltas"] == {"b": (0.5, 0.7)}
    rendered = render_diff(diff)
    assert "outcome: a: ok -> error" in rendered
    assert "1 cell(s) regressed" in rendered


def test_diff_of_identical_summaries_is_clean():
    summary = _summary_with({"a": {"outcome": "ok", "accuracy": 0.9}})
    diff = diff_summaries(summary, summary)
    assert not diff["regressed"] and not diff["outcome_changes"]
    assert render_diff(diff) == "no cell-level differences"


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
_CLI_TOML = """
[campaign]
name = "clitoy"

[[experiment]]
id = "toy"
driver = "_toy_driver:run"

[experiment.params]
duration = 0.05

[experiment.axes]
seed = [0, 1]
"""


@pytest.fixture
def cli_manifest(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
    path = tmp_path / "clitoy.toml"
    path.write_text(_CLI_TOML, encoding="utf-8")
    return path


def test_cli_dry_run(cli_manifest, capsys):
    assert main(["dry-run", str(cli_manifest)]) == 0
    out = capsys.readouterr().out
    assert "toy[seed=0]" in out and "2 cell(s)" in out


def test_cli_run_twice_then_diff(cli_manifest, tmp_path, capsys):
    out_a, out_b = str(tmp_path / "cli-a"), str(tmp_path / "cli-b")
    assert main(["run", str(cli_manifest), "--out", out_a]) == 0
    assert main(["run", str(cli_manifest), "--out", out_b]) == 0
    capsys.readouterr()
    warm = json.loads((tmp_path / "cli-b" / "summary.json").read_text())
    assert warm["totals"]["hits"] == 2 and warm["totals"]["misses"] == 0
    assert main(["diff", f"{out_a}/summary.json",
                 f"{out_b}/summary.json"]) == 0
    assert "no cell-level differences" in capsys.readouterr().out


def test_cli_status(cli_manifest, tmp_path, capsys):
    out = str(tmp_path / "cli-status")
    assert main(["run", str(cli_manifest), "--out", out]) == 0
    capsys.readouterr()
    assert main(["status", str(cli_manifest), "--out", out]) == 0
    printed = capsys.readouterr().out
    assert "campaign clitoy: 2 ok" in printed


def test_cli_manifest_error_exits_2(tmp_path, capsys):
    missing = tmp_path / "nope.toml"
    assert main(["run", str(missing)]) == 2
    assert "cannot read manifest" in capsys.readouterr().err
