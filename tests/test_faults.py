"""Chaos-layer tests: deterministic fault injection on topology networks.

Covers the fault vocabulary (capacity dips, drain/drop link flaps, delay
jitter, burst loss), schedule validation, telemetry, and — promoted to
tier 1 — the per-hop conservation audit running through a short parking
lot with and without an injected flap.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments import link_flap, parking_lot
from repro.experiments.common import MAIN_FLOW
from repro.runtime import FaultSpec, flap_fault_specs, make_fault_schedule
from repro.runtime.build import LinkSpec, make_multihop_network
from repro.simulator import (
    Flow,
    FaultEvent,
    FaultSchedule,
    ListTraceSink,
    mbps_to_bytes_per_sec,
    validate_trace_record,
)
from repro.simulator.topology import AuditError


def _two_hop(seed: int = 1, dt: float = 0.002, faults=()):
    links = (LinkSpec("wan", 96.0, delay_ms=10.0, buffer_ms=100.0),
             LinkSpec("bottleneck", 48.0, buffer_ms=100.0))
    network = make_multihop_network(links, dt=dt, seed=seed,
                                    monitor="bottleneck", faults=faults)
    from repro.experiments.common import make_scheme
    mu = mbps_to_bytes_per_sec(48.0)
    network.add_flow(Flow(cc=make_scheme("cubic", mu), prop_rtt=0.05,
                          name=MAIN_FLOW))
    return network


def _link(network, name):
    return network.topology.links[network.topology.index_of(name)]


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor_strike", "wan", 0.0, 1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            FaultEvent("link_flap", "wan", -1.0, 1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent("link_flap", "wan", 0.0, 0.0)

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent("capacity_dip", "wan", 0.0, 1.0, factor=0.0)

    def test_bad_loss_rate_rejected(self):
        with pytest.raises(ValueError, match="loss_rate"):
            FaultEvent("burst_loss", "wan", 0.0, 1.0, loss_rate=1.5)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            FaultSchedule([FaultEvent("link_flap", "wan", 1.0, 2.0),
                           FaultEvent("capacity_dip", "wan", 2.5, 1.0)])

    def test_same_window_different_links_allowed(self):
        schedule = FaultSchedule([FaultEvent("link_flap", "wan", 1.0, 2.0),
                                  FaultEvent("link_flap", "lan", 1.0, 2.0)])
        assert len(schedule) == 2

    def test_touching_windows_restore_before_apply(self):
        """Back-to-back windows on one link: the earlier window's restore
        runs before the later window's effect, so the second dip scales
        the *nominal* capacity — never the already-dipped one."""
        network = _two_hop(faults=(
            FaultSpec("capacity_dip", "wan", 1.0, 1.0, factor=0.5),
            FaultSpec("capacity_dip", "wan", 2.0, 1.0, factor=0.25),))
        wan = _link(network, "wan")
        nominal = wan.capacity
        network.run(1.5)
        assert wan.capacity == pytest.approx(nominal * 0.5)
        network.run(2.5)
        # Second window active: 0.25 * nominal, not 0.25 * 0.5 * nominal.
        assert wan.capacity == pytest.approx(nominal * 0.25)
        network.run(3.5)
        assert wan.capacity == nominal  # the exact original float

    def test_unknown_link_rejected_at_apply(self):
        network = _two_hop()
        schedule = FaultSchedule([FaultEvent("link_flap", "nope", 1.0, 1.0)])
        with pytest.raises(KeyError):
            schedule.apply(network)


class TestCapacityDip:
    def test_capacity_scaled_and_restored_exactly(self):
        network = _two_hop(faults=(
            FaultSpec("capacity_dip", "wan", 0.5, 0.5, factor=0.25),))
        wan = _link(network, "wan")
        nominal = wan.capacity
        network.run(0.75)
        assert wan.capacity == pytest.approx(nominal * 0.25)
        network.run(2.0)
        # The exact original float, not a recomputation.
        assert wan.capacity == nominal

    def test_deep_dip_throttles_throughput(self):
        calm = _two_hop()
        calm.run(6.0)
        dipped = _two_hop(faults=(
            FaultSpec("capacity_dip", "wan", 2.0, 3.0, factor=0.05),))
        dipped.run(6.0)
        assert (_link(dipped, "bottleneck").total_served
                < 0.8 * _link(calm, "bottleneck").total_served)


class TestLinkFlap:
    def test_drain_flap_freezes_queue_and_recovers(self):
        network = _two_hop(faults=(
            FaultSpec("link_flap", "bottleneck", 1.0, 0.5),))
        link = _link(network, "bottleneck")
        network.run(1.2)
        assert not link.up
        served_down = link.total_served
        queued_down = link.queue_bytes
        network.step()
        # Down: nothing served, arrivals still admitted (drain policy).
        assert link.total_served == served_down
        assert link.queue_bytes >= queued_down
        network.run(3.0)
        assert link.up
        assert link.total_served > served_down

    def test_drop_flap_flushes_queue_and_blackholes(self):
        network = _two_hop(faults=(
            FaultSpec("link_flap", "bottleneck", 1.0, 0.5,
                      drop_queued=True),))
        link = _link(network, "bottleneck")
        network.run(0.9)
        assert link.queue_bytes > 0  # cubic fills the buffer
        network.run(1.2)
        assert not link.up
        assert link.queue_bytes == 0.0
        assert link.total_drops > 0
        offered_down = link.total_offered
        network.step()
        # Blackhole: offered bytes while down go straight to drops.
        assert link.total_drops >= link.total_offered - link.total_served \
            - link.queue_bytes - 1e-6
        assert link.total_offered >= offered_down
        network.run(3.0)
        assert link.up

    def test_conservation_holds_mid_flap(self):
        for drop_queued in (False, True):
            network = _two_hop(faults=(
                FaultSpec("link_flap", "bottleneck", 1.0, 1.0,
                          drop_queued=drop_queued),))
            network.run(1.5)
            assert not _link(network, "bottleneck").up
            network.audit_conservation()  # mid-window: must not raise
            network.run(3.0)
            network.audit_conservation()

    def test_flush_emits_loss_feedback(self):
        network = _two_hop(faults=(
            FaultSpec("link_flap", "bottleneck", 1.0, 0.5,
                      drop_queued=True),))
        sink = ListTraceSink(events=("drop", "loss"))
        network.set_trace_sink(sink)
        network.run(2.5)
        drops = [r for r in sink.records if r["event"] == "drop"]
        losses = [r for r in sink.records if r["event"] == "loss"]
        assert drops and losses  # the flush surfaced as sender feedback


class TestDelayJitter:
    def test_delay_bumped_and_restored(self):
        network = _two_hop(faults=(
            FaultSpec("delay_jitter", "wan", 1.0, 0.5, delay_ms=20.0),))
        position = network.topology.index_of("wan")
        base = network.topology.delays[position]
        network.run(1.2)
        assert network.topology.delays[position] == \
            pytest.approx(base + 0.02)
        network.run(2.0)
        assert network.topology.delays[position] == base


class TestBurstLoss:
    def test_burst_window_drops_and_unwraps(self):
        network = _two_hop(faults=(
            FaultSpec("burst_loss", "bottleneck", 1.0, 1.0,
                      loss_rate=0.5),))
        link = _link(network, "bottleneck")
        inner = link.policy
        network.run(1.5)
        assert link.policy is not inner  # wrapped during the window
        network.run(3.0)
        assert link.policy is inner  # exact original policy restored
        assert link.total_drops > 0
        network.audit_conservation()

    def test_deterministic_across_runs(self):
        def totals():
            network = _two_hop(faults=(
                FaultSpec("burst_loss", "bottleneck", 1.0, 1.0,
                          loss_rate=0.3),))
            network.run(3.0)
            link = _link(network, "bottleneck")
            return (link.total_offered, link.total_served,
                    link.total_drops, link.queue_bytes)

        assert totals() == totals()

    def test_seed_changes_draws(self):
        def drops(seed):
            events = [FaultEvent("burst_loss", "bottleneck", 1.0, 1.0,
                                 loss_rate=0.3)]
            network = _two_hop()
            FaultSchedule(events, seed=seed).apply(network)
            network.run(3.0)
            return _link(network, "bottleneck").total_drops

        assert drops(1) != drops(2)


class TestFaultTelemetry:
    def test_fault_events_validate_and_pair(self):
        network = _two_hop(faults=(
            FaultSpec("capacity_dip", "wan", 0.5, 0.5, factor=0.5),
            FaultSpec("link_flap", "bottleneck", 1.5, 0.5,
                      drop_queued=True),
            FaultSpec("burst_loss", "wan", 2.5, 0.5, loss_rate=0.2),))
        sink = ListTraceSink()
        network.set_trace_sink(sink)
        network.run(4.0)
        faults = [r for r in sink.records
                  if r["event"] in ("fault_start", "fault_end")]
        assert len(faults) == 6
        for record in faults:
            validate_trace_record(record)
        starts = [r for r in faults if r["event"] == "fault_start"]
        assert {r["fault"] for r in starts} == \
            {"capacity_dip", "link_flap", "burst_loss"}
        flap = next(r for r in starts if r["fault"] == "link_flap")
        assert flap["drop_queued"] is True
        assert flap["flushed_bytes"] >= 0.0

    def test_flow_filter_keeps_fault_events(self):
        network = _two_hop(faults=(
            FaultSpec("link_flap", "bottleneck", 0.5, 0.5),))
        sink = ListTraceSink(flows=("no-such-flow",))
        network.set_trace_sink(sink)
        network.run(1.5)
        kinds = {r["event"] for r in sink.records}
        assert kinds == {"fault_start", "fault_end"}

    def test_link_filter_applies_to_fault_events(self):
        network = _two_hop(faults=(
            FaultSpec("link_flap", "bottleneck", 0.5, 0.5),))
        sink = ListTraceSink(links=("wan",), events=("fault_start",
                                                     "fault_end"))
        network.set_trace_sink(sink)
        network.run(1.5)
        assert sink.records == []  # the fault is on the other link


class TestFlapHelper:
    def test_periodic_windows_cover_duration(self):
        faults = flap_fault_specs("wan", period=4.0, duty=0.25, until=12.0)
        assert len(faults) == 3
        assert all(spec.kind == "link_flap" for spec in faults)
        assert faults[0].start == pytest.approx(3.0)
        assert faults[0].duration == pytest.approx(1.0)

    def test_shallow_depth_becomes_capacity_dip(self):
        faults = flap_fault_specs("wan", period=4.0, duty=0.25, until=8.0,
                                  depth=0.4)
        assert all(spec.kind == "capacity_dip" for spec in faults)
        assert faults[0].factor == pytest.approx(0.6)

    def test_bad_duty_rejected(self):
        with pytest.raises(ValueError, match="duty"):
            flap_fault_specs("wan", period=4.0, duty=1.5, until=8.0)

    def test_specs_canonicalise(self):
        from repro.runtime.spec import canonicalize
        faults = flap_fault_specs("wan", period=4.0, duty=0.25, until=8.0)
        frozen = canonicalize(faults)
        assert pickle.loads(pickle.dumps(frozen)) == frozen


class TestNoFaultIdentity:
    def test_empty_schedule_is_bit_identical(self):
        def run_once(faults):
            network = _two_hop(faults=faults)
            network.run(4.0)
            link = _link(network, "bottleneck")
            return pickle.dumps((link.total_offered, link.total_served,
                                 link.total_drops, link.queue_bytes,
                                 network.engine_stats()["ticks"]))

        assert run_once(()) == run_once(None or ())


class TestAuditTier1:
    """Satellite: the conservation audit runs on every CI pass."""

    def test_parking_lot_audit_clean(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "32")
        payload = parking_lot.run_case(scheme="cubic", hops=2,
                                       cross_flows=1, duration=4.0,
                                       dt=0.004, seed=1)
        assert payload["summary"].mean_throughput_mbps > 0

    def test_link_flap_audit_clean(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "32")
        payload = link_flap.run_case(scheme="cubic", period=1.5, depth=1.0,
                                     duty=0.3, drop_queued=1,
                                     phase_duration=2.0, duration=5.0,
                                     dt=0.004, seed=1)
        assert payload["extra"]["fault_windows"] >= 3

    def test_audit_error_names_link_tick_and_counters(self):
        network = _two_hop()
        network.run(1.0)
        link = _link(network, "bottleneck")
        link.total_served += 1e6  # corrupt a counter on purpose
        with pytest.raises(AuditError) as excinfo:
            network.audit_conservation()
        message = str(excinfo.value)
        assert "'bottleneck'" in message
        assert "tick" in message
        assert "offered=" in message and "served=" in message
        assert "dropped=" in message


class TestFaultSpecConversion:
    def test_delay_ms_converts_to_seconds(self):
        schedule = make_fault_schedule(
            [FaultSpec("delay_jitter", "wan", 1.0, 0.5, delay_ms=25.0)])
        assert schedule.events[0].delay == pytest.approx(0.025)

    def test_seed_threads_through(self):
        schedule = make_fault_schedule(
            [FaultSpec("burst_loss", "wan", 1.0, 0.5, loss_rate=0.1)],
            seed=42)
        assert schedule.seed == 42
