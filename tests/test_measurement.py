"""Windowed counters and per-flow measurement (S, R, RTT, paired rates)."""


import pytest

from repro.simulator.measurement import FlowMeasurement, WindowedCounter


class TestWindowedCounter:
    def test_sum_over_window(self):
        counter = WindowedCounter()
        for i in range(10):
            counter.add(i * 0.1, 100)
        # Samples strictly newer than 0.9 - 0.35 = 0.55: t = 0.6...0.9.
        assert counter.sum_over(0.9, window=0.35) == pytest.approx(400)

    def test_rate_over_window(self):
        counter = WindowedCounter()
        for i in range(10):
            counter.add(i * 0.1, 100)
        assert counter.rate_over(0.9, window=1.0) == pytest.approx(1000, rel=0.2)

    def test_ignores_nonpositive(self):
        counter = WindowedCounter()
        counter.add(0.0, 0)
        counter.add(0.0, -5)
        assert counter.total == 0.0

    def test_pruning_respects_horizon(self):
        counter = WindowedCounter(horizon=1.0)
        counter.add(0.0, 100)
        counter.add(5.0, 100)
        assert counter.sum_over(5.0, window=10.0) == pytest.approx(100)

    def test_zero_window_rate(self):
        counter = WindowedCounter()
        counter.add(0.0, 100)
        assert counter.rate_over(0.0, window=0.0) == 0.0


class TestFlowMeasurement:
    def test_rtt_tracking(self):
        m = FlowMeasurement()
        m.on_ack(1.0, 1500, rtt=0.08, queue_delay=0.03)
        m.on_ack(1.1, 1500, rtt=0.06, queue_delay=0.01)
        assert m.rtt == pytest.approx(0.06)
        assert m.min_rtt == pytest.approx(0.06)
        assert m.base_rtt() == pytest.approx(0.06)

    def test_send_and_delivery_rates(self):
        m = FlowMeasurement()
        for i in range(20):
            t = i * 0.01
            m.on_send(t, 1000)
            m.on_ack(t + 0.05, 1000, rtt=0.05, queue_delay=0.0)
        assert m.send_rate(0.2, window=0.1) == pytest.approx(1e5, rel=0.3)
        assert m.delivery_rate(0.25, window=0.1) == pytest.approx(1e5, rel=0.3)

    def test_loss_rate(self):
        m = FlowMeasurement()
        for i in range(10):
            m.on_send(i * 0.01, 1000)
        m.on_loss(0.1, 2000)
        assert m.loss_rate(0.1, window=0.2) == pytest.approx(0.2)

    def test_loss_rate_no_sends(self):
        assert FlowMeasurement().loss_rate(1.0) == 0.0

    def test_measurement_window_defaults(self):
        m = FlowMeasurement()
        assert m.measurement_window() == pytest.approx(0.05)
        m.on_ack(0.0, 1000, rtt=0.1, queue_delay=0.0)
        assert m.measurement_window() == pytest.approx(0.1)

    def test_base_rtt_without_samples(self):
        m = FlowMeasurement()
        assert m.base_rtt() > 0


class TestPairedRates:
    def test_equal_spacing_gives_equal_rates(self):
        m = FlowMeasurement()
        # Packets sent every 10 ms and acked exactly one RTT later: the send
        # and delivery rates over the same packets must agree.
        for i in range(30):
            send_t = i * 0.01
            m.on_send(send_t, 1500)
            m.on_ack(send_t + 0.05, 1500, rtt=0.05, queue_delay=0.0)
        s, r = m.paired_rates(30 * 0.01 + 0.05, window=0.1)
        assert s == pytest.approx(r, rel=1e-6)
        assert s == pytest.approx(150_000, rel=0.1)

    def test_compression_raises_delivery_rate(self):
        m = FlowMeasurement()
        # Sent over 100 ms but all ACKs arrive within 10 ms: R >> S.
        for i in range(11):
            send_t = i * 0.01
            m.on_ack(1.0 + i * 0.001, 1500, rtt=1.0 + i * 0.001 - send_t,
                     queue_delay=0.0)
        s, r = m.paired_rates(1.02, window=0.5)
        assert r > 5 * s

    def test_few_samples_fall_back(self):
        m = FlowMeasurement()
        m.on_send(0.0, 1500)
        m.on_ack(0.05, 1500, rtt=0.05, queue_delay=0.0)
        s, r = m.paired_rates(0.05)
        assert s >= 0 and r >= 0

    def test_max_delivery_rate_updates(self):
        m = FlowMeasurement()
        for i in range(30):
            send_t = i * 0.01
            m.on_send(send_t, 1500)
            m.on_ack(send_t + 0.05, 1500, rtt=0.05, queue_delay=0.0)
        m.paired_rates(0.35, window=0.1)
        assert m.max_delivery_rate > 0


class TestPickleStability:
    """Slotted measurement state must serialise exactly like the legacy
    ``__dict__`` layout: experiment payloads pickle whole flows, and their
    bytes are compared across revisions."""

    def test_windowed_counter_state_round_trip(self):
        import pickle

        counter = WindowedCounter(horizon=2.0)
        counter.add(0.5, 100)
        counter.add(1.0, 250)
        state = counter.__getstate__()
        assert list(state) == ["horizon", "_samples", "_total"]
        clone = pickle.loads(pickle.dumps(counter, protocol=4))
        assert clone.horizon == counter.horizon
        assert list(clone._samples) == list(counter._samples)
        assert clone.total == counter.total
        assert pickle.dumps(clone, protocol=4) == \
            pickle.dumps(counter, protocol=4)

    def test_flow_measurement_state_round_trip(self):
        import pickle

        m = FlowMeasurement()
        m.on_send(0.1, 1000)
        m.on_ack(0.2, 1000, rtt=0.1, queue_delay=0.01)
        m.on_loss(0.3, 200)
        state = m.__getstate__()
        assert list(state) == ["sent", "delivered", "lost", "rtt", "min_rtt",
                               "queue_delay", "max_delivery_rate",
                               "_last_now", "_acked", "_acked_horizon"]
        clone = pickle.loads(pickle.dumps(m, protocol=4))
        assert clone.rtt == m.rtt and clone.min_rtt == m.min_rtt
        assert list(clone._acked) == list(m._acked)
        assert pickle.dumps(clone, protocol=4) == pickle.dumps(m, protocol=4)

    def test_no_instance_dict(self):
        assert not hasattr(FlowMeasurement(), "__dict__")
        assert not hasattr(WindowedCounter(), "__dict__")
