"""Transport endpoint (Flow): emission limits, feedback handling, lifecycle."""

import pytest

from repro.cc.base import CongestionControl, NullCC
from repro.cc.cubic import Cubic
from repro.simulator.endpoint import Flow
from repro.simulator.packet import Ack
from repro.simulator.source import FiniteSource, PacedSource
from repro.simulator.units import MSS_BYTES


class WindowOnly(CongestionControl):
    """Fixed window, no pacing."""

    name = "window-only"

    def __init__(self, window):
        super().__init__()
        self.cwnd = window


class RateOnly(CongestionControl):
    """Fixed pacing rate, no window."""

    name = "rate-only"

    def __init__(self, rate):
        super().__init__()
        self.cwnd = None
        self.rate = rate


def started_flow(cc, **kwargs) -> Flow:
    flow = Flow(cc=cc, prop_rtt=0.05, **kwargs)
    flow.flow_id = 0
    flow.start(0.0)
    return flow


class TestEmission:
    def test_window_limits_inflight(self):
        flow = started_flow(WindowOnly(10 * MSS_BYTES))
        chunk = flow.emit(0.01, 0.01)
        assert chunk is not None
        assert chunk.size == pytest.approx(10 * MSS_BYTES)
        # Window is now full: nothing further until an ACK returns.
        assert flow.emit(0.02, 0.01) is None

    def test_pacing_limits_rate(self):
        flow = started_flow(RateOnly(1e6))
        sent = 0.0
        for i in range(1, 101):
            chunk = flow.emit(i * 0.01, 0.01)
            if chunk:
                sent += chunk.size
        assert sent == pytest.approx(1e6 * 1.0, rel=0.1)

    def test_app_limited(self):
        flow = started_flow(WindowOnly(100 * MSS_BYTES),
                            source=PacedSource(rate=1e5))
        chunk = flow.emit(0.01, 0.01)
        assert chunk is not None
        assert chunk.size <= 1e5 * 0.01 + 1e-6

    def test_not_started_does_not_emit(self):
        flow = Flow(cc=WindowOnly(10 * MSS_BYTES), prop_rtt=0.05)
        assert flow.emit(0.01, 0.01) is None

    def test_sequence_numbers_advance(self):
        flow = started_flow(RateOnly(1e6))
        c1 = flow.emit(0.01, 0.01)
        c2 = flow.emit(0.02, 0.01)
        assert c2.seq == pytest.approx(c1.seq + c1.size)

    def test_max_burst_cap(self):
        flow = started_flow(WindowOnly(100 * MSS_BYTES),
                            max_burst_bytes=2 * MSS_BYTES)
        chunk = flow.emit(0.01, 0.01)
        assert chunk.size <= 2 * MSS_BYTES


class TestFeedback:
    def test_ack_frees_window(self):
        flow = started_flow(WindowOnly(10 * MSS_BYTES))
        chunk = flow.emit(0.01, 0.01)
        ack = Ack(flow_id=0, acked_bytes=chunk.size, sent_time=chunk.sent_time,
                  queue_delay=0.0, delivered_time=0.05)
        flow.handle_ack(ack, 0.06)
        assert flow.inflight == pytest.approx(0.0)
        assert flow.emit(0.07, 0.01) is not None

    def test_ack_updates_measurement(self):
        flow = started_flow(WindowOnly(10 * MSS_BYTES))
        chunk = flow.emit(0.01, 0.01)
        ack = Ack(flow_id=0, acked_bytes=chunk.size, sent_time=chunk.sent_time,
                  queue_delay=0.005, delivered_time=0.06)
        flow.handle_ack(ack, 0.07)
        assert flow.measurement.rtt == pytest.approx(0.06)
        assert flow.measurement.queue_delay == pytest.approx(0.005)

    def test_loss_frees_window_and_counts(self):
        flow = started_flow(WindowOnly(10 * MSS_BYTES))
        chunk = flow.emit(0.01, 0.01)
        flow.handle_loss(chunk.size / 2, 0.1)
        assert flow.inflight == pytest.approx(chunk.size / 2)
        assert flow.stats.bytes_lost == pytest.approx(chunk.size / 2)

    def test_loss_invokes_cc(self):
        cubic = Cubic()
        flow = started_flow(cubic)
        flow.emit(0.01, 0.01)
        before = cubic.cwnd
        flow.handle_loss(1500, 0.1)
        assert cubic.cwnd < before


class TestLifecycle:
    def test_finite_flow_completes(self):
        flow = started_flow(WindowOnly(100 * MSS_BYTES),
                            source=FiniteSource(3000))
        chunk = flow.emit(0.01, 0.01)
        assert chunk.size == pytest.approx(3000)
        ack = Ack(flow_id=0, acked_bytes=3000, sent_time=chunk.sent_time,
                  queue_delay=0.0, delivered_time=0.05)
        flow.handle_ack(ack, 0.06)
        assert flow.finished
        assert flow.fct == pytest.approx(0.06)

    def test_stop(self):
        flow = started_flow(WindowOnly(10 * MSS_BYTES))
        flow.stop(5.0)
        assert flow.finished
        assert not flow.active
        assert flow.stats.end_time == pytest.approx(5.0)

    def test_invalid_rtt(self):
        with pytest.raises(ValueError):
            Flow(cc=NullCC(), prop_rtt=0.0)

    def test_fct_none_while_running(self):
        flow = started_flow(WindowOnly(10 * MSS_BYTES))
        assert flow.fct is None
