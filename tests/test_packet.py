"""Chunk, Ack, and FlowStats behaviour."""

import pytest

from repro.simulator.packet import Ack, Chunk, FlowStats


def make_chunk(size=3000.0, seq=100.0):
    return Chunk(flow_id=1, size=size, seq=seq, sent_time=2.0)


class TestChunkSplit:
    def test_split_sizes(self):
        chunk = make_chunk(size=3000, seq=100)
        head = chunk.split(1000)
        assert head.size == pytest.approx(1000)
        assert chunk.size == pytest.approx(2000)

    def test_split_sequence_numbers(self):
        chunk = make_chunk(size=3000, seq=100)
        head = chunk.split(1000)
        assert head.seq == pytest.approx(100)
        assert chunk.seq == pytest.approx(1100)

    def test_split_preserves_metadata(self):
        chunk = make_chunk()
        chunk.enqueue_time = 5.0
        chunk.queue_delay = 0.01
        head = chunk.split(500)
        assert head.flow_id == chunk.flow_id
        assert head.sent_time == chunk.sent_time
        assert head.enqueue_time == chunk.enqueue_time
        assert head.queue_delay == chunk.queue_delay

    def test_split_whole_chunk_rejected(self):
        chunk = make_chunk(size=3000)
        with pytest.raises(ValueError):
            chunk.split(3000)

    def test_split_zero_rejected(self):
        with pytest.raises(ValueError):
            make_chunk().split(0)

    def test_split_conserves_bytes(self):
        chunk = make_chunk(size=4321)
        head = chunk.split(1234)
        assert head.size + chunk.size == pytest.approx(4321)

    def test_split_negative_rejected(self):
        with pytest.raises(ValueError):
            make_chunk().split(-1.0)

    def test_split_oversize_rejected(self):
        with pytest.raises(ValueError):
            make_chunk(size=3000).split(3000.0001)

    def test_split_tiny_head(self):
        chunk = make_chunk(size=1000, seq=0)
        head = chunk.split(1e-6)
        assert head.size == pytest.approx(1e-6)
        assert chunk.seq == pytest.approx(1e-6)
        assert chunk.size + head.size == pytest.approx(1000)

    def test_repeated_splits_preserve_coverage(self):
        chunk = make_chunk(size=1000, seq=0)
        pieces = [chunk.split(100) for _ in range(9)] + [chunk]
        assert [p.seq for p in pieces] == pytest.approx(
            [100.0 * i for i in range(10)])
        assert sum(p.size for p in pieces) == pytest.approx(1000)


class TestSlotted:
    """The hot-path data units must stay dict-free (allocation-lean)."""

    def test_no_instance_dict(self):
        assert not hasattr(make_chunk(), "__dict__")
        ack = Ack(flow_id=0, acked_bytes=1.0, sent_time=0.0,
                  queue_delay=0.0, delivered_time=0.0)
        assert not hasattr(ack, "__dict__")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(AttributeError):
            make_chunk().colour = "red"


class TestFlowStats:
    def test_mean_rtt_empty(self):
        assert FlowStats().mean_rtt == 0.0

    def test_mean_rtt(self):
        stats = FlowStats()
        stats.rtt_sum = 0.3
        stats.rtt_samples = 3
        assert stats.mean_rtt == pytest.approx(0.1)

    def test_defaults(self):
        stats = FlowStats()
        assert stats.bytes_sent == 0.0
        assert stats.bytes_delivered == 0.0
        assert stats.bytes_lost == 0.0
        assert stats.end_time is None


def test_ack_fields():
    ack = Ack(flow_id=3, acked_bytes=1500, sent_time=1.0, queue_delay=0.02,
              delivered_time=1.07)
    assert ack.flow_id == 3
    assert ack.delivered_time - ack.sent_time == pytest.approx(0.07)
