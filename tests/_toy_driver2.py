"""Companion to ``_toy_driver`` whose ``run`` rejects ``duration``.

Exercises the runner's retry-without-duration fallback through a real
importable module path, as scenario execution requires.
"""

from _toy_driver import run_no_duration as run  # noqa: F401
