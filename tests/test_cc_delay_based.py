"""Delay-based algorithms: Vegas, Copa, BasicDelay."""

import pytest

from repro.cc import BasicDelay, Copa, Vegas
from repro.cc.copa import MODE_COMPETITIVE, MODE_DELAY
from repro.simulator.endpoint import Flow
from repro.simulator.packet import Ack
from repro.simulator.units import MSS_BYTES, mbps_to_bytes_per_sec


def attach(cc):
    flow = Flow(cc=cc, prop_rtt=0.05)
    flow.flow_id = 0
    flow.start(0.0)
    return flow


def feed(cc, n, rtt=0.05, qdelay=0.0, start=0.0, nbytes=MSS_BYTES,
         control=False):
    now = start
    for _ in range(n):
        now += 0.01
        cc.measurement.on_ack(now, nbytes, rtt + qdelay, qdelay)
        cc.on_ack(Ack(flow_id=0, acked_bytes=nbytes,
                      sent_time=now - rtt - qdelay, queue_delay=qdelay,
                      delivered_time=now), now)
        if control:
            cc.on_control_tick(now, 0.01)
    return now


class TestVegas:
    def test_grows_when_no_queueing(self):
        vegas = Vegas()
        attach(vegas)
        vegas._in_slow_start = False
        before = vegas.cwnd
        feed(vegas, 100, qdelay=0.0)
        assert vegas.cwnd > before

    def test_shrinks_with_queueing(self):
        vegas = Vegas(alpha=2, beta=4)
        attach(vegas)
        vegas._in_slow_start = False
        vegas.cwnd = 60 * MSS_BYTES
        # Establish the base RTT first, then present heavy queueing.
        vegas.measurement.on_ack(0.0, MSS_BYTES, 0.05, 0.0)
        before = vegas.cwnd
        feed(vegas, 100, qdelay=0.05, start=0.01)
        assert vegas.cwnd < before

    def test_holds_within_band(self):
        vegas = Vegas(alpha=2, beta=4)
        attach(vegas)
        vegas._in_slow_start = False
        vegas.measurement.on_ack(0.0, MSS_BYTES, 0.05, 0.0)
        # 3 segments queued at cwnd=30, rtt chosen accordingly: stays put.
        vegas.cwnd = 30 * MSS_BYTES
        base, queued_segments = 0.05, 3
        rtt = base * 30 / (30 - queued_segments)
        before = vegas.cwnd
        feed(vegas, 50, rtt=base, qdelay=rtt - base, start=0.01)
        assert vegas.cwnd == pytest.approx(before, abs=2 * MSS_BYTES)

    def test_loss_halves(self):
        vegas = Vegas()
        attach(vegas)
        vegas.cwnd = 40 * MSS_BYTES
        vegas.on_loss(MSS_BYTES, 1.0)
        assert vegas.cwnd == pytest.approx(20 * MSS_BYTES)

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            Vegas(alpha=5, beta=4)


class TestCopa:
    def test_starts_in_delay_mode(self):
        assert Copa().mode == MODE_DELAY

    def test_tracks_small_queue_target(self):
        # Default mode only (no switching): with a persistent large queueing
        # delay the target rate is tiny, so cwnd must come down after
        # slow-start exits.
        copa = Copa(mode_switching=False)
        attach(copa)
        copa.measurement.on_ack(0.0, MSS_BYTES, 0.05, 0.0)  # base RTT
        feed(copa, 300, qdelay=0.08, start=0.01, control=True)
        assert copa.cwnd < 100 * MSS_BYTES

    def test_grows_when_queue_empty(self):
        copa = Copa()
        attach(copa)
        before = copa.cwnd
        feed(copa, 50, qdelay=0.0005, control=True)
        assert copa.cwnd > before

    def test_switches_to_competitive_when_queue_never_drains(self):
        copa = Copa()
        attach(copa)
        copa.measurement.on_ack(0.0, MSS_BYTES, 0.05, 0.0)  # base RTT
        feed(copa, 400, qdelay=0.06, start=0.01, control=True)
        assert copa.mode == MODE_COMPETITIVE

    def test_stays_default_when_queue_drains(self):
        copa = Copa()
        attach(copa)
        now = 0.0
        # Alternate: queueing for a while, then a near-empty observation
        # every couple of RTTs, as Copa's own oscillation would produce.
        for cycle in range(30):
            now = feed(copa, 8, qdelay=0.02, start=now, control=True)
            now = feed(copa, 2, qdelay=0.0005, start=now, control=True)
        assert copa.mode == MODE_DELAY

    def test_mode_switching_disabled(self):
        copa = Copa(mode_switching=False)
        attach(copa)
        feed(copa, 400, qdelay=0.06, control=True)
        assert copa.mode == MODE_DELAY

    def test_velocity_resets_on_direction_change(self):
        copa = Copa()
        attach(copa)
        feed(copa, 200, qdelay=0.0005, control=True)
        assert copa._velocity >= 1.0
        feed(copa, 200, qdelay=0.08, start=10.0, control=True)
        assert copa._velocity <= copa._max_velocity


class TestBasicDelay:
    MU = mbps_to_bytes_per_sec(96)

    def test_requires_positive_mu(self):
        with pytest.raises(ValueError):
            BasicDelay(0)

    def test_rate_increases_with_spare_capacity(self):
        bd = BasicDelay(self.MU, target_delay=0.0125)
        attach(bd)
        bd.measurement.on_ack(0.0, MSS_BYTES, 0.05, 0.0)
        before = bd.rate
        # Little sending, no cross traffic, no queueing: plenty of spare.
        for i in range(20):
            t = i * 0.01
            bd.measurement.on_send(t, MSS_BYTES)
            bd.measurement.on_ack(t + 0.05, MSS_BYTES, 0.05, 0.0)
            bd.on_control_tick(t + 0.05, 0.01)
        assert bd.rate > before

    def test_rate_decreases_when_delay_exceeds_target(self):
        bd = BasicDelay(self.MU, target_delay=0.0125)
        attach(bd)
        bd.measurement.on_ack(0.0, MSS_BYTES, 0.05, 0.0)
        bd.rate = 0.9 * self.MU
        # Send at ~90% of the link while the queue sits at 60 ms > target and
        # cross traffic (from Eq. 1) uses the rest: the rate must come down.
        for i in range(200):
            t = 0.01 + i * 0.01
            bd.measurement.on_send(t, 0.9 * self.MU * 0.01)
            bd.measurement.on_ack(t + 0.11, 0.8 * self.MU * 0.01, 0.11, 0.06)
            bd.on_control_tick(t + 0.11, 0.01)
        assert bd.rate < 0.9 * self.MU

    def test_rate_clamped(self):
        bd = BasicDelay(self.MU)
        attach(bd)
        bd.measurement.on_ack(0.0, MSS_BYTES, 0.05, 0.0)
        bd.set_rate(100 * self.MU)
        assert bd.rate <= 1.2 * self.MU
        bd.set_rate(0.0)
        assert bd.rate >= bd.min_rate

    def test_external_z_provider_used(self):
        calls = []

        def provider(now):
            calls.append(now)
            return 0.5 * self.MU

        bd = BasicDelay(self.MU, z_provider=provider)
        attach(bd)
        bd.measurement.on_ack(0.0, MSS_BYTES, 0.05, 0.0)
        bd.on_control_tick(0.1, 0.01)
        assert calls, "z_provider should be consulted"

    def test_loss_backs_off(self):
        bd = BasicDelay(self.MU)
        attach(bd)
        bd.set_rate(0.5 * self.MU)
        before = bd.rate
        bd.on_loss(MSS_BYTES, 1.0)
        assert bd.rate < before
