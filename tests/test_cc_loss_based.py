"""Loss-based algorithms: NewReno, Cubic, Compound."""


import pytest

from repro.cc import Compound, Cubic, NewReno, Reno
from repro.simulator.endpoint import Flow
from repro.simulator.packet import Ack
from repro.simulator.units import MSS_BYTES


def attach(cc):
    """Attach an algorithm to a throwaway flow so measurements exist."""
    flow = Flow(cc=cc, prop_rtt=0.05)
    flow.flow_id = 0
    flow.start(0.0)
    return flow


def ack(nbytes=MSS_BYTES, sent=0.0, delivered=0.05, qdelay=0.0):
    return Ack(flow_id=0, acked_bytes=nbytes, sent_time=sent,
               queue_delay=qdelay, delivered_time=delivered)


def feed_acks(cc, n, rtt=0.05, qdelay=0.0, start=0.0, nbytes=MSS_BYTES):
    """Deliver n ACKs spaced 10 ms apart with the given RTT."""
    now = start
    for _ in range(n):
        now += 0.01
        cc.measurement.on_ack(now, nbytes, rtt + qdelay, qdelay)
        cc.on_ack(ack(nbytes, sent=now - rtt - qdelay), now)
    return now


class TestNewReno:
    def test_slow_start_doubles_per_rtt(self):
        reno = NewReno()
        attach(reno)
        start = reno.cwnd
        feed_acks(reno, 10)
        assert reno.cwnd == pytest.approx(start + 10 * MSS_BYTES)

    def test_congestion_avoidance_linear(self):
        reno = NewReno()
        attach(reno)
        reno.ssthresh = reno.cwnd  # force congestion avoidance
        window_packets = reno.cwnd / MSS_BYTES
        feed_acks(reno, int(window_packets))
        # One window of ACKs grows cwnd by about one MSS.
        assert reno.cwnd == pytest.approx(window_packets * MSS_BYTES + MSS_BYTES,
                                          rel=0.05)

    def test_loss_halves_window(self):
        reno = NewReno()
        attach(reno)
        feed_acks(reno, 20)
        before = reno.cwnd
        now = 1.0
        reno.on_loss(MSS_BYTES, now)
        assert reno.cwnd == pytest.approx(before / 2, rel=0.01)

    def test_loss_reaction_once_per_rtt(self):
        reno = NewReno()
        attach(reno)
        feed_acks(reno, 20)
        reno.on_loss(MSS_BYTES, 1.0)
        after_first = reno.cwnd
        reno.on_loss(MSS_BYTES, 1.01)
        assert reno.cwnd == pytest.approx(after_first)

    def test_window_floor(self):
        reno = NewReno()
        attach(reno)
        for i in range(50):
            reno.on_loss(MSS_BYTES, i * 1.0)
        assert reno.cwnd >= 2 * MSS_BYTES

    def test_reno_alias(self):
        assert Reno().name == "reno"
        assert isinstance(Reno(), NewReno)


class TestCubic:
    def test_slow_start(self):
        cubic = Cubic()
        attach(cubic)
        start = cubic.cwnd
        feed_acks(cubic, 5)
        assert cubic.cwnd == pytest.approx(start + 5 * MSS_BYTES)

    def test_loss_applies_beta(self):
        cubic = Cubic()
        attach(cubic)
        feed_acks(cubic, 30)
        before = cubic.cwnd
        cubic.on_loss(MSS_BYTES, 1.0)
        assert cubic.cwnd == pytest.approx(before * Cubic.BETA, rel=0.01)

    def test_recovers_towards_wmax(self):
        cubic = Cubic()
        attach(cubic)
        feed_acks(cubic, 40)
        w_before_loss = cubic.cwnd
        cubic.on_loss(MSS_BYTES, 1.0)
        feed_acks(cubic, 600, start=1.0)
        # After plenty of ACK time cubic should have grown back toward w_max.
        assert cubic.cwnd > w_before_loss * 0.85

    def test_concave_then_convex_growth(self):
        cubic = Cubic()
        attach(cubic)
        feed_acks(cubic, 40)
        cubic.on_loss(MSS_BYTES, 1.0)
        now = feed_acks(cubic, 100, start=1.0)
        early_growth = cubic.cwnd
        feed_acks(cubic, 400, start=now)
        late = cubic.cwnd
        assert late >= early_growth

    def test_fast_convergence_lowers_wmax(self):
        cubic = Cubic(fast_convergence=True)
        attach(cubic)
        feed_acks(cubic, 40)
        cubic.on_loss(MSS_BYTES, 1.0)
        first_wmax = cubic.w_max
        cubic.on_loss(MSS_BYTES, 2.0)
        assert cubic.w_max <= first_wmax

    def test_loss_reaction_once_per_rtt(self):
        cubic = Cubic()
        attach(cubic)
        feed_acks(cubic, 30)
        cubic.on_loss(MSS_BYTES, 1.0)
        after = cubic.cwnd
        cubic.on_loss(MSS_BYTES, 1.02)
        assert cubic.cwnd == pytest.approx(after)


class TestCompound:
    def test_delay_window_grows_when_uncongested(self):
        compound = Compound()
        attach(compound)
        compound.ssthresh = compound.cwnd
        feed_acks(compound, 100, qdelay=0.0)
        assert compound.dwnd > 0

    def test_delay_window_shrinks_with_queueing(self):
        compound = Compound()
        attach(compound)
        compound.ssthresh = compound.cwnd
        feed_acks(compound, 100, qdelay=0.0)
        # Grow the loss window so the queueing estimate (diff) can exceed
        # gamma = 30 segments, then present heavy queueing.
        compound.lwnd = 120 * MSS_BYTES
        feed_acks(compound, 50, qdelay=0.0, start=2.0)
        grown = compound.dwnd
        feed_acks(compound, 200, qdelay=0.08, start=4.0)
        assert compound.dwnd < grown

    def test_cwnd_is_sum_of_windows(self):
        compound = Compound()
        attach(compound)
        feed_acks(compound, 50)
        assert compound.cwnd == pytest.approx(
            max(compound.lwnd + compound.dwnd, compound.min_cwnd))

    def test_loss_reduces_total_window(self):
        compound = Compound()
        attach(compound)
        feed_acks(compound, 60)
        before = compound.cwnd
        compound.on_loss(MSS_BYTES, 1.0)
        assert compound.cwnd < before
