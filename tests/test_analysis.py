"""Analysis helpers: metrics, classification accuracy, FCT binning."""

import numpy as np
import pytest

from repro.analysis import (
    MODE_COMPETITIVE,
    MODE_DELAY,
    ThroughputDelaySummary,
    bin_label,
    cdf,
    classification_accuracy,
    fct_by_size,
    jain_fairness,
    mode_fraction,
    normalized_p95,
    percentile,
)


class TestMetrics:
    def test_percentile(self):
        assert percentile(range(101), 95) == pytest.approx(95.0)
        assert percentile([], 95) == 0.0

    def test_cdf_monotone(self):
        values, probs = cdf([5, 1, 3, 2, 4])
        assert np.all(np.diff(values) >= 0)
        assert np.all(np.diff(probs) >= 0)
        assert probs[-1] == pytest.approx(1.0)

    def test_cdf_empty(self):
        values, probs = cdf([])
        assert values.size == 0 and probs.size == 0

    def test_jain_equal_shares(self):
        assert jain_fairness([10, 10, 10, 10]) == pytest.approx(1.0)

    def test_jain_single_hog(self):
        assert jain_fairness([100, 0, 0, 0]) == pytest.approx(0.25)

    def test_jain_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            rates = rng.uniform(0, 100, size=5)
            fairness = jain_fairness(rates)
            assert 1.0 / 5 - 1e-9 <= fairness <= 1.0 + 1e-9

    def test_jain_empty(self):
        assert jain_fairness([]) == 0.0

    def test_summary_dominates(self):
        good = ThroughputDelaySummary("a", 50, 50, 20, 20, 30)
        bad = ThroughputDelaySummary("b", 40, 40, 80, 80, 120)
        assert good.dominates(bad)
        assert not bad.dominates(good)


class TestClassificationAccuracy:
    def test_perfect(self):
        times = np.arange(0, 10, 0.1)
        modes = [MODE_COMPETITIVE if t >= 5 else MODE_DELAY for t in times]
        report = classification_accuracy(times, modes,
                                         elastic_truth=lambda t: t >= 5)
        assert report.accuracy == pytest.approx(1.0)

    def test_inverted(self):
        times = np.arange(0, 10, 0.1)
        modes = [MODE_DELAY if t >= 5 else MODE_COMPETITIVE for t in times]
        report = classification_accuracy(times, modes,
                                         elastic_truth=lambda t: t >= 5)
        assert report.accuracy == pytest.approx(0.0)

    def test_warmup_excluded(self):
        times = np.arange(0, 10, 0.1)
        modes = [MODE_DELAY] * len(times)
        report = classification_accuracy(times, modes,
                                         elastic_truth=lambda t: False,
                                         warmup=5.0)
        assert report.samples == pytest.approx(len(times) / 2, abs=2)

    def test_none_modes_skipped(self):
        times = np.arange(0, 10, 0.1)
        modes = [None] * len(times)
        report = classification_accuracy(times, modes,
                                         elastic_truth=lambda t: True)
        assert report.samples == 0
        assert report.accuracy == 0.0

    def test_settle_grace_period(self):
        times = np.arange(0, 20, 0.1)
        # Truth flips at t=10; the detector follows 3 s later.
        modes = [MODE_COMPETITIVE if t >= 13 else MODE_DELAY for t in times]
        strict = classification_accuracy(times, modes,
                                         elastic_truth=lambda t: t >= 10)
        lenient = classification_accuracy(times, modes,
                                          elastic_truth=lambda t: t >= 10,
                                          settle=5.0)
        assert lenient.accuracy > strict.accuracy
        assert lenient.accuracy == pytest.approx(1.0)

    def test_mode_fraction(self):
        modes = [MODE_DELAY, MODE_DELAY, MODE_COMPETITIVE, None]
        assert mode_fraction(modes, MODE_DELAY) == pytest.approx(2 / 3)
        assert mode_fraction([], MODE_DELAY) == 0.0


class _Record:
    def __init__(self, size_bytes, fct):
        self.size_bytes = size_bytes
        self.fct = fct


class TestFct:
    def test_bin_label(self):
        assert bin_label(15e3) == "15KB"
        assert bin_label(1.5e6) == "1.5MB"
        assert bin_label(150e6) == "150MB"

    def test_binning(self):
        records = [_Record(10e3, 0.1), _Record(12e3, 0.2),
                   _Record(100e3, 1.0), _Record(10e6, 5.0),
                   _Record(1e9, 30.0)]
        bins = fct_by_size(records)
        assert bins["15KB"].count == 2
        assert bins["150KB"].count == 1
        assert bins["15MB"].count == 1
        assert bins["150MB"].count == 1

    def test_unfinished_flows_ignored(self):
        records = [_Record(10e3, None), _Record(10e3, 0.5)]
        bins = fct_by_size(records)
        assert bins["15KB"].count == 1

    def test_p95(self):
        records = [_Record(10e3, float(i)) for i in range(100)]
        bins = fct_by_size(records)
        assert bins["15KB"].p95_fct == pytest.approx(94.05, rel=0.01)

    def test_normalized_p95(self):
        nimbus = {"15KB": fct_by_size([_Record(10e3, 1.0)])["15KB"]}
        cubic = {"15KB": fct_by_size([_Record(10e3, 2.0)])["15KB"]}
        ratios = normalized_p95({"nimbus": nimbus, "cubic": cubic}, "nimbus")
        assert ratios["cubic"]["15KB"] == pytest.approx(2.0)
        assert ratios["nimbus"]["15KB"] == pytest.approx(1.0)

    def test_normalized_requires_baseline(self):
        with pytest.raises(KeyError):
            normalized_p95({"cubic": {}}, "nimbus")
