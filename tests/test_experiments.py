"""Experiment drivers: registry completeness and scaled-down smoke runs.

Full-scale reproductions live in ``benchmarks/``; here each driver is run at
a heavily reduced duration just to validate its plumbing and result shape.
"""

import pytest

from repro.experiments import (
    EXPERIMENT_INDEX,
    ExperimentResult,
    add_main_flow,
    make_network,
    make_scheme,
)
from repro.experiments import (
    fig01_motivation,
    fig06_elasticity_cdf,
    fig10_copa_drop,
    fig16_multiflow,
    fig23_copa_cbr,
    internet_paths,
    table1_classification,
)
from repro.experiments.accuracy_scenarios import CrossSpec, run_accuracy_scenario
from repro.simulator import mbps_to_bytes_per_sec

FAST = dict(dt=0.004)


class TestRegistry:
    def test_every_paper_artifact_has_a_driver(self):
        expected = {"fig01", "fig03", "fig04", "fig05", "fig06", "fig08",
                    "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
                    "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
                    "fig21", "fig22", "fig23", "fig24", "fig25", "fig26",
                    "appE", "table1"}
        assert expected.issubset(EXPERIMENT_INDEX.keys())

    def test_every_driver_has_run(self):
        for module in set(EXPERIMENT_INDEX.values()):
            assert hasattr(module, "run") or hasattr(module, "run_path")


class TestCommonHelpers:
    def test_make_scheme_known_names(self):
        mu = mbps_to_bytes_per_sec(96)
        for name in ("nimbus", "cubic", "vegas", "copa", "bbr", "pcc-vivace",
                     "compound", "basicdelay", "newreno", "copa-default",
                     "nimbus-copa", "nimbus-vegas"):
            cc = make_scheme(name, mu)
            assert cc is not None

    def test_make_scheme_unknown(self):
        with pytest.raises(ValueError):
            make_scheme("quic-magic", 1e6)

    def test_make_network_with_pie(self):
        network = make_network(48, buffer_ms=100, aqm_target_ms=20, dt=0.004)
        assert network.link.policy.__class__.__name__ == "Pie"

    def test_add_main_flow(self):
        network = make_network(24, dt=0.004)
        flow = add_main_flow(network, "cubic", 24)
        assert flow.name == "main"
        network.run(2.0)
        assert flow.stats.bytes_sent > 0

    def test_result_table_renders(self):
        network = make_network(24, dt=0.004)
        add_main_flow(network, "cubic", 24)
        network.run(3.0)
        result = ExperimentResult(name="demo", parameters={})
        result.add_scheme("cubic", network.recorder)
        text = result.table()
        assert "cubic" in text and "tput" in text


@pytest.mark.slow
class TestScaledDownDrivers:
    def test_fig01(self):
        result = fig01_motivation.run(schemes=["nimbus"], phase_duration=12,
                                      **FAST)
        extra = result.schemes["nimbus"].extra
        assert extra["inelastic_delay_ms"] >= 0
        assert extra["elastic_throughput"] > 0

    def test_fig06(self):
        result = fig06_elasticity_cdf.run(elastic_fractions=(0.0, 1.0),
                                          duration=18, **FAST)
        medians = result.data["median_eta"]
        assert medians[1.0] > medians[0.0]

    def test_fig10(self):
        result = fig10_copa_drop.run(schemes=["nimbus"], duration=25,
                                     elastic_start=8, **FAST)
        assert "nimbus" in result.schemes

    def test_fig16(self):
        result = fig16_multiflow.run(n_flows=2, stagger=6, flow_duration=20,
                                     link_mbps=48, **FAST)
        assert 0.0 <= result.data["jain_fairness"] <= 1.0
        assert result.data["max_concurrent_pulsers"] <= 2

    def test_fig23(self):
        result = fig23_copa_cbr.run(cbr_fractions=(0.25,), schemes=["nimbus"],
                                    duration=20, **FAST)
        delays = result.data["mean_queue_delay_ms"]["nimbus"]
        assert delays[0.25] < 60.0

    def test_table1_single_row(self):
        result = table1_classification.run(traffic_classes=["constant-stream"],
                                           duration=18, **FAST)
        row = result.data["rows"]["constant-stream"]
        assert row["classification"] in ("elastic", "inelastic")

    def test_internet_paths_single(self):
        profile = internet_paths.DEFAULT_PROFILES[0]
        result = internet_paths.run(profiles=[profile], schemes=["cubic"],
                                    duration=12, **FAST)
        assert f"cubic@{profile.name}" in result.schemes

    def test_accuracy_scenario(self):
        spec = CrossSpec(kind="poisson", rate_fraction=0.5, elastic_flows=0)
        scenario = run_accuracy_scenario("nimbus", spec, link_mbps=48,
                                         duration=20, **FAST)
        assert 0.0 <= scenario.report.accuracy <= 1.0
        assert scenario.mean_throughput_mbps > 0
