"""The flight recorder: trace sinks, engine events, stats, audit, metrics."""

from __future__ import annotations

import json
import os
import pickle

import pytest

import _toy_driver
from repro.analysis.telemetry import (
    load_metrics,
    load_trace,
    main as telemetry_cli,
    metrics_summary,
    trace_summary,
)
from repro.cc import Cubic
from repro.core.nimbus import Nimbus
from repro.experiments import runner
from repro.experiments.parking_lot import run_case
from repro.runtime import (
    BatchExecutor,
    LinkSpec,
    ScenarioSpec,
    make_multihop_network,
    metrics_record,
    validate_metrics_record,
    write_metrics,
)
from repro.simulator import (
    AuditError,
    FiniteSource,
    Flow,
    JsonlTraceSink,
    ListTraceSink,
    mbps_to_bytes_per_sec,
    sink_from_env,
    validate_trace_record,
)
from repro.simulator.telemetry import LINK_KINDS


def _two_hop_network(dt=0.002, seed=0, buffer_ms=100.0):
    return make_multihop_network(
        (LinkSpec("hop1", 18.0, delay_ms=5.0, buffer_ms=buffer_ms),
         LinkSpec("hop2", 12.0, delay_ms=5.0, buffer_ms=buffer_ms)),
        dt=dt, seed=seed, monitor="hop2")


def _traced_two_hop_run(duration=5.0, **sink_kwargs):
    network = _two_hop_network()
    sink = ListTraceSink(**sink_kwargs)
    network.set_trace_sink(sink)
    network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="main"))
    network.run(duration)
    return network, sink


# --------------------------------------------------------------------- #
# Schema validation
# --------------------------------------------------------------------- #
class TestTraceSchema:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            validate_trace_record({"time": 0.0, "event": "teleport",
                                   "flow_id": 1, "flow": "f"})

    def test_missing_payload_field_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            validate_trace_record({"time": 0.0, "event": "ack",
                                   "flow_id": 1, "flow": "f", "bytes": 1})

    def test_envelope_types_enforced(self):
        good = {"time": 1.0, "event": "loss", "flow_id": 1, "flow": "f",
                "bytes": 10.0}
        validate_trace_record(good)
        with pytest.raises(ValueError, match="time"):
            validate_trace_record({**good, "time": -1.0})
        with pytest.raises(ValueError, match="flow_id"):
            validate_trace_record({**good, "flow_id": "one"})
        with pytest.raises(ValueError, match="numeric"):
            validate_trace_record({**good, "bytes": "ten"})


# --------------------------------------------------------------------- #
# Sink filtering and sampling
# --------------------------------------------------------------------- #
def _fake(kind, flow="main", flow_id=1, link="hop1"):
    record = {"time": 0.5, "event": kind, "flow_id": flow_id, "flow": flow,
              "bytes": 100.0, "seq": 0.0, "queue_delay": 0.0, "rtt": 0.05,
              "hop": 0, "mode": "delay", "from_mode": None, "fct": 1.0,
              "cc": "cubic", "path": ["hop1"], "start": 0.0}
    if kind in LINK_KINDS:
        record["link"] = link
    return record


class TestSinkFilters:
    def test_flow_filter_matches_label_or_id(self):
        sink = ListTraceSink(flows=["main", 7])
        sink.emit(_fake("ack", flow="main", flow_id=1))
        sink.emit(_fake("ack", flow="other", flow_id=7))
        sink.emit(_fake("ack", flow="other", flow_id=2))
        assert [r["flow_id"] for r in sink.records] == [1, 7]
        assert sink.emitted == 2

    def test_link_filter_only_affects_link_events(self):
        sink = ListTraceSink(links=["hop2"])
        sink.emit(_fake("enqueue", link="hop1"))
        sink.emit(_fake("drop", link="hop2"))
        sink.emit(_fake("ack"))  # no link field: unaffected by the filter
        assert [r["event"] for r in sink.records] == ["drop", "ack"]

    def test_event_filter_validates_kinds(self):
        sink = ListTraceSink(events=["drop", "loss"])
        sink.emit(_fake("delivery"))
        sink.emit(_fake("loss"))
        assert [r["event"] for r in sink.records] == ["loss"]
        with pytest.raises(ValueError, match="unknown event kinds"):
            ListTraceSink(events=["teleport"])

    def test_sampling_spares_control_plane(self):
        sink = ListTraceSink(sample=3)
        for _ in range(9):
            sink.emit(_fake("delivery"))
        for _ in range(4):
            sink.emit(_fake("drop"))
        kinds = [r["event"] for r in sink.records]
        assert kinds.count("delivery") == 3  # every 3rd data-plane event
        assert kinds.count("drop") == 4      # drops are never sampled away
        with pytest.raises(ValueError, match="sample"):
            ListTraceSink(sample=0)


class TestJsonlSink:
    def test_writes_one_valid_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        sink.emit(_fake("ack"))
        sink.emit(_fake("loss"))
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            validate_trace_record(json.loads(line))

    def test_append_mode_accumulates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            sink = JsonlTraceSink(str(path))
            sink.emit(_fake("loss"))
            sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_sink_from_env(self, tmp_path):
        assert sink_from_env({}) is None
        env = {"REPRO_TRACE": str(tmp_path / "t.jsonl"),
               "REPRO_TRACE_SAMPLE": "4",
               "REPRO_TRACE_FLOWS": "main,3",
               "REPRO_TRACE_LINKS": "hop1",
               "REPRO_TRACE_EVENTS": "drop,loss"}
        sink = sink_from_env(env)
        try:
            assert sink.sample == 4
            assert sink.flows == {"main", 3}
            assert sink.links == {"hop1"}
            assert sink.events == {"drop", "loss"}
        finally:
            sink.close()
        with pytest.raises(ValueError, match="REPRO_TRACE_SAMPLE"):
            sink_from_env({"REPRO_TRACE": "x", "REPRO_TRACE_SAMPLE": "lots"})


# --------------------------------------------------------------------- #
# Engine event emission
# --------------------------------------------------------------------- #
class TestEngineEvents:
    def test_multihop_run_emits_schema_valid_events(self):
        network, sink = _traced_two_hop_run()
        assert sink.records
        for record in sink.records:
            validate_trace_record(record)
        kinds = {r["event"] for r in sink.records}
        assert {"flow_start", "enqueue", "hop", "delivery", "ack"} <= kinds

    def test_hop_events_locate_the_second_link(self):
        _, sink = _traced_two_hop_run()
        hops = [r for r in sink.records if r["event"] == "hop"]
        assert hops
        assert all(r["link"] == "hop2" and r["hop"] == 1 for r in hops)
        enqueues = [r for r in sink.records if r["event"] == "enqueue"]
        assert all(r["link"] == "hop1" and r["hop"] == 0 for r in enqueues)

    def test_drops_and_losses_under_tiny_buffer(self):
        # A starved buffer forces drops (and loss feedback) quickly.
        network = _two_hop_network(buffer_ms=4.0)
        sink = ListTraceSink()
        network.set_trace_sink(sink)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="main"))
        network.run(8.0)
        kinds = {r["event"] for r in sink.records}
        assert "drop" in kinds and "loss" in kinds
        drops = [r for r in sink.records if r["event"] == "drop"]
        assert all(r["bytes"] > 0 for r in drops)

    def test_mode_change_emitted_for_nimbus(self, small_network):
        network, _link = small_network
        sink = ListTraceSink()
        network.set_trace_sink(sink)
        mu = mbps_to_bytes_per_sec(24)
        network.add_flow(Flow(cc=Nimbus(mu=mu), prop_rtt=0.05,
                              name="nimbus"))
        network.run(10.0)
        changes = [r for r in sink.records if r["event"] == "mode_change"]
        assert changes
        assert changes[0]["from_mode"] is None
        assert changes[0]["mode"] in ("delay", "competitive")
        for before, after in zip(changes, changes[1:]):
            assert after["from_mode"] == before["mode"]

    def test_flow_finish_carries_fct(self, small_network):
        network, _link = small_network
        sink = ListTraceSink()
        network.set_trace_sink(sink)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="short",
                              source=FiniteSource(200_000)))
        network.run(20.0)
        finishes = [r for r in sink.records if r["event"] == "flow_finish"]
        assert len(finishes) == 1
        assert finishes[0]["fct"] > 0

    def test_flow_start_names_the_path(self):
        _, sink = _traced_two_hop_run(duration=0.5)
        starts = [r for r in sink.records if r["event"] == "flow_start"]
        assert len(starts) == 1
        assert starts[0]["path"] == ["hop1", "hop2"]
        assert starts[0]["cc"] == "cubic"


# --------------------------------------------------------------------- #
# Engine stats and the conservation audit
# --------------------------------------------------------------------- #
class TestEngineStats:
    def test_event_counters_conserve(self):
        network, _ = _traced_two_hop_run()
        stats = network.engine_stats()
        assert stats["events_executed"] > 0
        assert stats["events_scheduled"] == \
            stats["events_executed"] + stats["events_pending"]
        assert stats["roster_peak"] >= stats["roster_size"] >= 1
        assert stats["ticks"] == pytest.approx(stats["now"] / network.dt,
                                               abs=1)

    def test_audit_passes_on_healthy_run(self):
        network, _ = _traced_two_hop_run()
        network.audit_conservation()  # must not raise

    def test_audit_detects_corrupted_counters(self):
        network, _ = _traced_two_hop_run(duration=1.0)
        network.link.total_served += 12345.0
        with pytest.raises(AuditError, match="conservation"):
            network.audit_conservation()

    def test_audit_env_runs_during_step(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        network = _two_hop_network()
        assert network._audit_every == 256
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="main"))
        network.run(1.0)  # > 256 ticks at dt=2 ms: the audit fired


# --------------------------------------------------------------------- #
# Telemetry off == bit-identical results
# --------------------------------------------------------------------- #
class TestBitIdentity:
    def test_trace_does_not_perturb_results(self, tmp_path, monkeypatch):
        baseline = pickle.dumps(run_case(duration=2.0))
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "trace.jsonl"))
        traced = pickle.dumps(run_case(duration=2.0))
        assert traced == baseline
        assert load_trace(str(tmp_path / "trace.jsonl"))


# --------------------------------------------------------------------- #
# Runtime metrics
# --------------------------------------------------------------------- #
class TestMetricsRecords:
    def test_record_derives_ticks(self):
        spec = ScenarioSpec.make(_toy_driver.run, duration=1.0, dt=0.004)
        record = metrics_record(spec, cache="miss", seconds=0.5,
                                worker_pid=123)
        assert record["ticks"] == 250
        assert record["ticks_per_sec"] == pytest.approx(500.0)
        hit = metrics_record(spec, cache="hit")
        assert hit["seconds"] is None and hit["ticks_per_sec"] is None

    def test_validation_rejects_bad_records(self):
        spec = ScenarioSpec.make(_toy_driver.run, duration=1.0)
        record = metrics_record(spec, cache="miss", seconds=0.5,
                                worker_pid=123)
        validate_metrics_record(record)
        with pytest.raises(ValueError, match="cache"):
            validate_metrics_record({**record, "cache": "maybe"})
        with pytest.raises(ValueError, match="missing"):
            validate_metrics_record({k: v for k, v in record.items()
                                     if k != "spec_hash"})
        with pytest.raises(ValueError, match="unknown fields"):
            validate_metrics_record({**record, "surprise": 1})
        with pytest.raises(ValueError, match="hits"):
            validate_metrics_record({**record, "cache": "hit"})

    def test_write_metrics_jsonl(self, tmp_path):
        spec = ScenarioSpec.make(_toy_driver.run, duration=1.0)
        path = tmp_path / "metrics.jsonl"
        n = write_metrics([metrics_record(spec, cache="hit")], str(path))
        assert n == 1
        assert load_metrics(str(path))[0]["cache"] == "hit"


class TestExecutorMetrics:
    def test_batch_reports_miss_hit_and_dedup(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        spec = ScenarioSpec.make(_toy_driver.run, seed=7, duration=0.1)
        executor = BatchExecutor(workers=1, metrics_path=str(path))
        executor.run([spec, spec])
        first, second = executor.last_metrics
        assert first["cache"] == "miss" and not first["dedup"]
        assert second["cache"] == "miss" and second["dedup"]
        assert first["seconds"] == second["seconds"] is not None
        assert first["worker_pid"] is not None

        executor.run([spec])
        (hit,) = executor.last_metrics
        assert hit["cache"] == "hit"
        assert hit["seconds"] is None and hit["worker_pid"] is None

        records = load_metrics(str(path))  # both runs appended
        assert [r["cache"] for r in records] == ["miss", "miss", "hit"]
        summary = metrics_summary(records)
        assert summary["executed"] == 1
        assert summary["deduped"] == 1
        assert summary["hits"] == 1


# --------------------------------------------------------------------- #
# Runner flags, analysis loaders, and the CLI
# --------------------------------------------------------------------- #
@pytest.fixture
def toy_index(monkeypatch):
    from repro.experiments import EXPERIMENT_INDEX
    monkeypatch.setitem(EXPERIMENT_INDEX, "toy", _toy_driver)
    return "toy"


class TestRunnerFlags:
    def test_metrics_flag_writes_jsonl(self, tmp_path, toy_index):
        path = tmp_path / "metrics.jsonl"
        assert runner.main(["toy", "--metrics", str(path)]) == 0
        records = load_metrics(str(path))
        assert len(records) == 1
        assert records[0]["fn"].endswith(":run")

    def test_trace_flag_streams_events_and_restores_env(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        code = runner.main(["parking_lot", "--duration", "2",
                            "--trace", str(trace),
                            "--metrics", str(metrics)])
        assert code == 0
        assert "REPRO_TRACE" not in os.environ
        records = load_trace(str(trace))
        kinds = {r["event"] for r in records}
        assert {"flow_start", "enqueue", "delivery", "ack"} <= kinds
        for record in load_metrics(str(metrics)):
            assert record["cache"] == "miss"  # tracing forces a cold run

    def test_trace_retraces_over_warm_cache(self, tmp_path, monkeypatch):
        # Drivers run nested batches: without REPRO_NO_CACHE forced, a
        # second traced invocation would serve every scenario from the
        # cache, simulate nothing, and silently write no trace at all.
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert runner.main(["parking_lot", "--duration", "2"]) == 0
        trace = tmp_path / "warm.jsonl"
        assert runner.main(["parking_lot", "--duration", "2",
                            "--trace", str(trace)]) == 0
        assert {r["event"] for r in load_trace(str(trace))} >= {
            "flow_start", "delivery"}


class TestAnalysisTelemetry:
    def test_summaries(self):
        _, sink = _traced_two_hop_run(duration=2.0)
        summary = trace_summary(sink.records)
        assert summary["events"]["delivery"] > 0
        assert summary["flows"]["main"] == len(sink.records)
        assert set(summary["links"]) <= {"hop1", "hop2"}

    def test_cli_validate_and_summary(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        sink.emit(_fake("loss"))
        sink.close()
        assert telemetry_cli(["validate", "--kind", "trace",
                              str(path)]) == 0
        assert "1 valid trace record" in capsys.readouterr().out
        assert telemetry_cli(["summary", "--kind", "trace", str(path)]) == 0
        assert "loss" in capsys.readouterr().out

    def test_cli_rejects_malformed_lines(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "ack"}\n')
        assert telemetry_cli(["validate", "--kind", "trace",
                              str(path)]) == 1
        err = capsys.readouterr().err
        assert "bad.jsonl:1" in err

    def test_cli_rejects_wrong_schema_kind(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        spec = ScenarioSpec.make(_toy_driver.run, duration=1.0)
        write_metrics([metrics_record(spec, cache="hit")], str(path))
        assert telemetry_cli(["validate", "--kind", "metrics",
                              str(path)]) == 0
        assert telemetry_cli(["validate", "--kind", "trace",
                              str(path)]) == 1
