"""The scenario-batch runtime: specs, cache, and batch executor."""

from __future__ import annotations

import pickle
import sys

import pytest

import _toy_driver
from repro.runtime import (
    BatchExecutor,
    ResultCache,
    ScenarioSpec,
    run_batch,
    run_scenario,
    source_digest,
)
from repro.runtime.cache import MISS
from repro.runtime.spec import canonicalize, expand_grid


# --------------------------------------------------------------------- #
# ScenarioSpec
# --------------------------------------------------------------------- #
def test_spec_identity_is_order_and_spelling_independent():
    a = ScenarioSpec.make(_toy_driver.run, seed=1, duration=2.0)
    b = ScenarioSpec.make(_toy_driver.run, duration=2, seed=1.0)
    assert a == b
    assert a.spec_hash() == b.spec_hash()


def test_spec_distinguishes_parameters_and_targets():
    base = ScenarioSpec.make(_toy_driver.run, seed=1)
    assert base.spec_hash() != ScenarioSpec.make(_toy_driver.run,
                                                 seed=2).spec_hash()
    assert base.spec_hash() != ScenarioSpec.make(_toy_driver.run_no_duration,
                                                 seed=1).spec_hash()


def test_spec_label_not_part_of_identity():
    a = ScenarioSpec.make(_toy_driver.run, label="x", seed=1)
    b = ScenarioSpec.make(_toy_driver.run, label="y", seed=1)
    assert a == b and a.spec_hash() == b.spec_hash()


def test_canonicalize_rejects_objects():
    with pytest.raises(TypeError):
        canonicalize(object())
    assert canonicalize([1, (2, 3)]) == (1, (2, 3))
    assert canonicalize({"b": 1, "a": [2]}) == ("!map", ("a", (2,)), ("b", 1))
    # Non-string dict keys cannot round-trip and must be rejected, not
    # silently coerced (coercion would alias distinct cache keys).
    with pytest.raises(TypeError):
        canonicalize({1: 0.5})


def test_dataclass_params_round_trip():
    from repro.experiments.internet_paths import PathProfile

    profile = PathProfile(name="p", link_mbps=40, prop_rtt=0.09,
                          buffer_ms=200, inelastic_load=0.15,
                          elastic_cross=False, wan_mix=False,
                          description="d", extra={})
    spec = ScenarioSpec.make(_toy_driver.run, profiles=(profile,))
    (rebuilt,) = spec.kwargs()["profiles"]
    assert rebuilt == profile
    assert spec.spec_hash() == ScenarioSpec.make(
        _toy_driver.run, profiles=(profile,)).spec_hash()


def test_spec_requires_module_level_function():
    with pytest.raises(TypeError):
        ScenarioSpec.make(lambda: None)


def test_spec_resolve_and_roundtrip():
    spec = ScenarioSpec.make(_toy_driver.run, seed=3, duration=0.1)
    assert spec.resolve() is _toy_driver.run
    assert spec.kwargs() == {"seed": 3, "duration": 0.1}
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec and clone.spec_hash() == spec.spec_hash()


def test_expand_grid_cross_product():
    specs = expand_grid(_toy_driver.run, {"dt": 0.004},
                        {"seed": [1, 2], "scale": [1.0, 2.0, 3.0]})
    assert len(specs) == 6
    assert {s.kwargs()["seed"] for s in specs} == {1, 2}
    assert specs[0].kwargs() == {"dt": 0.004, "seed": 1, "scale": 1}
    assert specs[0].label == "seed=1,scale=1.0"
    # No axes: a single spec with just the base parameters.
    (only,) = expand_grid(_toy_driver.run, {"seed": 5}, {})
    assert only.kwargs() == {"seed": 5}


# --------------------------------------------------------------------- #
# ResultCache
# --------------------------------------------------------------------- #
def test_cache_round_trip(tmp_path):
    cache = ResultCache(directory=tmp_path, enabled=True)
    assert cache.get("abc") is MISS
    assert cache.put("abc", {"x": 1})
    assert cache.get("abc") == {"x": 1}
    assert cache.stats() == (1, 1)


def test_cache_disabled_via_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    cache = ResultCache(directory=tmp_path)
    assert not cache.put("abc", 42)
    assert cache.get("abc") is MISS
    assert list(tmp_path.iterdir()) == []


def test_cache_env_spellings(monkeypatch):
    from repro.runtime import cache_enabled

    for value in ("1", "true", "TRUE", "on", "2", "anything"):
        monkeypatch.setenv("REPRO_NO_CACHE", value)
        assert not cache_enabled(), value
    for value in ("", "0", "false", "no", "off", "False"):
        monkeypatch.setenv("REPRO_NO_CACHE", value)
        assert cache_enabled(), repr(value)


def test_cache_ignores_corrupt_entries(tmp_path):
    cache = ResultCache(directory=tmp_path, enabled=True)
    cache.put("abc", 42)
    (tmp_path / source_digest() / "abc.pkl").write_bytes(b"not a pickle")
    assert cache.get("abc") is MISS


def test_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    cache = ResultCache()
    cache.put("abc", 1)
    assert (tmp_path / "elsewhere" / source_digest() / "abc.pkl").exists()


def test_corrupt_entry_is_deleted_and_reported(tmp_path):
    cache = ResultCache(directory=tmp_path, enabled=True)
    cache.put("abc", 42)
    path = tmp_path / source_digest() / "abc.pkl"
    path.write_bytes(b"not a pickle")
    assert cache.get("abc") is MISS
    # The bad entry must not shadow its slot forever.
    assert not path.exists()
    assert cache.corrupt == 1
    assert cache.take_corrupt() == {"abc"}
    assert cache.take_corrupt() == set()
    # The slot is immediately writable again.
    assert cache.put("abc", 43) and cache.get("abc") == 43


def test_per_module_layout_and_legacy_migration(tmp_path):
    cache = ResultCache(directory=tmp_path, enabled=True)
    fn = "_toy_driver:run"
    # An entry written before per-module keying lives in the legacy layout.
    cache.put("abc", {"x": 1})
    legacy = tmp_path / source_digest() / "abc.pkl"
    assert legacy.exists()
    # A keyed read falls back to it and migrates the exact bytes.
    assert cache.get("abc", fn=fn) == {"x": 1}
    from repro.runtime.depgraph import default_graph

    new = tmp_path / f"mod-{default_graph().digest_for('_toy_driver')}" \
        / "abc.pkl"
    assert new.exists()
    assert new.read_bytes() == legacy.read_bytes()
    # Keyed writes land in the per-module layout directly.
    cache.put("def", 2, fn=fn)
    assert (new.parent / "def.pkl").exists()


# --------------------------------------------------------------------- #
# BatchExecutor
# --------------------------------------------------------------------- #
def _batch(n=3, **overrides):
    return [ScenarioSpec.make(_toy_driver.run, seed=i, duration=0.1,
                              **overrides) for i in range(n)]


def test_second_run_is_served_from_cache(tmp_path):
    cache = ResultCache(directory=tmp_path, enabled=True)
    executor = BatchExecutor(workers=1, cache=cache)
    before = _toy_driver.CALLS["run"]
    cold = executor.run(_batch())
    assert _toy_driver.CALLS["run"] == before + 3
    warm = executor.run(_batch())
    assert _toy_driver.CALLS["run"] == before + 3  # no re-execution
    assert pickle.dumps(cold) == pickle.dumps(warm)


def test_serial_and_pooled_runs_are_bit_identical(tmp_path):
    specs = _batch(3)
    serial = BatchExecutor(workers=1,
                           cache=ResultCache(enabled=False)).run(specs)
    pooled = BatchExecutor(workers=2,
                           cache=ResultCache(enabled=False)).run(specs)
    assert pickle.dumps(serial) == pickle.dumps(pooled)


def test_pooled_run_populates_the_shared_cache(tmp_path):
    cache = ResultCache(directory=tmp_path, enabled=True)
    pooled = BatchExecutor(workers=2, cache=cache).run(_batch(2))
    again = BatchExecutor(workers=1, cache=cache).run(_batch(2))
    assert pickle.dumps(pooled) == pickle.dumps(again)
    assert cache.stats()[0] == 2  # both warm lookups hit


def test_duplicate_specs_in_one_batch_run_once(tmp_path):
    cache = ResultCache(directory=tmp_path, enabled=True)
    spec = ScenarioSpec.make(_toy_driver.run, seed=42, duration=0.1)
    before = _toy_driver.CALLS["run"]
    results = BatchExecutor(workers=1, cache=cache).run([spec, spec, spec])
    assert _toy_driver.CALLS["run"] == before + 1
    assert len(results) == 3
    assert pickle.dumps(results[0]) == pickle.dumps(results[2])
    # Dedup also applies with the cache disabled.
    before = _toy_driver.CALLS["run"]
    BatchExecutor(workers=1, cache=ResultCache(enabled=False)).run(
        [spec, spec])
    assert _toy_driver.CALLS["run"] == before + 1


def test_partial_cache_hits_fill_only_the_misses(tmp_path):
    cache = ResultCache(directory=tmp_path, enabled=True)
    executor = BatchExecutor(workers=1, cache=cache)
    executor.run(_batch(2))
    before = _toy_driver.CALLS["run"]
    results = executor.run(_batch(4))
    assert _toy_driver.CALLS["run"] == before + 2  # seeds 2, 3 only
    assert [r.parameters["seed"] for r in results] == [0, 1, 2, 3]


def test_workers_env_is_honoured(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "7")
    assert BatchExecutor().workers == 7
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "banana")
    with pytest.raises(ValueError):
        BatchExecutor()
    # Inside a pool worker the nested width is always 1.
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "7")
    monkeypatch.setenv("REPRO_RUNTIME_WORKER", "1")
    assert BatchExecutor().workers == 1


def test_run_scenario_convenience(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    result = run_scenario(_toy_driver.run, seed=9, duration=0.1)
    assert result.parameters["seed"] == 9
    again = run_scenario(_toy_driver.run, seed=9, duration=0.1)
    assert pickle.dumps(result) == pickle.dumps(again)


def test_run_batch_preserves_order(tmp_path):
    specs = list(reversed(_batch(3)))
    results = run_batch(specs, workers=1, cache=ResultCache(enabled=False))
    assert [r.parameters["seed"] for r in results] == [2, 1, 0]


# --------------------------------------------------------------------- #
# Layering
# --------------------------------------------------------------------- #
def _imports_none_of(module: str, forbidden_prefixes) -> bool:
    """Import ``module`` in a clean interpreter; True if no forbidden
    package was pulled into ``sys.modules``."""
    import os
    import subprocess

    import repro

    src = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    prefixes = tuple(forbidden_prefixes)
    code = (f"import sys; import {module}; "
            f"bad = [m for m in sys.modules if m.startswith({prefixes!r})]; "
            f"sys.exit(1 if bad else 0)")
    proc = subprocess.run([sys.executable, "-c", code], env=env)
    return proc.returncode == 0


def test_runtime_does_not_import_experiments():
    """The runtime layer must stay importable without the driver layer."""
    assert _imports_none_of("repro.runtime", ("repro.experiments",))


def test_topology_layer_imports_neither_runtime_nor_experiments():
    """The simulator's topology core sits below both upper layers: it must
    be importable with no runtime (and no driver) module loaded."""
    assert _imports_none_of("repro.simulator.topology",
                            ("repro.runtime", "repro.experiments"))


# --------------------------------------------------------------------- #
# Batch statistics (--profile backing data)
# --------------------------------------------------------------------- #
def test_batch_stats_cold_run_counts_misses(tmp_path):
    cache = ResultCache(directory=tmp_path, enabled=True)
    executor = BatchExecutor(workers=1, cache=cache)
    spec = ScenarioSpec.make(_toy_driver.run, seed=42, duration=0.1)
    executor.run(_batch(2) + [spec, spec])
    stats = executor.last_stats
    assert (stats.hits, stats.misses) == (0, 4)
    assert stats.executed == 3  # the duplicated spec simulated once
    assert len(stats.timings) == 4
    assert all(seconds is not None and seconds >= 0.0
               for _, seconds in stats.timings)
    # Duplicates report the one shared execution's wall time.
    assert stats.timings[2][1] == stats.timings[3][1]


def test_batch_stats_warm_run_counts_hits(tmp_path):
    cache = ResultCache(directory=tmp_path, enabled=True)
    BatchExecutor(workers=1, cache=cache).run(_batch(2))
    executor = BatchExecutor(workers=1, cache=cache)
    executor.run(_batch(3))
    stats = executor.last_stats
    assert (stats.hits, stats.misses, stats.executed) == (2, 1, 1)
    assert [seconds is None for _, seconds in stats.timings] == \
        [True, True, False]
    labels = [label for label, _ in stats.timings]
    assert len(labels) == 3


def test_batch_stats_before_any_run_is_none():
    assert BatchExecutor(workers=1,
                         cache=ResultCache(enabled=False)).last_stats is None


def test_executor_reports_corrupt_entries_in_metrics(tmp_path):
    cache = ResultCache(directory=tmp_path, enabled=True)
    (spec,) = _batch(1)
    BatchExecutor(workers=1, cache=cache).run([spec])
    (entry,) = list(tmp_path.rglob("*.pkl"))
    assert entry.parent.name.startswith("mod-")  # per-module layout
    entry.write_bytes(b"\x80")  # truncated pickle
    executor = BatchExecutor(workers=1, cache=cache)
    results = executor.run([spec])
    assert results[0].parameters["seed"] == 0  # re-executed fine
    assert executor.last_stats.corrupt == 1
    assert executor.last_stats.misses == 1
    record = executor.last_metrics[0]
    assert record["cache"] == "corrupt"
    # The repaired entry serves the next run as a normal hit.
    warm = BatchExecutor(workers=1, cache=cache)
    warm.run([spec])
    assert warm.last_metrics[0]["cache"] == "hit"
