"""Unit conversion helpers."""

import pytest

from repro.simulator.units import (
    MSS_BYTES,
    bdp_bytes,
    bytes_per_sec_to_mbps,
    mbps_to_bytes_per_sec,
    ms_to_s,
    s_to_ms,
)


def test_mbps_roundtrip():
    assert bytes_per_sec_to_mbps(mbps_to_bytes_per_sec(48.0)) == pytest.approx(48.0)


def test_mbps_to_bytes_value():
    # 8 Mbit/s is exactly 1e6 bytes per second.
    assert mbps_to_bytes_per_sec(8.0) == pytest.approx(1e6)


def test_ms_roundtrip():
    assert s_to_ms(ms_to_s(123.0)) == pytest.approx(123.0)


def test_bdp():
    # 96 Mbit/s * 50 ms = 600 kB.
    assert bdp_bytes(mbps_to_bytes_per_sec(96), 0.05) == pytest.approx(600e3)


def test_mss_is_ethernet_sized():
    assert 1000 <= MSS_BYTES <= 1500


@pytest.mark.parametrize("mbps", [0.1, 1.0, 10.0, 100.0, 1000.0])
def test_conversion_monotone(mbps):
    assert mbps_to_bytes_per_sec(mbps) > mbps_to_bytes_per_sec(mbps / 2)
