"""Multi-hop topology engine: per-hop invariants and legacy equivalence."""

from __future__ import annotations

import pickle

import pytest

from repro.cc import Cubic, NullCC
from repro.runtime.build import LinkSpec, make_multihop_network, make_topology
from repro.simulator import (
    BottleneckLink,
    DropTail,
    Flow,
    Network,
    Path,
    Topology,
    TopologyNetwork,
    mbps_to_bytes_per_sec,
)
from repro.simulator.source import PacedSource

MU = mbps_to_bytes_per_sec(24.0)


def _chain(hops=3, capacity=MU, buffer_bytes=None, delay=0.01, dt=0.002,
           seed=0):
    topology = Topology("chain")
    for index in range(hops):
        policy = DropTail(buffer_bytes) if buffer_bytes else None
        topology.add_link(f"hop{index + 1}", capacity, delay=delay,
                          policy=policy)
    return TopologyNetwork(topology, dt=dt, seed=seed)


# --------------------------------------------------------------------- #
# Topology / Path data model
# --------------------------------------------------------------------- #
class TestTopologyModel:
    def test_duplicate_link_names_rejected(self):
        topology = Topology()
        topology.add_link("a", MU)
        with pytest.raises(ValueError):
            topology.add_link("a", MU)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Topology().add_link("a", MU, delay=-0.001)

    def test_lookup_by_name(self):
        topology = Topology()
        link = topology.add_link("a", MU, delay=0.005)
        assert topology.link("a") is link
        assert topology.index_of("a") == 0
        assert topology.delay_of("a") == 0.005
        with pytest.raises(KeyError):
            topology.link("missing")

    def test_monitor_defaults_to_first_link(self):
        topology = Topology()
        first = topology.add_link("a", MU)
        topology.add_link("b", MU)
        assert topology.monitor_link is first
        topology.set_monitor("b")
        assert topology.monitor_link is topology.link("b")

    def test_resolve_path_variants(self):
        topology = Topology()
        topology.add_link("a", MU)
        topology.add_link("b", MU)
        assert topology.resolve_path(None) == (0, 1)
        assert topology.resolve_path("b") == (1,)
        assert topology.resolve_path(("b", "a")) == (1, 0)
        assert topology.resolve_path(Path.of("a", "b")) == (0, 1)
        assert topology.resolve_path((1,)) == (1,)
        with pytest.raises(ValueError):
            topology.resolve_path(())
        with pytest.raises(ValueError):
            topology.resolve_path(("a", "a"))
        with pytest.raises(KeyError):
            topology.resolve_path(("nope",))
        with pytest.raises(IndexError):
            topology.resolve_path((7,))

    def test_path_validates(self):
        with pytest.raises(ValueError):
            Path(())
        with pytest.raises(TypeError):
            Path((1, 2))
        path = Path.of("a", "b")
        assert list(path) == ["a", "b"] and len(path) == 2

    def test_engine_requires_a_link(self):
        with pytest.raises(ValueError):
            TopologyNetwork(Topology())

    def test_add_flow_with_bad_path_leaves_engine_untouched(self):
        """A rejected path must not half-register the flow: the engine
        keeps running and later flows get consistent ids/routes."""
        network = _chain(hops=2)
        with pytest.raises(KeyError):
            network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05),
                             path=("typo",))
        assert network.flows == [] and network._next_flow_id == 0
        flow = network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="ok"))
        assert flow.flow_id == 0
        network.run(0.5)
        assert network.recorder.mean_throughput("ok") > 0.0

    def test_route_of(self):
        network = _chain(hops=3)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05))
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05), path=("hop2",))
        assert [link.name for link in network.route_of(0)] == \
            ["hop1", "hop2", "hop3"]
        assert [link.name for link in network.route_of(1)] == ["hop2"]


# --------------------------------------------------------------------- #
# Per-hop invariants
# --------------------------------------------------------------------- #
class TestPerHopInvariants:
    def test_conservation_at_every_hop(self):
        """bytes in == bytes out + queued + dropped at each hop, with a
        buffer small enough that the interior hops actually drop."""
        network = _chain(hops=3, buffer_bytes=MU * 0.03)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="main"))
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.04, name="x1"),
                         path=("hop1",))
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.04, name="x2"),
                         path=("hop2",))
        network.run(6.0)
        dropped_somewhere = 0.0
        for link in network.topology.links:
            assert link.total_offered > 0.0
            balance = link.total_served + link.queue_bytes + link.total_drops
            assert link.total_offered == pytest.approx(balance, abs=1e-6)
            dropped_somewhere += link.total_drops
        assert dropped_somewhere > 0.0

    def test_inter_hop_bytes_never_materialise_from_nowhere(self):
        """A downstream hop can only be offered bytes its predecessor has
        served (the difference is in flight between the hops)."""
        network = _chain(hops=3)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="main"))
        network.run(5.0)
        links = network.topology.links
        for before, after in zip(links, links[1:]):
            assert after.total_offered <= before.total_served + 1e-6

    def test_fifo_ordering_across_hops(self):
        """Deliveries of each flow arrive in strictly increasing sequence
        order: store-and-forward hops never reorder a flow's bytes."""
        deliveries = {}

        class Probe(TopologyNetwork):
            def _deliver(self, chunk, now):
                deliveries.setdefault(chunk.flow_id, []).append(
                    (chunk.seq, chunk.size))
                super()._deliver(chunk, now)

        topology = Topology("chain")
        for index in range(3):
            topology.add_link(f"hop{index + 1}", MU, delay=0.005,
                              policy=DropTail(MU * 0.04))
        network = Probe(topology, dt=0.002)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="main"))
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.03, name="cross"),
                         path=("hop2",))
        network.run(6.0)
        assert deliveries, "no chunks delivered"
        for flow_id, records in deliveries.items():
            position = -1.0
            for seq, size in records:
                # 1e-3 bytes of slack: split-chunk remainders recompute
                # ``seq + size`` in a different float association than this
                # loop does; real reordering is off by whole chunks.
                assert seq >= position - 1e-3, f"flow {flow_id} reordered"
                position = seq + size

    def test_multihop_base_rtt_adds_link_delays(self):
        """End-to-end base RTT == sum of intermediate link delays + the
        flow's own prop_rtt, measured on an uncongested path."""
        network = _chain(hops=3, delay=0.01, dt=0.001)
        # A lightly paced flow so queues stay empty.
        network.add_flow(Flow(cc=NullCC(), prop_rtt=0.04, name="probe",
                              source=PacedSource(rate=MU / 100.0)))
        network.run(3.0)
        flow = network.flows[0]
        # hop1 and hop2 delays count; hop3 is the last hop (receiver leg
        # comes from prop_rtt).  Ticks quantise service, so allow a few dt.
        expected = 0.01 + 0.01 + 0.04
        measured = flow.measurement.min_rtt
        # The tick clock accumulates dt in floats, so allow ULP-scale slack
        # below and a few ticks of service quantisation above.
        assert expected - 1e-9 <= measured <= expected + 0.005

    def test_drops_at_interior_hop_reach_the_sender(self):
        """Loss feedback from a hop the flow shares with nobody else."""
        topology = Topology()
        topology.add_link("wide", 4 * MU, delay=0.005)
        topology.add_link("narrow", MU / 2, delay=0.0,
                          policy=DropTail(MU * 0.02))
        network = TopologyNetwork(topology, dt=0.002)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="main"))
        network.run(6.0)
        flow = network.flows[0]
        assert network.topology.link("narrow").total_drops > 0.0
        assert flow.stats.bytes_lost > 0.0
        # Conservation still holds at the dropping hop.
        narrow = network.topology.link("narrow")
        assert narrow.total_offered == pytest.approx(
            narrow.total_served + narrow.queue_bytes + narrow.total_drops,
            abs=1e-6)


# --------------------------------------------------------------------- #
# Legacy equivalence: single-link Topology vs the historical Network
# --------------------------------------------------------------------- #
def _cruise_fingerprint(network):
    network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="cubic"))
    network.run(4.0)
    recorder = network.recorder
    times, tput = recorder.throughput_series("cubic")
    qtimes, qdelay = recorder.link_queue_delay_series()
    flow = network.flows[0]
    return pickle.dumps((
        times.tobytes(), tput.tobytes(), qtimes.tobytes(), qdelay.tobytes(),
        flow.stats.bytes_sent, flow.stats.bytes_delivered,
        flow.stats.rtt_sum, flow.stats.rtt_samples, flow.inflight,
        network.link.total_served, network.link.total_drops,
        network.link.queue_bytes, network.now, network._counter,
    ))


class TestLegacyEquivalence:
    def test_single_link_topology_is_bit_identical_to_network(self):
        legacy = Network(BottleneckLink(MU, policy=DropTail(MU * 0.1)),
                         dt=0.002, seed=0)
        general = TopologyNetwork(
            Topology.single(BottleneckLink(MU, policy=DropTail(MU * 0.1))),
            dt=0.002, seed=0)
        assert _cruise_fingerprint(legacy) == _cruise_fingerprint(general)

    def test_network_is_a_one_hop_topology(self):
        network = Network(BottleneckLink(MU), dt=0.002)
        assert isinstance(network, TopologyNetwork)
        assert [link.name for link in network.topology.links] == \
            ["bottleneck"]
        assert network.topology.monitor_link is network.link
        flow = network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05))
        assert network.route_of(flow.flow_id) == (network.link,)


# --------------------------------------------------------------------- #
# Runtime factories
# --------------------------------------------------------------------- #
class TestFactories:
    def test_make_topology_monitor_defaults_to_narrowest(self):
        topology = make_topology((LinkSpec("wan", 96.0, delay_ms=20.0),
                                  LinkSpec("access", 24.0)))
        assert topology.monitor_link.name == "access"
        assert topology.delay_of("wan") == pytest.approx(0.020)

    def test_make_topology_explicit_monitor_and_aqm(self):
        topology = make_topology(
            (LinkSpec("a", 48.0), LinkSpec("b", 48.0, aqm_target_ms=20.0)),
            monitor="b")
        assert topology.monitor_link.name == "b"
        assert type(topology.link("b").policy).__name__ == "Pie"
        assert type(topology.link("a").policy).__name__ == "DropTail"

    def test_make_topology_rejects_empty(self):
        with pytest.raises(ValueError):
            make_topology(())

    def test_make_multihop_network_runs(self):
        network = make_multihop_network(
            (LinkSpec("a", 48.0, delay_ms=10.0), LinkSpec("b", 24.0)),
            dt=0.002, seed=3)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="main"))
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="cross"),
                         path=("b",))
        network.run(3.0)
        assert network.recorder.mean_throughput("main") > 0.0
        assert network.link.name == "b"
