"""End-to-end behavioural tests reproducing the paper's headline claims at
reduced scale (fast enough for the unit-test suite)."""

import numpy as np
import pytest

from repro import quick_network
from repro.cc import Copa, Cubic, NullCC, Vegas
from repro.core.nimbus import Nimbus
from repro.simulator import Flow, mbps_to_bytes_per_sec
from repro.traffic import PoissonSource

LINK_MBPS = 24
MU = mbps_to_bytes_per_sec(LINK_MBPS)


def build(main_cc, cross: str, duration=35.0, seed=0):
    network, link = quick_network(link_mbps=LINK_MBPS, buffer_ms=100,
                                  dt=0.004, seed=seed)
    network.add_flow(Flow(cc=main_cc, prop_rtt=0.05, name="main"))
    if cross == "elastic":
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="cross"))
    elif cross == "inelastic":
        network.add_flow(Flow(cc=NullCC(), prop_rtt=0.05,
                              source=PoissonSource(0.5 * MU, seed=seed + 1),
                              name="cross"))
    network.run(duration)
    return network


def mean_queue_delay(network, start_fraction=0.4):
    _, qd = network.recorder.link_queue_delay_series()
    tail = qd[int(len(qd) * start_fraction):]
    return float(np.mean(tail))


@pytest.mark.slow
class TestHeadlineClaims:
    def test_cubic_fills_buffer_against_inelastic(self):
        network = build(Cubic(), "inelastic")
        assert mean_queue_delay(network) > 50.0

    def test_vegas_keeps_delay_low_against_inelastic(self):
        network = build(Vegas(), "inelastic")
        assert mean_queue_delay(network) < 20.0

    def test_vegas_starved_by_elastic(self):
        network = build(Vegas(), "elastic")
        vegas = network.recorder.mean_throughput("main", start=15.0)
        cubic = network.recorder.mean_throughput("cross", start=15.0)
        assert vegas < 0.3 * cubic

    def test_nimbus_low_delay_against_inelastic(self):
        network = build(Nimbus(mu=MU), "inelastic")
        # Much lower than Cubic's buffer-filling delay.
        assert mean_queue_delay(network) < 40.0

    def test_nimbus_throughput_against_inelastic(self):
        network = build(Nimbus(mu=MU), "inelastic")
        tput = network.recorder.mean_throughput("main", start=15.0)
        assert tput == pytest.approx(LINK_MBPS / 2, rel=0.3)

    def test_nimbus_competes_against_elastic(self):
        network = build(Nimbus(mu=MU), "elastic", duration=40.0)
        nimbus = network.recorder.mean_throughput("main", start=15.0)
        cubic = network.recorder.mean_throughput("cross", start=15.0)
        # Within a factor of ~2.5 of the Cubic competitor (Vegas, by
        # contrast, is starved to < 0.3x in test_vegas_starved_by_elastic).
        assert nimbus > 0.4 * cubic

    def test_nimbus_beats_cubic_on_delay_at_equal_throughput(self):
        cubic_net = build(Cubic(), "inelastic", seed=3)
        nimbus_net = build(Nimbus(mu=MU), "inelastic", seed=3)
        cubic_tput = cubic_net.recorder.mean_throughput("main", start=15.0)
        nimbus_tput = nimbus_net.recorder.mean_throughput("main", start=15.0)
        assert nimbus_tput > 0.8 * cubic_tput
        assert mean_queue_delay(nimbus_net) < 0.7 * mean_queue_delay(cubic_net)

    def test_copa_low_delay_against_light_inelastic(self):
        network, _ = quick_network(link_mbps=LINK_MBPS, buffer_ms=100,
                                   dt=0.004)
        network.add_flow(Flow(cc=Copa(), prop_rtt=0.05, name="main"))
        network.add_flow(Flow(cc=NullCC(), prop_rtt=0.05,
                              source=PoissonSource(0.25 * MU, seed=5),
                              name="cross"))
        network.run(35.0)
        assert mean_queue_delay(network) < 25.0

    def test_mode_switch_back_to_delay_after_elastic_leaves(self):
        network, _ = quick_network(link_mbps=LINK_MBPS, buffer_ms=100,
                                   dt=0.004)
        nimbus = Nimbus(mu=MU)
        network.add_flow(Flow(cc=nimbus, prop_rtt=0.05, name="main"))
        cross = Flow(cc=Cubic(), prop_rtt=0.05, start_time=5.0, name="cross")
        network.add_flow(cross)
        network.schedule_call(25.0, lambda now: cross.stop(now))
        network.run(45.0)
        times, modes = network.recorder.mode_series("main")
        # In competitive mode while the Cubic flow was active...
        active = [m for t, m in zip(times, modes) if 15 <= t <= 25 and m]
        after = [m for t, m in zip(times, modes) if t >= 37 and m]
        assert active.count("competitive") > len(active) * 0.5
        # ...and back in delay mode within ~2 FFT windows of it leaving.
        assert after.count("delay") > len(after) * 0.7
