"""Application sources: backlogged, finite, paced, Poisson, CBR, video."""

import math

import pytest

from repro.simulator.source import BackloggedSource, FiniteSource, PacedSource
from repro.traffic.poisson import CbrSource, PoissonSource
from repro.traffic.video import video_1080p, video_4k


class TestBacklogged:
    def test_always_available(self):
        src = BackloggedSource()
        assert math.isinf(src.available(0.0))
        src.consume(1e9, 0.0)
        assert math.isinf(src.available(1.0))

    def test_never_finished(self):
        assert not BackloggedSource().finished


class TestFinite:
    def test_initial_availability(self):
        src = FiniteSource(10_000)
        assert src.available(0.0) == pytest.approx(10_000)

    def test_consume_reduces_availability(self):
        src = FiniteSource(10_000)
        src.consume(4_000, 0.0)
        assert src.available(0.0) == pytest.approx(6_000)

    def test_finished_after_delivery(self):
        src = FiniteSource(10_000)
        src.consume(10_000, 0.0)
        assert not src.finished
        src.on_delivered(10_000, 1.0)
        assert src.finished

    def test_loss_requires_retransmission(self):
        src = FiniteSource(10_000)
        src.consume(10_000, 0.0)
        src.on_lost(3_000, 0.5)
        assert src.available(0.5) == pytest.approx(3_000)
        src.on_delivered(7_000, 1.0)
        assert not src.finished
        src.consume(3_000, 1.1)
        src.on_delivered(3_000, 1.5)
        assert src.finished

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FiniteSource(0)


class TestPaced:
    def test_accumulates_at_rate(self):
        src = PacedSource(rate=1e6)
        src.advance(0.0, 0.5)
        assert src.available(0.5) == pytest.approx(5e5)

    def test_backlog_cap(self):
        src = PacedSource(rate=1e6, max_backlog=1000)
        src.advance(0.0, 10.0)
        assert src.available(10.0) == pytest.approx(1000)

    def test_consume(self):
        src = PacedSource(rate=1e6)
        src.advance(0.0, 1.0)
        src.consume(4e5, 1.0)
        assert src.available(1.0) == pytest.approx(6e5)


class TestPoisson:
    def test_long_run_rate(self):
        src = PoissonSource(rate=1e6, seed=3)
        total = 0.0
        dt = 0.01
        for i in range(2000):
            src.advance(i * dt, dt)
            got = src.available(i * dt)
            src.consume(got, i * dt)
            total += got
        mean_rate = total / (2000 * dt)
        assert mean_rate == pytest.approx(1e6, rel=0.1)

    def test_reproducible_with_seed(self):
        a = PoissonSource(rate=1e6, seed=5)
        b = PoissonSource(rate=1e6, seed=5)
        for i in range(100):
            a.advance(i * 0.01, 0.01)
            b.advance(i * 0.01, 0.01)
        assert a.available(1.0) == pytest.approx(b.available(1.0))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonSource(rate=0)


class TestCbr:
    def test_bounded_backlog(self):
        src = CbrSource(rate=1e6, max_backlog_packets=2)
        src.advance(0.0, 10.0)
        assert src.available(10.0) <= 2 * 1500 + 1e-6


class TestVideo:
    def test_4k_requests_segments(self):
        src = video_4k()
        src.advance(0.0, 0.01)
        assert src.available(0.01) > 0

    def test_segment_completion_fills_buffer(self):
        src = video_1080p()
        src.advance(0.0, 0.01)
        pending = src.available(0.01)
        src.consume(pending, 0.02)
        src.on_delivered(pending, 0.1)
        assert src.segments_downloaded == 1

    def test_1080p_segments_smaller_than_4k(self):
        hi, lo = video_4k(), video_1080p()
        hi.advance(0.0, 0.01)
        lo.advance(0.0, 0.01)
        assert hi.available(0.01) > lo.available(0.01)

    def test_buffer_cap_pauses_downloads(self):
        src = video_1080p()
        # Deliver many segments instantly; buffer should cap and the source
        # should stop requesting more until playback drains it.
        for i in range(30):
            src.advance(i * 0.01, 0.01)
            avail = src.available(i * 0.01)
            if avail:
                src.consume(avail, i * 0.01)
                src.on_delivered(avail, i * 0.01)
        assert src.available(0.5) == 0.0
