"""Elasticity detection: the FFT metric (Eq. 3), detectors, and the
cross-correlation strawman."""

import numpy as np
import pytest

from repro.core.elasticity import (
    ElasticityDetector,
    PulserDetector,
    band_peak,
    cross_correlation_detector,
    elasticity_metric,
    fft_magnitude,
    magnitude_at,
)

SAMPLE_INTERVAL = 0.01
FP = 5.0
RNG = np.random.default_rng(42)


def sine_at(frequency, duration=5.0, amplitude=1.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(0, duration, SAMPLE_INTERVAL)
    signal = amplitude * np.sin(2 * np.pi * frequency * t)
    if noise:
        signal = signal + rng.normal(0, noise, size=t.size)
    return signal


class TestFftHelpers:
    def test_fft_peak_location(self):
        freqs, mags = fft_magnitude(sine_at(FP), SAMPLE_INTERVAL)
        assert freqs[np.argmax(mags)] == pytest.approx(FP, abs=0.2)

    def test_magnitude_at(self):
        freqs, mags = fft_magnitude(sine_at(FP), SAMPLE_INTERVAL)
        assert magnitude_at(freqs, mags, FP) == pytest.approx(0.5, rel=0.05)

    def test_band_peak_excludes_endpoints(self):
        freqs = np.array([5.0, 6.0, 7.0, 10.0])
        mags = np.array([9.0, 1.0, 2.0, 8.0])
        assert band_peak(freqs, mags, 5.0, 10.0) == pytest.approx(2.0)

    def test_empty_input(self):
        freqs, mags = fft_magnitude([], SAMPLE_INTERVAL)
        assert freqs.size == 0
        assert magnitude_at(freqs, mags, FP) == 0.0
        assert band_peak(freqs, mags, 1, 2) == 0.0

    def test_dc_removed(self):
        freqs, mags = fft_magnitude(np.full(500, 7.0), SAMPLE_INTERVAL)
        assert mags.max() == pytest.approx(0.0, abs=1e-9)


class TestElasticityMetric:
    def test_high_for_oscillation_at_fp(self):
        eta = elasticity_metric(sine_at(FP, noise=0.05), SAMPLE_INTERVAL, FP)
        assert eta > 5.0

    def test_low_for_white_noise(self):
        noise = RNG.normal(0, 1.0, size=500)
        eta = elasticity_metric(noise, SAMPLE_INTERVAL, FP)
        assert eta < 2.0

    def test_low_for_oscillation_elsewhere(self):
        eta = elasticity_metric(sine_at(7.5, noise=0.05), SAMPLE_INTERVAL, FP)
        assert eta < 1.0

    def test_scale_invariance(self):
        signal = sine_at(FP, noise=0.1, seed=3)
        eta1 = elasticity_metric(signal, SAMPLE_INTERVAL, FP)
        eta2 = elasticity_metric(signal * 1000.0, SAMPLE_INTERVAL, FP)
        assert eta1 == pytest.approx(eta2, rel=1e-9)

    def test_too_few_samples(self):
        assert elasticity_metric([1.0, 2.0, 3.0], SAMPLE_INTERVAL, FP) == 0.0

    def test_mixture_scales_with_elastic_amplitude(self):
        noise = RNG.normal(0, 1.0, size=500)
        weak = elasticity_metric(noise + 0.3 * sine_at(FP, seed=1),
                                 SAMPLE_INTERVAL, FP)
        strong = elasticity_metric(noise + 3.0 * sine_at(FP, seed=1),
                                   SAMPLE_INTERVAL, FP)
        assert strong > weak


class TestElasticityDetector:
    def test_classifies_elastic(self):
        detector = ElasticityDetector()
        result = detector.evaluate(sine_at(FP, noise=0.1))
        assert result.elastic
        assert result.eta >= detector.threshold

    def test_classifies_inelastic(self):
        detector = ElasticityDetector()
        result = detector.evaluate(RNG.normal(0, 1.0, size=500))
        assert not result.elastic

    def test_uses_trailing_window_only(self):
        detector = ElasticityDetector(fft_duration=5.0)
        old = RNG.normal(0, 1.0, size=1000)
        recent = sine_at(FP, noise=0.05)
        result = detector.evaluate(np.concatenate([old, recent]))
        assert result.elastic

    def test_window_samples(self):
        detector = ElasticityDetector(sample_interval=0.01, fft_duration=5.0)
        assert detector.window_samples == 500
        assert detector.has_full_window(np.zeros(500))
        assert not detector.has_full_window(np.zeros(499))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ElasticityDetector(threshold=0.5)


class TestPulserDetector:
    def test_detects_competitive_frequency(self):
        detector = PulserDetector()
        present, mode, _, _ = detector.evaluate(sine_at(5.0, noise=0.05))
        assert present and mode == "competitive"

    def test_detects_delay_frequency(self):
        detector = PulserDetector()
        present, mode, _, _ = detector.evaluate(sine_at(6.0, noise=0.05))
        assert present and mode == "delay"

    def test_no_pulser(self):
        detector = PulserDetector()
        present, mode, _, _ = detector.evaluate(RNG.normal(0, 1.0, size=500))
        assert not present and mode is None


class TestCrossCorrelationStrawman:
    def test_detects_correlated_response(self):
        s = sine_at(FP, seed=1)
        z = -np.roll(s, 5) + RNG.normal(0, 0.05, size=s.size)
        peak, elastic = cross_correlation_detector(s, z)
        assert elastic and peak > 0.5

    def test_rejects_uncorrelated(self):
        s = sine_at(FP, seed=1)
        z = RNG.normal(0, 1.0, size=s.size)
        _, elastic = cross_correlation_detector(s, z)
        assert not elastic

    def test_short_input(self):
        peak, elastic = cross_correlation_detector([1, 2], [3, 4])
        assert peak == 0.0 and not elastic
