"""A microscopic fake experiment driver used by the runner/runtime tests.

It mimics the real drivers' contract — a module-level ``run(**params)``
returning an :class:`~repro.experiments.common.ExperimentResult` — while
finishing in microseconds, so tests can exercise batching, caching, and
sweep expansion without paying for a simulation.
"""

from __future__ import annotations

import random

from repro.experiments.common import ExperimentResult

#: Incremented on every real execution; cache hits leave it untouched.
#: (Only meaningful for in-process serial execution.)
CALLS = {"run": 0}


def run(duration: float = 1.0, dt: float = 0.004, seed: int = 0,
        scale: float = 1.0) -> ExperimentResult:
    """Deterministic pseudo-experiment parameterised like a real driver."""
    CALLS["run"] += 1
    rng = random.Random((seed, duration, dt, scale).__repr__())
    samples = [rng.random() * scale for _ in range(max(1, int(duration / dt)))]
    result = ExperimentResult(
        name="toy", parameters=dict(duration=duration, dt=dt, seed=seed,
                                    scale=scale))
    result.data["mean"] = sum(samples) / len(samples)
    result.data["n"] = len(samples)
    result.data["samples"] = samples
    return result


def run_no_duration(dt: float = 0.004, seed: int = 0) -> ExperimentResult:
    """Driver variant that rejects ``duration`` (tests the runner fallback)."""
    return run(duration=0.5, dt=dt, seed=seed)
