"""Fluid-aggregate cross traffic: unit laws, conservation, and A/B fidelity.

The equivalence tests compare a tracked flow competing against N real
Cubic flows (ground truth) with the same flow competing against a fluid
population standing for those N flows.  The documented contract (README,
"Scaling cross-traffic") is monitored-flow throughput within 25 %
relative or 3 Mbit/s absolute, whichever is looser — an aggregate of
scalars cannot reproduce packet-level interleaving exactly, and the
tolerance is what the model actually achieves across population sizes.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import quick_network
from repro.analysis.telemetry import render_trace_summary, trace_summary
from repro.cc import Cubic
from repro.core.nimbus import Nimbus
from repro.runtime import FluidClassSpec, attach_fluid_classes, make_network
from repro.runtime.spec import ScenarioSpec
from repro.simulator import Flow, FluidClass, mbps_to_bytes_per_sec
from repro.simulator.telemetry import ListTraceSink, validate_trace_record

MU_96 = mbps_to_bytes_per_sec(96.0)


def _population_network(flows, link_mbps=96.0, seed=5, audit=None,
                        monkeypatch=None):
    """Main Cubic flow vs a fluid population of ``flows`` Cubic-alikes."""
    if monkeypatch is not None and audit is not None:
        monkeypatch.setenv("REPRO_AUDIT", str(audit))
    network, link = quick_network(link_mbps=link_mbps, buffer_ms=100,
                                  dt=0.002)
    network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="main"))
    cls = FluidClass("pop", mbps_to_bytes_per_sec(link_mbps),
                     kind="elastic", flows=flows, rtt=0.05, seed=seed)
    network.attach_fluid_class(cls)
    return network, link, cls


def _truth_network(flows, link_mbps=96.0):
    """Main Cubic flow vs ``flows`` real per-flow Cubic competitors."""
    network, link = quick_network(link_mbps=link_mbps, buffer_ms=100,
                                  dt=0.002)
    network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="main"))
    for index in range(flows):
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name=f"x{index}"))
    return network, link


def _class_residual(cls):
    return abs(cls.total_offered
               - (cls.total_served + cls.backlog + cls.total_dropped))


class TestFluidClassUnit:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FluidClass("c", MU_96, kind="plasma")
        with pytest.raises(ValueError, match="link_rate"):
            FluidClass("c", 0.0)
        with pytest.raises(ValueError, match="rtt"):
            FluidClass("c", MU_96, rtt=0.0)
        with pytest.raises(ValueError, match="flows"):
            FluidClass("c", MU_96, flows=-1)
        with pytest.raises(ValueError, match="target rate"):
            FluidClass("c", MU_96, load=0.0)
        with pytest.raises(ValueError, match="arrivals_per_sec"):
            FluidClass("c", MU_96, arrivals_per_sec=-5.0)

    def test_repr_smoke(self):
        assert "elastic" in repr(FluidClass("bg", MU_96, flows=4))

    def test_inelastic_envelope_tracks_target_rate(self):
        cls = FluidClass("cbr", MU_96, kind="inelastic", load=0.25, seed=3)
        dt, total = 0.002, 0.0
        for tick in range(5000):
            total += cls.offer(tick * dt, dt, 0.0)
        rate = total / (5000 * dt)
        assert rate == pytest.approx(0.25 * MU_96, rel=0.05)

    def test_inelastic_ignores_loss(self):
        cls = FluidClass("cbr", MU_96, kind="inelastic", load=0.25, seed=3)
        before = cls.offer(0.0, 0.5, 0.0) / 0.5
        cls.on_dropped(1e6, 0.0)
        after = cls.offer(10.0, 0.5, 0.0) / 0.5
        assert after == pytest.approx(before, rel=0.2)

    def test_deterministic_given_seed(self):
        runs = []
        for _ in range(2):
            network, _, cls = _population_network(8, seed=7)
            network.run(5.0)
            runs.append((cls.total_offered, cls.total_served,
                         cls.total_dropped, cls.window,
                         network.recorder.mean_throughput("main", start=1.0)))
        assert runs[0] == runs[1]

    def test_seed_changes_arrival_stream(self):
        totals = []
        for seed in (1, 2):
            cls = FluidClass("wan", MU_96, load=0.5, seed=seed)
            total = sum(cls.offer(t * 0.002, 0.002, 0.0)
                        for t in range(2000))
            totals.append(total)
        assert totals[0] != totals[1]

    def test_overflow_transfer_bounds(self):
        cls = FluidClass("pop", MU_96, flows=4, seed=1)
        lost = 10 * cls.packet_bytes
        assert cls.sample_overflow_transfer(lost, 0.0) == 0.0
        assert cls.sample_overflow_transfer(0.0, 0.5) == 0.0
        # share=1: every whole lost packet belongs to the packet side.
        assert cls.sample_overflow_transfer(lost, 1.0) \
            == pytest.approx(lost)
        for _ in range(50):
            transfer = cls.sample_overflow_transfer(lost, 0.3)
            assert 0.0 <= transfer <= lost

    def test_elastic_backs_off_on_loss(self):
        cls = FluidClass("pop", MU_96, flows=4, rtt=0.05, seed=1)
        for tick in range(500):  # grow out of slow start's early window
            now = tick * 0.002
            send = cls.offer(now, 0.002, 0.0)
            cls.commit(send, send, now)
        before = cls.window
        cls.on_dropped(8 * cls.packet_bytes, 1.0)
        # Loss feedback arrives one RTT later; then one MD per RTT.
        for tick in range(100):
            now = 1.0 + tick * 0.002
            send = cls.offer(now, 0.002, 0.0)
            cls.commit(send, send, now)
        assert cls.window < before


class TestConservation:
    def test_population_audit_and_class_identity(self, monkeypatch):
        network, link, cls = _population_network(
            16, audit=1, monkeypatch=monkeypatch)
        network.run(8.0)
        network.audit_conservation()  # explicit end-of-run re-check
        assert cls.total_dropped > 0.0  # the buffer really overflowed
        assert _class_residual(cls) < 1.0

    def test_inelastic_overload_audit(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        network, link = quick_network(link_mbps=24, buffer_ms=50, dt=0.002)
        cls = FluidClass("cbr", mbps_to_bytes_per_sec(24),
                         kind="inelastic", load=1.4, seed=2)
        network.attach_fluid_class(cls)
        network.run(5.0)
        network.audit_conservation()
        assert cls.total_dropped > 0.0
        assert _class_residual(cls) < 1.0

    def test_arrival_mode_audit(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        network, link = quick_network(link_mbps=96, buffer_ms=100, dt=0.002)
        network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05, name="main"))
        cls = FluidClass("wan", MU_96, kind="elastic", load=0.5,
                         arrivals_per_sec=2000.0, seed=4)
        network.attach_fluid_class(cls)
        network.run(6.0)
        network.audit_conservation()
        assert cls.flows_created > 1000
        assert _class_residual(cls) < 1.0

    def test_flush_link_queue_with_fluid(self, monkeypatch):
        network, link, cls = _population_network(
            16, audit=1, monkeypatch=monkeypatch)
        network.run(4.0)
        assert cls.backlog > 0.0  # a standing queue exists at 16 flows
        dropped_before = cls.total_dropped
        flushed = network.flush_link_queue(link.name)
        assert flushed > 0.0
        assert cls.backlog == 0.0
        assert cls.total_dropped > dropped_before
        network.audit_conservation()
        network.run(1.0)  # keep running after the flush under the audit
        assert _class_residual(cls) < 1.0

    def test_multiple_classes_share_one_link(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        network, link = quick_network(link_mbps=96, buffer_ms=100, dt=0.002)
        elastic = FluidClass("pop", MU_96, flows=8, rtt=0.05, seed=1)
        cbr = FluidClass("cbr", MU_96, kind="inelastic", load=0.3, seed=2)
        network.attach_fluid_class(elastic)
        network.attach_fluid_class(cbr)
        network.run(6.0)
        network.audit_conservation()
        for cls in (elastic, cbr):
            assert cls.total_served > 0.0
            assert _class_residual(cls) < 1.0
        # The CBR envelope is unresponsive; it must get close to its 30 %.
        assert cbr.total_served \
            >= 0.8 * cbr.total_offered

    def test_duplicate_class_name_rejected(self):
        network, _, _ = _population_network(4)
        with pytest.raises(ValueError, match="duplicate"):
            network.attach_fluid_class(FluidClass("pop", MU_96, flows=2))

    def test_engine_stats_counts_classes(self):
        network, _, _ = _population_network(4)
        assert network.engine_stats()["fluid_classes"] == 1


class TestEquivalence:
    """A/B: fluid population vs the per-flow ground truth it stands for."""

    DURATION = 30.0
    WARMUP = 5.0

    def _throughputs(self, flows):
        truth_net, _ = _truth_network(flows)
        truth_net.run(self.DURATION)
        hybrid_net, _, _ = _population_network(flows)
        hybrid_net.run(self.DURATION)
        truth = truth_net.recorder.mean_throughput("main", start=self.WARMUP)
        hybrid = hybrid_net.recorder.mean_throughput("main",
                                                     start=self.WARMUP)
        return truth, hybrid, truth_net, hybrid_net

    @pytest.mark.parametrize("flows", [16, 64])
    def test_main_flow_throughput_agrees(self, flows):
        truth, hybrid, _, _ = self._throughputs(flows)
        # The documented contract: 25 % relative or 3 Mbit/s absolute.
        tolerance = max(0.25 * truth, 3.0)
        assert abs(hybrid - truth) <= tolerance, (
            f"n={flows}: truth {truth:.2f} Mbit/s vs "
            f"hybrid {hybrid:.2f} Mbit/s")

    def test_fluid_takes_the_crowd_share(self):
        # At 16:1 the crowd should hold the lion's share in both worlds.
        truth, hybrid, _, hybrid_net = self._throughputs(16)
        cls = hybrid_net.fluid_classes()[0]
        elapsed = self.DURATION - self.WARMUP
        # Rough aggregate rate over the whole run (includes warmup ramp).
        crowd_mbps = cls.total_served * 8.0 / 1e6 / self.DURATION
        assert crowd_mbps > 5 * hybrid
        assert truth < 96.0 / 4  # sanity: the crowd really squeezed main
        assert elapsed > 0

    def test_nimbus_classifies_fluid_crowd_as_elastic(self):
        results = {}
        for label in ("truth", "hybrid"):
            network, _ = quick_network(link_mbps=96, buffer_ms=100,
                                       dt=0.002)
            network.add_flow(Flow(cc=Nimbus(mu=MU_96), prop_rtt=0.05,
                                  name="main"))
            if label == "truth":
                for index in range(16):
                    network.add_flow(Flow(cc=Cubic(), prop_rtt=0.05,
                                          name=f"x{index}"))
            else:
                network.attach_fluid_class(FluidClass(
                    "pop", MU_96, kind="elastic", flows=16, rtt=0.05,
                    seed=5))
            network.run(self.DURATION)
            times, modes = network.recorder.mode_series("main")
            counted = [(t, m) for t, m in zip(times, modes)
                       if m is not None and t >= self.WARMUP]
            assert counted, f"{label}: no mode samples"
            competitive = sum(m == "competitive" for _, m in counted)
            results[label] = competitive / len(counted)
        # Elastic cross traffic must read as competitive in both worlds.
        assert results["truth"] > 0.5
        assert results["hybrid"] > 0.5


class TestSpecWiring:
    def test_fluid_spec_canonicalizes_into_scenario_hash(self):
        def base(**kwargs):
            return ScenarioSpec.make(
                _spec_probe_target, label="probe",
                fluid=(FluidClassSpec("wan", load=kwargs.get("load", 0.5)),))
        assert base().spec_hash() == base().spec_hash()
        assert base().spec_hash() != base(load=0.6).spec_hash()

    def test_make_network_attaches_fluid(self):
        network = make_network(
            24.0, fluid=(FluidClassSpec("bg", kind="inelastic",
                                        rate_mbps=6.0, seed=2),))
        classes = network.fluid_classes()
        assert [cls.name for cls in classes] == ["bg"]
        assert classes[0].target_rate \
            == pytest.approx(mbps_to_bytes_per_sec(6.0))

    def test_make_network_without_fluid_attaches_nothing(self):
        assert make_network(24.0).fluid_classes() == []

    def test_attach_fluid_classes_population(self):
        network = make_network(96.0)
        attach_fluid_classes(network, (FluidClassSpec(
            "pop", flows=8, rtt_ms=40.0),))
        cls = network.fluid_classes()[0]
        assert cls.flows == 8
        assert cls.rtt == pytest.approx(0.04)


def _spec_probe_target(**kwargs):  # pragma: no cover - hashed, never run
    return kwargs


class TestTelemetry:
    def _traced_run(self, duration=4.0, **sink_kwargs):
        network, _, cls = _population_network(8)
        sink = ListTraceSink(**sink_kwargs)
        network.set_trace_sink(sink)
        network.run(duration)
        return network, cls, sink

    def test_fluid_sample_records_validate(self):
        network, cls, sink = self._traced_run()
        samples = [r for r in sink.records if r["event"] == "fluid_sample"]
        assert samples
        for record in samples:
            validate_trace_record(record)
        last = samples[-1]
        assert last["class"] == "pop"
        assert last["kind"] == "elastic"
        assert last["offered"] == pytest.approx(cls.total_offered, rel=0.05)

    def test_fluid_sample_respects_link_filter(self):
        _, _, sink = self._traced_run(links=("no-such-link",))
        assert not [r for r in sink.records
                    if r["event"] == "fluid_sample"]

    def test_recorder_series(self):
        network, cls, _ = self._traced_run()
        recorder = network.recorder
        assert recorder.fluid_class_names() == ["pop"]
        times, served = recorder.fluid_served_series("pop")
        assert len(times) == len(served)
        # Mbit/s bins integrate back to the cumulative served counter.
        if len(times) > 1:
            bin_width = times[1] - times[0]
            total = float(np.sum(served)) * bin_width / 8.0 * 1e6
            assert total == pytest.approx(cls.total_served, rel=0.15)
        for series in (recorder.fluid_offered_series("pop"),
                       recorder.fluid_drop_series("pop")):
            assert len(series[0]) == len(series[1])

    def test_trace_summary_fluid_rollup(self):
        _, cls, sink = self._traced_run()
        summary = trace_summary(sink.records)
        key, rollup = next(iter(summary["fluid"].items()))
        assert key.endswith("/pop")
        assert rollup["kind"] == "elastic"
        assert rollup["offered"] >= rollup["served"]
        rendered = render_trace_summary(sink.records)
        assert "fluid classes:" in rendered
        assert "/pop" in rendered

    def test_trace_summary_without_fluid_has_no_section(self):
        records = [{"time": 0.1, "event": "loss", "flow_id": 0,
                    "flow": "main", "bytes": 1448}]
        summary = trace_summary(records)
        assert summary["fluid"] == {}
        assert "fluid classes:" not in render_trace_summary(records)

    def test_fluid_sample_jsonl_round_trip(self, tmp_path):
        _, _, sink = self._traced_run()
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for record in sink.records:
                handle.write(json.dumps(record) + "\n")
        from repro.analysis.telemetry import load_trace
        records = load_trace(str(path))
        assert any(r["event"] == "fluid_sample" for r in records)


class TestFig09Fluid:
    def test_run_case_payload(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        from repro.experiments.fig09_wan import run_case
        payload = run_case("cubic", duration=4.0, fluid=1, seed=3)
        assert payload["extra"]["cross_flows"] > 0
        rollup = payload["extra"]["fluid"]
        assert rollup["offered_bytes"] >= rollup["served_bytes"]
        assert payload["data"]["fct_records"] == []
        assert payload["summary"].mean_throughput_mbps > 0.0

    def test_registered_in_experiment_index(self):
        from repro.experiments import EXPERIMENT_INDEX, fig09_fluid
        assert EXPERIMENT_INDEX["fig09_fluid"] is fig09_fluid
