"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import cdf, jain_fairness
from repro.core.elasticity import elasticity_metric
from repro.core.estimator import estimate_cross_traffic
from repro.core.multiflow import WatcherRateFilter
from repro.core.pulses import AsymmetricSinusoidPulse
from repro.simulator.aqm import DropTail
from repro.simulator.link import BottleneckLink
from repro.simulator.measurement import WindowedCounter
from repro.simulator.packet import Chunk

positive_rate = st.floats(min_value=1e3, max_value=1e9, allow_nan=False)


@given(size=st.floats(min_value=2.0, max_value=1e7),
       fraction=st.floats(min_value=0.01, max_value=0.99))
def test_chunk_split_conserves_bytes_and_order(size, fraction):
    chunk = Chunk(flow_id=0, size=size, seq=1000.0, sent_time=0.0)
    head_bytes = size * fraction
    assume(0 < head_bytes < size)
    head = chunk.split(head_bytes)
    assert math.isclose(head.size + chunk.size, size, rel_tol=1e-12)
    assert head.seq <= chunk.seq
    assert math.isclose(head.seq + head.size, chunk.seq, rel_tol=1e-12)


@given(mu=positive_rate, s=positive_rate, r=positive_rate)
def test_cross_traffic_estimate_in_physical_range(mu, s, r):
    z = estimate_cross_traffic(mu, s, r)
    assert 0.0 <= z <= mu


@given(mu=positive_rate, s=positive_rate,
       z_true=st.floats(min_value=0.0, max_value=1e9))
def test_cross_traffic_estimate_inverts_fifo_share(mu, s, z_true):
    assume(z_true <= mu * 0.99)
    # Construct R from the FIFO-sharing relation the estimator assumes.
    r = mu * s / (s + z_true)
    z = estimate_cross_traffic(mu, s, r)
    assert math.isclose(z, min(z_true, mu), rel_tol=1e-6, abs_tol=1e-3)


@given(frequency=st.floats(min_value=0.5, max_value=20.0),
       fraction=st.floats(min_value=0.01, max_value=1.0))
@settings(max_examples=30, deadline=None)
def test_pulse_zero_mean_any_parameters(frequency, fraction):
    pulse = AsymmetricSinusoidPulse(frequency=frequency,
                                    pulse_fraction=fraction)
    ts = np.linspace(0, pulse.period, 4000, endpoint=False)
    mean = np.mean([pulse.offset_fraction(t) for t in ts])
    assert abs(mean) < 1e-3 * fraction + 1e-9


@given(rates=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                      max_size=20))
def test_jain_fairness_bounds(rates):
    fairness = jain_fairness(rates)
    if all(r == 0 for r in rates):
        assert fairness == 0.0
    else:
        assert 1.0 / len(rates) - 1e-9 <= fairness <= 1.0 + 1e-9


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=200))
def test_cdf_properties(values):
    xs, ps = cdf(values)
    assert xs.size == len(values)
    assert np.all(np.diff(xs) >= 0)
    assert np.all(np.diff(ps) >= -1e-12)
    assert ps[-1] == 1.0


@given(scale=st.floats(min_value=1e-3, max_value=1e6),
       offset=st.floats(min_value=-1e3, max_value=1e3))
@settings(max_examples=30, deadline=None)
def test_elasticity_metric_affine_invariant(scale, offset):
    t = np.arange(0, 5, 0.01)
    rng = np.random.default_rng(7)
    signal = np.sin(2 * np.pi * 5.0 * t) + 0.3 * rng.normal(size=t.size)
    base = elasticity_metric(signal, 0.01, 5.0)
    transformed = elasticity_metric(signal * scale + offset, 0.01, 5.0)
    assert math.isclose(base, transformed, rel_tol=1e-6)


@given(adds=st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                               st.floats(min_value=1, max_value=1e6)),
                     min_size=1, max_size=100))
def test_windowed_counter_total_matches_sum(adds):
    counter = WindowedCounter(horizon=1e9)
    adds = sorted(adds)
    for t, b in adds:
        counter.add(t, b)
    expected = sum(b for _, b in adds)
    assert math.isclose(counter.total, expected, rel_tol=1e-9)
    last_t = adds[-1][0]
    assert counter.sum_over(last_t, window=1e9) <= expected + 1e-6


@given(chunks=st.lists(st.floats(min_value=10, max_value=5000), min_size=1,
                       max_size=60),
       buffer_bytes=st.floats(min_value=1000, max_value=20000),
       capacity=st.floats(min_value=1e4, max_value=1e7))
@settings(max_examples=50, deadline=None)
def test_link_conservation_property(chunks, buffer_bytes, capacity):
    """Bytes in == bytes served + bytes queued + bytes dropped, always."""
    link = BottleneckLink(capacity=capacity, policy=DropTail(buffer_bytes))
    dropped = 0.0
    total_in = 0.0
    now = 0.0
    for i, size in enumerate(chunks):
        now = i * 0.001
        chunk = Chunk(flow_id=0, size=size, seq=total_in, sent_time=now)
        total_in += size
        for record in link.enqueue(chunk, now):
            dropped += record.lost_bytes
        link.service(now + 0.0005, dt=0.001)
    assert math.isclose(total_in,
                        link.total_served + link.queue_bytes + dropped,
                        rel_tol=1e-9, abs_tol=1e-6)
    assert link.queue_bytes <= buffer_bytes + 1e-6


@given(cutoff=st.floats(min_value=0.5, max_value=20.0),
       rates=st.lists(st.floats(min_value=0, max_value=1e8), min_size=1,
                      max_size=100))
def test_watcher_filter_output_within_input_range(cutoff, rates):
    filt = WatcherRateFilter(cutoff_frequency=cutoff, update_interval=0.01)
    outputs = [filt.filter(r) for r in rates]
    assert min(outputs) >= min(rates) - 1e-6
    assert max(outputs) <= max(rates) + 1e-6
